#!/usr/bin/env python
"""Quickstart: the paper's figure 4 — over the wire.

``examples/quickstart.py`` runs figure 4 against the in-process scheduling
core; this example runs the same scenario against the **online** admission
service (``repro.serve``, docs/SERVE.md).  A server is booted on a unix
socket, clients connect and wrap their DGEMM in ``pp_begin`` / ``pp_end``
frames, and a denied period parks the *connection* until capacity frees
up — the networked analogue of the kernel parking a process.

The clients here are ``ResilientServeClient``: lease-bound, auto-
reconnecting, idempotent.  Three acts:

1. one client, admitted immediately (figure 4 verbatim),
2. three concurrent 6.3 MB clients against a 14 MB LLC under RDA:Strict —
   two fit, the third parks, then is admitted the moment a peer calls
   ``pp_end``; the live ``stats`` verb shows the park-time histogram, and
3. the server is killed mid-period and rebooted from its admission
   journal — the client reconnects on its next call and the recovered
   ledger still charges its demand, and
4. a client that declares 4 MB but really touches 1 MB reports the truth
   at each ``pp_end`` — after three sessions the server's online demand
   estimator (``--predict``, docs/PREDICTION.md) stops believing the
   declaration and admits the fourth period at the *learned* size.

Run:  python examples/serve_quickstart.py
"""

import asyncio
import tempfile

from repro.core.api import MB
from repro.core.policy import StrictPolicy
from repro.serve import AdmissionServer, ResilientServeClient, ServeConfig
from repro.cli import _machine_with_capacity


async def figure4_over_the_wire(sock: str) -> None:
    print("=" * 64)
    print("1. pp_begin(RESOURCE_LLC, MB(6.3), REUSE_HIGH) — as a frame")
    print("=" * 64)
    client = ResilientServeClient(unix_path=sock, client_id="quickstart")

    # pp_id = pp_begin(RESOURCE_LLC, MB(6.3), REUSE_HIGH);
    reply = await client.pp_begin(MB(6.3), reuse="high", label="DGEMM")
    print(f"pp_begin -> pp_id {reply['pp_id']}, admitted={reply['admitted']}, "
          f"waited {reply['waited_s']:.3f} s")

    snapshot = await client.query()
    llc = snapshot["resources"]["llc"]
    print(f"LLC load: {llc['usage_bytes'] / 2**20:.1f} / "
          f"{llc['capacity_bytes'] / 2**20:.1f} MiB "
          f"({llc['utilization']:.0%})")

    # ... DGEMM(n, A, B, C) runs here ...

    # pp_end(pp_id);
    await client.pp_end(reply["pp_id"])
    print("pp_end   -> demand released")
    await client.close()


async def contention_parks_the_third_client(sock: str) -> None:
    print()
    print("=" * 64)
    print("2. three 6.3 MB clients, 14 MB LLC, RDA:Strict — one must wait")
    print("=" * 64)
    clients = [
        ResilientServeClient(unix_path=sock, client_id=f"p{i}")
        for i in range(3)
    ]
    begins = [
        asyncio.ensure_future(c.pp_begin(MB(6.3), reuse="high", label=f"p{i}"))
        for i, c in enumerate(clients)
    ]
    await asyncio.sleep(0.2)
    running = [t for t in begins if t.done()]
    parked = [t for t in begins if not t.done()]
    print(f"admitted immediately: {len(running)}; parked: {len(parked)}")

    # the first pp_end frees 6.3 MB and wakes the parked connection
    first = running[0].result()
    await clients[begins.index(running[0])].pp_end(first["pp_id"])
    woken = await asyncio.wait_for(parked[0], 5.0)
    print(f"after one pp_end, the parked client was admitted "
          f"(waited {woken['waited_s']:.3f} s)")

    for task in begins:
        if task is not running[0]:
            reply = task.result()
            await clients[begins.index(task)].pp_end(reply["pp_id"])

    stats = await clients[0].stats()
    park = stats["histograms"]["park_time_s"]
    print(f"server park-time histogram: count={park['count']}, "
          f"p99={park['p99']:.3f} s")
    for client in clients:
        await client.close()


async def crash_and_recover(server: AdmissionServer, sock: str,
                            make_config) -> AdmissionServer:
    print()
    print("=" * 64)
    print("3. kill -9 the server mid-period; reboot it from the journal")
    print("=" * 64)
    client = ResilientServeClient(
        unix_path=sock, client_id="survivor", backoff_base_s=0.05
    )
    reply = await client.pp_begin(MB(6.3), reuse="high", label="survivor")
    print(f"pp_begin -> pp_id {reply['pp_id']} admitted, then... crash")

    await server.abort()  # hard stop: no goodbye frames, journal unsynced
    reborn = AdmissionServer(make_config())
    await reborn.start(unix_path=sock)
    print(f"rebooted: {reborn.service.replayed_periods} period(s) replayed "
          f"from the journal")

    # the same client object just keeps working: its next call
    # reconnects, re-hellos as "survivor", and finds its period charged
    snapshot = await client.query()
    llc = snapshot["resources"]["llc"]
    print(f"after recovery the LLC still charges "
          f"{llc['usage_bytes'] / 2**20:.1f} MiB "
          f"(reconnects: {client.reconnects})")

    await client.pp_end(reply["pp_id"])
    print("pp_end   -> recovered demand released")
    await client.close()
    return reborn


async def prediction_corrects_a_liar(sock: str) -> None:
    print()
    print("=" * 64)
    print("4. declare 4 MB, touch 1 MB — the estimator learns the truth")
    print("=" * 64)
    client = ResilientServeClient(unix_path=sock, client_id="liar")

    # three honest-on-close sessions teach the server this client's
    # declarations run 4x hot for the "dgemm-small" working set
    for _ in range(3):
        reply = await client.pp_begin(MB(4), reuse="high", label="dgemm-small")
        await client.pp_end(reply["pp_id"], observed_bytes=MB(1))

    reply = await client.pp_begin(MB(4), reuse="high", label="dgemm-small")
    snapshot = await client.query()
    charged = snapshot["resources"]["llc"]["usage_bytes"]
    stats = await client.stats()
    predicted = stats["counters"]["predicted_admits_total"]
    print(f"4th pp_begin declared {MB(4) / 2**20:.0f} MiB but charged only "
          f"{charged / 2**20:.0f} MiB "
          f"(predicted_admits_total={predicted})")

    await client.pp_end(reply["pp_id"], observed_bytes=MB(1))
    await client.close()


async def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        sock = f"{tmp}/rda.sock"

        def make_config() -> ServeConfig:
            return ServeConfig(
                policy=StrictPolicy(),
                machine=_machine_with_capacity(14.0),
                journal_path=f"{tmp}/admission.ndjson",
                predict=True,
            )

        server = AdmissionServer(make_config())
        await server.start(unix_path=sock)
        try:
            await figure4_over_the_wire(sock)
            await contention_parks_the_third_client(sock)
            server = await crash_and_recover(server, sock, make_config)
            await prediction_corrects_a_liar(sock)
        finally:
            server.request_drain()
            await server.run_until_drained()


if __name__ == "__main__":
    asyncio.run(main())
