#!/usr/bin/env python
"""Quickstart: the paper's figure 4, transliterated.

The C snippet in the paper wraps a DGEMM call in a progress period::

    pp_id = pp_begin(RESOURCE_LLC, MB(6.3), REUSE_HIGH);
    DGEMM(n, A, B, C);
    pp_end(pp_id);

This example does the same two ways:

1. directly against the scheduling core (the API objects, admission
   decision and resource accounting, with no machine simulation), and
2. on the simulated machine, running a dgemm workload under the
   demand-aware scheduler and printing a perf-stat-style report.

Run:  python examples/quickstart.py
"""

from repro import StrictPolicy, run_workload
from repro.core import (
    ProgressPeriodApi,
    ProgressMonitor,
    ResourceMonitor,
    SchedulingPredicate,
    ResourceKind,
)
from repro.core.api import MB, RESOURCE_LLC, REUSE_HIGH
from repro.config import default_machine_config
from repro.workloads.base import Workload
from repro.workloads.blas import dgemm_process


def direct_api_demo() -> None:
    """Figure 4 against the scheduling core."""
    print("=" * 64)
    print("1. The progress-period API (paper figure 4)")
    print("=" * 64)
    config = default_machine_config()

    # Assemble the figure-2 components by hand.
    resources = ResourceMonitor()
    resources.register(ResourceKind.LLC, config.llc_capacity)
    predicate = SchedulingPredicate(resources, StrictPolicy())
    monitor = ProgressMonitor(resources, predicate, clock=lambda: 0.0)
    api = ProgressPeriodApi(monitor)

    # int main(...):  pp_id = pp_begin(RESOURCE_LLC, MB(6.3), REUSE_HIGH);
    pp_id = api.pp_begin(RESOURCE_LLC, MB(6.3), REUSE_HIGH, label="DGEMM")
    state = resources.state(ResourceKind.LLC)
    print(f"pp_begin -> id {pp_id}, admitted: {api.is_admitted(pp_id)}")
    print(f"LLC load: {state.usage_bytes / 2**20:.1f} / "
          f"{state.capacity_bytes / 2**20:.1f} MiB")

    # ... DGEMM(n, A, B, C) runs here ...

    # pp_end(pp_id);
    api.pp_end(pp_id)
    print(f"pp_end   -> LLC load back to {state.usage_bytes} bytes")


def simulated_machine_demo() -> None:
    """The same dgemm on the simulated Xeon E5-2420."""
    print()
    print("=" * 64)
    print("2. dgemm on the simulated machine (Table 1), RDA: Strict")
    print("=" * 64)
    print(default_machine_config().describe())
    print()
    workload = Workload(name="dgemm-demo", processes=[dgemm_process()] * 24)
    report = run_workload(workload, StrictPolicy())
    print(report.describe())


if __name__ == "__main__":
    direct_api_demo()
    simulated_machine_demo()
