#!/usr/bin/env python
"""The §2.4 / §4.4 profiler pipeline, end to end.

1. Generate a synthetic address trace for water_nsquared's pair sweep (the
   PIN stand-in), with JMP samples and a modelled binary loop nest.
2. Sample fixed-size instruction windows -> footprint / WSS / reuse ratio.
3. Detect progress periods as runs of similar windows.
4. Map the detected period to the outermost containing loop via the JMPs.
5. Fit the logarithmic WSS predictor across input scales and use it to
   annotate a workload phase for an input size never profiled.

Run:  python examples/profile_and_annotate.py
"""

from repro.profiler import (
    DetectorConfig,
    SyntheticBinary,
    annotate_workload_phase,
    detect_periods,
    fit_log_regression,
    map_period_to_loop,
    prediction_accuracy,
    sample_windows,
)
from repro.workloads.splash2.water_nsquared import largest_pp_phase
from repro.workloads.tracegen import water_pp1_trace

WINDOW_INSTRUCTIONS = 1_000_000
INPUT_SCALES = (8000, 15625, 32768, 64000)


def build_binary() -> tuple[SyntheticBinary, dict]:
    """The modelled water_nsquared binary: INTERF with two nested loops."""
    binary = SyntheticBinary()
    interf = binary.add_function("INTERF", 0x401000, 0x409000)
    outer = binary.add_loop(interf, "rows(i)", 0x401100, 0x408F00, backedge=0x408E00)
    binary.add_loop(
        interf, "partners(j)", 0x401200, 0x408D00, backedge=0x408C00, parent=outer
    )
    layout = {"inner_backedge": 0x408C00, "outer_backedge": 0x408E00}
    return binary, layout


def main() -> None:
    binary, layout = build_binary()

    # --- profile the default input -----------------------------------
    trace = water_pp1_trace(8000, jmp_layout=layout)
    profile = sample_windows(trace, WINDOW_INSTRUCTIONS)
    print(f"windows: {len(profile)}  mean WSS {profile.mean_wss_bytes / 1e6:.2f} MB  "
          f"mean reuse ratio {profile.mean_reuse_ratio:.1f}")

    periods = detect_periods(profile, DetectorConfig(min_period_instructions=3_000_000))
    print(f"detected {len(periods)} progress period(s):")
    for p in periods:
        print(f"  windows [{p.first_window}, {p.last_window}]  "
              f"WSS {p.wss_bytes / 1e6:.2f} MB  reuse {p.reuse_level}")

    # --- locate the period in the binary ------------------------------
    period = periods[0]
    jmps = trace.jmps_in_window(period.first_window, WINDOW_INSTRUCTIONS)
    loop = map_period_to_loop(binary, jmps)
    assert loop is not None
    print(f"period maps to outermost loop {loop.name!r} "
          f"[{loop.start:#x}, {loop.end:#x})")

    # --- input-scaling prediction (figure 12) -------------------------
    wss = []
    for n in INPUT_SCALES:
        p = sample_windows(water_pp1_trace(n), WINDOW_INSTRUCTIONS)
        wss.append(p.mean_wss_bytes)
    reg = fit_log_regression(INPUT_SCALES[:3], wss[:3])
    acc = prediction_accuracy(reg.predict(INPUT_SCALES[3]), wss[3])
    print(f"log-regression predictor: wss = {reg.a / 1e6:.2f} MB + "
          f"{reg.b / 1e6:.3f} MB * ln(molecules); "
          f"accuracy on held-out 8x input: {acc:.0%}")

    # --- annotate a phase for an unseen input --------------------------
    unseen = 24_000
    phase = largest_pp_phase(unseen)
    annotated = annotate_workload_phase(
        phase, period, input_size=unseen, wss_predictor=reg
    )
    assert annotated.pp is not None
    print(f"annotated phase for {unseen} molecules: pp_begin(LLC, "
          f"{annotated.pp.demand_bytes / 1e6:.2f} MB, {annotated.pp.reuse})")


if __name__ == "__main__":
    main()
