#!/usr/bin/env python
"""Writing a custom scheduling policy.

The paper's predicate (Algorithm 1) delegates the run/pause decision to a
"reconfigurable scheduling policy that dictates the limits of each hardware
resource".  Beyond the built-in RDA: Strict and RDA: Compromise, any object
implementing ``allows(outcome_bytes, resource)`` plugs in.

This example adds a *utilization-floor* policy: it behaves strictly while
the cache is lightly loaded, but once usage passes a threshold it refuses
further oversubscription entirely — a middle ground the paper's §4.2
analysis hints at ("different scheduling configurations need to be
combined for the overall approach to be beneficial").

Run:  python examples/custom_policy.py
"""

from dataclasses import dataclass

from repro import CompromisePolicy, StrictPolicy, run_policies, workload_by_name
from repro.core.policy import SchedulingPolicy
from repro.core.resource_monitor import ResourceState
from repro.experiments.metrics import compare_all


@dataclass(frozen=True)
class SteppedPolicy(SchedulingPolicy):
    """Allow bounded oversubscription only while usage is below a knee.

    Below ``knee`` (a fraction of capacity) the policy admits like
    RDA: Compromise with the given factor; above it, like RDA: Strict.
    The intuition: modest oversubscription of a half-empty cache costs
    little, but piling onto an already-full cache thrashes.
    """

    knee: float = 0.5
    oversubscription: float = 1.5
    name: str = "Stepped(0.5, 1.5x)"

    def allows(self, outcome_bytes: float, resource: ResourceState) -> bool:
        if resource.usage_bytes <= self.knee * resource.capacity_bytes:
            slack = (self.oversubscription - 1.0) * resource.capacity_bytes
            return outcome_bytes >= -slack
        return outcome_bytes >= 0


def main() -> None:
    policies = {
        "Linux Default": None,
        "RDA: Strict": StrictPolicy(),
        "RDA: Compromise": CompromisePolicy(),
        "Stepped": SteppedPolicy(),
    }
    for workload in ("Water_nsq", "Raytrace"):
        reports = run_policies(
            lambda w=workload: workload_by_name(w), policies=policies
        )
        print(f"== {workload} ==")
        base = reports["Linux Default"]
        print(f"  {'Linux Default':<16} {base.gflops:6.2f} GFLOPS  "
              f"{base.system_j:7.1f} J")
        for name, cmp in compare_all(workload, reports).items():
            r = reports[name]
            print(f"  {name:<16} {r.gflops:6.2f} GFLOPS  {r.system_j:7.1f} J  "
                  f"(speedup {cmp.speedup:.2f}x, energy "
                  f"{cmp.system_energy_decrease:+.0%})")
        print()


if __name__ == "__main__":
    main()
