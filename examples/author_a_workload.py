#!/usr/bin/env python
"""Authoring a new workload model, end to end.

The paper's workflow for bringing an application into the demand-aware
world (§2.4, §4.4):

1. model (or capture) the application's memory behaviour,
2. profile it to find its progress periods and their demands,
3. annotate the application with ``pp_begin``/``pp_end`` declarations,
4. run it under the scheduler and see whether gating helps.

This example invents a small "graph analytics" application — alternating
between a cache-friendly scoring phase over a node table and a streaming
edge-scan — and walks all four steps with library APIs only.

Run:  python examples/author_a_workload.py
"""

import numpy as np

from repro import CompromisePolicy, StrictPolicy, run_policies
from repro.core.progress_period import ReuseLevel
from repro.experiments.metrics import compare_all
from repro.mem.address import AddressSpace
from repro.mem.trace import MemoryTrace
from repro.profiler import DetectorConfig, ProfilerPipeline
from repro.workloads.base import Phase, PpSpec, ProcessSpec, Workload

MB = 1_000_000
N_NODES = 40_000  # node record = 64 B -> 2.56 MB hot table
N_EDGES = 2_000_000


# ----------------------------------------------------------------------
# 1. model the application's memory behaviour as a synthetic trace
# ----------------------------------------------------------------------
def app_trace(n_accesses_per_phase: int = 500_000) -> MemoryTrace:
    space = AddressSpace()
    nodes = space.alloc("nodes", N_NODES * 64)
    edges = space.alloc("edges", N_EDGES * 16)
    rng = np.random.default_rng(42)
    slices = []
    for _ in range(2):  # two iterations of score -> scan
        # scoring: repeated sweeps over the node table (high reuse)
        sweep = nodes.element_addr(
            np.tile(np.arange(N_NODES, dtype=np.int64), 4), 64
        )
        slices.append(sweep[:n_accesses_per_phase])
        # edge scan: one streaming pass, no reuse
        scan = edges.element_addr(np.arange(n_accesses_per_phase, dtype=np.int64), 16)
        slices.append(scan)
    return MemoryTrace(np.concatenate(slices), label="graphapp")


# ----------------------------------------------------------------------
# 2. profile it
# ----------------------------------------------------------------------
def profile_it():
    pipeline = ProfilerPipeline(
        window_instructions=300_000,
        detector=DetectorConfig(min_period_instructions=600_000),
    )
    profile = pipeline.profile(app_trace())
    print(f"profiler found {len(profile.periods)} progress periods:")
    for p in profile.periods:
        print(
            f"  windows [{p.first_window:>2}, {p.last_window:>2}]  "
            f"WSS {p.wss_bytes / MB:5.2f} MB  reuse={p.reuse_level}"
        )
    return profile


# ----------------------------------------------------------------------
# 3. annotate a phase model with the profiled demands
# ----------------------------------------------------------------------
def build_workload(profile, n_processes: int = 24) -> Workload:
    hot = max(profile.periods, key=lambda p: p.wss_bytes * p.reuse_ratio)
    score_phase = Phase(
        name="score",
        instructions=12_000_000,
        flops_per_instr=0.5,
        mem_refs_per_instr=0.45,
        llc_refs_per_memref=0.10,
        wss_bytes=int(hot.wss_bytes),
        reuse=0.9,
        pp=PpSpec(demand_bytes=int(hot.wss_bytes), reuse=hot.reuse_level),
    )
    scan_phase = Phase(
        name="edge-scan",
        instructions=8_000_000,
        flops_per_instr=0.1,
        mem_refs_per_instr=0.5,
        llc_refs_per_memref=0.125,
        wss_bytes=int(0.5 * MB),
        reuse=0.08,
        pp=PpSpec(demand_bytes=int(0.5 * MB), reuse=ReuseLevel.LOW),
    )
    spec = ProcessSpec(name="graphapp", program=[score_phase, scan_phase] * 2)
    return Workload(name="graph-analytics", processes=[spec] * n_processes)


# ----------------------------------------------------------------------
# 4. evaluate under the three policies
# ----------------------------------------------------------------------
def main() -> None:
    profile = profile_it()
    print()
    reports = run_policies(lambda: build_workload(profile))
    base = reports["Linux Default"]
    print(f"{'policy':<16} {'GFLOPS':>8} {'energy (J)':>11}")
    print(f"{'Linux Default':<16} {base.gflops:8.2f} {base.system_j:11.1f}")
    for name, cmp in compare_all("graph", reports).items():
        r = reports[name]
        print(
            f"{name:<16} {r.gflops:8.2f} {r.system_j:11.1f}   "
            f"({cmp.speedup:.2f}x, energy {cmp.system_energy_decrease:+.0%})"
        )
    print()
    print(
        "24 score phases of ~2.5 MB collectively overflow the 15 MB LLC — "
        "the §3.4 conditions hold, so the annotated application benefits "
        "from demand-aware scheduling just like the paper's workloads."
    )


if __name__ == "__main__":
    main()
