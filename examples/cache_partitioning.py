#!/usr/bin/env python
"""The paper's §6 future-work extension: cache partitioning.

The published RDA system manages one shared LLC.  Its §6 sketches an
extension: give streaming applications (whose working sets exceed the LLC)
a small dedicated partition — "it would fetch most data from main memory
regardless" — and let the instrumented, reusable workloads share the rest
without interference.

This example co-runs cache-blocked dgemm processes with 20 MB streaming
scans under three configurations and prints what each costs:

1. shared LLC, default scheduler  — scans wash the dgemm blocks out;
2. shared LLC, RDA: Strict       — the published system; a declared demand
   larger than the cache serializes the machine (the pathology §6 calls
   out);
3. partitioned LLC + partition-aware RDA — scans penned into 1/8 of the
   cache, dgemm protected in the remaining 7/8.

Run:  python examples/cache_partitioning.py
"""

from repro import StrictPolicy, run_workload
from repro.core.partitioning import partitioned_kernel
from repro.core.progress_period import ReuseLevel
from repro.perf.stat import PerfStat
from repro.workloads.base import Phase, PpSpec, ProcessSpec, Workload
from repro.workloads.blas import kernel_process

MB = 1_000_000


def scan_process() -> ProcessSpec:
    wss = 20 * MB  # larger than the whole 15.7 MB LLC
    return ProcessSpec(
        name="scan",
        program=[
            Phase(
                name="scan",
                instructions=30_000_000,
                flops_per_instr=0.1,
                mem_refs_per_instr=0.5,
                llc_refs_per_memref=0.125,
                wss_bytes=wss,
                reuse=0.05,
                pp=PpSpec(demand_bytes=wss, reuse=ReuseLevel.LOW),
                memory_overlap=0.85,
            )
        ],
    )


def mixed_workload() -> Workload:
    procs = []
    for i in range(12):
        procs.append(kernel_process("dgemm"))
        if i % 2 == 0:
            procs.append(scan_process())
    return Workload(name="dgemm+scans", processes=procs)


def main() -> None:
    rows = {}
    rows["shared LLC / default"] = run_workload(mixed_workload(), None)
    rows["shared LLC / RDA strict"] = run_workload(mixed_workload(), StrictPolicy())

    kernel = partitioned_kernel(policy=StrictPolicy())
    stat = PerfStat(kernel)
    kernel.launch(mixed_workload())
    stat.start()
    kernel.run()
    rows["partitioned / RDA strict"] = stat.stop()
    print(f"streams bypassed admission: {kernel.extension.bypassed}")
    print()

    print(f"{'configuration':<26} {'GFLOPS':>8} {'wall (ms)':>10} {'energy (J)':>11}")
    for name, r in rows.items():
        print(f"{name:<26} {r.gflops:8.2f} {r.wall_s * 1e3:10.1f} {r.system_j:11.1f}")

    part = rows["partitioned / RDA strict"]
    default = rows["shared LLC / default"]
    print()
    print(
        f"partitioning saves {1 - part.system_j / default.system_j:.0%} energy vs the "
        f"shared default and avoids the strict policy's serialization behind "
        f"oversized streaming demands."
    )


if __name__ == "__main__":
    main()
