#!/usr/bin/env python
"""Frequency tuning vs demand-aware scheduling.

The paper's introduction cites an experimental survey (Kambadur & Kim,
OOPSLA'14) finding that "effective parallelization can lead to better
energy savings compared to Linux's frequency tuning algorithms".  This
example puts that claim on the simulated machine: water_nsquared under

* the stock scheduler at full clock,
* the stock scheduler with the ondemand and powersave cpufreq governors,
* the demand-aware scheduler (RDA: Strict) at full clock, and
* — for completeness — RDA *plus* ondemand, which combines both savings:
  when RDA idles cores by design, the governor can clock the rest down.

Run:  python examples/dvfs_vs_scheduling.py
"""

from repro import StrictPolicy
from repro.core.rda import RdaScheduler
from repro.energy.dvfs import OndemandGovernor, PerformanceGovernor, PowersaveGovernor
from repro.experiments.charts import bar_chart
from repro.perf.stat import PerfStat
from repro.sim import Kernel
from repro.workloads.splash2 import water_nsquared_workload


def run(policy=None, governor=None):
    scheduler = RdaScheduler(policy=policy) if policy else None
    kernel = Kernel(extension=scheduler, governor=governor)
    stat = PerfStat(kernel)
    kernel.launch(water_nsquared_workload())
    stat.start()
    kernel.run()
    return stat.stop()


def main() -> None:
    rows = {
        "default @ full clock": run(),
        "default + ondemand": run(governor=OndemandGovernor()),
        "default + powersave": run(governor=PowersaveGovernor(min_scale=0.5)),
        "RDA strict @ full clock": run(policy=StrictPolicy()),
        "RDA strict + ondemand": run(
            policy=StrictPolicy(), governor=OndemandGovernor()
        ),
    }

    print(bar_chart(
        {k: v.system_j for k, v in rows.items()},
        title="water_nsquared: system energy (lower is better)",
        unit="J",
    ))
    print()
    print(bar_chart(
        {k: v.gflops for k, v in rows.items()},
        title="water_nsquared: performance (higher is better)",
        unit="GFLOPS",
    ))
    print()
    base = rows["default @ full clock"]
    rda = rows["RDA strict @ full clock"]
    ond = rows["default + ondemand"]
    print(
        f"frequency tuning saved {1 - ond.system_j / base.system_j:.0%} energy; "
        f"demand-aware scheduling saved {1 - rda.system_j / base.system_j:.0%} "
        f"while also running {rda.gflops / base.gflops:.2f}x faster."
    )


if __name__ == "__main__":
    main()
