#!/usr/bin/env python
"""Compare scheduling policies on the paper's headline workloads.

Runs water_nsquared (the best case for RDA: Strict), raytrace (the paper's
maximum speedup) and water_spatial (the case where demand-aware scheduling
*hurts*) under the Linux-default, strict and compromise policies, and
prints the figure 7-10 metrics plus the §4.2-style comparison lines.

Run:  python examples/policy_comparison.py
"""

from repro import run_policies, workload_by_name
from repro.experiments.metrics import compare_all
from repro.experiments.report import (
    render_figure7,
    render_figure8,
    render_figure9,
    render_figure10,
)

WORKLOADS = ("Water_nsq", "Raytrace", "Water_sp")


def main() -> None:
    sweep = {
        name: run_policies(lambda n=name: workload_by_name(n))
        for name in WORKLOADS
    }

    for renderer in (render_figure7, render_figure8, render_figure9, render_figure10):
        print(renderer(sweep))
        print()

    print("Headline comparisons (vs Linux default):")
    for workload, reports in sweep.items():
        for cmp in compare_all(workload, reports).values():
            print("  " + cmp.describe())

    strict_nsq = compare_all("Water_nsq", sweep["Water_nsq"])["RDA: Strict"]
    print()
    print(
        f"water_nsquared under RDA: Strict consumed "
        f"{strict_nsq.system_energy_decrease:.0%} less system energy than the "
        f"default scheduler (the paper reports its maximum decrease, 48%, on "
        f"this workload)."
    )


if __name__ == "__main__":
    main()
