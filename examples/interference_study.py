#!/usr/bin/env python
"""Reproduce the paper's §4.4 interference study (figure 13) and show how
demand-aware scheduling exploits its conclusion.

The paper observes that for water_nsquared's largest progress period at the
8000-molecule input, the shared LLC "can hold all data from 6 processes,
but not twelve", so "co-scheduling the processes in groups of six will
attain a higher performance than when running all instances together".

Part 1 measures the interference grid (the figure itself, default policy).
Part 2 runs the 12-instance case under RDA: Strict, which discovers the
groups-of-six schedule automatically from the declared demands.

Run:  python examples/interference_study.py
"""

from repro import StrictPolicy, run_workload
from repro.experiments.figures import FIG13_INPUTS, FIG13_INSTANCES, figure13_interference
from repro.experiments.report import render_figure13
from repro.workloads.splash2.water_nsquared import interference_workload, wss_of_molecules


def main() -> None:
    print("Part 1: the interference grid (Linux default policy)")
    grid = figure13_interference()
    print(render_figure13(grid))
    print()

    n_mol = 8000
    wss_mb = wss_of_molecules(n_mol) / 1e6
    llc_mb = 15360 * 1024 / 1e6
    fits = int(llc_mb // wss_mb)
    print(f"Part 2: each instance holds {wss_mb:.2f} MB; the {llc_mb:.1f} MB "
          f"LLC holds {fits} instances at once.")

    default_12 = grid[n_mol][12]
    strict_12 = run_workload(
        interference_workload(n_mol, 12), StrictPolicy()
    ).gflops
    print(f"  12 instances, default policy:     {default_12:6.2f} GFLOPS")
    print(f"  12 instances, RDA: Strict:        {strict_12:6.2f} GFLOPS")
    print(f"  -> the strict policy recovers {strict_12 / default_12:.2f}x by "
          f"running the instances in cache-sized groups, exactly the"
          f" co-scheduling the paper derives from this figure.")


if __name__ == "__main__":
    main()
