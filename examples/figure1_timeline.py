#!/usr/bin/env python
"""Render the paper's figure 1 from an actual simulation.

Figure 1 is a hand-drawn comparison of two cache-hungry processes under a
round-robin policy (constant context switching, each switch reloading data
from memory) versus demand-aware scheduling (conflicting durations run one
after another).  Here we run that exact scenario — two processes, each
wanting two thirds of the LLC, on one CPU — and print the *measured*
timelines using the kernel tracer.

Run:  python examples/figure1_timeline.py
"""

from dataclasses import replace

from repro import StrictPolicy
from repro.config import default_machine_config
from repro.core.progress_period import ReuseLevel
from repro.core.rda import RdaScheduler
from repro.perf.stat import PerfStat
from repro.sim import Kernel, KernelTracer, render_timeline
from repro.workloads.base import Phase, PpSpec, ProcessSpec, Workload


def scenario() -> tuple[Workload, "MachineConfig"]:
    base = default_machine_config()
    one_core = replace(base, cpu=replace(base.cpu, n_cores=1))
    wss = int(base.llc_capacity * 0.66)
    phase = Phase(
        name="hot-loop",
        instructions=30_000_000,
        flops_per_instr=1.0,
        mem_refs_per_instr=0.4,
        llc_refs_per_memref=0.1,
        wss_bytes=wss,
        reuse=0.92,
        pp=PpSpec(demand_bytes=wss, reuse=ReuseLevel.HIGH),
    )
    proc = ProcessSpec(name="hungry", program=[phase] * 3)
    return Workload(name="fig1", processes=[proc] * 2), one_core


def run(policy) -> None:
    workload, config = scenario()
    scheduler = RdaScheduler(policy=policy, config=config) if policy else None
    kernel = Kernel(config=config, extension=scheduler)
    tracer = KernelTracer()
    kernel.tracer = tracer
    stat = PerfStat(kernel)
    kernel.launch(workload)
    stat.start()
    kernel.run()
    report = stat.stop()
    name = policy.name if policy else "Round robin (Linux default)"
    print(f"== {name} ==")
    print(render_timeline(tracer, kernel, width=68))
    print(
        f"wall {report.wall_s * 1e3:6.1f} ms   LLC misses {report.llc_misses:9.3e}   "
        f"context switches {int(report.context_switches)}"
    )
    print()


def main() -> None:
    print("Two processes (A, B), each needing 2/3 of the LLC, on one CPU.\n")
    run(None)
    run(StrictPolicy())
    print(
        "Round robin interleaves A and B, reloading the cache at every "
        "switch;\nthe demand-aware schedule runs each process's conflicting "
        "periods back\nto back and finishes sooner with a fraction of the "
        "memory traffic —\nexactly the behaviour figure 1 illustrates."
    )


if __name__ == "__main__":
    main()
