"""Demand prediction and elastic re-admission, end to end.

The prediction subsystem (:mod:`repro.predict`) closes the loop on
clients whose declared demands are wrong: the estimator learns the true
working set from ``pp_end`` observations, new begins are admitted on the
learned demand, and sustained mispredictions elastically resize running
reservations.  These tests drive the full wire path — protocol parse,
journal persistence, live server — under both kinds of liar.
"""

import asyncio
from dataclasses import replace

import pytest

from repro.config import default_machine_config
from repro.core.api import MB
from repro.core.policy import StrictPolicy
from repro.core.progress_period import ResourceKind
from repro.errors import ProtocolError
from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.serve.journal import AdmissionJournal, replay_journal
from repro.serve.server import AdmissionServer, ServeConfig

CAPACITY_MB = 4.0
LABEL = "bench/dgemm"
HALF_MB = MB(1) // 2


def tiny_machine(capacity_mb: float = CAPACITY_MB):
    machine = default_machine_config()
    quantum = machine.llc.line_bytes * machine.llc.associativity
    capacity = max(quantum, int(capacity_mb * 1024 * 1024) // quantum * quantum)
    return replace(machine, llc=replace(machine.llc, capacity_bytes=capacity))


def predict_cfg(**kwargs) -> ServeConfig:
    defaults = dict(
        policy=StrictPolicy(),
        machine=tiny_machine(),
        sanitize=True,
        predict=True,
        predict_min_samples=3,
        predict_hysteresis=2,
    )
    defaults.update(kwargs)
    return ServeConfig(**defaults)


def usage(service) -> int:
    return service.resources.state(ResourceKind.LLC).usage_bytes


async def boot(tmp_path, cfg):
    server = AdmissionServer(cfg)
    sock = str(tmp_path / "serve.sock")
    await server.start(unix_path=sock)
    return server, sock


async def lying_period(client, declared, observed, label=LABEL):
    """One begin/end cycle whose declaration is off by design."""
    reply = await client.pp_begin(declared, label=label)
    await client.pp_end(reply["pp_id"], observed_bytes=observed)


class TestProtocolObservedBytes:
    def frame(self, **fields):
        base = {"v": protocol.PROTOCOL_VERSION, "id": 1, "op": "pp_end",
                "pp_id": 3}
        base.update(fields)
        return base

    def test_observed_bytes_parsed(self):
        request = protocol.parse_request(self.frame(observed_bytes=4096))
        assert request.observed_bytes == 4096

    def test_absent_observed_bytes_is_none(self):
        assert protocol.parse_request(self.frame()).observed_bytes is None

    def test_zero_observed_bytes_allowed(self):
        assert protocol.parse_request(
            self.frame(observed_bytes=0)
        ).observed_bytes == 0

    def test_negative_observed_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.parse_request(self.frame(observed_bytes=-1))

    def test_non_integer_observed_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.parse_request(self.frame(observed_bytes="lots"))


class TestJournalLearnedState:
    def test_obs_records_replay(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        journal = AdmissionJournal(path)
        journal.record_obs("alice", LABEL, 2048, 1024)
        journal.record_obs("alice", LABEL, 4096, 2048)
        journal.close()
        state = replay_journal(path)
        assert state.obs == [
            ("alice", LABEL, 2048, 1024),
            ("alice", LABEL, 4096, 2048),
        ]

    def test_obs_survive_compaction(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        journal = AdmissionJournal(path)
        journal.record_obs("alice", LABEL, 2048, 1024)
        journal.compact()
        journal.close()
        assert replay_journal(path).obs == [("alice", LABEL, 2048, 1024)]

    def test_obs_ring_is_bounded(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        journal = AdmissionJournal(path, obs_history=4)
        for i in range(10):
            journal.record_obs("alice", LABEL, 1000 + i, 500 + i)
        journal.compact()
        journal.close()
        state = replay_journal(path)
        # only the newest obs_history samples survive compaction
        assert [y for _, _, _, y in state.obs] == [506, 507, 508, 509]

    def test_resize_replay_rewrites_the_open_demand(self, tmp_path):
        from tests.serve.test_journal import record

        path = str(tmp_path / "j.ndjson")
        journal = AdmissionJournal(path)
        journal.record_admit(record(1))
        assert journal.record_resize(1, 99) is True
        journal.close()
        state = replay_journal(path)
        assert state.open[1].demand_bytes == 99

    def test_resize_of_unjournaled_period_writes_nothing(self, tmp_path):
        journal = AdmissionJournal(str(tmp_path / "j.ndjson"))
        assert journal.record_resize(42, 99) is False
        assert journal.events_total == 0


class TestOverdeclaringClient:
    def test_elastic_shrink_then_predicted_admission(self, tmp_path):
        async def scenario():
            server, sock = await boot(tmp_path, predict_cfg())
            service = server.service
            client = await ServeClient.connect(unix_path=sock)
            await client.hello("alice")

            # a long-running period admitted on the inflated declaration
            long_running = await client.pp_begin(MB(2), label=LABEL)
            assert usage(service) == MB(2)

            # two quick over-declared periods (same connection — a second
            # hello would take over alice's lease) trip the detector
            # streak: hysteresis 2 -> the second close shrinks the long
            # runner onto its observed working set (floored at declared/4)
            await lying_period(client, declared=MB(1), observed=HALF_MB)
            assert service.c_mispredicts_over.value == 1
            await lying_period(client, declared=MB(1), observed=HALF_MB)
            assert service.c_elastic_shrinks.value == 1
            assert usage(service) == HALF_MB

            # a third sample reaches min_samples: the next begin is
            # admitted on the learned demand, not the declared one
            await lying_period(client, declared=MB(1), observed=HALF_MB)
            predicted = await client.pp_begin(MB(1), label=LABEL)
            assert service.c_predicted_admits.value == 1
            assert usage(service) == HALF_MB + HALF_MB

            # the learned estimate also feeds hello placement hints; the
            # reattaching hello resumes alice's record (and supersedes the
            # first connection), so the open periods stay addressable
            fresh = await ServeClient.connect(unix_path=sock)
            hello = await fresh.hello("alice")
            assert hello["predicted_demand_bytes"] == HALF_MB

            await fresh.pp_end(predicted["pp_id"], observed_bytes=HALF_MB)
            await fresh.pp_end(long_running["pp_id"], observed_bytes=HALF_MB)
            assert usage(service) == 0
            assert service.sanitizer.ok, service.sanitizer.summary()
            assert service.h_rel_error.count > 0

            for c in (client, fresh):
                await c.close()
            server.request_drain()
            await asyncio.wait_for(server.run_until_drained(), 10.0)

        asyncio.run(scenario())

    def test_shrink_admits_a_parked_waiter(self, tmp_path):
        async def scenario():
            server, sock = await boot(tmp_path, predict_cfg())
            service = server.service
            client = await ServeClient.connect(unix_path=sock)
            await client.hello("alice")

            # 2 MB running on a (just under) 4 MB LLC; a 3 MB begin parks
            long_running = await client.pp_begin(MB(2), label=LABEL)
            waiter = await ServeClient.connect(unix_path=sock)
            await waiter.hello("bob")
            parked = asyncio.ensure_future(
                waiter.pp_begin(MB(3), label="bob/fft")
            )
            await asyncio.sleep(0.05)
            assert not parked.done()

            # sustained over-prediction shrinks the runner onto the
            # observed working set; the freed space admits the waiter
            await lying_period(client, declared=MB(1), observed=HALF_MB)
            await lying_period(client, declared=MB(1), observed=HALF_MB)
            admitted = await asyncio.wait_for(parked, 5.0)
            assert admitted["admitted"] is True
            assert service.c_elastic_shrinks.value >= 1

            await waiter.pp_end(admitted["pp_id"])
            await client.pp_end(long_running["pp_id"], observed_bytes=HALF_MB)
            assert usage(service) == 0
            assert service.sanitizer.ok, service.sanitizer.summary()

            for c in (client, waiter):
                await c.close()
            server.request_drain()
            await asyncio.wait_for(server.run_until_drained(), 10.0)

        asyncio.run(scenario())


class TestUnderdeclaringClient:
    def test_elastic_grow_within_the_policy_bound(self, tmp_path):
        async def scenario():
            server, sock = await boot(tmp_path, predict_cfg())
            service = server.service
            client = await ServeClient.connect(unix_path=sock)
            await client.hello("alice")

            # understated long runner: declared 1 MB, really touches 3 MB
            long_running = await client.pp_begin(MB(1), label=LABEL)

            await lying_period(client, declared=MB(1), observed=MB(3))
            assert service.c_mispredicts_under.value == 1
            await lying_period(client, declared=MB(1), observed=MB(3))

            # hysteresis hit: the runner's reservation grows onto the
            # observed demand (3 MB fits the strict 4 MB bound)
            assert service.c_elastic_grows.value == 1
            assert usage(service) == MB(3)

            await client.pp_end(long_running["pp_id"], observed_bytes=MB(3))
            assert usage(service) == 0
            assert service.sanitizer.ok, service.sanitizer.summary()

            await client.close()
            server.request_drain()
            await asyncio.wait_for(server.run_until_drained(), 10.0)

        asyncio.run(scenario())


class TestPredictOff:
    def test_observed_bytes_accepted_and_ignored(self, tmp_path):
        async def scenario():
            cfg = ServeConfig(
                policy=StrictPolicy(), machine=tiny_machine(), sanitize=True
            )
            server, sock = await boot(tmp_path, cfg)
            service = server.service
            assert service.estimator is None

            client = await ServeClient.connect(unix_path=sock)
            await client.hello("alice")
            reply = await client.pp_begin(MB(2), label=LABEL)
            assert usage(service) == MB(2)
            await client.pp_end(reply["pp_id"], observed_bytes=MB(1))
            assert usage(service) == 0

            # no predict instruments are registered when the feature is off
            stats = await client.stats()
            assert "predicted_admits_total" not in stats["counters"]
            assert "prediction_rel_error" not in stats["histograms"]
            assert "predict" not in service.snapshot()
            assert service.sanitizer.ok, service.sanitizer.summary()

            await client.close()
            server.request_drain()
            await asyncio.wait_for(server.run_until_drained(), 10.0)

        asyncio.run(scenario())


class TestLearnedStateSurvivesRestart:
    def test_estimator_is_rebuilt_from_the_journal(self, tmp_path):
        async def scenario():
            cfg = predict_cfg(
                journal_path=str(tmp_path / "admission.ndjson"),
                lease_ttl_s=10.0,
            )
            server, sock = await boot(tmp_path, cfg)
            client = await ServeClient.connect(unix_path=sock)
            await client.hello("alice")
            for _ in range(3):
                await lying_period(client, declared=MB(2), observed=MB(1))
            await server.abort()  # kill -9, in effigy
            await client.close()

            reborn = AdmissionServer(predict_cfg(
                journal_path=str(tmp_path / "admission.ndjson"),
                lease_ttl_s=10.0,
            ))
            service = reborn.service
            # the learned samples were journaled and re-fed on boot
            assert service.estimator.sample_count(("alice", LABEL)) == 3
            await reborn.start(unix_path=sock)

            # the very first begin after the restart is already predicted
            client2 = await ServeClient.connect(unix_path=sock)
            await client2.hello("alice")
            reply = await client2.pp_begin(MB(2), label=LABEL)
            assert service.c_predicted_admits.value == 1
            assert usage(service) == MB(1)

            await client2.pp_end(reply["pp_id"], observed_bytes=MB(1))
            assert usage(service) == 0
            assert service.sanitizer.ok, service.sanitizer.summary()

            await client2.close()
            reborn.request_drain()
            await asyncio.wait_for(reborn.run_until_drained(), 10.0)

        asyncio.run(scenario())

    def test_resized_reservation_survives_a_crash(self, tmp_path):
        async def scenario():
            cfg = predict_cfg(
                journal_path=str(tmp_path / "admission.ndjson"),
                lease_ttl_s=10.0,
            )
            server, sock = await boot(tmp_path, cfg)
            client = await ServeClient.connect(unix_path=sock)
            await client.hello("alice")
            long_running = await client.pp_begin(MB(2), label=LABEL)

            await lying_period(client, declared=MB(1), observed=HALF_MB)
            await lying_period(client, declared=MB(1), observed=HALF_MB)
            assert usage(server.service) == HALF_MB  # shrunk in place

            await server.abort()
            await client.close()

            reborn = AdmissionServer(predict_cfg(
                journal_path=str(tmp_path / "admission.ndjson"),
                lease_ttl_s=10.0,
            ))
            service = reborn.service
            # replay restores the post-resize charge, not the admit-time one
            assert service.replayed_periods == 1
            assert usage(service) == HALF_MB
            period = service.monitor.registry.get(long_running["pp_id"])
            assert period.request.demand_bytes == HALF_MB
            assert service.sanitizer.ok, service.sanitizer.summary()

        asyncio.run(scenario())
