"""Chaos acceptance: kill -9 a real journaled server under mangled load.

The campaign boots ``python -m repro serve`` as a subprocess, drives it
with resilient clients through the fault-injecting proxy, SIGKILLs and
restarts it mid-load, and then asserts the recovery contract from the
ISSUE: hundreds of injected faults, a clean online sanitizer, and not one
byte of leaked capacity.
"""

import asyncio

from repro.cli import build_parser
from repro.serve.chaos import ChaosConfig, ChaosProxy, run_chaos

#: seeded and deliberately vicious: roughly one frame in five is mangled
CAMPAIGN = ChaosConfig(
    seed=1701,
    duration_s=6.5,
    clients=6,
    kills=2,
    kill_interval_s=1.2,
    drop_rate=0.02,
    delay_rate=0.18,
    delay_max_s=0.005,
    duplicate_rate=0.02,
    truncate_rate=0.004,
    sever_rate=0.003,
    lease_ttl_s=1.0,
    lease_check_s=0.1,
    park_timeout_s=2.0,
)


class TestChaosCampaign:
    def test_kill_restart_campaign_recovers_with_zero_leakage(self, tmp_path):
        report = asyncio.run(run_chaos(CAMPAIGN, str(tmp_path)))
        detail = "\n".join(
            [report.describe(), *report.server_output[-10:]]
        )

        # the campaign actually hurt: kills happened, faults landed in
        # volume (the exact count tracks traffic throughput, which varies
        # with machine speed — assert the order of magnitude, not a margin)
        assert report.kills == CAMPAIGN.kills, detail
        assert report.faults_total >= 100, detail
        assert report.load.reconnects > 0, detail
        assert report.replayed_periods_last_boot >= 0, detail

        # ... and the service recovered completely
        assert report.settled, detail
        assert report.final_open_periods == 0, detail
        assert report.final_usage_bytes == 0, detail
        assert report.final_waiting == 0, detail
        assert report.sanitizer_ok is True, detail
        assert report.server_exit_code == 0, detail
        assert report.ok, detail

        # progress was made despite the abuse
        assert report.load.admitted > 0, detail

        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["faults_total"] == report.faults_total


class TestChaosProxyFaults:
    def test_seeded_fault_schedule_is_deterministic(self, tmp_path):
        # the proxy's RNG is seeded: same seed → same fault decisions,
        # which is what makes a failing campaign replayable
        import random

        cfg = ChaosConfig(seed=5, drop_rate=0.1, delay_rate=0.0,
                          duplicate_rate=0.1, truncate_rate=0.0,
                          sever_rate=0.0)

        def schedule(seed, n=1000):
            rng = random.Random(seed)
            out = []
            for _ in range(n):
                r = rng.random()
                if r < cfg.drop_rate:
                    out.append("drop")
                elif r < cfg.drop_rate + cfg.duplicate_rate:
                    out.append("dup")
                else:
                    out.append("fwd")
            return out

        assert schedule(5) == schedule(5)
        assert schedule(5) != schedule(6)

    def test_proxy_forwards_clean_traffic_verbatim(self, tmp_path):
        async def scenario():
            backend_path = str(tmp_path / "backend.sock")
            front_path = str(tmp_path / "front.sock")

            async def echo(reader, writer):
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    writer.write(line)
                    await writer.drain()
                writer.close()

            backend = await asyncio.start_unix_server(echo, path=backend_path)
            cfg = ChaosConfig(drop_rate=0.0, delay_rate=0.0,
                              duplicate_rate=0.0, truncate_rate=0.0,
                              sever_rate=0.0)
            proxy = ChaosProxy(front_path, backend_path, cfg)
            await proxy.start()

            reader, writer = await asyncio.open_unix_connection(front_path)
            for i in range(20):
                writer.write(f"ping {i}\n".encode())
                await writer.drain()
                assert await reader.readline() == f"ping {i}\n".encode()
            assert proxy.faults_total == 0
            assert proxy.connections == 1

            writer.close()
            await proxy.close()
            backend.close()
            await backend.wait_closed()

        asyncio.run(scenario())


class TestChaosCli:
    def test_chaos_flags_parse(self):
        args = build_parser().parse_args(
            ["chaos", "--seed", "9", "--kills", "3", "--duration", "4",
             "--kill-interval", "0.7", "--clients", "5", "--json"]
        )
        assert args.command == "chaos"
        assert (args.seed, args.kills, args.clients) == (9, 3, 5)
        assert args.duration == 4.0 and args.kill_interval == 0.7
        assert args.json is True

    def test_serve_journal_and_lease_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--journal", "/tmp/j.ndjson", "--journal-fsync",
             "0.05", "--lease-ttl", "2.5", "--lease-check", "0.1"]
        )
        assert args.journal == "/tmp/j.ndjson"
        assert args.journal_fsync == 0.05
        assert args.lease_ttl == 2.5 and args.lease_check == 0.1

    def test_loadgen_resilient_flag_parses(self):
        args = build_parser().parse_args(
            ["loadgen", "--socket", "x.sock", "--resilient"]
        )
        assert args.resilient is True

    def test_supervise_and_rolling_flags_parse(self):
        args = build_parser().parse_args(
            ["chaos", "--cluster", "--supervise", "--shards", "2"]
        )
        assert args.cluster is True and args.supervise is True
        assert args.shards == 2
        args = build_parser().parse_args(
            ["chaos", "--rolling", "--rolling-grace", "1.5"]
        )
        assert args.rolling is True and args.rolling_grace == 1.5

    def test_serve_lifecycle_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--shards", "3", "--socket", "s.sock",
             "--rebalance-fragmentation", "0.4", "--no-supervise"]
        )
        assert args.rebalance_fragmentation == 0.4
        assert args.no_supervise is True
