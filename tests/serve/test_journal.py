"""Crash-safe admission journal: replay, compaction, corruption handling."""

import json

import pytest

from repro.errors import JournalError
from repro.serve.journal import (
    JOURNAL_VERSION,
    AdmissionJournal,
    AdmitRecord,
    replay_journal,
)


def record(pp_id: int, client: str = "c1", token: str = None) -> AdmitRecord:
    return AdmitRecord(
        pp_id=pp_id,
        client=client,
        resource="llc",
        demand_bytes=1024 * pp_id,
        reuse="high",
        sharing_key=None,
        label=f"pp{pp_id}",
        forced=False,
        token=token or f"tok{pp_id}",
    )


class TestAdmitRecord:
    def test_frame_round_trip(self):
        rec = record(7, token="abc")
        assert AdmitRecord.from_frame(rec.to_frame()) == rec

    def test_malformed_frame_raises(self):
        with pytest.raises(JournalError):
            AdmitRecord.from_frame({"k": "admit", "client": "x"})


class TestReplay:
    def test_missing_file_is_empty_state(self, tmp_path):
        state = replay_journal(str(tmp_path / "nope.ndjson"))
        assert state.open == {}
        assert state.max_pp_id == 0
        assert state.events_replayed == 0

    def test_admit_then_close_balances_out(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        journal = AdmissionJournal(path)
        journal.record_admit(record(1))
        journal.record_admit(record(2))
        assert journal.record_close(1) is True
        journal.close()

        state = replay_journal(path)
        assert set(state.open) == {2}
        assert state.open[2].demand_bytes == 2048
        assert state.max_pp_id == 2

    def test_close_of_unjournaled_period_writes_nothing(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        journal = AdmissionJournal(path)
        assert journal.record_close(99) is False
        assert journal.events_total == 0

    def test_admit_is_idempotent_per_pp_id(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        journal = AdmissionJournal(path)
        journal.record_admit(record(5))
        journal.record_admit(record(5))  # the re-issued begin, deduped
        assert journal.events_total == 1
        journal.close()
        assert len(replay_journal(path).open) == 1

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        journal = AdmissionJournal(path)
        journal.record_admit(record(1))
        journal.record_admit(record(2))
        journal.abandon()  # crash: no clean close
        with open(path, "ab") as fh:
            fh.write(b'{"k":"admit","pp":3,"cli')  # power cut mid-append

        state = replay_journal(path)
        assert set(state.open) == {1, 2}

    def test_corruption_before_final_line_raises(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        good = json.dumps(record(1).to_frame()).encode()
        with open(path, "wb") as fh:
            fh.write(b"garbage\n" + good + b"\n")
        with pytest.raises(JournalError, match="line 1"):
            replay_journal(path)

    def test_unknown_record_kind_raises(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        with open(path, "wb") as fh:
            fh.write(b'{"k":"mystery"}\n')
        with pytest.raises(JournalError, match="mystery"):
            replay_journal(path)

    def test_close_for_unknown_pp_is_ignored(self, tmp_path):
        # its admit died in the previous incarnation's torn tail
        path = str(tmp_path / "j.ndjson")
        with open(path, "wb") as fh:
            fh.write(b'{"k":"close","pp":9}\n')
        state = replay_journal(path)
        assert state.open == {}
        assert state.max_pp_id == 9  # still advances the id high-water


class TestCompaction:
    def test_log_never_grows_with_traffic(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        journal = AdmissionJournal(path, compact_every=10)
        for i in range(1, 101):
            journal.record_admit(record(i))
            journal.record_close(i)
        journal.close()
        with open(path, "rb") as fh:
            lines = [ln for ln in fh.read().split(b"\n") if ln]
        # everything closed: the compacted log is a single empty snapshot
        assert len(lines) <= 10
        assert journal.compactions_total >= 9
        assert replay_journal(path).open == {}

    def test_snapshot_preserves_open_set(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        journal = AdmissionJournal(path)
        journal.record_admit(record(1))
        journal.record_admit(record(2))
        journal.compact()
        journal.record_close(1)
        journal.close()

        state = replay_journal(path)
        assert set(state.open) == {2}
        first = json.loads(open(path, "rb").readline())
        assert first["k"] == "snap" and first["v"] == JOURNAL_VERSION

    def test_future_snapshot_version_rejected(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        with open(path, "wb") as fh:
            fh.write(b'{"k":"snap","v":999,"open":[]}\n')
        with pytest.raises(JournalError, match="999"):
            replay_journal(path)

    def test_recover_compacts_on_boot(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        journal = AdmissionJournal(path)
        for i in range(1, 6):
            journal.record_admit(record(i))
        journal.record_close(3)
        journal.abandon()

        reborn = AdmissionJournal(path)
        state = reborn.recover()
        assert set(state.open) == {1, 2, 4, 5}
        assert set(reborn.open) == {1, 2, 4, 5}
        # recovery rewrote the log as one snapshot line
        with open(path, "rb") as fh:
            lines = [ln for ln in fh.read().split(b"\n") if ln]
        assert len(lines) == 1
        reborn.close()


class TestCrashDiscipline:
    def test_abandon_poisons_the_append_path(self, tmp_path):
        # a dying process must not journal its own teardown
        path = str(tmp_path / "j.ndjson")
        journal = AdmissionJournal(path)
        journal.record_admit(record(1))
        journal.abandon()
        journal.record_close(1)  # e.g. cleanup of a parked handler
        assert set(replay_journal(path).open) == {1}

    def test_second_live_incarnation_is_locked_out(self, tmp_path):
        # restart handoff discipline: while one incarnation holds the
        # journal, a second one must refuse to append to the same file
        path = str(tmp_path / "j.ndjson")
        journal = AdmissionJournal(path)
        journal.record_admit(record(1))
        usurper = AdmissionJournal(path)
        with pytest.raises(JournalError, match="locked"):
            usurper.record_admit(record(2))
        journal.close()
        # ... and the lock dies with the holder's file handle
        successor = AdmissionJournal(path)
        successor.record_admit(record(2))
        assert set(replay_journal(path).open) == {1, 2}
        successor.close()

    def test_abandon_releases_the_lock(self, tmp_path):
        # SIGKILL analogue: an abandoned handle must not lock out the
        # restarted incarnation
        path = str(tmp_path / "j.ndjson")
        journal = AdmissionJournal(path)
        journal.record_admit(record(1))
        journal.abandon()
        reborn = AdmissionJournal(path)
        reborn.record_admit(record(2))
        assert set(replay_journal(path).open) == {1, 2}
        reborn.close()

    def test_fsync_batching_keeps_every_flushed_record(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        journal = AdmissionJournal(path, fsync_interval_s=60.0)
        journal.record_admit(record(1))
        journal.record_admit(record(2))
        # records are flushed per append even when fsync is batched
        assert len(replay_journal(path).open) == 2
        journal.sync()
        assert journal.syncs_total >= 1
        journal.close()


class TestSnapshotCrashSafety:
    def test_torn_snapshot_is_corruption_not_a_torn_tail(self, tmp_path):
        # a torn *append* at the tail is tolerated, but snapshots only
        # reach the log through fsync + atomic rename — a partial one can
        # only mean the file itself was damaged
        path = str(tmp_path / "j.ndjson")
        journal = AdmissionJournal(path)
        journal.record_admit(record(1))
        journal.record_admit(record(2))
        journal.compact()
        journal.close()
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])  # tear the snapshot line
        with pytest.raises(JournalError, match="partial snapshot"):
            replay_journal(path)

    def test_torn_tail_after_a_snapshot_is_still_tolerated(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        journal = AdmissionJournal(path)
        journal.record_admit(record(1))
        journal.compact()
        journal.record_admit(record(2))
        journal.close()
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[:-9])  # tear the trailing admit mid-line
        state = replay_journal(path)
        assert set(state.open) == {1}

    def test_crash_inside_compaction_keeps_the_old_log(self, tmp_path, monkeypatch):
        path = str(tmp_path / "j.ndjson")
        journal = AdmissionJournal(path)
        journal.record_admit(record(1))
        journal.record_admit(record(2))

        import os as os_mod

        def boom(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr("repro.serve.journal.os.replace", boom)
        with pytest.raises(OSError):
            journal.compact()
        monkeypatch.undo()
        journal.abandon()

        # the old (pre-compaction) log is intact and replayable, and the
        # stranded temp snapshot is swept on the next recover
        assert any(
            name.startswith("j.ndjson.tmp.") for name in os_mod.listdir(tmp_path)
        )
        reborn = AdmissionJournal(path)
        state = reborn.recover()
        assert set(state.open) == {1, 2}
        assert not any(
            name.startswith("j.ndjson.tmp.") for name in os_mod.listdir(tmp_path)
        )
        reborn.close()

    def test_recover_sweeps_stale_temp_snapshots(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        # a previous incarnation (different pid) died mid-compaction
        stale = tmp_path / "j.ndjson.tmp.99999"
        stale.write_bytes(b'{"k":"snap","v":1,"open":[]}\n')
        journal = AdmissionJournal(path)
        journal.recover()
        assert not stale.exists()
        journal.close()
