"""Overload control: adaptive hints, sojourn sheds, quotas, slow consumers,
the client circuit breaker, and cluster brownout.

Same conventions as test_server.py: no pytest-asyncio (each test drives its
own loop with ``asyncio.run``), servers bind unix sockets under ``tmp_path``
with the online sanitizer attached, and every scenario must end with clean
books — an overload path that sheds a request but leaks its demand fails
here even if the protocol-level assertions pass.
"""

import asyncio
import random
import time
from dataclasses import replace

import dataclasses
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_machine_config
from repro.core.api import MB
from repro.core.policy import StrictPolicy
from repro.core.progress_period import ResourceKind, ReuseLevel
from repro.errors import ServeError
from repro.experiments.metrics import LatencySummary
from repro.serve.client import ServeClient, ServeReplyError
from repro.serve.cluster import start_local_cluster
from repro.serve.loadgen import LoadgenReport
from repro.serve.protocol import ErrorCode
from repro.serve.resilient import ResilientServeClient
from repro.serve.server import (
    AdmissionServer,
    ServeConfig,
    adaptive_retry_hint_s,
    quota_admits,
)


def tiny_machine(capacity_mb: float = 4.0):
    machine = default_machine_config()
    quantum = machine.llc.line_bytes * machine.llc.associativity
    capacity = max(quantum, int(capacity_mb * 1024 * 1024) // quantum * quantum)
    return replace(machine, llc=replace(machine.llc, capacity_bytes=capacity))


async def start_server(tmp_path, **overrides):
    defaults = dict(
        policy=StrictPolicy(),
        machine=tiny_machine(4.0),
        sanitize=True,
        park_timeout_s=10.0,
        drain_grace_s=1.0,
        starvation_check_s=0.05,
    )
    defaults.update(overrides)
    cfg = ServeConfig(**defaults)
    server = AdmissionServer(cfg)
    sock = str(tmp_path / "serve.sock")
    await server.start(unix_path=sock)
    run_task = asyncio.ensure_future(server.run_until_drained())
    return server, sock, run_task


async def wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(interval)


async def finish(server, run_task):
    server.request_drain()
    await asyncio.wait_for(run_task, 5.0)
    sanitizer = server.service.sanitizer
    assert sanitizer is not None and sanitizer.ok, sanitizer.summary()


async def start_cluster(tmp_path, n=2, seed=0, serve_overrides=None,
                        **frontend_overrides):
    sock = str(tmp_path / "placer.sock")
    serve_kw = dict(
        policy=StrictPolicy(), machine=tiny_machine(4.0), sanitize=True
    )
    serve_kw.update(serve_overrides or {})
    cfg = ServeConfig(**serve_kw)
    cluster = await start_local_cluster(cfg, n, sock, seed=seed)
    overrides = dict(
        health_interval_s=0.05, balance_interval_s=0.05, migrate_after_s=0.1
    )
    overrides.update(frontend_overrides)
    cluster.frontend.cfg = dataclasses.replace(
        cluster.frontend.cfg, **overrides
    )
    return cluster, sock


async def drain(cluster):
    cluster.request_drain()
    return await asyncio.wait_for(cluster.run_until_drained(), 20.0)


_finite = dict(allow_nan=False, allow_infinity=False)


class TestAdaptiveHintFunction:
    def test_empty_queue_returns_the_floor(self):
        assert adaptive_retry_hint_s(0.0, 0.0, 0.1, 2.0) == pytest.approx(0.1)

    def test_full_queue_scales_the_base_4x(self):
        # base = max(floor, p50) = 0.2; full queue -> 0.8, under the cap
        assert adaptive_retry_hint_s(1.0, 0.2, 0.1, 2.0) == pytest.approx(0.8)

    def test_cap_clamps_a_slow_server(self):
        assert adaptive_retry_hint_s(1.0, 60.0, 0.1, 2.0) == pytest.approx(2.0)

    def test_inverted_cap_is_raised_to_the_floor(self):
        assert adaptive_retry_hint_s(0.5, 0.0, 1.0, 0.1) == pytest.approx(1.0)

    @given(
        occupancy=st.floats(-1.0, 2.0, **_finite),
        p50=st.floats(0.0, 100.0, **_finite),
        floor=st.floats(0.001, 10.0, **_finite),
        cap=st.floats(0.001, 10.0, **_finite),
    )
    @settings(max_examples=200, deadline=None)
    def test_hint_always_within_floor_and_cap(self, occupancy, p50, floor, cap):
        hint = adaptive_retry_hint_s(occupancy, p50, floor, cap)
        assert floor <= hint <= max(floor, cap)

    @given(
        occ_a=st.floats(0.0, 1.0, **_finite),
        occ_b=st.floats(0.0, 1.0, **_finite),
        p50=st.floats(0.0, 100.0, **_finite),
        floor=st.floats(0.001, 10.0, **_finite),
        cap=st.floats(0.001, 10.0, **_finite),
    )
    @settings(max_examples=200, deadline=None)
    def test_hint_monotone_in_occupancy(self, occ_a, occ_b, p50, floor, cap):
        lo, hi = sorted((occ_a, occ_b))
        assert adaptive_retry_hint_s(lo, p50, floor, cap) <= adaptive_retry_hint_s(
            hi, p50, floor, cap
        )


class TestQuotaFunction:
    def test_global_bound_wins_even_for_a_new_client(self):
        assert not quota_admits({"a": 2, "b": 2}, "c", 4, None)

    def test_per_client_bound_binds_before_the_global_one(self):
        waiting = {"a": 2}
        assert not quota_admits(waiting, "a", 8, 2)
        assert quota_admits(waiting, "b", 8, 2)

    def test_none_per_client_is_unbounded(self):
        assert quota_admits({"a": 7}, "a", 8, None)

    @given(
        arrivals=st.lists(st.sampled_from("abcd"), max_size=40),
        max_pending=st.integers(1, 8),
        per_client=st.one_of(st.none(), st.integers(1, 4)),
    )
    @settings(max_examples=200, deadline=None)
    def test_admitted_aggregate_never_exceeds_either_bound(
        self, arrivals, max_pending, per_client
    ):
        waiting = {}
        for client in arrivals:
            if quota_admits(waiting, client, max_pending, per_client):
                waiting[client] = waiting.get(client, 0) + 1
        assert sum(waiting.values()) <= max_pending
        if per_client is not None:
            assert all(v <= per_client for v in waiting.values())


class TestAdaptiveHintServer:
    def test_default_off_hint_is_the_constant_retry_after(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(tmp_path, max_pending=1)
            a = await ServeClient.connect(unix_path=sock)
            b = await ServeClient.connect(unix_path=sock)
            reply_a = await a.pp_begin(MB(3))
            park_task = asyncio.ensure_future(b.pp_begin(MB(3)))
            await wait_until(lambda: len(server.service.waitlist) == 1)
            c = await ServeClient.connect(unix_path=sock)
            with pytest.raises(ServeReplyError) as info:
                await c.pp_begin(MB(1))
            assert info.value.code == ErrorCode.RETRY_AFTER
            assert info.value.retry_after_s == pytest.approx(
                server.cfg.retry_after_s
            )
            await a.pp_end(reply_a["pp_id"])
            reply_b = await asyncio.wait_for(park_task, 5.0)
            await b.pp_end(reply_b["pp_id"])
            for client in (a, b, c):
                await client.close()
            await finish(server, run_task)

        asyncio.run(scenario())

    def test_shed_reply_carries_a_bounded_adaptive_hint(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(
                tmp_path,
                max_pending=1,
                retry_hint_floor_s=0.05,
                retry_hint_cap_s=2.0,
            )
            a = await ServeClient.connect(unix_path=sock)
            b = await ServeClient.connect(unix_path=sock)
            reply_a = await a.pp_begin(MB(3))
            park_task = asyncio.ensure_future(b.pp_begin(MB(3)))
            await wait_until(lambda: len(server.service.waitlist) == 1)
            c = await ServeClient.connect(unix_path=sock)
            with pytest.raises(ServeReplyError) as info:
                await c.pp_begin(MB(1))
            assert info.value.code == ErrorCode.RETRY_AFTER
            hint = info.value.retry_after_s
            # occupancy is 1/1: the hint sits in [floor, cap] by the pinned
            # formula, and differs from the legacy constant
            assert 0.05 <= hint <= 2.0
            assert server.service.c_retry_after.value == 1
            await a.pp_end(reply_a["pp_id"])
            reply_b = await asyncio.wait_for(park_task, 5.0)
            await b.pp_end(reply_b["pp_id"])
            for client in (a, b, c):
                await client.close()
            await finish(server, run_task)

        asyncio.run(scenario())


class TestParkDeadline:
    def test_sojourn_deadline_sheds_with_typed_park_timeout(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(
                tmp_path,
                park_deadline_s=0.15,
                retry_hint_floor_s=0.05,
                retry_hint_cap_s=2.0,
            )
            service = server.service
            a = await ServeClient.connect(unix_path=sock)
            b = await ServeClient.connect(unix_path=sock)
            reply_a = await a.pp_begin(MB(3))
            with pytest.raises(ServeReplyError) as info:
                await b.pp_begin(MB(3))
            error = info.value
            assert error.code == ErrorCode.PARK_TIMEOUT
            assert error.retry_after_s is not None
            assert error.reply["error"]["waited_s"] == pytest.approx(0.15)
            assert service.c_park_deadline.value == 1
            assert service.c_park_timeout.value == 0
            await wait_until(lambda: len(service.waitlist) == 0)
            # the shed wait is recorded in the sojourn histogram
            assert service.h_sojourn.count == 1
            await a.pp_end(reply_a["pp_id"])
            await a.close()
            await b.close()
            await finish(server, run_task)

        asyncio.run(scenario())

    def test_longer_deadline_defers_to_the_legacy_timeout(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(
                tmp_path, park_timeout_s=0.15, park_deadline_s=5.0
            )
            a = await ServeClient.connect(unix_path=sock)
            b = await ServeClient.connect(unix_path=sock)
            reply_a = await a.pp_begin(MB(3))
            with pytest.raises(ServeReplyError) as info:
                await b.pp_begin(MB(3))
            assert info.value.code == ErrorCode.TIMEOUT
            assert server.service.c_park_timeout.value == 1
            assert server.service.c_park_deadline.value == 0
            await a.pp_end(reply_a["pp_id"])
            await a.close()
            await b.close()
            await finish(server, run_task)

        asyncio.run(scenario())


class TestPerClientQuota:
    def test_client_at_quota_gets_retry_after(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(
                tmp_path, max_pending_per_client=1
            )
            service = server.service
            a = await ServeClient.connect(unix_path=sock)
            reply_a = await a.pp_begin(MB(2))
            # Park one period on the named record directly (a pipelined
            # second begin on one connection is buffered behind the park,
            # so the quota is exercised via the lease-held record).
            record, resumed = service.leases.get_or_create(
                "greedy", service.make_record
            )
            assert not resumed
            parked_pp = record.api.pp_begin(
                ResourceKind.LLC, MB(3), ReuseLevel.LOW
            )
            await wait_until(lambda: len(service.waitlist) == 1)
            g = await ServeClient.connect(unix_path=sock)
            await g.hello("greedy")
            with pytest.raises(ServeReplyError) as info:
                await g.pp_begin(MB(1))
            assert info.value.code == ErrorCode.RETRY_AFTER
            assert info.value.retry_after_s is not None
            assert "per-client quota" in info.value.detail
            assert service.c_quota_rejects.value == 1
            # an under-quota client is still served normally
            reply_b = await a.pp_begin(MB(1))
            assert reply_b["admitted"] is True
            record.api.pp_cancel(parked_pp)
            await a.pp_end(reply_a["pp_id"])
            await a.pp_end(reply_b["pp_id"])
            await a.close()
            await g.close()
            await finish(server, run_task)

        asyncio.run(scenario())


class TestSlowConsumer:
    def test_stalled_reader_is_disconnected_within_the_write_budget(
        self, tmp_path
    ):
        async def scenario():
            server, sock, run_task = await start_server(
                tmp_path, write_timeout_s=0.2
            )
            service = server.service
            reader, writer = await asyncio.open_unix_connection(sock)
            # Flood pipelined stats requests and never read a reply: the
            # reply stream backs up through the transport and the kernel
            # socket buffers until the server's bounded drain trips.
            from repro.serve import protocol

            frames = b"".join(
                protocol.encode_frame(
                    {"v": protocol.PROTOCOL_VERSION, "id": i, "op": "stats"}
                )
                for i in range(1, 4001)
            )
            writer.write(frames)
            await wait_until(
                lambda: service.c_slow_disconnects.value == 1, timeout=15.0
            )
            writer.transport.abort()
            # the flood client was anonymous: nothing to reap, books clean
            await wait_until(lambda: len(service.monitor.registry) == 0)
            await finish(server, run_task)

        asyncio.run(scenario())


class TestCircuitBreaker:
    def test_breaker_opens_fast_fails_and_recovers_half_open(self, tmp_path):
        async def scenario():
            sock = str(tmp_path / "late.sock")
            client = ResilientServeClient(
                unix_path=sock,
                client_id="cb",
                connect_timeout_s=0.5,
                max_attempts=2,
                backoff_base_s=0.001,
                backoff_cap_s=0.002,
                breaker_threshold=2,
                breaker_reset_s=0.2,
                rng=random.Random(0),
            )
            with pytest.raises(ServeError):
                await client.query()
            assert client.breaker_opens == 1
            t0 = time.monotonic()
            with pytest.raises(ServeError, match="circuit breaker open"):
                await client.query()
            assert time.monotonic() - t0 < 0.1  # no connect attempts made
            assert client.breaker_fast_fails >= 1
            # the server comes up; after the (jittered) reset window one
            # half-open probe succeeds and closes the breaker
            server = AdmissionServer(ServeConfig(
                policy=StrictPolicy(), machine=tiny_machine(4.0), sanitize=True
            ))
            await server.start(unix_path=sock)
            run_task = asyncio.ensure_future(server.run_until_drained())
            await asyncio.sleep(0.3)  # > 0.2 * 1.25 max jittered reset
            reply = await client.query()
            assert reply["ok"] is True
            assert client.breaker_opens == 1  # did not re-open
            await client.close()
            await finish(server, run_task)

        asyncio.run(scenario())


class TestBrownout:
    def test_brownout_sheds_new_clients_and_releases(self, tmp_path):
        async def scenario():
            cluster, sock = await start_cluster(
                tmp_path,
                n=2,
                brownout_fragmentation=0.05,
                brownout_sweeps=2,
                brownout_retry_s=0.42,
            )
            frontend = cluster.frontend
            # Two THIN clients (forwarded through the pump, so the
            # front-end observes their demand) saturate both shards.
            a = await ServeClient.connect(unix_path=sock)
            assert (await a.call_raw(
                "hello", client="a", demand_bytes=MB(3), timeout=5.0
            ))["ok"] is True
            b = await ServeClient.connect(unix_path=sock)
            assert (await b.call_raw(
                "hello", client="b", demand_bytes=MB(3), timeout=5.0
            ))["ok"] is True
            # the demand hints make placement deterministic: one per shard
            assignments = frontend.placer.assignments
            assert assignments["a"] != assignments["b"]
            reply_a = await a.pp_begin(MB(3), timeout=5.0)
            reply_b = await b.pp_begin(MB(3), timeout=5.0)
            assert reply_a["admitted"] and reply_b["admitted"]
            await wait_until(lambda: frontend._brownout, timeout=5.0)
            # a new client is shed with typed OVERLOAD + the cluster hint...
            late = await ServeClient.connect(unix_path=sock)
            reply = await late.call_raw("hello", client="late", timeout=5.0)
            assert reply["ok"] is False
            assert reply["error"]["code"] == ErrorCode.OVERLOAD
            assert reply["error"]["retry_after_s"] == pytest.approx(0.42)
            assert frontend.c_brownout_shed.value >= 1
            await late.close()
            # ...and a redirect-following resilient client gets the same
            # typed error instead of hammering the front-end
            resilient = ResilientServeClient(
                unix_path=sock, client_id="latecomer",
                backoff_base_s=0.001, max_attempts=2,
            )
            with pytest.raises(ServeReplyError) as info:
                await resilient.query()
            assert info.value.code == ErrorCode.OVERLOAD
            assert info.value.retry_after_s == pytest.approx(0.42)
            await resilient.close()
            # established clients ride out the brownout untouched
            assert (await a.query())["ok"] is True
            # headroom returns -> brownout releases -> new clients admitted
            await a.pp_end(reply_a["pp_id"], timeout=5.0)
            await b.pp_end(reply_b["pp_id"], timeout=5.0)
            await wait_until(lambda: not frontend._brownout, timeout=5.0)
            late2 = await ServeClient.connect(unix_path=sock)
            assert (await late2.call_raw(
                "hello", client="late", timeout=5.0
            ))["ok"] is True
            begun = await late2.pp_begin(MB(1), timeout=5.0)
            assert begun["admitted"] is True
            await late2.pp_end(begun["pp_id"], timeout=5.0)
            for client in (a, b, late2):
                await client.close()
            assert await drain(cluster) == 0

        asyncio.run(scenario())


class TestFramingComposition:
    def test_shed_errors_identical_over_ndjson_and_binary(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(
                tmp_path,
                max_pending=1,
                retry_hint_floor_s=0.05,
                retry_hint_cap_s=2.0,
            )
            a = await ServeClient.connect(unix_path=sock)
            b = await ServeClient.connect(unix_path=sock)
            reply_a = await a.pp_begin(MB(3))
            park_task = asyncio.ensure_future(b.pp_begin(MB(3)))
            await wait_until(lambda: len(server.service.waitlist) == 1)
            ndjson = await ServeClient.connect(unix_path=sock)
            shed_nd = await ndjson.call_raw(
                "pp_begin", demand_bytes=MB(1), reuse="low", resource="llc"
            )
            binary = await ServeClient.connect(unix_path=sock)
            ack = await binary.hello("bin-probe", binary=True)
            assert ack["binary"] is True and binary.binary is True
            shed_bin = await binary.call_raw(
                "pp_begin", demand_bytes=MB(1), reuse="low", resource="llc"
            )
            # the typed error is framing-independent: same code, message,
            # and (no admissions in between) the same adaptive hint
            for shed in (shed_nd, shed_bin):
                assert shed["ok"] is False
                assert shed["error"]["code"] == ErrorCode.RETRY_AFTER
                assert 0.05 <= shed["error"]["retry_after_s"] <= 2.0
            assert shed_nd["error"] == shed_bin["error"]
            await a.pp_end(reply_a["pp_id"])
            reply_b = await asyncio.wait_for(park_task, 5.0)
            await b.pp_end(reply_b["pp_id"])
            for client in (a, b, ndjson, binary):
                await client.close()
            await finish(server, run_task)

        asyncio.run(scenario())

    def test_park_timeout_rides_through_the_cluster_pump(self, tmp_path):
        async def scenario():
            cluster, sock = await start_cluster(
                tmp_path,
                n=1,
                serve_overrides=dict(
                    park_deadline_s=0.2,
                    retry_hint_floor_s=0.05,
                    retry_hint_cap_s=2.0,
                ),
            )
            a = await ServeClient.connect(unix_path=sock)
            await a.hello("holder")
            reply_a = await a.pp_begin(MB(3), timeout=5.0)
            assert reply_a["admitted"] is True
            b = await ServeClient.connect(unix_path=sock)
            await b.hello("shedme")
            reply = await b.call_raw(
                "pp_begin", demand_bytes=MB(3), reuse="low", resource="llc",
                timeout=5.0,
            )
            # the shard's typed sojourn shed is forwarded verbatim
            assert reply["ok"] is False
            assert reply["error"]["code"] == ErrorCode.PARK_TIMEOUT
            assert reply["error"]["waited_s"] == pytest.approx(0.2)
            assert reply["error"]["retry_after_s"] is not None
            await a.pp_end(reply_a["pp_id"], timeout=5.0)
            await a.close()
            await b.close()
            assert await drain(cluster) == 0

        asyncio.run(scenario())


class TestLoadgenShedTaxonomy:
    def _report(self, **overrides):
        empty = LatencySummary(
            count=0, mean=float("nan"), p50=float("nan"), p90=float("nan"),
            p99=float("nan"), max=float("nan"),
        )
        base = dict(
            mode="closed", wall_s=1.0, sessions_started=4,
            sessions_completed=4, sessions_failed=0, calls=10, admitted=6,
            parked=1, forced=0, retries=3, dropped_calls=0, park_timeouts=1,
            draining_rejects=0, protocol_errors=1, overload_sheds=2,
            shed_calls=3, sheds_without_hint=0, reconnects=0,
            lost_periods=0, deduped=0, redirects=0, throughput_pps=6.0,
            admission_latency=empty, park_time=empty,
            utilization_mean=0.5, utilization_peak=0.9,
        )
        base.update(overrides)
        return LoadgenReport(**base)

    def test_outcome_counts_round_trip_and_rate_is_described(self):
        report = self._report()
        payload = report.to_dict()
        assert payload["shed_calls"] == 3
        assert payload["overload_sheds"] == 2
        assert payload["sheds_without_hint"] == 0
        text = report.describe()
        assert "shed rate 30.0%" in text
        assert "3 shed (2 OVERLOAD)" in text
        assert "MISSING" not in text

    def test_missing_hints_are_called_out(self):
        text = self._report(sheds_without_hint=2).describe()
        assert "2 shed reply(ies) MISSING a retry hint" in text
