"""ResilientServeClient: reconnects, idempotent re-issue, bounded calls."""

import asyncio
from dataclasses import replace

import pytest

from repro.config import default_machine_config
from repro.core.api import MB
from repro.core.policy import StrictPolicy
from repro.errors import ServeError
from repro.serve.client import ServeClient
from repro.serve.resilient import ResilientServeClient
from repro.serve.server import AdmissionServer, ServeConfig

CAPACITY_MB = 4.0


def tiny_machine(capacity_mb: float = CAPACITY_MB):
    machine = default_machine_config()
    quantum = machine.llc.line_bytes * machine.llc.associativity
    capacity = max(quantum, int(capacity_mb * 1024 * 1024) // quantum * quantum)
    return replace(machine, llc=replace(machine.llc, capacity_bytes=capacity))


def server_cfg(tmp_path, **kwargs) -> ServeConfig:
    defaults = dict(
        policy=StrictPolicy(),
        machine=tiny_machine(),
        sanitize=True,
        journal_path=str(tmp_path / "admission.ndjson"),
        lease_ttl_s=10.0,
    )
    defaults.update(kwargs)
    return ServeConfig(**defaults)


class TestResilience:
    def test_survives_a_server_crash_and_restart(self, tmp_path):
        async def scenario():
            sock = str(tmp_path / "serve.sock")
            server = AdmissionServer(server_cfg(tmp_path))
            await server.start(unix_path=sock)

            client = ResilientServeClient(
                unix_path=sock, client_id="phoenix",
                backoff_base_s=0.01, max_attempts=20,
            )
            begun = await client.pp_begin(MB(2))
            assert begun["admitted"] is True

            await server.abort()
            reborn = AdmissionServer(server_cfg(tmp_path))
            await reborn.start(unix_path=sock)

            # the next call reconnects, re-hellos and just works; the
            # replayed period is still charged on the reborn server
            q = await client.query()
            assert client.reconnects >= 1
            assert q["open_periods"] == 1
            assert reborn.service.replayed_periods == 1

            done = await client.pp_end(begun["pp_id"])
            assert done.get("lost") is None
            await client.close()
            await reborn.abort()
            assert reborn.service.sanitizer.ok

        asyncio.run(scenario())

    def test_token_reissue_dedupes(self, tmp_path):
        async def scenario():
            sock = str(tmp_path / "serve.sock")
            server = AdmissionServer(server_cfg(tmp_path))
            await server.start(unix_path=sock)
            client = ResilientServeClient(unix_path=sock, client_id="dup")
            first = await client.pp_begin(MB(1), token="same-token")
            again = await client.pp_begin(MB(1), token="same-token")
            assert again["pp_id"] == first["pp_id"]
            assert again["deduped"] is True
            assert client.deduped == 1
            # charged once, not twice
            usage = sum(
                s["usage_bytes"]
                for s in server.service.snapshot()["resources"].values()
            )
            assert usage == MB(1)
            await client.pp_end(first["pp_id"])
            await client.close()
            await server.abort()

        asyncio.run(scenario())

    def test_lost_period_yields_marker_not_exception(self, tmp_path):
        async def scenario():
            sock = str(tmp_path / "serve.sock")
            server = AdmissionServer(server_cfg(tmp_path))
            await server.start(unix_path=sock)
            client = ResilientServeClient(unix_path=sock, client_id="loser")
            await client.connect()
            gone = await client.pp_end(424242)
            assert gone["lost"] is True
            assert client.lost_periods == 1
            await client.close()
            await server.abort()

        asyncio.run(scenario())

    def test_close_is_idempotent_even_with_server_gone(self, tmp_path):
        async def scenario():
            sock = str(tmp_path / "serve.sock")
            server = AdmissionServer(server_cfg(tmp_path))
            await server.start(unix_path=sock)
            client = ResilientServeClient(unix_path=sock, client_id="bye")
            await client.connect()
            await server.abort()
            await client.close()
            await client.close()
            with pytest.raises(ServeError):
                await client.query()

        asyncio.run(scenario())

    def test_unreachable_server_fails_fast_with_serve_error(self, tmp_path):
        async def scenario():
            client = ResilientServeClient(
                unix_path=str(tmp_path / "nothing.sock"),
                connect_timeout_s=0.2, max_attempts=2, backoff_base_s=0.01,
            )
            with pytest.raises(ServeError):
                await client.connect()

        asyncio.run(scenario())

    def test_heartbeats_flow_while_parked(self, tmp_path):
        async def scenario():
            sock = str(tmp_path / "serve.sock")
            server = AdmissionServer(
                server_cfg(tmp_path, lease_ttl_s=0.4, lease_check_s=0.05)
            )
            await server.start(unix_path=sock)
            holder = ResilientServeClient(unix_path=sock, client_id="holder")
            held = await holder.pp_begin(MB(3))

            parked = ResilientServeClient(unix_path=sock, client_id="parked")
            begin = asyncio.ensure_future(parked.pp_begin(MB(3)))
            # parked well past the lease TTL: the auto-heartbeat (ttl/3)
            # keeps both leases alive, so nothing is reclaimed
            await asyncio.sleep(0.9)
            assert not begin.done()
            assert server.service.c_leases_reclaimed.value == 0
            assert server.service.c_heartbeats.value > 0

            await holder.pp_end(held["pp_id"])
            reply = await asyncio.wait_for(begin, 3.0)
            assert reply["admitted"] is True
            await parked.pp_end(reply["pp_id"])
            await holder.close()
            await parked.close()
            await server.abort()
            assert server.service.sanitizer.ok

        asyncio.run(scenario())


class TestBinaryResilience:
    def test_binary_framing_survives_a_mid_stream_kill(self, tmp_path):
        """Regression: binary + resilient used to be mutually exclusive.

        The re-``hello`` on reconnect renegotiates the binary framing, so
        killing the connection mid-stream with the fast codec on must not
        wedge or silently fall back for good.
        """
        async def scenario():
            sock = str(tmp_path / "serve.sock")
            server = AdmissionServer(server_cfg(tmp_path))
            await server.start(unix_path=sock)
            client = ResilientServeClient(
                unix_path=sock, client_id="binfox", binary=True,
                backoff_base_s=0.01, max_attempts=20,
            )
            begun = await client.pp_begin(MB(2))
            assert begun["admitted"] is True
            assert client._conn is not None and client._conn.binary is True

            await server.abort()
            reborn = AdmissionServer(server_cfg(tmp_path))
            await reborn.start(unix_path=sock)

            # the reconnect re-hellos; the fresh connection must end up
            # binary again and the replayed period must still be charged
            q = await client.query()
            assert client.reconnects >= 1
            assert client._conn.binary is True
            assert q["open_periods"] == 1

            done = await client.pp_end(begun["pp_id"])
            assert done.get("lost") is None
            await client.close()
            await reborn.abort()
            assert reborn.service.sanitizer.ok

        asyncio.run(scenario())


class TestClusterFallback:
    """Redirect-following clients riding out shard deaths (satellite of
    the self-healing cluster work)."""

    async def _cluster(self, tmp_path, n=2):
        import dataclasses

        from repro.serve.cluster import start_local_cluster

        sock = str(tmp_path / "placer.sock")
        cluster = await start_local_cluster(
            ServeConfig(
                policy=StrictPolicy(), machine=tiny_machine(), sanitize=True
            ),
            n, sock, supervise=False,
        )
        cluster.frontend.cfg = dataclasses.replace(
            cluster.frontend.cfg, health_interval_s=0.05
        )
        return cluster, sock

    async def _drain(self, cluster):
        cluster.request_drain()
        return await asyncio.wait_for(cluster.run_until_drained(), 20.0)

    def test_shard_death_resets_the_redirect_budget(self, tmp_path):
        """max_redirects=1 must still survive a shard death: falling
        back to the front-end is a re-placement, not a redirect hop, so
        the budget resets with it."""
        async def scenario():
            cluster, sock = await self._cluster(tmp_path)
            client = ResilientServeClient(
                unix_path=sock, client_id="hopper",
                backoff_base_s=0.01, max_attempts=40, max_redirects=1,
            )
            begun = await client.pp_begin(MB(1))
            assert begun["admitted"] is True
            assert client.redirects == 1
            home = cluster.frontend.placer.assignments["hopper"]
            victim = next(
                s for s in cluster.servers if s.cfg.shard_name == home
            )
            await victim.abort()
            reply = await asyncio.wait_for(client.pp_begin(MB(1)), 15.0)
            assert reply["admitted"] is True
            # more hops than the per-sequence budget allows: every
            # fallback to the front-end reset it
            assert client.redirects >= 2
            assert cluster.frontend.placer.assignments["hopper"] != home
            await client.pp_end(reply["pp_id"])
            await client.close()
            cluster.servers.remove(victim)
            assert await self._drain(cluster) == 0

        asyncio.run(scenario())

    def test_mid_handshake_shard_death_falls_back_to_the_frontend(
        self, tmp_path
    ):
        """The redirected-to address connects but drops the hello (a
        shard dying mid-handshake): the client must go back to the
        front-end instead of hammering the dead shard."""
        async def scenario():
            cluster, sock = await self._cluster(tmp_path)
            client = ResilientServeClient(
                unix_path=sock, client_id="hopper",
                backoff_base_s=0.01, max_attempts=40, max_redirects=1,
            )
            begun = await client.pp_begin(MB(1))
            assert begun["admitted"] is True
            home = cluster.frontend.placer.assignments["hopper"]
            victim = next(
                s for s in cluster.servers if s.cfg.shard_name == home
            )
            await victim.abort()

            # squat on the dead shard's socket with a listener that
            # accepts and immediately hangs up: connects succeed, hellos
            # die — the mid-handshake death path
            async def hangup(reader, writer):
                writer.close()

            squatter = await asyncio.start_unix_server(
                hangup, path=f"{sock}.{home}"
            )
            reply = await asyncio.wait_for(client.pp_begin(MB(1)), 15.0)
            assert reply["admitted"] is True
            assert cluster.frontend.placer.assignments["hopper"] != home
            await client.pp_end(reply["pp_id"])
            await client.close()
            squatter.close()
            await squatter.wait_closed()
            cluster.servers.remove(victim)
            assert await self._drain(cluster) == 0

        asyncio.run(scenario())

    def test_redirect_latency_is_sampled(self, tmp_path):
        async def scenario():
            cluster, sock = await self._cluster(tmp_path)
            client = ResilientServeClient(
                unix_path=sock, client_id="timed",
                backoff_base_s=0.01, max_attempts=10,
            )
            begun = await client.pp_begin(MB(1))
            assert begun["admitted"] is True
            assert len(client.redirect_latency_s) == 1
            assert client.redirect_latency_s[0] > 0.0
            await client.pp_end(begun["pp_id"])
            await client.close()
            assert await self._drain(cluster) == 0

        asyncio.run(scenario())


class TestBackoffFloor:
    def test_retry_after_hint_floors_above_the_cap(self):
        import random

        from repro.serve.resilient import backoff_sleep_s

        rng = random.Random(7)
        # hint far above the client's own cap: the hint must win
        for attempt in range(8):
            s = backoff_sleep_s(
                attempt, base_s=0.01, cap_s=0.5, rng=rng, floor_s=2.0
            )
            assert 2.0 <= s <= 2.0 * 1.25

    def test_cap_applies_without_a_hint(self):
        import random

        from repro.serve.resilient import backoff_sleep_s

        rng = random.Random(7)
        s = backoff_sleep_s(20, base_s=0.01, cap_s=0.5, rng=rng)
        assert s <= 0.5 * 1.25


class TestThinClientBounds:
    def test_call_timeout_raises_and_connection_is_disposable(self, tmp_path):
        async def scenario():
            # a server that accepts and then says nothing
            async def mute(reader, writer):
                await reader.read()

            sock = str(tmp_path / "mute.sock")
            server = await asyncio.start_unix_server(mute, path=sock)
            client = await ServeClient.connect(unix_path=sock, timeout=1.0)
            with pytest.raises(asyncio.TimeoutError):
                await client.call("query", timeout=0.1)
            await client.close()
            await client.close()  # idempotent
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())
