"""Tests for the serve metrics instruments and registry."""

import json
import math
import random

import pytest

from repro.errors import ServeError
from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ServeError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_and_max(self):
        g = Gauge("x")
        g.set(3.0)
        g.max(2.0)
        assert g.value == 3.0
        g.max(7.0)
        assert g.value == 7.0

    def test_fn_backed_gauge_samples_live(self):
        state = {"v": 1}
        g = Gauge("x", fn=lambda: state["v"])
        assert g.value == 1
        state["v"] = 42
        assert g.value == 42


class TestHistogram:
    def test_empty_histogram_percentile_is_nan(self):
        h = Histogram("x")
        assert math.isnan(h.percentile(50.0))
        assert h.snapshot()["p50"] is None

    def test_single_observation_is_exact(self):
        h = Histogram("x")
        h.observe(0.125)
        for q in (0.0, 50.0, 100.0):
            assert h.percentile(q) == pytest.approx(0.125, rel=1e-9)

    def test_percentiles_bounded_by_bucket_error(self):
        # log buckets with growth 1.25 bound any quantile's relative
        # error; check against exact percentiles on a lognormal sample
        rng = random.Random(7)
        samples = [rng.lognormvariate(-7, 1.5) for _ in range(5000)]
        h = Histogram("x")
        for s in samples:
            h.observe(s)
        ordered = sorted(samples)
        for q in (50.0, 90.0, 99.0):
            exact = ordered[int(q / 100 * (len(ordered) - 1))]
            assert h.percentile(q) == pytest.approx(exact, rel=0.30)

    def test_observations_below_floor_land_in_underflow(self):
        h = Histogram("x", floor=1e-3)
        h.observe(0.0)
        h.observe(1e-9)
        assert h.count == 2
        assert h.buckets[0] == 2
        assert 0.0 <= h.percentile(50.0) <= 1e-3

    def test_memory_is_bounded(self):
        h = Histogram("x", n_buckets=32)
        for i in range(10_000):
            h.observe(i * 1e-5)
        assert len(h.buckets) == 33
        assert h.count == 10_000

    def test_negative_observation_rejected(self):
        with pytest.raises(ServeError):
            Histogram("x").observe(-1.0)

    def test_min_max_mean_tracked(self):
        h = Histogram("x")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        assert h.min == 0.1
        assert h.max == 0.3
        assert h.mean == pytest.approx(0.2)


class TestRegistry:
    def test_duplicate_name_rejected(self):
        m = MetricsRegistry()
        m.counter("a")
        with pytest.raises(ServeError):
            m.counter("a")

    def test_snapshot_is_json_serializable(self):
        m = MetricsRegistry()
        m.counter("hits").inc(3)
        m.gauge("depth").set(2.0)
        m.histogram("lat").observe(0.01)
        doc = json.loads(json.dumps(m.snapshot()))
        assert doc["counters"]["hits"] == 3
        assert doc["gauges"]["depth"] == 2.0
        assert doc["histograms"]["lat"]["count"] == 1
        assert doc["uptime_s"] >= 0

    def test_dump_json_atomic_write(self, tmp_path):
        m = MetricsRegistry()
        m.counter("hits").inc()
        path = tmp_path / "metrics.json"
        m.dump_json(str(path))
        m.dump_json(str(path))  # overwrite must also succeed
        doc = json.loads(path.read_text())
        assert doc["counters"]["hits"] == 1
        assert list(tmp_path.glob("*.tmp.*")) == []
