"""End-to-end acceptance: server + load generator over a live socket.

The ISSUE's acceptance criteria: RDA:Strict parks clients (non-zero
park-time histogram) while admitted demand never exceeds the policy bound,
RDA:Compromise admits up to x× capacity, and overload stays bounded
(queue full → RETRY_AFTER; the waiting queue never exceeds
``max_pending``).  All observed through the live metrics, as a scraper
would see them.
"""

import asyncio
from dataclasses import replace

from repro.config import default_machine_config
from repro.core.api import MB
from repro.core.policy import CompromisePolicy, StrictPolicy
from repro.serve.client import ServeClient
from repro.serve.loadgen import LoadgenConfig, fig4_scripts, run_loadgen
from repro.serve.server import AdmissionServer, ServeConfig
from repro.workloads.export import export_pp_sequences
from repro.workloads.suite import workload_by_name

CAPACITY_MB = 4.0


def tiny_machine(capacity_mb: float = CAPACITY_MB):
    machine = default_machine_config()
    quantum = machine.llc.line_bytes * machine.llc.associativity
    capacity = max(quantum, int(capacity_mb * 1024 * 1024) // quantum * quantum)
    return replace(machine, llc=replace(machine.llc, capacity_bytes=capacity))


async def serve_and_load(tmp_path, cfg, scripts, load_cfg):
    """Boot a server, run the loadgen against it, drain, return both."""
    server = AdmissionServer(cfg)
    sock = str(tmp_path / "serve.sock")
    await server.start(unix_path=sock)
    run_task = asyncio.ensure_future(server.run_until_drained())
    report = await run_loadgen(scripts, load_cfg, unix_path=sock)
    server.request_drain()
    await asyncio.wait_for(run_task, 10.0)
    return server, report


class TestStrictBound:
    def test_strict_parks_clients_and_respects_the_bound(self, tmp_path):
        async def scenario():
            cfg = ServeConfig(
                policy=StrictPolicy(), machine=tiny_machine(), sanitize=True
            )
            scripts = export_pp_sequences(workload_by_name("Water_nsq"))
            load_cfg = LoadgenConfig(
                mode="closed", clients=6, sessions=18, time_scale=1e-5
            )
            server, report = await serve_and_load(
                tmp_path, cfg, scripts, load_cfg
            )
            service = server.service

            assert report.protocol_errors == 0
            assert report.sessions_failed == 0
            assert report.admitted == report.calls

            # Strict must have parked clients: the park-time histogram is
            # non-empty, both client-side and server-side
            assert report.parked > 0
            assert service.h_park.count > 0
            assert service.h_park.max > 0.0

            # ... and admitted demand never exceeded the policy bound
            bound = service.policy.demand_bound(cfg.machine.llc_capacity)
            assert service.g_usage_peak.value > 0
            assert service.g_usage_peak.value <= bound
            assert service.forced_admissions == 0

            sanitizer = service.sanitizer
            assert sanitizer.ok, sanitizer.summary()

        asyncio.run(scenario())


class TestCompromiseOversubscription:
    def test_compromise_admits_up_to_x_times_capacity(self, tmp_path):
        async def scenario():
            cfg = ServeConfig(
                policy=CompromisePolicy(oversubscription=2.0),
                machine=tiny_machine(),
                sanitize=True,
            )
            server = AdmissionServer(cfg)
            sock = str(tmp_path / "serve.sock")
            await server.start(unix_path=sock)
            run_task = asyncio.ensure_future(server.run_until_drained())

            capacity = cfg.machine.llc_capacity
            # three concurrent 3 MB periods against a 4 MB LLC: Compromise
            # (x=2, bound 8 MB) admits two at once; the third parks
            clients = [await ServeClient.connect(unix_path=sock) for _ in range(3)]
            begin_tasks = [
                asyncio.ensure_future(c.pp_begin(MB(3))) for c in clients
            ]
            await asyncio.sleep(0.2)
            running = sum(1 for t in begin_tasks if t.done())
            assert running == 2

            # live metrics show oversubscription beyond physical capacity
            monitor = await ServeClient.connect(unix_path=sock)
            stats = await monitor.stats()
            peak = stats["gauges"]["usage_peak_bytes"]
            assert capacity < peak <= 2 * capacity

            parked = [t for t in begin_tasks if not t.done()]
            assert len(parked) == 1
            for client, task in zip(clients, begin_tasks):
                if task is not parked[0]:
                    await client.pp_end(task.result()["pp_id"])
            # freed capacity admits the parked third client
            last = await asyncio.wait_for(parked[0], 5.0)
            assert last["admitted"] is True
            assert last["waited_s"] > 0.0
            await clients[begin_tasks.index(parked[0])].pp_end(last["pp_id"])
            for client in clients + [monitor]:
                await client.close()
            server.request_drain()
            await asyncio.wait_for(run_task, 10.0)
            assert server.service.sanitizer.ok

        asyncio.run(scenario())


class TestOverloadBounded:
    def test_queue_full_yields_retry_after_and_stays_bounded(self, tmp_path):
        async def scenario():
            cfg = ServeConfig(
                policy=StrictPolicy(),
                machine=tiny_machine(),
                sanitize=True,
                max_pending=1,
            )
            # holds long enough and arrivals dense enough that sessions
            # MUST overlap — with max_pending=1 a third concurrent begin
            # is guaranteed, so backpressure (retries > 0) is not left to
            # scheduling luck on a fast machine
            scripts = fig4_scripts(n=4, demand_mb=3.0, hold_s=0.01)
            load_cfg = LoadgenConfig(
                mode="open", rate=2000.0, sessions=16, time_scale=1.0
            )
            server, report = await serve_and_load(
                tmp_path, cfg, scripts, load_cfg
            )
            service = server.service

            assert report.protocol_errors == 0
            # overload produced backpressure, not unbounded queueing
            assert report.retries > 0
            assert service.c_retry_after.value > 0
            assert service.g_waiting_peak.value <= cfg.max_pending
            # every admitted period was eventually released
            assert len(service.monitor.registry) == 0
            assert service.sanitizer.ok, service.sanitizer.summary()

        asyncio.run(scenario())


class TestOpenLoopLoadgen:
    def test_poisson_arrivals_replay_cleanly(self, tmp_path):
        async def scenario():
            cfg = ServeConfig(machine=tiny_machine(), sanitize=True)
            scripts = export_pp_sequences(
                workload_by_name("Water_sp"), max_sessions=8
            )
            load_cfg = LoadgenConfig(
                mode="open", rate=200.0, sessions=12, time_scale=1e-5, seed=3
            )
            server, report = await serve_and_load(
                tmp_path, cfg, scripts, load_cfg
            )
            assert report.sessions_started == 12
            assert report.protocol_errors == 0
            # Always Admit never parks anyone
            assert report.parked == 0
            assert server.service.sanitizer.ok

        asyncio.run(scenario())
