"""Client leases: hello/heartbeat semantics and the server-side reaper."""

import asyncio
from dataclasses import replace

import pytest

from repro.config import default_machine_config
from repro.core.api import MB
from repro.core.policy import StrictPolicy
from repro.serve.client import ServeClient, ServeReplyError
from repro.serve.protocol import ErrorCode
from repro.serve.server import AdmissionServer, ServeConfig

CAPACITY_MB = 4.0


def tiny_machine(capacity_mb: float = CAPACITY_MB):
    machine = default_machine_config()
    quantum = machine.llc.line_bytes * machine.llc.associativity
    capacity = max(quantum, int(capacity_mb * 1024 * 1024) // quantum * quantum)
    return replace(machine, llc=replace(machine.llc, capacity_bytes=capacity))


def lease_cfg(**kwargs) -> ServeConfig:
    defaults = dict(
        policy=StrictPolicy(),
        machine=tiny_machine(),
        sanitize=True,
        lease_ttl_s=0.3,
        lease_check_s=0.05,
    )
    defaults.update(kwargs)
    return ServeConfig(**defaults)


async def boot(tmp_path, cfg):
    server = AdmissionServer(cfg)
    sock = str(tmp_path / "serve.sock")
    await server.start(unix_path=sock)
    return server, sock


class TestHelloHeartbeat:
    def test_heartbeat_requires_identity(self, tmp_path):
        async def scenario():
            server, sock = await boot(tmp_path, lease_cfg())
            client = await ServeClient.connect(unix_path=sock)
            with pytest.raises(ServeReplyError) as err:
                await client.heartbeat()
            assert err.value.code == ErrorCode.NOT_BOUND
            await client.close()
            await server.abort()

        asyncio.run(scenario())

    def test_hello_binds_and_heartbeat_renews(self, tmp_path):
        async def scenario():
            server, sock = await boot(tmp_path, lease_cfg(lease_ttl_s=5.0))
            client = await ServeClient.connect(unix_path=sock)
            hello = await client.hello("alice")
            assert hello["client"] == "alice"
            assert hello["resumed"] is False
            assert hello["lease_ttl_s"] == 5.0
            assert hello["open"] == []

            beat = await client.heartbeat()
            assert beat["client"] == "alice"
            assert 0.0 < beat["lease_remaining_s"] <= 5.0
            assert beat["open_periods"] == 0
            assert server.service.c_heartbeats.value == 1

            # re-hello on the same connection is a plain renewal
            again = await client.hello("alice")
            assert again["resumed"] is True
            await client.close()
            await server.abort()

        asyncio.run(scenario())

    def test_one_connection_speaks_for_one_client(self, tmp_path):
        async def scenario():
            server, sock = await boot(tmp_path, lease_cfg())
            client = await ServeClient.connect(unix_path=sock)
            await client.hello("alice")
            with pytest.raises(ServeReplyError) as err:
                await client.hello("bob")
            assert err.value.code == ErrorCode.BAD_REQUEST
            await client.close()
            await server.abort()

        asyncio.run(scenario())

    def test_anonymous_periods_cannot_be_adopted(self, tmp_path):
        async def scenario():
            server, sock = await boot(tmp_path, lease_cfg())
            client = await ServeClient.connect(unix_path=sock)
            await client.pp_begin(MB(1))
            with pytest.raises(ServeReplyError) as err:
                await client.hello("alice")
            assert err.value.code == ErrorCode.BAD_REQUEST
            await client.close()
            await server.abort()

        asyncio.run(scenario())

    def test_new_connection_takes_over_the_identity(self, tmp_path):
        async def scenario():
            server, sock = await boot(tmp_path, lease_cfg(lease_ttl_s=5.0))
            first = await ServeClient.connect(unix_path=sock)
            begun = await first.hello("alice")
            assert begun["resumed"] is False

            second = await ServeClient.connect(unix_path=sock)
            hello = await second.hello("alice")
            assert hello["resumed"] is True
            # the old socket was closed by the takeover
            assert (await first.reader.read()) == b""
            beat = await second.heartbeat()
            assert beat["client"] == "alice"
            await first.close()
            await second.close()
            await server.abort()

        asyncio.run(scenario())


class TestReaper:
    def test_dead_client_is_reclaimed_and_waiter_admitted(self, tmp_path):
        async def scenario():
            server, sock = await boot(tmp_path, lease_cfg())
            service = server.service

            holder = await ServeClient.connect(unix_path=sock)
            await holder.hello("holder")
            held = await holder.pp_begin(MB(3), token="t-held")
            assert held["admitted"] is True

            waiter = await ServeClient.connect(unix_path=sock)
            begin = asyncio.ensure_future(waiter.pp_begin(MB(3)))
            await asyncio.sleep(0.1)
            assert not begin.done()  # strict bound: 3+3 > 4 MB, parked

            # the holder crashes: hard connection drop, no pp_end
            holder.writer.transport.abort()

            # within the lease TTL the reaper reclaims the dead client's
            # period and the parked waiter is admitted
            reply = await asyncio.wait_for(begin, 3.0)
            assert reply["admitted"] is True
            assert service.c_leases_reclaimed.value == 1
            assert service.c_lease_periods.value == 1
            # the record is gone with its connection
            assert service.leases.get("holder") is None

            await waiter.pp_end(reply["pp_id"])
            await holder.close()
            await waiter.close()
            await server.abort()
            assert service.sanitizer.ok, service.sanitizer.summary()

        asyncio.run(scenario())

    def test_silent_client_on_live_socket_loses_periods_not_identity(
        self, tmp_path
    ):
        async def scenario():
            server, sock = await boot(tmp_path, lease_cfg())
            service = server.service

            client = await ServeClient.connect(unix_path=sock)
            await client.hello("sleepy")
            begun = await client.pp_begin(MB(1), token="t-s")

            # wedge: the socket stays open but no frames flow past the TTL
            await asyncio.sleep(1.0)

            assert service.c_leases_reclaimed.value >= 1
            # the period was reclaimed ...
            with pytest.raises(ServeReplyError) as err:
                await client.pp_end(begun["pp_id"])
            assert err.value.code == ErrorCode.UNKNOWN_PERIOD
            # ... but the identity survives on its live connection
            assert service.leases.get("sleepy") is not None

            await client.close()
            await server.abort()
            assert service.sanitizer.ok, service.sanitizer.summary()

        asyncio.run(scenario())

    def test_heartbeats_keep_an_idle_client_alive(self, tmp_path):
        async def scenario():
            server, sock = await boot(tmp_path, lease_cfg())
            service = server.service
            client = await ServeClient.connect(unix_path=sock)
            await client.hello("beater")
            begun = await client.pp_begin(MB(1))
            for _ in range(8):
                await asyncio.sleep(0.1)
                await client.heartbeat()
            # 0.8 s idle-but-beating across a 0.3 s TTL: nothing reclaimed
            assert service.c_leases_reclaimed.value == 0
            await client.pp_end(begun["pp_id"])
            await client.close()
            await server.abort()

        asyncio.run(scenario())
