"""Failure-path tests for the admission server.

No pytest-asyncio in the image: each test drives its own event loop with
``asyncio.run``.  Servers bind ephemeral unix sockets under ``tmp_path``;
every scenario runs with the online sanitizer attached, so any ledger leak
a failure path causes (demand not released on disconnect, double free on
cancel, ...) fails the test even if the protocol-level assertions pass.
"""

import asyncio
from dataclasses import replace

import pytest

from repro.config import default_machine_config
from repro.core.api import MB
from repro.core.policy import StrictPolicy
from repro.serve import protocol
from repro.serve.client import ServeClient, ServeReplyError
from repro.serve.protocol import ErrorCode
from repro.serve.server import AdmissionServer, ServeConfig


def tiny_machine(capacity_mb: float = 4.0):
    """The Table-1 machine with a small managed LLC (forces parking)."""
    machine = default_machine_config()
    quantum = machine.llc.line_bytes * machine.llc.associativity
    capacity = max(quantum, int(capacity_mb * 1024 * 1024) // quantum * quantum)
    return replace(machine, llc=replace(machine.llc, capacity_bytes=capacity))


async def start_server(tmp_path, **overrides):
    defaults = dict(
        policy=StrictPolicy(),
        machine=tiny_machine(4.0),
        sanitize=True,
        park_timeout_s=10.0,
        drain_grace_s=1.0,
        starvation_check_s=0.05,
    )
    defaults.update(overrides)
    cfg = ServeConfig(**defaults)
    server = AdmissionServer(cfg)
    sock = str(tmp_path / "serve.sock")
    await server.start(unix_path=sock)
    run_task = asyncio.ensure_future(server.run_until_drained())
    return server, sock, run_task


async def wait_until(predicate, timeout=2.0, interval=0.005):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(interval)


async def finish(server, run_task):
    """Drain the server and assert the sanitizer saw a clean run."""
    server.request_drain()
    await asyncio.wait_for(run_task, 5.0)
    sanitizer = server.service.sanitizer
    assert sanitizer is not None and sanitizer.ok, sanitizer.summary()


class TestDisconnectWhileParked:
    def test_parked_period_cancelled_and_demand_released(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(tmp_path)
            service = server.service
            a = await ServeClient.connect(unix_path=sock)
            b = await ServeClient.connect(unix_path=sock)
            reply_a = await a.pp_begin(MB(3))
            assert reply_a["admitted"] is True
            # B cannot fit: its pp_begin parks (no reply yet)
            park_task = asyncio.ensure_future(b.pp_begin(MB(3)))
            await wait_until(lambda: len(service.waitlist) == 1)
            # B vanishes mid-park
            await b.close()
            park_task.cancel()
            await wait_until(lambda: len(service.waitlist) == 0)
            assert service.c_disconnect_cancel.value == 1
            # A is unaffected and the books balance after its pp_end
            await a.pp_end(reply_a["pp_id"])
            assert len(service.monitor.registry) == 0
            await a.close()
            await finish(server, run_task)

        asyncio.run(scenario())

    def test_disconnect_of_running_period_admits_waiter(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(tmp_path)
            a = await ServeClient.connect(unix_path=sock)
            b = await ServeClient.connect(unix_path=sock)
            await a.pp_begin(MB(3))
            park_task = asyncio.ensure_future(b.pp_begin(MB(3)))
            await wait_until(lambda: len(server.service.waitlist) == 1)
            # A dies holding an admitted period: its demand must be
            # released and B's parked pp_begin must complete
            await a.close()
            reply_b = await asyncio.wait_for(park_task, 5.0)
            assert reply_b["admitted"] is True
            assert reply_b["waited_s"] > 0.0
            await b.pp_end(reply_b["pp_id"])
            await b.close()
            await finish(server, run_task)

        asyncio.run(scenario())


class TestMalformedFrames:
    def test_bad_json_gets_typed_error_and_connection_survives(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(tmp_path)
            reader, writer = await asyncio.open_unix_connection(sock)
            writer.write(b"this is not json\n")
            await writer.drain()
            reply = protocol.decode_frame(await reader.readline())
            assert reply["ok"] is False
            assert reply["error"]["code"] == ErrorCode.BAD_FRAME
            # same connection still serves valid requests
            writer.write(protocol.encode_frame(
                {"v": protocol.PROTOCOL_VERSION, "id": 1, "op": "query"}
            ))
            await writer.drain()
            reply = protocol.decode_frame(await reader.readline())
            assert reply["ok"] is True
            writer.close()
            assert server.service.c_protocol_errors.value == 1
            await finish(server, run_task)

        asyncio.run(scenario())

    def test_wrong_version_rejected(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(tmp_path)
            reader, writer = await asyncio.open_unix_connection(sock)
            writer.write(protocol.encode_frame({"v": 99, "id": 1, "op": "query"}))
            await writer.drain()
            reply = protocol.decode_frame(await reader.readline())
            assert reply["error"]["code"] == ErrorCode.BAD_VERSION
            writer.close()
            await finish(server, run_task)

        asyncio.run(scenario())

    def test_oversized_frame_replies_then_disconnects(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(
                tmp_path, max_frame_bytes=1024
            )
            reader, writer = await asyncio.open_unix_connection(sock)
            writer.write(b'{"v": 1, "op": "query", "pad": "' + b"x" * 4096 + b'"}\n')
            await writer.drain()
            reply = protocol.decode_frame(await reader.readline())
            assert reply["error"]["code"] == ErrorCode.FRAME_TOO_LARGE
            # the byte stream cannot be re-synchronized: server hangs up
            assert await reader.read() == b""
            writer.close()
            await finish(server, run_task)

        asyncio.run(scenario())


class TestPpEndMisuse:
    def test_double_pp_end_is_unknown_period(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(tmp_path)
            client = await ServeClient.connect(unix_path=sock)
            reply = await client.pp_begin(MB(1))
            await client.pp_end(reply["pp_id"])
            with pytest.raises(ServeReplyError) as err:
                await client.pp_end(reply["pp_id"])
            assert err.value.code == ErrorCode.UNKNOWN_PERIOD
            # the error is per-request: the connection still works
            assert (await client.query())["open_periods"] == 0
            await client.close()
            await finish(server, run_task)

        asyncio.run(scenario())

    def test_pp_end_of_another_connections_period_rejected(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(tmp_path)
            a = await ServeClient.connect(unix_path=sock)
            b = await ServeClient.connect(unix_path=sock)
            reply = await a.pp_begin(MB(1))
            with pytest.raises(ServeReplyError) as err:
                await b.pp_end(reply["pp_id"])
            assert err.value.code == ErrorCode.UNKNOWN_PERIOD
            await a.pp_end(reply["pp_id"])
            await a.close()
            await b.close()
            await finish(server, run_task)

        asyncio.run(scenario())


class TestOverloadAndTimeout:
    def test_pending_queue_bound_yields_retry_after(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(tmp_path, max_pending=1)
            a = await ServeClient.connect(unix_path=sock)
            b = await ServeClient.connect(unix_path=sock)
            c = await ServeClient.connect(unix_path=sock)
            reply_a = await a.pp_begin(MB(3))
            park_task = asyncio.ensure_future(b.pp_begin(MB(3)))
            await wait_until(lambda: len(server.service.waitlist) == 1)
            # the queue is full: C is bounced instead of queued
            with pytest.raises(ServeReplyError) as err:
                await c.pp_begin(MB(3))
            assert err.value.code == ErrorCode.RETRY_AFTER
            assert err.value.retry_after_s > 0
            assert server.service.c_retry_after.value == 1
            await a.pp_end(reply_a["pp_id"])
            reply_b = await asyncio.wait_for(park_task, 5.0)
            await b.pp_end(reply_b["pp_id"])
            for client in (a, b, c):
                await client.close()
            await finish(server, run_task)

        asyncio.run(scenario())

    def test_park_timeout_cancels_the_period(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(
                tmp_path, park_timeout_s=0.15
            )
            a = await ServeClient.connect(unix_path=sock)
            b = await ServeClient.connect(unix_path=sock)
            reply_a = await a.pp_begin(MB(3))
            with pytest.raises(ServeReplyError) as err:
                await b.pp_begin(MB(3))
            assert err.value.code == ErrorCode.TIMEOUT
            assert len(server.service.waitlist) == 0
            assert server.service.c_park_timeout.value == 1
            await a.pp_end(reply_a["pp_id"])
            await a.close()
            await b.close()
            await finish(server, run_task)

        asyncio.run(scenario())


class TestDrain:
    def test_drain_wakes_parked_waiters_with_draining(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(tmp_path)
            a = await ServeClient.connect(unix_path=sock)
            b = await ServeClient.connect(unix_path=sock)
            c = await ServeClient.connect(unix_path=sock)
            reply_a = await a.pp_begin(MB(3))
            park_task = asyncio.ensure_future(b.pp_begin(MB(3)))
            await wait_until(lambda: len(server.service.waitlist) == 1)
            drain_reply = await c.drain()
            assert drain_reply["draining"] is True
            assert drain_reply["waiting"] == 1
            # the parked client hears DRAINING, not silence
            with pytest.raises(ServeReplyError) as err:
                await asyncio.wait_for(park_task, 5.0)
            assert err.value.code == ErrorCode.DRAINING
            # the running period may still finish inside the grace window
            await a.pp_end(reply_a["pp_id"])
            await asyncio.wait_for(run_task, 5.0)
            sanitizer = server.service.sanitizer
            assert sanitizer.ok, sanitizer.summary()
            for client in (a, b, c):
                await client.close()

        asyncio.run(scenario())

    def test_pp_begin_after_drain_rejected(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(tmp_path)
            client = await ServeClient.connect(unix_path=sock)
            server.request_drain()
            await wait_until(lambda: server.draining)
            with pytest.raises((ServeReplyError, ConnectionError, Exception)):
                await client.pp_begin(MB(1))
            await client.close()
            await asyncio.wait_for(run_task, 5.0)

        asyncio.run(scenario())


class TestSharingAndStarvation:
    def test_shared_working_set_charged_once(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(tmp_path)
            service = server.service
            a = await ServeClient.connect(unix_path=sock)
            b = await ServeClient.connect(unix_path=sock)
            # two siblings declaring one 3 MB shared working set both fit
            # in 4 MB because the key is charged once (paper §3.2)
            ra = await a.pp_begin(MB(3), sharing_key="p0/grid")
            rb = await b.pp_begin(MB(3), sharing_key="p0/grid")
            assert ra["admitted"] and rb["admitted"]
            usage = service.resources.state(
                next(iter(service.managed_kinds))
            ).usage_bytes
            assert usage == MB(3)
            await a.pp_end(ra["pp_id"])
            await b.pp_end(rb["pp_id"])
            await a.close()
            await b.close()
            await finish(server, run_task)

        asyncio.run(scenario())

    def test_oversized_period_force_admitted_when_idle(self, tmp_path):
        async def scenario():
            server, sock, run_task = await start_server(tmp_path)
            client = await ServeClient.connect(unix_path=sock)
            # 8 MB demand on a 4 MB LLC: inadmissible by the predicate,
            # but the resource is idle so the starvation guard forces it
            reply = await client.pp_begin(MB(8))
            assert reply["admitted"] is True
            assert reply["forced"] is True
            await client.pp_end(reply["pp_id"])
            await client.close()
            await finish(server, run_task)

        asyncio.run(scenario())
