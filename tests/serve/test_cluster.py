"""Cluster front-end: redirect, forward, aggregation, equivalence, migration."""

import asyncio
import dataclasses
from dataclasses import replace

import pytest

from repro.config import default_machine_config
from repro.core.api import MB
from repro.core.policy import StrictPolicy
from repro.serve.client import ServeClient
from repro.serve.protocol import ErrorCode
from repro.serve.resilient import ResilientServeClient
from repro.serve.server import AdmissionServer, ServeConfig
from repro.serve.cluster import start_local_cluster

CAPACITY_MB = 4.0


def tiny_machine(capacity_mb: float = CAPACITY_MB):
    machine = default_machine_config()
    quantum = machine.llc.line_bytes * machine.llc.associativity
    capacity = max(quantum, int(capacity_mb * 1024 * 1024) // quantum * quantum)
    return replace(machine, llc=replace(machine.llc, capacity_bytes=capacity))


async def start_cluster(tmp_path, n=2, capacity_mb=CAPACITY_MB, seed=0,
                        supervise=False, journal=False,
                        **frontend_overrides):
    """A local cluster with test-speed health/balance loops.

    Supervision is off by default so fault-path tests control shard
    lifetime themselves; supervision tests opt in (usually together with
    ``journal=True`` so restarts have something to replay).
    """
    sock = str(tmp_path / "placer.sock")
    cfg = ServeConfig(
        policy=StrictPolicy(), machine=tiny_machine(capacity_mb), sanitize=True
    )
    if journal:
        cfg = replace(cfg, journal_path=str(tmp_path / "shard.journal"))
    cluster = await start_local_cluster(
        cfg, n, sock, seed=seed, supervise=supervise
    )
    overrides = dict(
        health_interval_s=0.05, balance_interval_s=0.05, migrate_after_s=0.1
    )
    overrides.update(frontend_overrides)
    cluster.frontend.cfg = dataclasses.replace(
        cluster.frontend.cfg, **overrides
    )
    return cluster, sock


async def drain(cluster):
    cluster.request_drain()
    return await asyncio.wait_for(cluster.run_until_drained(), 20.0)


class TestRedirect:
    def test_redirecting_hello_gets_a_typed_shard_address(self, tmp_path):
        async def scenario():
            cluster, sock = await start_cluster(tmp_path)
            client = await ServeClient.connect(unix_path=sock)
            reply = await client.call_raw(
                "hello", client="seeker", redirect=True, timeout=5.0
            )
            assert reply["ok"] is False
            error = reply["error"]
            assert error["code"] == ErrorCode.REDIRECT
            shard = error["shard"]
            assert shard["name"].startswith("shard")
            assert shard["unix_path"].endswith(f".{shard['name']}")
            await client.close()
            assert await drain(cluster) == 0

        asyncio.run(scenario())

    def test_resilient_client_follows_the_redirect(self, tmp_path):
        async def scenario():
            cluster, sock = await start_cluster(tmp_path)
            client = ResilientServeClient(
                unix_path=sock, client_id="hopper",
                backoff_base_s=0.01, max_attempts=10,
            )
            begun = await client.pp_begin(MB(1))
            assert begun["admitted"] is True
            assert client.redirects == 1
            # after the redirect the client speaks to the shard directly
            assert cluster.frontend.c_forwards.value == 0
            await client.pp_end(begun["pp_id"])
            await client.close()
            assert await drain(cluster) == 0

        asyncio.run(scenario())

    def test_shard_death_falls_back_and_replaces(self, tmp_path):
        async def scenario():
            cluster, sock = await start_cluster(tmp_path)
            client = ResilientServeClient(
                unix_path=sock, client_id="survivor",
                backoff_base_s=0.01, max_attempts=40,
            )
            begun = await client.pp_begin(MB(1))
            home = cluster.frontend.placer.assignments["survivor"]
            victim = next(
                s for s in cluster.servers
                if s.cfg.shard_name == home
            )
            await victim.abort()
            # next call: shard socket is gone, the client falls back to the
            # front-end, which re-places it on the surviving shard
            reply = await asyncio.wait_for(client.pp_begin(MB(1)), 15.0)
            assert reply["admitted"] is True
            now = cluster.frontend.placer.assignments["survivor"]
            assert now != home
            assert cluster.frontend.placer.replacements_total >= 1
            await client.pp_end(reply["pp_id"])
            await client.close()
            cluster.servers.remove(victim)
            assert await drain(cluster) == 0
            assert begun["admitted"] is True

        asyncio.run(scenario())


class TestForward:
    def test_thin_client_is_forwarded_transparently(self, tmp_path):
        async def scenario():
            cluster, sock = await start_cluster(tmp_path)
            client = await ServeClient.connect(unix_path=sock)
            await client.hello("plain")
            begun = await client.pp_begin(MB(1), timeout=5.0)
            assert begun["admitted"] is True
            done = await client.pp_end(begun["pp_id"], timeout=5.0)
            assert done["released"] is True
            assert cluster.frontend.c_forwards.value == 1
            await client.close()
            assert await drain(cluster) == 0

        asyncio.run(scenario())

    def test_binary_negotiation_rides_through_the_pump(self, tmp_path):
        async def scenario():
            cluster, sock = await start_cluster(tmp_path)
            client = await ServeClient.connect(unix_path=sock)
            ack = await client.hello("bin", binary=True)
            assert ack["binary"] is True
            assert client.binary is True
            # frames after the ack travel length-prefixed on both legs
            begun = await client.pp_begin(MB(1), timeout=5.0)
            assert begun["admitted"] is True
            await client.pp_end(begun["pp_id"], timeout=5.0)
            await client.close()
            assert await drain(cluster) == 0

        asyncio.run(scenario())

    def test_anonymous_begin_is_placed_and_forwarded(self, tmp_path):
        async def scenario():
            cluster, sock = await start_cluster(tmp_path)
            client = await ServeClient.connect(unix_path=sock)
            begun = await client.pp_begin(MB(1), timeout=5.0)
            assert begun["admitted"] is True
            await client.pp_end(begun["pp_id"], timeout=5.0)
            await client.close()
            assert cluster.frontend.c_forwards.value == 1
            assert await drain(cluster) == 0

        asyncio.run(scenario())


class TestAggregation:
    def test_query_sums_resources_across_shards(self, tmp_path):
        async def scenario():
            cluster, sock = await start_cluster(tmp_path, n=3)
            holders = []
            for i in range(3):
                c = await ServeClient.connect(unix_path=sock)
                await c.hello(f"holder-{i}")
                begun = await c.pp_begin(MB(2), timeout=5.0)
                holders.append((c, begun["pp_id"]))
            probe = await ServeClient.connect(unix_path=sock)
            q = await probe.query()
            assert q["cluster"] is True
            assert q["open_periods"] == 3
            llc = q["resources"]["llc"]
            assert llc["usage_bytes"] == 3 * MB(2)
            # 3 shards of per-shard capacity: the cluster manages the sum
            assert llc["capacity_bytes"] > 2 * MB(CAPACITY_MB)
            assert set(q["shards"]) == {"shard0", "shard1", "shard2"}
            assert q["placer"]["placements_total"] >= 3
            stats = await probe.stats()
            assert stats["counters"]["forwards_total"] == 3
            assert stats["shard_counters"]["requests_total"] > 0
            await probe.close()
            for c, pp_id in holders:
                await c.pp_end(pp_id, timeout=5.0)
                await c.close()
            assert await drain(cluster) == 0

        asyncio.run(scenario())

    def test_per_period_query_is_rejected_at_the_frontend(self, tmp_path):
        async def scenario():
            cluster, sock = await start_cluster(tmp_path)
            probe = await ServeClient.connect(unix_path=sock)
            reply = await probe.call_raw("query", pp_id=1, timeout=5.0)
            assert reply["ok"] is False
            assert reply["error"]["code"] == ErrorCode.BAD_REQUEST
            await probe.close()
            assert await drain(cluster) == 0

        asyncio.run(scenario())


class TestEquivalence:
    """A 1-shard cluster admits exactly like the bare server it wraps."""

    SESSIONS = [2.0, 3.5, 1.0, 3.9, 0.5, 2.2, 1.7, 3.0]

    async def _run_sessions(self, sock):
        decisions = []
        base = None
        for i, demand_mb in enumerate(self.SESSIONS):
            client = await ServeClient.connect(unix_path=sock)
            await client.hello(f"eq-{i}")
            begun = await client.pp_begin(MB(demand_mb), timeout=10.0)
            # pp_ids come from a process-global counter; compare the
            # *relative* allocation sequence, which is what admission
            # equivalence actually promises
            base = begun["pp_id"] if base is None else base
            decisions.append(
                (begun["pp_id"] - base, begun["admitted"], begun["forced"])
            )
            await client.pp_end(begun["pp_id"], timeout=10.0)
            await client.close()
        return decisions

    def test_single_shard_cluster_matches_bare_server(self, tmp_path):
        async def scenario():
            bare_sock = str(tmp_path / "bare.sock")
            bare = AdmissionServer(ServeConfig(
                policy=StrictPolicy(), machine=tiny_machine(), sanitize=True
            ))
            await bare.start(unix_path=bare_sock)
            bare_decisions = await self._run_sessions(bare_sock)
            bare.request_drain()
            await asyncio.wait_for(bare.run_until_drained(), 10.0)

            cluster, sock = await start_cluster(tmp_path, n=1)
            cluster_decisions = await self._run_sessions(sock)
            assert await drain(cluster) == 0
            assert cluster_decisions == bare_decisions

        asyncio.run(scenario())


async def _wait_for(predicate, timeout_s=10.0, interval_s=0.05):
    deadline = asyncio.get_event_loop().time() + timeout_s
    while asyncio.get_event_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval_s)
    return predicate()


class TestSupervision:
    OVERRIDES = dict(
        supervise_interval_s=0.05, restart_backoff_s=0.05,
        restart_backoff_cap_s=0.2, crash_loop_window_s=0.0,
        restart_ready_timeout_s=10.0,
    )

    def test_supervisor_restarts_dead_shard_from_journal(self, tmp_path):
        """SIGKILL-equivalent shard death: the supervisor restarts the
        shard from its own journal and the open period is exactly
        restored — admitted charge and all (satellite d)."""
        async def scenario():
            cluster, sock = await start_cluster(
                tmp_path, n=2, supervise=True, journal=True, **self.OVERRIDES
            )
            fe = cluster.frontend
            client = ResilientServeClient(
                unix_path=sock, client_id="phoenix",
                backoff_base_s=0.01, max_attempts=40,
            )
            begun = await client.pp_begin(MB(1))
            assert begun["admitted"] is True
            home = fe.placer.assignments["phoenix"]
            victim = next(
                s for s in cluster.servers if s.cfg.shard_name == home
            )
            await victim.abort()

            assert await _wait_for(lambda: fe.c_shard_restarts.value >= 1)
            assert fe.placer.shards[home].alive is True
            assert fe.placer.revivals_total >= 1
            assert fe.quarantined == set()
            fresh = next(
                s for s in cluster.servers if s.cfg.shard_name == home
            )
            assert fresh is not victim
            assert fresh.service.replayed_periods == 1

            # the restored period still charges the shard's capacity
            probe = await ServeClient.connect(unix_path=f"{sock}.{home}")
            q = await probe.query()
            assert q["open_periods"] == 1
            assert q["resources"]["llc"]["usage_bytes"] == MB(1)
            await probe.close()

            # and the client can close it out against the new incarnation
            done = await asyncio.wait_for(client.pp_end(begun["pp_id"]), 10.0)
            assert done["released"] is True
            await client.close()
            # the aborted incarnation was swapped out before its journal
            # was flushed; the replacement drains with a clean sanitizer
            assert await drain(cluster) == 0

        asyncio.run(scenario())

    def test_draining_shard_is_not_marked_dead_by_the_sweep(self, tmp_path):
        """A shard that is down because *we* are restarting it must not
        be declared dead by the health sweep or the data path — that
        would skew shards_alive and could flip brownout (satellite b)."""
        async def scenario():
            cluster, sock = await start_cluster(tmp_path, n=2)
            fe = cluster.frontend
            fe.placer.mark_draining("shard0")
            victim = next(
                s for s in cluster.servers if s.cfg.shard_name == "shard0"
            )
            await victim.abort()
            for _ in range(3):
                await fe._health_sweep()
            assert fe.placer.shards["shard0"].alive is True
            assert len(fe.placer.alive_shards()) == 2
            # data-path trouble reports are ignored for draining shards too
            fe.shard_trouble(fe.placer.shards["shard0"])
            assert fe.placer.shards["shard0"].alive is True
            # but the placer won't put anyone new on it
            client = await ServeClient.connect(unix_path=sock)
            await client.hello("newcomer")
            begun = await client.pp_begin(MB(1), timeout=5.0)
            assert begun["admitted"] is True
            assert fe.placer.assignments["newcomer"] == "shard1"
            await client.pp_end(begun["pp_id"], timeout=5.0)
            await client.close()
            cluster.servers.remove(victim)
            assert await drain(cluster) == 0

        asyncio.run(scenario())

    def test_crash_looping_shard_is_quarantined(self, tmp_path):
        async def scenario():
            cluster, sock = await start_cluster(
                tmp_path, n=2, supervise=True,
                supervise_interval_s=0.05, restart_backoff_s=0.01,
                restart_backoff_cap_s=0.05, crash_loop_window_s=60.0,
                quarantine_after=2, restart_ready_timeout_s=0.2,
            )
            fe = cluster.frontend
            attempts = 0

            async def failing_restart():
                nonlocal attempts
                attempts += 1
                raise RuntimeError("simulated restart failure")

            fe.register_restarter("shard0", failing_restart)
            victim = next(
                s for s in cluster.servers if s.cfg.shard_name == "shard0"
            )
            await victim.abort()
            cluster.servers.remove(victim)

            assert await _wait_for(lambda: "shard0" in fe.quarantined)
            assert attempts == 2
            # a quarantined shard is not retried
            await asyncio.sleep(0.3)
            assert attempts == 2
            assert fe.placer.shards["shard0"].alive is False
            assert await drain(cluster) == 0

        asyncio.run(scenario())

    def test_unknown_restarter_name_is_rejected(self, tmp_path):
        async def scenario():
            cluster, sock = await start_cluster(tmp_path, n=2)
            with pytest.raises(Exception):
                cluster.frontend.register_restarter(
                    "shard9", lambda: None
                )
            assert await drain(cluster) == 0

        asyncio.run(scenario())


class TestRollingRestart:
    OVERRIDES = dict(
        supervise_interval_s=0.05, restart_backoff_s=0.05,
        restart_backoff_cap_s=0.2, crash_loop_window_s=0.0,
        restart_ready_timeout_s=10.0, shard_drain_grace_s=2.0,
    )

    def test_rolling_restart_cycles_every_shard(self, tmp_path):
        async def scenario():
            cluster, sock = await start_cluster(
                tmp_path, n=2, supervise=True, journal=True, **self.OVERRIDES
            )
            fe = cluster.frontend
            before = list(cluster.servers)
            results = await asyncio.wait_for(
                cluster.rolling_restart(grace_s=1.0), 30.0
            )
            assert results == {"shard0": True, "shard1": True}
            assert fe.c_shard_restarts.value == 2
            assert fe.c_shard_drains.value == 2
            assert len(fe.placer.alive_shards()) == 2
            assert not any(s.draining for s in fe.placer.shards.values())
            # every incarnation was actually replaced
            assert all(s not in before for s in cluster.servers)
            # and the rolled cluster still admits
            client = await ServeClient.connect(unix_path=sock)
            await client.hello("after-roll")
            begun = await client.pp_begin(MB(1), timeout=5.0)
            assert begun["admitted"] is True
            await client.pp_end(begun["pp_id"], timeout=5.0)
            await client.close()
            assert await drain(cluster) == 0

        asyncio.run(scenario())

    def test_drain_verb_targets_one_shard(self, tmp_path):
        """{"op": "drain", "shard": ...} drains and (with a restarter
        armed) restarts exactly that shard through the admin path."""
        async def scenario():
            cluster, sock = await start_cluster(
                tmp_path, n=2, supervise=True, journal=True, **self.OVERRIDES
            )
            fe = cluster.frontend
            probe = await ServeClient.connect(unix_path=sock)
            reply = await probe.call_raw(
                "drain", shard="shard1", grace_s=1.0, timeout=20.0
            )
            assert reply["ok"] is True
            assert reply["shard"] == "shard1"
            assert reply["drained"] is True
            assert reply["restarted"] is True
            assert fe.c_shard_restarts.value == 1
            assert len(fe.placer.alive_shards()) == 2

            bad = await probe.call_raw("drain", shard="nope", timeout=5.0)
            assert bad["ok"] is False
            assert bad["error"]["code"] == ErrorCode.BAD_REQUEST
            await probe.close()
            assert await drain(cluster) == 0

        asyncio.run(scenario())

    def test_rolling_verb_cycles_the_cluster(self, tmp_path):
        async def scenario():
            cluster, sock = await start_cluster(
                tmp_path, n=2, supervise=True, journal=True, **self.OVERRIDES
            )
            fe = cluster.frontend
            probe = await ServeClient.connect(unix_path=sock)
            reply = await probe.call_raw(
                "drain", rolling=True, grace_s=1.0, timeout=30.0
            )
            assert reply["ok"] is True
            assert reply["rolling"] is True
            assert reply["shards"] == {"shard0": True, "shard1": True}
            assert reply["rolled"] == 2
            assert fe.c_shard_restarts.value == 2
            await probe.close()
            assert await drain(cluster) == 0

        asyncio.run(scenario())


class TestMigration:
    def test_parked_begin_moves_to_the_shard_with_headroom(self, tmp_path):
        async def scenario():
            cluster, sock = await start_cluster(tmp_path, n=2)
            fe = cluster.frontend
            fillers = []
            # two 3 MB fillers, staggered so the health loop observes the
            # first before the second is placed (they land on both shards)
            for i in range(2):
                c = await ServeClient.connect(unix_path=sock)
                await c.hello(f"filler-{i}")
                begun = await c.pp_begin(MB(3), timeout=5.0)
                assert begun["admitted"] is True
                fillers.append((c, begun["pp_id"]))
                await asyncio.sleep(0.2)

            parker = await ServeClient.connect(unix_path=sock)
            await parker.hello("parker")
            begin = asyncio.ensure_future(
                parker.pp_begin(MB(2.5), timeout=30.0)
            )
            await asyncio.sleep(0.4)
            assert not begin.done()
            home = fe.placer.assignments["parker"]

            # free the *other* shard: parker's home stays saturated, so the
            # balance loop must migrate the parked begin across
            other = next(
                i for i in range(2)
                if fe.placer.assignments[f"filler-{i}"] != home
            )
            c, pp_id = fillers[other]
            await c.pp_end(pp_id, timeout=5.0)

            reply = await asyncio.wait_for(begin, 15.0)
            assert reply["admitted"] is True
            assert fe.c_migrations.value >= 1
            assert fe.placer.assignments["parker"] != home
            await parker.pp_end(reply["pp_id"], timeout=5.0)

            keep = fillers[1 - other]
            await keep[0].pp_end(keep[1], timeout=5.0)
            for c, _ in fillers:
                await c.close()
            await parker.close()
            assert await drain(cluster) == 0

        asyncio.run(scenario())
