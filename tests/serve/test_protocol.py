"""Wire-protocol framing and validation tests (NDJSON and binary)."""

import asyncio
import json
from dataclasses import replace

import pytest

from repro.config import default_machine_config
from repro.core.policy import StrictPolicy
from repro.core.progress_period import ResourceKind, ReuseLevel
from repro.errors import ProtocolError
from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.serve.protocol import ErrorCode
from repro.serve.server import AdmissionServer, ServeConfig


def frame(**fields):
    base = {"v": protocol.PROTOCOL_VERSION, "id": 1}
    base.update(fields)
    return base


class TestFraming:
    def test_encode_round_trips_through_decode(self):
        doc = frame(op="query", pp_id=3)
        assert protocol.decode_frame(protocol.encode_frame(doc)) == doc

    def test_encode_is_one_line(self):
        raw = protocol.encode_frame(frame(op="stats"))
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1

    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError) as err:
            protocol.decode_frame(b"pp_begin llc 1024\n")
        assert err.value.code == ErrorCode.BAD_FRAME

    def test_decode_rejects_non_object_json(self):
        with pytest.raises(ProtocolError) as err:
            protocol.decode_frame(b"[1, 2, 3]\n")
        assert err.value.code == ErrorCode.BAD_FRAME

    def test_decode_rejects_oversized_frames(self):
        raw = protocol.encode_frame(frame(op="query", pad="x" * 100))
        with pytest.raises(ProtocolError) as err:
            protocol.decode_frame(raw, max_bytes=64)
        assert err.value.code == ErrorCode.FRAME_TOO_LARGE


class TestParseRequest:
    def test_pp_begin_parses_all_fields(self):
        request = protocol.parse_request(frame(
            op="pp_begin", resource="llc", demand_bytes=4096,
            reuse="high", label="dgemm", sharing_key="p0/k",
        ))
        assert request.op == "pp_begin"
        assert request.resource is ResourceKind.LLC
        assert request.demand_bytes == 4096
        assert request.reuse is ReuseLevel.HIGH
        assert request.label == "dgemm"
        assert request.sharing_key == "p0/k"

    def test_wrong_version_is_rejected(self):
        with pytest.raises(ProtocolError) as err:
            protocol.parse_request(
                {"v": protocol.PROTOCOL_VERSION + 1, "id": 1, "op": "query"}
            )
        assert err.value.code == ErrorCode.BAD_VERSION

    def test_missing_version_is_rejected(self):
        with pytest.raises(ProtocolError) as err:
            protocol.parse_request({"id": 1, "op": "query"})
        assert err.value.code == ErrorCode.BAD_VERSION

    def test_unknown_op_is_rejected(self):
        with pytest.raises(ProtocolError) as err:
            protocol.parse_request(frame(op="pp_suspend"))
        assert err.value.code == ErrorCode.UNKNOWN_OP

    @pytest.mark.parametrize("field,value", [
        ("demand_bytes", -1),
        ("demand_bytes", "4096"),
        ("demand_bytes", True),
        ("reuse", "extreme"),
        ("resource", "gpu"),
        ("sharing_key", 7),
    ])
    def test_pp_begin_field_validation(self, field, value):
        doc = frame(op="pp_begin", resource="llc", demand_bytes=4096, reuse="low")
        doc[field] = value
        with pytest.raises(ProtocolError) as err:
            protocol.parse_request(doc)
        assert err.value.code == ErrorCode.BAD_REQUEST

    def test_pp_end_requires_positive_pp_id(self):
        with pytest.raises(ProtocolError):
            protocol.parse_request(frame(op="pp_end"))
        with pytest.raises(ProtocolError):
            protocol.parse_request(frame(op="pp_end", pp_id=0))
        request = protocol.parse_request(frame(op="pp_end", pp_id=12))
        assert request.pp_id == 12

    def test_query_pp_id_is_optional(self):
        assert protocol.parse_request(frame(op="query")).pp_id is None
        assert protocol.parse_request(frame(op="query", pp_id=2)).pp_id == 2

    def test_request_id_may_be_absent(self):
        request = protocol.parse_request(
            {"v": protocol.PROTOCOL_VERSION, "op": "stats"}
        )
        assert request.id is None


class TestReplies:
    def test_ok_reply_shape(self):
        reply = protocol.ok_reply(7, pp_id=3, admitted=True)
        assert reply == {
            "v": protocol.PROTOCOL_VERSION, "id": 7, "ok": True,
            "pp_id": 3, "admitted": True,
        }

    def test_error_reply_shape(self):
        reply = protocol.error_reply(
            9, ErrorCode.RETRY_AFTER, "queue full", retry_after_s=0.05
        )
        assert reply["ok"] is False
        assert reply["id"] == 9
        assert reply["error"]["code"] == ErrorCode.RETRY_AFTER
        assert reply["error"]["retry_after_s"] == 0.05

    def test_replies_are_json_encodable(self):
        for reply in (
            protocol.ok_reply(None, stats={}),
            protocol.error_reply(None, ErrorCode.INTERNAL, "boom"),
        ):
            json.dumps(reply)


# ----------------------------------------------------------------------
# binary (length-prefixed) framing — pure codec tests
# ----------------------------------------------------------------------

#: one representative frame per protocol verb
VERB_FRAMES = [
    frame(op="hello", client="c0"),
    frame(op="hello", client="c0", binary=True),
    frame(op="heartbeat"),
    frame(op="pp_begin", resource="llc", demand_bytes=4096, reuse="high",
          label="dgemm", sharing_key="p0/k", token="t-1"),
    frame(op="pp_end", pp_id=12),
    frame(op="query"),
    frame(op="query", pp_id=2),
    frame(op="stats"),
    frame(op="drain"),
]


class TestBinaryFraming:
    @pytest.mark.parametrize(
        "doc", VERB_FRAMES, ids=lambda d: f"{d['op']}-{len(d)}"
    )
    def test_every_verb_round_trips(self, doc):
        raw = protocol.encode_binary_frame(doc)
        assert protocol.decode_binary_frame(raw) == doc
        # the generic decoder dispatches on the magic byte
        assert protocol.decode_any_frame(raw) == doc

    def test_frame_layout(self):
        raw = protocol.encode_binary_frame(frame(op="stats"))
        assert raw[0] == protocol.BINARY_MAGIC
        length = int.from_bytes(raw[1:protocol.BINARY_HEADER_BYTES], "big")
        assert length == len(raw) - protocol.BINARY_HEADER_BYTES

    def test_magic_is_invalid_utf8_lead_byte(self):
        # a binary frame can never be mistaken for an NDJSON line (and
        # vice versa): 0xB5 is a UTF-8 continuation byte, never a lead
        assert protocol.BINARY_MAGIC >= 0x80
        ndjson = protocol.encode_frame(frame(op="stats"))
        assert ndjson[0] != protocol.BINARY_MAGIC
        assert protocol.decode_any_frame(ndjson) == frame(op="stats")

    def test_truncated_header_is_rejected(self):
        raw = protocol.encode_binary_frame(frame(op="stats"))
        with pytest.raises(ProtocolError) as err:
            protocol.parse_binary_header(raw[:3])
        assert err.value.code == ErrorCode.BAD_FRAME

    def test_bad_magic_is_rejected(self):
        raw = bytearray(protocol.encode_binary_frame(frame(op="stats")))
        raw[0] = 0x7B  # "{" — an NDJSON byte where the magic belongs
        with pytest.raises(ProtocolError) as err:
            protocol.parse_binary_header(bytes(raw[:5]))
        assert err.value.code == ErrorCode.BAD_FRAME

    def test_truncated_payload_is_rejected(self):
        raw = protocol.encode_binary_frame(frame(op="query", pp_id=3))
        with pytest.raises(ProtocolError) as err:
            protocol.decode_binary_frame(raw[:-2])
        assert err.value.code == ErrorCode.BAD_FRAME

    def test_trailing_garbage_is_rejected(self):
        raw = protocol.encode_binary_frame(frame(op="query"))
        with pytest.raises(ProtocolError) as err:
            protocol.decode_binary_frame(raw + b"xx")
        assert err.value.code == ErrorCode.BAD_FRAME

    def test_oversized_frame_is_rejected(self):
        raw = protocol.encode_binary_frame(frame(op="query", pad="x" * 100))
        with pytest.raises(ProtocolError) as err:
            protocol.parse_binary_header(raw[:5], max_bytes=64)
        assert err.value.code == ErrorCode.FRAME_TOO_LARGE
        with pytest.raises(ProtocolError) as err:
            protocol.decode_binary_frame(raw, max_bytes=64)
        assert err.value.code == ErrorCode.FRAME_TOO_LARGE

    def test_non_object_binary_payload_is_rejected(self):
        payload = b"[1, 2, 3]"
        raw = (bytes((protocol.BINARY_MAGIC,))
               + len(payload).to_bytes(4, "big") + payload)
        with pytest.raises(ProtocolError) as err:
            protocol.decode_binary_frame(raw)
        assert err.value.code == ErrorCode.BAD_FRAME


# ----------------------------------------------------------------------
# binary framing — live server round trips and NDJSON interop
# ----------------------------------------------------------------------
def _serve_machine(capacity_mb: float = 4.0):
    machine = default_machine_config()
    quantum = machine.llc.line_bytes * machine.llc.associativity
    capacity = max(quantum, int(capacity_mb * 1024 * 1024) // quantum * quantum)
    return replace(machine, llc=replace(machine.llc, capacity_bytes=capacity))


async def _start_server(tmp_path):
    cfg = ServeConfig(
        policy=StrictPolicy(), machine=_serve_machine(), sanitize=True,
        drain_grace_s=1.0,
    )
    server = AdmissionServer(cfg)
    sock = str(tmp_path / "serve.sock")
    await server.start(unix_path=sock)
    run_task = asyncio.ensure_future(server.run_until_drained())
    return server, sock, run_task


async def _finish(server, run_task):
    server.request_drain()
    await asyncio.wait_for(run_task, 5.0)
    sanitizer = server.service.sanitizer
    assert sanitizer is not None and sanitizer.ok, sanitizer.summary()


class TestBinaryEndToEnd:
    def test_every_verb_over_a_binary_connection(self, tmp_path):
        async def scenario():
            server, sock, run_task = await _start_server(tmp_path)
            client = await ServeClient.connect(unix_path=sock)
            try:
                reply = await client.hello("bin-client", binary=True)
                assert reply["binary"] is True
                assert client.binary is True
                assert (await client.heartbeat())["ok"]
                begin = await client.pp_begin(
                    demand_bytes=1 << 20, reuse="high", label="bin/period"
                )
                assert begin["admitted"] is True
                query = await client.query(begin["pp_id"])
                assert query["period"]["pp_id"] == begin["pp_id"]
                assert query["period"]["state"] in ("admitted", "running")
                assert "resources" in await client.query()
                stats = await client.stats()
                assert stats["counters"]["admitted_immediate_total"] >= 1
                assert (await client.pp_end(begin["pp_id"]))["ok"]
            finally:
                await client.close()
            await _finish(server, run_task)

        asyncio.run(scenario())

    def test_ndjson_and_binary_clients_interoperate(self, tmp_path):
        async def scenario():
            server, sock, run_task = await _start_server(tmp_path)
            plain = await ServeClient.connect(unix_path=sock)
            binary = await ServeClient.connect(unix_path=sock)
            try:
                await plain.hello("plain-client")
                await binary.hello("binary-client", binary=True)
                assert plain.binary is False and binary.binary is True
                # interleave periods from both encodings on one server
                b1 = await binary.pp_begin(demand_bytes=1 << 20, reuse="high")
                p1 = await plain.pp_begin(demand_bytes=1 << 20, reuse="low")
                assert b1["admitted"] and p1["admitted"]
                assert b1["pp_id"] != p1["pp_id"]
                await plain.pp_end(p1["pp_id"])
                await binary.pp_end(b1["pp_id"])
                stats = await plain.stats()
                assert stats["counters"]["admitted_immediate_total"] >= 2
            finally:
                await plain.close()
                await binary.close()
            await _finish(server, run_task)

        asyncio.run(scenario())

    def test_hello_without_binary_keeps_ndjson(self, tmp_path):
        async def scenario():
            server, sock, run_task = await _start_server(tmp_path)
            client = await ServeClient.connect(unix_path=sock)
            try:
                reply = await client.hello("plain")
                assert "binary" not in reply
                assert client.binary is False
                assert (await client.heartbeat())["ok"]
            finally:
                await client.close()
            await _finish(server, run_task)

        asyncio.run(scenario())

    def test_server_rejects_bad_magic_with_typed_error(self, tmp_path):
        async def scenario():
            server, sock, run_task = await _start_server(tmp_path)
            reader, writer = await asyncio.open_unix_connection(sock)
            try:
                writer.write(protocol.encode_frame(
                    frame(op="hello", client="x", binary=True)
                ))
                await writer.drain()
                reply = protocol.decode_frame(await reader.readline())
                assert reply["binary"] is True
                # now in binary mode: 5 header bytes with a wrong magic
                writer.write(b"\x00\x00\x00\x00\x02")
                await writer.drain()
                # the typed reject comes back binary-framed
                header = await reader.readexactly(protocol.BINARY_HEADER_BYTES)
                length = protocol.parse_binary_header(header)
                payload = await reader.readexactly(length)
                reply = protocol.decode_binary_frame(header + payload)
                assert reply["ok"] is False
                assert reply["error"]["code"] == ErrorCode.BAD_FRAME
                # ... and the server hangs up (desynchronized stream)
                assert await reader.read() == b""
            finally:
                writer.close()
            await _finish(server, run_task)

        asyncio.run(scenario())

    def test_server_rejects_oversized_binary_frame_with_typed_error(
        self, tmp_path
    ):
        async def scenario():
            server, sock, run_task = await _start_server(tmp_path)
            reader, writer = await asyncio.open_unix_connection(sock)
            try:
                writer.write(protocol.encode_frame(
                    frame(op="hello", client="x", binary=True)
                ))
                await writer.drain()
                protocol.decode_frame(await reader.readline())
                # header claiming a payload far beyond max_frame_bytes
                huge = server.cfg.max_frame_bytes + 1
                writer.write(
                    bytes((protocol.BINARY_MAGIC,)) + huge.to_bytes(4, "big")
                )
                await writer.drain()
                header = await reader.readexactly(protocol.BINARY_HEADER_BYTES)
                length = protocol.parse_binary_header(header)
                payload = await reader.readexactly(length)
                reply = protocol.decode_binary_frame(header + payload)
                assert reply["ok"] is False
                assert reply["error"]["code"] == ErrorCode.FRAME_TOO_LARGE
                assert await reader.read() == b""
            finally:
                writer.close()
            await _finish(server, run_task)

        asyncio.run(scenario())
