"""Wire-protocol framing and validation tests."""

import json

import pytest

from repro.core.progress_period import ResourceKind, ReuseLevel
from repro.errors import ProtocolError
from repro.serve import protocol
from repro.serve.protocol import ErrorCode


def frame(**fields):
    base = {"v": protocol.PROTOCOL_VERSION, "id": 1}
    base.update(fields)
    return base


class TestFraming:
    def test_encode_round_trips_through_decode(self):
        doc = frame(op="query", pp_id=3)
        assert protocol.decode_frame(protocol.encode_frame(doc)) == doc

    def test_encode_is_one_line(self):
        raw = protocol.encode_frame(frame(op="stats"))
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1

    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError) as err:
            protocol.decode_frame(b"pp_begin llc 1024\n")
        assert err.value.code == ErrorCode.BAD_FRAME

    def test_decode_rejects_non_object_json(self):
        with pytest.raises(ProtocolError) as err:
            protocol.decode_frame(b"[1, 2, 3]\n")
        assert err.value.code == ErrorCode.BAD_FRAME

    def test_decode_rejects_oversized_frames(self):
        raw = protocol.encode_frame(frame(op="query", pad="x" * 100))
        with pytest.raises(ProtocolError) as err:
            protocol.decode_frame(raw, max_bytes=64)
        assert err.value.code == ErrorCode.FRAME_TOO_LARGE


class TestParseRequest:
    def test_pp_begin_parses_all_fields(self):
        request = protocol.parse_request(frame(
            op="pp_begin", resource="llc", demand_bytes=4096,
            reuse="high", label="dgemm", sharing_key="p0/k",
        ))
        assert request.op == "pp_begin"
        assert request.resource is ResourceKind.LLC
        assert request.demand_bytes == 4096
        assert request.reuse is ReuseLevel.HIGH
        assert request.label == "dgemm"
        assert request.sharing_key == "p0/k"

    def test_wrong_version_is_rejected(self):
        with pytest.raises(ProtocolError) as err:
            protocol.parse_request(
                {"v": protocol.PROTOCOL_VERSION + 1, "id": 1, "op": "query"}
            )
        assert err.value.code == ErrorCode.BAD_VERSION

    def test_missing_version_is_rejected(self):
        with pytest.raises(ProtocolError) as err:
            protocol.parse_request({"id": 1, "op": "query"})
        assert err.value.code == ErrorCode.BAD_VERSION

    def test_unknown_op_is_rejected(self):
        with pytest.raises(ProtocolError) as err:
            protocol.parse_request(frame(op="pp_suspend"))
        assert err.value.code == ErrorCode.UNKNOWN_OP

    @pytest.mark.parametrize("field,value", [
        ("demand_bytes", -1),
        ("demand_bytes", "4096"),
        ("demand_bytes", True),
        ("reuse", "extreme"),
        ("resource", "gpu"),
        ("sharing_key", 7),
    ])
    def test_pp_begin_field_validation(self, field, value):
        doc = frame(op="pp_begin", resource="llc", demand_bytes=4096, reuse="low")
        doc[field] = value
        with pytest.raises(ProtocolError) as err:
            protocol.parse_request(doc)
        assert err.value.code == ErrorCode.BAD_REQUEST

    def test_pp_end_requires_positive_pp_id(self):
        with pytest.raises(ProtocolError):
            protocol.parse_request(frame(op="pp_end"))
        with pytest.raises(ProtocolError):
            protocol.parse_request(frame(op="pp_end", pp_id=0))
        request = protocol.parse_request(frame(op="pp_end", pp_id=12))
        assert request.pp_id == 12

    def test_query_pp_id_is_optional(self):
        assert protocol.parse_request(frame(op="query")).pp_id is None
        assert protocol.parse_request(frame(op="query", pp_id=2)).pp_id == 2

    def test_request_id_may_be_absent(self):
        request = protocol.parse_request(
            {"v": protocol.PROTOCOL_VERSION, "op": "stats"}
        )
        assert request.id is None


class TestReplies:
    def test_ok_reply_shape(self):
        reply = protocol.ok_reply(7, pp_id=3, admitted=True)
        assert reply == {
            "v": protocol.PROTOCOL_VERSION, "id": 7, "ok": True,
            "pp_id": 3, "admitted": True,
        }

    def test_error_reply_shape(self):
        reply = protocol.error_reply(
            9, ErrorCode.RETRY_AFTER, "queue full", retry_after_s=0.05
        )
        assert reply["ok"] is False
        assert reply["id"] == 9
        assert reply["error"]["code"] == ErrorCode.RETRY_AFTER
        assert reply["error"]["retry_after_s"] == 0.05

    def test_replies_are_json_encodable(self):
        for reply in (
            protocol.ok_reply(None, stats={}),
            protocol.error_reply(None, ErrorCode.INTERNAL, "boom"),
        ):
            json.dumps(reply)
