"""Crash → restart-from-journal → verified recovery, all in-process.

``AdmissionServer.abort()`` is the in-process analogue of ``kill -9``
(hard transport drop, journal handle abandoned unsynced); a second server
booted on the same journal must rebuild the exact admitted ledger, and
clients must be able to reattach and re-issue idempotently.  The
subprocess + SIGKILL variant of the same contract lives in
``test_chaos.py``.
"""

import asyncio
from dataclasses import replace

from repro.config import default_machine_config
from repro.core.api import MB
from repro.core.policy import StrictPolicy
from repro.serve.client import ServeClient
from repro.serve.server import AdmissionServer, ServeConfig

CAPACITY_MB = 4.0


def tiny_machine(capacity_mb: float = CAPACITY_MB):
    machine = default_machine_config()
    quantum = machine.llc.line_bytes * machine.llc.associativity
    capacity = max(quantum, int(capacity_mb * 1024 * 1024) // quantum * quantum)
    return replace(machine, llc=replace(machine.llc, capacity_bytes=capacity))


def journal_cfg(tmp_path, **kwargs) -> ServeConfig:
    defaults = dict(
        policy=StrictPolicy(),
        machine=tiny_machine(),
        sanitize=True,
        journal_path=str(tmp_path / "admission.ndjson"),
        lease_ttl_s=10.0,
    )
    defaults.update(kwargs)
    return ServeConfig(**defaults)


def total_usage(service) -> int:
    return sum(
        state["usage_bytes"]
        for state in service.snapshot()["resources"].values()
    )


class TestRestartFromJournal:
    def test_admitted_ledger_survives_a_crash(self, tmp_path):
        async def scenario():
            cfg = journal_cfg(tmp_path)
            sock = str(tmp_path / "serve.sock")
            server = AdmissionServer(cfg)
            await server.start(unix_path=sock)

            alice = await ServeClient.connect(unix_path=sock)
            await alice.hello("alice")
            a = await alice.pp_begin(MB(2), token="tok-a", label="a/dgemm")
            bob = await ServeClient.connect(unix_path=sock)
            await bob.hello("bob")
            b = await bob.pp_begin(MB(1), token="tok-b")

            usage_before = total_usage(server.service)
            assert usage_before == MB(2) + MB(1)

            await server.abort()  # kill -9, in effigy
            await alice.close()
            await bob.close()

            reborn = AdmissionServer(journal_cfg(tmp_path))
            service = reborn.service
            # the ledger was rebuilt before the server even listens
            assert service.replayed_periods == 2
            assert total_usage(service) == usage_before
            assert len(service.monitor.registry) == 2
            assert len(service.waitlist) == 0
            assert {"alice", "bob"} <= set(service.leases.records)
            assert service.sanitizer.ok, service.sanitizer.summary()

            await reborn.start(unix_path=sock)

            # alice reattaches: hello lists her surviving period + token
            alice2 = await ServeClient.connect(unix_path=sock)
            hello = await alice2.hello("alice")
            assert hello["resumed"] is True
            assert [(p["pp_id"], p["token"]) for p in hello["open"]] == [
                (a["pp_id"], "tok-a")
            ]

            # the re-issued begin (reply lost in the crash) dedupes by
            # token instead of double-charging
            again = await alice2.pp_begin(MB(2), token="tok-a")
            assert again["deduped"] is True
            assert again["pp_id"] == a["pp_id"]
            assert total_usage(service) == usage_before
            assert service.c_idempotent.value == 1

            await alice2.pp_end(a["pp_id"])
            bob2 = await ServeClient.connect(unix_path=sock)
            await bob2.hello("bob")
            await bob2.pp_end(b["pp_id"])
            assert total_usage(service) == 0

            await alice2.close()
            await bob2.close()
            reborn.request_drain()
            await asyncio.wait_for(reborn.run_until_drained(), 10.0)
            assert service.sanitizer.ok, service.sanitizer.summary()

        asyncio.run(scenario())

    def test_replayed_capacity_still_gates_admission(self, tmp_path):
        async def scenario():
            cfg = journal_cfg(tmp_path)
            sock = str(tmp_path / "serve.sock")
            server = AdmissionServer(cfg)
            await server.start(unix_path=sock)
            holder = await ServeClient.connect(unix_path=sock)
            await holder.hello("holder")
            held = await holder.pp_begin(MB(3), token="t-h")
            await server.abort()
            await holder.close()

            reborn = AdmissionServer(journal_cfg(tmp_path))
            await reborn.start(unix_path=sock)
            # replayed demand counts against the bound: a new 3 MB period
            # parks behind the recovered one
            newcomer = await ServeClient.connect(unix_path=sock)
            begin = asyncio.ensure_future(newcomer.pp_begin(MB(3)))
            await asyncio.sleep(0.15)
            assert not begin.done()

            # the recovered owner reattaches and releases; the waiter runs
            holder2 = await ServeClient.connect(unix_path=sock)
            await holder2.hello("holder")
            await holder2.pp_end(held["pp_id"])
            reply = await asyncio.wait_for(begin, 3.0)
            assert reply["admitted"] is True
            assert reply["waited_s"] > 0.0

            await newcomer.pp_end(reply["pp_id"])
            await newcomer.close()
            await holder2.close()
            await reborn.abort()
            assert reborn.service.sanitizer.ok

        asyncio.run(scenario())

    def test_clean_close_after_crash_end_is_not_replayed(self, tmp_path):
        async def scenario():
            cfg = journal_cfg(tmp_path)
            sock = str(tmp_path / "serve.sock")
            server = AdmissionServer(cfg)
            await server.start(unix_path=sock)
            client = await ServeClient.connect(unix_path=sock)
            await client.hello("c")
            one = await client.pp_begin(MB(1), token="t1")
            two = await client.pp_begin(MB(1), token="t2")
            await client.pp_end(one["pp_id"])  # closed before the crash
            await server.abort()
            await client.close()

            reborn = AdmissionServer(journal_cfg(tmp_path))
            assert reborn.service.replayed_periods == 1
            ids = list(reborn.service.monitor.registry)
            assert [p.pp_id for p in ids] == [two["pp_id"]]
            await reborn.start(unix_path=sock)
            await reborn.abort()

        asyncio.run(scenario())
