"""Edge cases for the metrics instruments and the latency summaries."""

import asyncio
import math

from repro.experiments.metrics import summarize_samples
from repro.serve.metrics import Histogram


class TestHistogramEdges:
    def test_zero_samples(self):
        h = Histogram("empty")
        assert h.count == 0
        assert math.isnan(h.mean)
        assert math.isnan(h.percentile(50.0))
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["mean"] is None
        assert snap["min"] is None and snap["max"] is None
        assert snap["p50"] is None and snap["p99"] is None

    def test_single_sample(self):
        h = Histogram("one")
        h.observe(0.25)
        assert h.count == 1
        assert h.mean == 0.25
        assert h.min == h.max == 0.25
        # with one observation every percentile collapses onto it
        for q in (0.0, 50.0, 99.0, 100.0):
            assert abs(h.percentile(q) - 0.25) < 1e-9
        snap = h.snapshot()
        assert snap["p50"] == snap["p99"]

    def test_exact_zero_lands_in_the_underflow_bucket(self):
        h = Histogram("zeroes")
        h.observe(0.0)
        h.observe(0.0)
        assert h.count == 2
        assert h.buckets[0] == 2
        assert h.percentile(50.0) == 0.0

    def test_snapshot_is_stable_under_concurrent_observes(self):
        # single event loop: snapshot() between awaits must always see a
        # consistent (count, sum) pair and never raise
        async def scenario():
            h = Histogram("busy")
            done = False

            async def observer():
                for i in range(500):
                    h.observe(i * 1e-4)
                    if i % 50 == 0:
                        await asyncio.sleep(0)

            async def scraper():
                last_count = 0
                while not done:
                    snap = h.snapshot()
                    assert snap["count"] >= last_count
                    if snap["count"]:
                        assert snap["mean"] == snap["sum"] / snap["count"]
                        assert snap["min"] <= snap["p50"] <= snap["max"]
                    last_count = snap["count"]
                    await asyncio.sleep(0)

            scrape = asyncio.ensure_future(scraper())
            await asyncio.gather(observer(), observer())
            done = True
            await scrape
            assert h.count == 1000

        asyncio.run(scenario())


class TestLatencySummaryEdges:
    def test_zero_samples(self):
        s = summarize_samples([])
        assert s.count == 0
        assert math.isnan(s.mean) and math.isnan(s.p99)
        assert s.describe() == "no samples"
        assert s.to_dict()["count"] == 0

    def test_single_sample(self):
        s = summarize_samples([0.125])
        assert s.count == 1
        assert s.mean == s.p50 == s.p90 == s.p99 == s.max == 0.125
        assert "n=1" in s.describe()

    def test_identical_samples(self):
        s = summarize_samples([0.5] * 10)
        assert s.p50 == s.p99 == s.max == 0.5
