"""DemandAwarePlacer: scoring, stickiness, determinism, migration."""

import random

import pytest

from repro.serve.placer import (
    ClusterError,
    DemandAwarePlacer,
    ShardAddress,
    ShardState,
)

MB = 1024 * 1024


def shard(name, capacity_mb=8, usage_mb=0):
    state = ShardState(address=ShardAddress(name=name, unix_path=f"/tmp/{name}.sock"))
    state.capacity = {"llc": capacity_mb * MB}
    state.usage = {"llc": usage_mb * MB}
    return state


def make_placer(*shards, seed=0):
    return DemandAwarePlacer(list(shards), seed=seed)


class TestScoring:
    def test_best_fit_picks_the_tightest_feasible_shard(self):
        # 2 MB free vs 6 MB free: a 1 MB demand fits both; best-fit
        # concentrates it on the fuller shard to preserve the big hole
        placer = make_placer(shard("a", usage_mb=6), shard("b", usage_mb=2))
        chosen = placer.place("c1", {"llc": 1 * MB})
        assert chosen.name == "a"

    def test_infeasible_demand_parks_on_least_loaded_shard(self):
        placer = make_placer(shard("a", usage_mb=7), shard("b", usage_mb=5))
        chosen = placer.place("c1", {"llc": 6 * MB})
        assert chosen.name == "b"

    def test_unprobed_shard_ranks_last(self):
        unknown = ShardState(
            address=ShardAddress(name="u", unix_path="/tmp/u.sock")
        )
        placer = make_placer(shard("a", usage_mb=7), unknown)
        assert placer.place("c1", {"llc": 1 * MB}).name == "a"

    def test_no_live_shard_raises(self):
        placer = make_placer(shard("a"))
        placer.mark_dead("a")
        with pytest.raises(ClusterError):
            placer.place("c1", {"llc": MB})

    def test_reservations_count_against_capacity(self):
        placer = make_placer(shard("a"), shard("b"))
        placer.place("hog", {"llc": 7 * MB})
        # the hog's demand is assigned (not yet observed), so the next
        # feasible placement must land on the other shard
        assert placer.place("c2", {"llc": 2 * MB}).name != placer.assignments["hog"]


class TestStickiness:
    def test_known_client_keeps_its_shard(self):
        placer = make_placer(shard("a"), shard("b"))
        first = placer.place("c1", {"llc": MB})
        again = placer.place("c1", {"llc": 2 * MB})
        assert again.name == first.name
        assert placer.placements_total == 1

    def test_dead_shard_client_is_replaced(self):
        placer = make_placer(shard("a"), shard("b"))
        home = placer.place("c1", {"llc": MB})
        placer.mark_dead(home.name)
        moved = placer.place("c1", {"llc": MB})
        assert moved.name != home.name
        assert placer.replacements_total == 1

    def test_release_clears_reservation_but_keeps_assignment(self):
        placer = make_placer(shard("a"), shard("b"))
        home = placer.place("c1", {"llc": 5 * MB})
        placer.release("c1")
        assert placer.assignments["c1"] == home.name
        assert home.assigned.get("llc", 0) == 0

    def test_forget_drops_assignment_and_reservation(self):
        placer = make_placer(shard("a"), shard("b"))
        home = placer.place("c1", {"llc": 5 * MB})
        placer.forget("c1")
        assert "c1" not in placer.assignments
        assert home.assigned.get("llc", 0) == 0


class TestLifecycle:
    def test_revive_is_the_inverse_of_mark_dead(self):
        placer = make_placer(shard("a"), shard("b"))
        placer.mark_dead("a")
        assert not placer.shards["a"].alive
        placer.revive("a")
        state = placer.shards["a"]
        assert state.alive and not state.draining
        assert placer.revivals_total == 1
        assert {s.name for s in placer.alive_shards()} == {"a", "b"}

    def test_revive_clears_draining(self):
        placer = make_placer(shard("a"))
        placer.mark_draining("a")
        placer.mark_dead("a")
        placer.revive("a")
        state = placer.shards["a"]
        assert state.alive and not state.draining and state.placeable

    def test_draining_shard_is_skipped_by_placement(self):
        placer = make_placer(shard("a", usage_mb=6), shard("b"))
        # best-fit would pick "a"; draining takes it out of rotation
        placer.mark_draining("a")
        assert placer.place("c1", {"llc": MB}).name == "b"

    def test_draining_breaks_stickiness(self):
        placer = make_placer(shard("a"), shard("b"))
        home = placer.place("c1", {"llc": MB})
        placer.mark_draining(home.name)
        moved = placer.place("c1", {"llc": MB})
        assert moved.name != home.name

    def test_draining_shard_is_not_a_migration_target(self):
        a, b = shard("a", usage_mb=7), shard("b")
        placer = make_placer(a, b)
        placer.assignments["c1"] = "a"
        placer.mark_draining("b")
        assert placer.migration_target("c1", {"llc": 3 * MB}) is None

    def test_draining_home_forces_a_migration_target(self):
        # home still has headroom, but it is draining: the client must
        # be offered somewhere else to go
        a, b = shard("a"), shard("b")
        placer = make_placer(a, b)
        placer.place("c1", {"llc": MB})
        home = placer.assignments["c1"]
        placer.mark_draining(home)
        target = placer.migration_target("c1", {"llc": MB})
        assert target is not None and target.name != home

    def test_release_purges_assignment_to_a_dead_shard(self):
        # ghost capacity: a sticky assignment to a dead shard must not
        # survive the client's last period ending
        placer = make_placer(shard("a"), shard("b"))
        home = placer.place("c1", {"llc": 5 * MB})
        placer.mark_dead(home.name)
        placer.release("c1")
        assert "c1" not in placer.assignments
        assert home.assigned.get("llc", 0) == 0

    def test_observe_demand_folds_into_the_current_shard(self):
        placer = make_placer(shard("a"), shard("b"))
        home = placer.place("c1", {"llc": MB})
        placer.observe_demand("c1", {"llc": 3 * MB})
        # no re-placement happened, the reservation just grew in place
        assert placer.assignments["c1"] == home.name
        assert placer.placements_total == 1
        assert home.assigned["llc"] == 3 * MB

    def test_snapshot_reports_lifecycle_state(self):
        placer = make_placer(shard("a"), shard("b"))
        placer.mark_draining("a")
        placer.mark_dead("b")
        placer.revive("b")
        snap = placer.snapshot()
        assert snap["revivals_total"] == 1
        assert snap["shards"]["a"]["draining"] is True
        assert snap["shards"]["b"]["draining"] is False


class TestDeterminismProperty:
    """Placement is a pure function of (seed, demands, capacities)."""

    def _scenario(self, rng):
        n_shards = rng.randint(1, 6)
        capacities = [rng.randint(2, 16) for _ in range(n_shards)]
        demands = [
            {"llc": rng.randint(0, 8) * MB} for _ in range(rng.randint(1, 40))
        ]
        return capacities, demands

    def _run(self, seed, capacities, demands):
        shards = [
            shard(f"s{i}", capacity_mb=cap) for i, cap in enumerate(capacities)
        ]
        placer = DemandAwarePlacer(shards, seed=seed)
        return [
            placer.place(f"client-{i}", demand).name
            for i, demand in enumerate(demands)
        ]

    def test_identical_inputs_give_identical_sequences(self):
        rng = random.Random(0xD5)
        for trial in range(50):
            seed = rng.randint(0, 2**31)
            capacities, demands = self._scenario(rng)
            first = self._run(seed, capacities, demands)
            second = self._run(seed, capacities, demands)
            assert first == second, f"trial {trial} diverged"

    def test_tiebreak_depends_on_seed(self):
        # four identical idle shards: every placement is an exact tie, so
        # the seeded permutation is the only thing deciding — different
        # seeds must be able to produce different winners
        capacities = [8, 8, 8, 8]
        demands = [{"llc": MB}]
        winners = {
            self._run(seed, capacities, demands)[0] for seed in range(32)
        }
        assert len(winners) > 1


class TestMigration:
    def test_no_target_while_home_has_observed_headroom(self):
        placer = make_placer(shard("a"), shard("b"))
        placer.place("c1", {"llc": 3 * MB})
        assert placer.migration_target("c1", {"llc": 3 * MB}) is None

    def test_target_ignores_own_reservation_on_home(self):
        # home is genuinely full on *observed* usage, the other shard is
        # free; the client's own reservation on home must not matter
        a, b = shard("a", usage_mb=7), shard("b")
        placer = make_placer(a, b)
        placer.assignments["c1"] = "a"
        placer._note_demand(a, "c1", {"llc": 3 * MB})
        target = placer.migration_target("c1", {"llc": 3 * MB})
        assert target is not None and target.name == "b"

    def test_no_target_when_everywhere_is_full(self):
        placer = make_placer(shard("a", usage_mb=7), shard("b", usage_mb=7))
        placer.assignments["c1"] = "a"
        assert placer.migration_target("c1", {"llc": 3 * MB}) is None

    def test_migrate_carries_the_demand_profile(self):
        a, b = shard("a", usage_mb=7), shard("b")
        placer = make_placer(a, b)
        placer.place("c1", {"llc": 3 * MB})
        placer.migrate("c1", b)
        assert placer.assignments["c1"] == "b"
        assert a.assigned.get("llc", 0) == 0
        assert b.assigned.get("llc", 0) == 3 * MB


class TestGauges:
    def test_fragmentation_zero_when_one_hole(self):
        placer = make_placer(shard("a", usage_mb=8), shard("b"))
        assert placer.fragmentation() == 0.0

    def test_fragmentation_rises_as_free_capacity_shatters(self):
        placer = make_placer(
            shard("a", usage_mb=4), shard("b", usage_mb=4),
            shard("c", usage_mb=4), shard("d", usage_mb=4),
        )
        assert placer.fragmentation() == pytest.approx(0.75)

    def test_snapshot_shape(self):
        placer = make_placer(shard("a"), seed=7)
        placer.place("c1", {"llc": MB})
        snap = placer.snapshot()
        assert snap["seed"] == 7
        assert snap["placements_total"] == 1
        assert snap["shards"]["a"]["clients"] == 1
