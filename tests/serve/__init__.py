"""Tests for the online admission-control service (repro.serve)."""
