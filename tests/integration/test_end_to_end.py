"""End-to-end integration tests on scaled-down paper workloads.

The full Table 2 sweep is exercised by the benchmarks; these tests use
reduced process counts so the whole file runs in seconds while still
covering every workload family under every policy.
"""

import pytest

from repro.core.policy import CompromisePolicy, StrictPolicy
from repro.experiments.metrics import compare_all
from repro.experiments.runner import run_policies, run_workload, run_workload_full
from repro.workloads.blas import kernel_process
from repro.workloads.base import Workload
from repro.workloads.splash2 import (
    ocean_cp_workload,
    raytrace_workload,
    volrend_workload,
    water_nsquared_workload,
    water_spatial_workload,
)


def small_blas3(n=24):
    return Workload(name="blas3-small", processes=[kernel_process("dgemm")] * n)


class TestEveryWorkloadFamilyCompletes:
    @pytest.mark.parametrize("policy", [None, StrictPolicy(), CompromisePolicy()])
    def test_blas(self, policy):
        report = run_workload(small_blas3(12), policy)
        assert report.wall_s > 0 and report.gflops > 0

    @pytest.mark.parametrize(
        "factory,kwargs",
        [
            (water_nsquared_workload, dict(n_processes=4, timesteps=1)),
            (water_spatial_workload, dict(n_processes=4, timesteps=1)),
            (ocean_cp_workload, dict(n_processes=8, timesteps=1)),
            (raytrace_workload, dict(n_processes=8, frames=1)),
            (volrend_workload, dict(n_processes=8, frames=1)),
        ],
    )
    @pytest.mark.parametrize("policy", [None, StrictPolicy(), CompromisePolicy()])
    def test_splash2(self, factory, kwargs, policy):
        result = run_workload_full(factory(**kwargs), policy)
        assert result.kernel.all_exited
        if result.scheduler is not None:
            assert len(result.scheduler.waitlist) == 0
            assert len(result.scheduler.registry) == 0


class TestPaperHeadlineShape:
    """Scaled-down versions of the §4.2 qualitative claims."""

    def test_high_reuse_oversubscribed_gains_from_strict(self):
        reports = run_policies(lambda: water_nsquared_workload(n_processes=12, timesteps=1))
        cmp = compare_all("wnsq", reports)["RDA: Strict"]
        assert cmp.speedup > 1.1
        assert cmp.system_energy_decrease > 0.2
        assert cmp.dram_energy_decrease > 0.3

    def test_low_reuse_workload_does_not_gain(self):
        reports = run_policies(lambda: water_spatial_workload(n_processes=12, timesteps=1))
        cmp = compare_all("wsp", reports)["RDA: Strict"]
        assert 0.9 < cmp.speedup < 1.1
        assert abs(cmp.system_energy_decrease) < 0.1

    def test_strict_cuts_dram_energy_more_than_compromise(self):
        reports = run_policies(lambda: water_nsquared_workload(n_processes=12, timesteps=1))
        both = compare_all("wnsq", reports)
        assert (
            both["RDA: Strict"].dram_energy_decrease
            > both["RDA: Compromise"].dram_energy_decrease
        )

    def test_energy_efficiency_tracks_energy_savings(self):
        reports = run_policies(lambda: water_nsquared_workload(n_processes=12, timesteps=1))
        cmp = compare_all("wnsq", reports)["RDA: Strict"]
        assert cmp.efficiency_gain > 1.0


class TestAccountingConsistency:
    def test_flops_identical_across_policies(self):
        """Scheduling changes when work runs, never how much."""
        reports = run_policies(lambda: small_blas3(12))
        flops = {name: r.flops for name, r in reports.items()}
        base = flops["Linux Default"]
        for value in flops.values():
            assert value == pytest.approx(base, rel=1e-6)

    def test_energy_components_positive_and_consistent(self):
        report = run_workload(small_blas3(12), StrictPolicy())
        assert report.package_j > 0 and report.dram_j > 0
        assert report.system_j == pytest.approx(report.package_j + report.dram_j)

    def test_llc_misses_not_more_than_refs(self):
        report = run_workload(small_blas3(12), None)
        assert report.llc_misses <= report.llc_refs * 1.5  # reloads add misses

    def test_wall_time_matches_kernel_clock(self):
        result = run_workload_full(small_blas3(6), None)
        assert result.report.wall_s == pytest.approx(result.kernel.now)
