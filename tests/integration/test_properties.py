"""Hypothesis property tests over the whole scheduler stack."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.policy import CompromisePolicy, StrictPolicy
from repro.core.rda import RdaScheduler
from repro.sim.kernel import Kernel
from repro.sim.process import ThreadState
from repro.workloads.base import Phase, PpSpec, ProcessSpec, Workload

MB = 1_000_000

# keep instruction counts small: these runs must stay fast
phase_st = st.builds(
    lambda wss_mb, reuse, declare: Phase(
        name=f"ph{wss_mb}",
        instructions=200_000,
        flops_per_instr=1.0,
        mem_refs_per_instr=0.4,
        llc_refs_per_memref=0.1,
        wss_bytes=int(wss_mb * MB),
        reuse=reuse,
        pp=PpSpec() if declare else None,
    ),
    wss_mb=st.floats(min_value=0.1, max_value=14.0),
    reuse=st.floats(min_value=0.0, max_value=1.0),
    declare=st.booleans(),
)

workload_st = st.builds(
    lambda programs, n_threads: Workload(
        name="prop",
        processes=[
            ProcessSpec(name=f"p{i}", program=prog, n_threads=n_threads)
            for i, prog in enumerate(programs)
        ],
    ),
    programs=st.lists(
        st.lists(phase_st, min_size=1, max_size=3), min_size=1, max_size=6
    ),
    n_threads=st.integers(min_value=1, max_value=2),
)

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSchedulerLiveness:
    @SETTINGS
    @given(workload_st, st.sampled_from(["default", "strict", "compromise"]))
    def test_every_workload_terminates_under_every_policy(self, workload, policy_name):
        policy = {
            "default": None,
            "strict": StrictPolicy(),
            "compromise": CompromisePolicy(),
        }[policy_name]
        scheduler = RdaScheduler(policy=policy) if policy else None
        kernel = Kernel(extension=scheduler)
        kernel.launch(workload)
        kernel.run(max_events=500_000)
        assert kernel.all_exited
        for proc in kernel.processes:
            for t in proc.threads:
                assert t.state is ThreadState.EXITED
        if scheduler is not None:
            # no leaked accounting
            assert scheduler.llc.usage_bytes == 0
            assert len(scheduler.waitlist) == 0
            assert len(scheduler.registry) == 0

    @SETTINGS
    @given(workload_st)
    def test_strict_respects_capacity_throughout(self, workload):
        scheduler = RdaScheduler(policy=StrictPolicy())
        kernel = Kernel(extension=scheduler)
        kernel.launch(workload)
        cap = scheduler.llc.capacity_bytes
        while not kernel.all_exited:
            if not kernel.engine.step():
                break
            if scheduler.forced_admissions == 0:
                assert scheduler.llc.usage_bytes <= cap

    @SETTINGS
    @given(workload_st)
    def test_work_conservation(self, workload):
        """All declared instructions retire, no matter the interleaving."""
        from repro.perf.counters import HwCounter

        kernel = Kernel(extension=RdaScheduler(policy=CompromisePolicy()))
        kernel.launch(workload)
        kernel.run(max_events=500_000)
        expected = sum(
            ph.instructions
            for spec in workload.processes
            for t in range(spec.n_threads)
            for ph in spec.program_for(t)
        )
        retired = kernel.machine.counters.read(HwCounter.INSTRUCTIONS)
        assert retired == pytest.approx(expected, rel=1e-5)

    @SETTINGS
    @given(workload_st)
    def test_time_and_energy_monotone(self, workload):
        kernel = Kernel()
        kernel.launch(workload)
        last_t, last_e = -1.0, -1.0
        while not kernel.all_exited:
            if not kernel.engine.step():
                break
            kernel.sync()
            sample = kernel.machine.rapl.sample()
            assert kernel.now >= last_t
            assert sample.system_j >= last_e - 1e-12
            last_t, last_e = kernel.now, sample.system_j
