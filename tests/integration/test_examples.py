"""Smoke tests: every example script runs clean end to end."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[2] / "examples").glob("*.py"))

#: faster examples run in-process; the slower ones are covered in the
#: subprocess smoke below and in the benchmark suite
FAST = {"quickstart.py", "profile_and_annotate.py", "cache_partitioning.py"}


@pytest.mark.parametrize(
    "path", [p for p in EXAMPLES if p.name in FAST], ids=lambda p: p.name
)
def test_fast_examples_run_in_process(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # produced output


def test_examples_directory_has_required_scripts():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # deliverable (b): at least three examples


@pytest.mark.parametrize("name", ["interference_study.py"])
def test_slow_example_via_subprocess(name):
    path = Path(__file__).parents[2] / "examples" / name
    proc = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True, timeout=600
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "GFLOPS" in proc.stdout
