"""Determinism: identical runs produce bit-identical results.

The whole experiment methodology (EXPERIMENTS.md records exact numbers;
the result store diffs reruns) rests on the simulation being a pure
function of its inputs — no hidden global state, no unseeded randomness.
"""

import pytest

from repro.core.policy import CompromisePolicy, StrictPolicy
from repro.experiments.runner import run_workload
from repro.experiments.store import report_to_dict
from repro.workloads.splash2 import ocean_cp_workload, water_nsquared_workload
from repro.workloads.suite import blas_workload

from ..conftest import make_phase, make_workload


class TestDeterminism:
    @pytest.mark.parametrize("policy", [None, StrictPolicy(), CompromisePolicy()])
    def test_toy_workload_bit_identical(self, policy):
        a = run_workload(make_workload(n_processes=5), policy)
        b = run_workload(make_workload(n_processes=5), policy)
        assert report_to_dict(a) == report_to_dict(b)

    def test_splash_workload_bit_identical(self):
        a = run_workload(water_nsquared_workload(n_processes=4, timesteps=1), StrictPolicy())
        b = run_workload(water_nsquared_workload(n_processes=4, timesteps=1), StrictPolicy())
        assert report_to_dict(a) == report_to_dict(b)

    def test_independent_of_prior_simulations(self):
        """Global counters (tids, pp ids) must not leak into results."""
        first = run_workload(ocean_cp_workload(n_processes=4, timesteps=1), None)
        # run something unrelated in between, shifting all global id counters
        run_workload(blas_workload(1, n_processes=8), StrictPolicy())
        again = run_workload(ocean_cp_workload(n_processes=4, timesteps=1), None)
        assert report_to_dict(first) == report_to_dict(again)

    def test_heterogeneous_workload_independent_of_history(self):
        """The harder case: distinct kernels whose schedule interleaving
        depends on run-queue tie-breaking — must still be history-free."""
        first = run_workload(blas_workload(3, n_processes=16), None)
        run_workload(blas_workload(1, n_processes=4), None)
        again = run_workload(blas_workload(3, n_processes=16), None)
        assert report_to_dict(first) == report_to_dict(again)

    def test_profiler_deterministic(self):
        from repro.profiler import sample_windows
        from repro.workloads.tracegen import water_pp1_trace

        a = sample_windows(water_pp1_trace(8000), 1_000_000)
        b = sample_windows(water_pp1_trace(8000), 1_000_000)
        assert a.windows == b.windows
