"""Cross-validation: analytical contention model vs trace-driven simulator.

The analytical :class:`SharedLlcModel` drives all timing/energy results; the
trace-driven :class:`CacheHierarchy` is the ground truth for what an actual
LRU cache does.  These tests check that the two agree on the *mechanisms*
the paper's evaluation relies on:

1. a working set within capacity hits after warm-up; hit rate collapses
   once co-running sets exceed capacity (the figure 13 knee),
2. adding co-runners never improves a subject's hit rate,
3. streaming traffic gains nothing from cache capacity.
"""

import numpy as np
import pytest

from repro.config import CacheConfig, MachineConfig
from repro.mem.cache import Cache
from repro.mem.contention import LlcDemand, SharedLlcModel


def llc(capacity=64 * 1024, ways=16):
    return Cache(CacheConfig("llc", capacity, associativity=ways, shared=True))


def loop_trace(wss_bytes, sweeps, base=0):
    lines = wss_bytes // 64
    one = np.arange(lines, dtype=np.int64) * 64 + base
    return np.tile(one, sweeps)


def interleave(traces):
    n = min(len(t) for t in traces)
    stack = np.stack([t[:n] for t in traces], axis=1)
    return stack.reshape(-1)


def measure_subject_hit_rate(subject_wss, co_wss_list, capacity=64 * 1024):
    """Trace-driven hit rate of a subject loop co-running with others."""
    cache = llc(capacity)
    subject = loop_trace(subject_wss, sweeps=16)
    others = [
        loop_trace(w, sweeps=16, base=(k + 1) << 30)
        for k, w in enumerate(co_wss_list)
    ]
    merged = interleave([subject] + others)
    # warm up with one pass, then measure
    split = len(merged) // 4
    cache.access_trace(merged[:split])
    cache.stats.reset()
    subject_hits = subject_misses = 0
    n_streams = 1 + len(others)
    for i, a in enumerate(merged[split:]):
        hit = cache.access(int(a))
        if i % n_streams == 0:  # the subject's accesses
            if hit:
                subject_hits += 1
            else:
                subject_misses += 1
    return subject_hits / (subject_hits + subject_misses)


CAP = 64 * 1024


class TestAgreement:
    def test_fitting_set_is_warm_in_both_models(self):
        measured = measure_subject_hit_rate(CAP // 4, [CAP // 4], CAP)
        model = SharedLlcModel(CAP)
        predicted = model.resolve(
            [LlcDemand(CAP // 4, 1.0), LlcDemand(CAP // 4, 1.0)]
        )[0].hot_fraction
        assert predicted == 1.0
        assert measured > 0.95

    def test_oversubscription_collapses_hit_rate_in_both(self):
        fit = measure_subject_hit_rate(CAP // 4, [CAP // 4], CAP)
        thrash = measure_subject_hit_rate(CAP, [CAP, CAP], CAP)
        assert thrash < 0.5 * fit  # the cliff is real in the trace simulator
        model = SharedLlcModel(CAP, gamma=2.0)
        h_fit = model.hot_fraction(LlcDemand(CAP // 4, 1.0), [LlcDemand(CAP // 4, 1.0)])
        h_thrash = model.hot_fraction(LlcDemand(CAP, 1.0), [LlcDemand(CAP, 1.0)] * 2)
        assert h_thrash < 0.5 * h_fit

    def test_lru_cyclic_thrash_is_worse_than_proportional(self):
        """The γ>1 choice: cyclic LRU re-sweeps of an oversubscribed cache
        hit *far less* than the share/wss proportional estimate."""
        measured = measure_subject_hit_rate(CAP, [CAP], CAP)
        proportional = 0.5  # share/wss with two equal co-runners
        assert measured < proportional * 0.5

    def test_corunners_never_help_in_trace_simulation(self):
        alone = measure_subject_hit_rate(CAP // 2, [], CAP)
        crowded = measure_subject_hit_rate(CAP // 2, [CAP // 2, CAP // 2], CAP)
        assert crowded <= alone + 0.02
