"""DVFS governor tests."""

import pytest

from repro.config import PowerConfig
from repro.energy.dvfs import (
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from repro.energy.power import PowerModel
from repro.errors import ConfigError


class TestGovernors:
    def test_performance_always_max(self):
        g = PerformanceGovernor()
        assert g.target_scale(0.0) == 1.0
        assert g.target_scale(1.0) == 1.0

    def test_powersave_always_min(self):
        g = PowersaveGovernor(min_scale=0.6)
        assert g.target_scale(0.0) == 0.6
        assert g.target_scale(1.0) == 0.6

    def test_ondemand_jumps_above_threshold(self):
        g = OndemandGovernor(up_threshold=0.8, min_scale=0.5)
        assert g.target_scale(0.85) == 1.0
        assert g.target_scale(0.8) == 1.0

    def test_ondemand_scales_down_when_idle(self):
        g = OndemandGovernor(up_threshold=0.8, min_scale=0.5)
        assert g.target_scale(0.0) == pytest.approx(0.5)
        mid = g.target_scale(0.4)
        assert 0.5 < mid < 1.0

    def test_ondemand_monotone(self):
        g = OndemandGovernor()
        scales = [g.target_scale(u / 20) for u in range(21)]
        assert scales == sorted(scales)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PowersaveGovernor(min_scale=0.0)
        with pytest.raises(ConfigError):
            OndemandGovernor(up_threshold=1.5)
        with pytest.raises(ConfigError):
            PerformanceGovernor().target_scale(2.0)


class TestPowerScaling:
    def test_dynamic_power_cubic_in_frequency(self):
        m = PowerModel(PowerConfig(), n_cores=12)
        full = m.breakdown(12, freq_scale=1.0)
        half = m.breakdown(12, freq_scale=0.5)
        cfg = m.config
        dynamic_full = full.cores_w - 0  # all active
        expected_half = 12 * cfg.core_active_w * 0.125
        assert half.cores_w == pytest.approx(expected_half)
        assert half.package_w < full.package_w

    def test_static_power_unaffected(self):
        m = PowerModel(PowerConfig(), n_cores=12)
        assert m.breakdown(0, freq_scale=0.5).package_w == pytest.approx(
            m.breakdown(0, freq_scale=1.0).package_w
        )

    def test_scale_validated(self):
        m = PowerModel(PowerConfig(), n_cores=12)
        with pytest.raises(ConfigError):
            m.breakdown(1, freq_scale=0.0)
        with pytest.raises(ConfigError):
            m.breakdown(1, freq_scale=1.5)


class TestKernelIntegration:
    def run_with(self, governor, n_processes=2):
        from repro.sim.kernel import Kernel
        from repro.perf.stat import PerfStat
        from ..conftest import make_phase, make_workload

        wl = make_workload(
            n_processes=n_processes,
            phases=[make_phase(instructions=30_000_000, wss_mb=0.1, declare_pp=False)],
        )
        kernel = Kernel(governor=governor)
        stat = PerfStat(kernel)
        kernel.launch(wl)
        stat.start()
        kernel.run()
        return stat.stop(), kernel

    def test_powersave_slows_execution(self):
        fast, _ = self.run_with(PerformanceGovernor())
        slow, _ = self.run_with(PowersaveGovernor(min_scale=0.5))
        # mostly compute-bound: close to 2x slower at half frequency, but
        # the memory-stall fraction does not scale
        assert slow.wall_s > 1.4 * fast.wall_s

    def test_powersave_cuts_active_core_power(self):
        fast, _ = self.run_with(PerformanceGovernor())
        slow, _ = self.run_with(PowersaveGovernor(min_scale=0.5))
        # same work; average package power must drop under powersave
        assert (
            slow.package_j / slow.wall_s < fast.package_j / fast.wall_s
        )

    def test_ondemand_runs_hot_when_machine_is_busy(self):
        # 12 busy cores -> utilization 1.0 -> max frequency: same as perf
        fast, _ = self.run_with(PerformanceGovernor(), n_processes=12)
        auto, kernel = self.run_with(OndemandGovernor(), n_processes=12)
        assert auto.wall_s == pytest.approx(fast.wall_s, rel=0.05)
        assert kernel.freq_scale == 1.0

    def test_ondemand_clocks_down_an_idle_machine(self):
        _, kernel = self.run_with(OndemandGovernor(), n_processes=1)
        # 1 busy core of 12: utilization ~0.08 -> near-minimum frequency
        assert kernel.freq_scale < 0.7

    def test_no_governor_keeps_full_scale(self):
        _, kernel = self.run_with(None)
        assert kernel.freq_scale == 1.0