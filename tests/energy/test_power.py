"""Power model tests."""

import pytest

from repro.config import PowerConfig
from repro.energy.power import PowerModel
from repro.errors import ConfigError


@pytest.fixture
def model():
    return PowerModel(PowerConfig(), n_cores=12)


class TestBreakdown:
    def test_idle_machine_draws_static_power(self, model):
        b = model.breakdown(0)
        cfg = model.config
        assert b.package_w == pytest.approx(
            cfg.pkg_static_w + 12 * cfg.core_idle_w + cfg.llc_w
        )

    def test_power_monotone_in_active_cores(self, model):
        powers = [model.breakdown(n).package_w for n in range(13)]
        assert powers == sorted(powers)
        assert powers[-1] > powers[0]

    def test_fully_active_within_tdp_ballpark(self, model):
        # E5-2420 TDP is 95 W; the model should be in that neighbourhood.
        assert 60 < model.breakdown(12).package_w < 100

    def test_active_core_range_validated(self, model):
        with pytest.raises(ConfigError):
            model.breakdown(13)
        with pytest.raises(ConfigError):
            model.breakdown(-1)

    def test_total_includes_dram_static(self, model):
        b = model.breakdown(4)
        assert b.total_w == pytest.approx(b.package_w + model.config.dram_static_w)


class TestEnergy:
    def test_package_energy_is_power_times_time(self, model):
        assert model.package_energy(2.0, 6) == pytest.approx(
            model.breakdown(6).package_w * 2.0
        )

    def test_dram_energy_static_plus_access(self, model):
        cfg = model.config
        e = model.dram_energy(1.0, 1_000_000)
        assert e == pytest.approx(cfg.dram_static_w + 1e6 * cfg.dram_energy_per_access_j)

    def test_zero_interval_zero_accesses(self, model):
        assert model.dram_energy(0.0, 0.0) == 0.0

    def test_context_switch_energy(self, model):
        assert model.context_switch_energy(10) == pytest.approx(
            10 * model.config.context_switch_energy_j
        )

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigError):
            PowerModel(PowerConfig(), n_cores=0)
