"""RAPL-style energy accounting tests."""

import pytest

from repro.config import PowerConfig
from repro.energy.rapl import RaplDomain, RaplMeter, RaplSample
from repro.errors import SimulationError


@pytest.fixture
def meter():
    return RaplMeter(PowerConfig(), n_cores=12)


class TestAccrual:
    def test_counters_monotone(self, meter):
        readings = []
        for t in (0.1, 0.2, 0.5, 1.0):
            meter.accrue(t, n_active_cores=6)
            readings.append(meter.read(RaplDomain.PACKAGE))
        assert readings == sorted(readings)
        assert readings[0] > 0

    def test_backwards_time_rejected(self, meter):
        meter.accrue(1.0, 0)
        with pytest.raises(SimulationError):
            meter.accrue(0.5, 0)

    def test_same_time_accrues_nothing(self, meter):
        meter.accrue(1.0, 12)
        before = meter.sample()
        meter.accrue(1.0, 12)
        after = meter.sample()
        assert after.package_j == before.package_j

    def test_dram_access_energy(self, meter):
        meter.accrue(1.0, 0, dram_accesses=1e6)
        dram_only = RaplMeter(PowerConfig(), n_cores=12)
        dram_only.accrue(1.0, 0, dram_accesses=0)
        delta = meter.read(RaplDomain.DRAM) - dram_only.read(RaplDomain.DRAM)
        assert delta == pytest.approx(1e6 * PowerConfig().dram_energy_per_access_j)

    def test_context_switch_energy_charged_to_package(self, meter):
        meter.accrue(0.0, 0, context_switches=1000)
        assert meter.read(RaplDomain.PACKAGE) == pytest.approx(
            1000 * PowerConfig().context_switch_energy_j
        )

    def test_out_of_band_dram_accesses(self, meter):
        meter.add_dram_accesses(100)
        assert meter.read(RaplDomain.DRAM) > 0
        with pytest.raises(SimulationError):
            meter.add_dram_accesses(-1)


class TestSamples:
    def test_sample_difference(self, meter):
        meter.accrue(1.0, 12)
        s0 = meter.sample()
        meter.accrue(3.0, 12)
        s1 = meter.sample()
        diff = s1 - s0
        assert diff.time_s == pytest.approx(2.0)
        assert diff.package_j == pytest.approx(s1.package_j - s0.package_j)

    def test_system_is_package_plus_dram(self):
        s = RaplSample(time_s=1.0, package_j=50.0, dram_j=8.0)
        assert s.system_j == pytest.approx(58.0)

    def test_active_cores_raise_package_energy(self):
        idle = RaplMeter(PowerConfig(), 12)
        busy = RaplMeter(PowerConfig(), 12)
        idle.accrue(1.0, 0)
        busy.accrue(1.0, 12)
        assert busy.read(RaplDomain.PACKAGE) > idle.read(RaplDomain.PACKAGE)
