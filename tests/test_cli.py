"""CLI tests."""

import argparse

import pytest

from repro import cliutil
from repro.cli import build_parser, main, policy_by_name
from repro.core.policy import CompromisePolicy, StrictPolicy


class TestPolicyParsing:
    def test_default_aliases(self):
        for name in ("default", "linux", "none", "DEFAULT"):
            assert policy_by_name(name) is None

    def test_strict(self):
        assert isinstance(policy_by_name("strict"), StrictPolicy)

    def test_compromise_default_factor(self):
        p = policy_by_name("compromise")
        assert isinstance(p, CompromisePolicy)
        assert p.oversubscription == 2.0

    def test_compromise_custom_factor(self):
        assert policy_by_name("compromise:1.5").oversubscription == 1.5

    def test_unknown_policy(self):
        with pytest.raises(argparse.ArgumentTypeError):
            policy_by_name("fifo")


class TestParser:
    def test_commands_exist(self):
        parser = build_parser()
        for argv in (["table1"], ["table2"], ["run", "BLAS-1"], ["sweep"], ["fig", "11"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_run_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "PARSEC"])

    def test_fig_rejects_unknown_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "7"])  # 7-10 come from `sweep`

    def test_grid_options_on_sweep_and_fig(self):
        parser = build_parser()
        args = parser.parse_args(
            ["sweep", "--jobs", "4", "--cache-dir", "/tmp/c", "--timeout", "30"]
        )
        assert args.jobs == 4 and args.cache_dir == "/tmp/c"
        assert args.timeout == 30.0 and not args.no_cache
        args = parser.parse_args(["fig", "11", "--jobs", "2", "--no-cache"])
        assert args.jobs == 2 and args.no_cache

    def test_cache_enabled_by_default(self):
        from repro.experiments.parallel import DEFAULT_CACHE_DIR

        args = build_parser().parse_args(["sweep"])
        assert args.jobs == 1 and args.cache_dir == DEFAULT_CACHE_DIR

    def test_sanitize_fleet_options(self):
        args = build_parser().parse_args(
            ["sanitize", "--jobs", "4", "--timeout", "10", "--progress"]
        )
        assert args.jobs == 4 and args.timeout == 10.0 and args.progress
        args = build_parser().parse_args(["sanitize"])
        assert args.jobs == 1 and args.timeout is None and not args.progress

    def test_serve_options(self):
        args = build_parser().parse_args(
            [
                "serve", "--policy", "compromise:1.5", "--fifo",
                "--capacity-mb", "4", "--max-pending", "8",
                "--park-timeout", "2", "--sanitize",
                "--socket", "/tmp/rda.sock",
            ]
        )
        assert args.command == "serve"
        assert args.policy.oversubscription == 1.5
        assert args.fifo and args.sanitize
        assert args.capacity_mb == 4.0 and args.max_pending == 8
        assert args.park_timeout == 2.0 and args.socket == "/tmp/rda.sock"

    def test_loadgen_options(self):
        args = build_parser().parse_args(
            [
                "loadgen", "--socket", "/tmp/rda.sock",
                "--workload", "Water_nsq", "--mode", "open",
                "--rate", "50", "--sessions", "10", "--drain", "--json",
            ]
        )
        assert args.command == "loadgen"
        assert args.workload == "Water_nsq" and args.mode == "open"
        assert args.rate == 50.0 and args.sessions == 10
        assert args.drain and args.json

    def test_loadgen_rejects_bad_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen", "--mode", "sideways"])


class TestExecution:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "E5-2420" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Water_nsq" in out and "procs=12" in out

    def test_run_small_workload(self, capsys):
        assert main(["run", "Water_nsq", "--policy", "strict"]) == 0
        out = capsys.readouterr().out
        assert "GFLOPS" in out and "RDA: Strict" in out

    def test_fig11(self, capsys):
        assert main(["fig", "11", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out

    def test_sweep_parallel_with_warm_cache(self, capsys, tmp_path):
        argv = [
            "sweep", "--workloads", "Water_sp",
            "--jobs", "2", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "# grid: 3 runs — 3 executed, 0 cached, 0 failed" in cold
        # second invocation: every run served from cache, zero simulations
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "# grid: 3 runs — 0 executed, 3 cached, 0 failed" in warm
        # the figures themselves are identical either way
        assert [l for l in warm.splitlines() if "Water_sp" in l] == [
            l for l in cold.splitlines() if "Water_sp" in l
        ]

    def test_loadgen_requires_an_endpoint(self, capsys):
        assert main(["loadgen"]) == 2
        assert "--socket or --host" in capsys.readouterr().err

    def test_loadgen_rejects_unknown_workload(self, capsys):
        assert main(["loadgen", "--socket", "/tmp/x.sock", "--workload", "PARSEC"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_loadgen_reports_unreachable_server(self, capsys, tmp_path):
        sock = str(tmp_path / "absent.sock")
        assert main(["loadgen", "--socket", sock, "--sessions", "1"]) == 1
        assert "loadgen:" in capsys.readouterr().err


class TestOverloadFlags:
    def test_serve_overload_knobs_parse_and_default_off(self):
        parser = build_parser()
        args = parser.parse_args(["serve"])
        assert args.park_deadline is None
        assert args.retry_hint_floor is None and args.retry_hint_cap is None
        assert args.max_pending_per_client is None
        assert args.write_timeout is None
        args = parser.parse_args([
            "serve", "--park-deadline", "0.5", "--retry-hint-floor", "0.05",
            "--retry-hint-cap", "2.0", "--max-pending-per-client", "2",
            "--write-timeout", "1.0",
        ])
        assert args.park_deadline == 0.5 and args.retry_hint_floor == 0.05
        assert args.retry_hint_cap == 2.0
        assert args.max_pending_per_client == 2 and args.write_timeout == 1.0

    def test_breaker_and_backoff_flags_on_loadgen_and_chaos(self):
        parser = build_parser()
        for cmd in (["loadgen"], ["chaos"]):
            args = parser.parse_args(cmd + [
                "--backoff-cap", "0.5", "--breaker-threshold", "3",
                "--breaker-reset", "0.1",
            ])
            assert args.backoff_cap == 0.5
            assert args.breaker_threshold == 3 and args.breaker_reset == 0.1

    @pytest.mark.parametrize("argv", [
        ["serve", "--park-deadline", "0"],
        ["serve", "--retry-hint-floor", "-1"],
        ["serve", "--max-pending-per-client", "0"],
        ["serve", "--write-timeout", "nope"],
        ["loadgen", "--backoff-cap", "-0.5"],
        ["loadgen", "--breaker-threshold", "0"],
        ["chaos", "--breaker-reset", "0"],
        ["chaos", "--storm-rate", "-5"],
    ])
    def test_nonpositive_tuning_values_are_rejected(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)

    def test_chaos_overload_parses_and_excludes_cluster(self, capsys):
        args = build_parser().parse_args(["chaos", "--overload"])
        assert args.overload and args.storm_rate == 150.0
        assert args.slowloris == 2 and args.p99_bound == 5.0
        assert main(["chaos", "--overload", "--cluster"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestSharedValidators:
    """repro.cliutil: the validators shared by every subcommand."""

    def test_positive_float_accepts(self):
        assert cliutil.positive_float("0.5") == 0.5
        assert cliutil.positive_float("2") == 2.0

    @pytest.mark.parametrize("text", ["0", "-1.5", "nan?", ""])
    def test_positive_float_rejects(self, text):
        with pytest.raises(argparse.ArgumentTypeError):
            cliutil.positive_float(text)

    def test_positive_int_accepts(self):
        assert cliutil.positive_int("3") == 3

    @pytest.mark.parametrize("text", ["0", "-2", "1.5", "x"])
    def test_positive_int_rejects(self, text):
        with pytest.raises(argparse.ArgumentTypeError):
            cliutil.positive_int(text)


class TestPredictFlags:
    def test_serve_predict_flags_parse_and_default_off(self):
        parser = build_parser()
        args = parser.parse_args(["serve"])
        assert args.predict is False
        assert args.predict_error_band == 0.25
        assert args.predict_min_samples == 3
        assert args.predict_history == 32
        assert args.predict_hysteresis == 2
        args = parser.parse_args([
            "serve", "--predict", "--predict-error-band", "0.1",
            "--predict-min-samples", "5", "--predict-history", "16",
            "--predict-hysteresis", "4",
        ])
        assert args.predict is True and args.predict_error_band == 0.1
        assert args.predict_min_samples == 5 and args.predict_history == 16
        assert args.predict_hysteresis == 4

    def test_loadgen_overdeclare_and_observe(self):
        parser = build_parser()
        args = parser.parse_args(["loadgen"])
        assert args.overdeclare == 1.0 and args.observe is False
        args = parser.parse_args(["loadgen", "--overdeclare", "2", "--observe"])
        assert args.overdeclare == 2.0 and args.observe is True

    @pytest.mark.parametrize("argv", [
        ["serve", "--predict-error-band", "0"],
        ["serve", "--predict-min-samples", "-1"],
        ["serve", "--predict-history", "0"],
        ["serve", "--predict-hysteresis", "1.5"],
        ["loadgen", "--overdeclare", "0"],
        ["loadgen", "--overdeclare", "-2"],
    ])
    def test_invalid_predict_values_are_rejected(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)
