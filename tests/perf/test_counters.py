"""Hardware-counter emulation tests."""

import pytest

from repro.errors import SimulationError
from repro.perf.counters import CounterSet, HwCounter


class TestCounterSet:
    def test_counters_start_at_zero(self):
        c = CounterSet()
        for counter in HwCounter:
            assert c.read(counter) == 0.0

    def test_add_and_read(self):
        c = CounterSet()
        c.add(HwCounter.INSTRUCTIONS, 100)
        c.add(HwCounter.INSTRUCTIONS, 50)
        assert c.read(HwCounter.INSTRUCTIONS) == 150

    def test_negative_increment_rejected(self):
        with pytest.raises(SimulationError):
            CounterSet().add(HwCounter.CYCLES, -1)

    def test_snapshot_is_immutable_copy(self):
        c = CounterSet()
        c.add(HwCounter.FP_OPS, 10)
        snap = c.snapshot()
        c.add(HwCounter.FP_OPS, 10)
        assert snap[HwCounter.FP_OPS] == 10
        assert c.read(HwCounter.FP_OPS) == 20

    def test_snapshot_difference(self):
        c = CounterSet()
        c.add(HwCounter.LLC_MISSES, 5)
        s0 = c.snapshot()
        c.add(HwCounter.LLC_MISSES, 7)
        delta = c.snapshot() - s0
        assert delta[HwCounter.LLC_MISSES] == 7
        assert delta[HwCounter.CYCLES] == 0
