"""perf-sched trace analysis tests."""

import pytest

from repro.core.policy import StrictPolicy
from repro.core.rda import RdaScheduler
from repro.perf.sched import analyze_trace
from repro.sim.kernel import Kernel
from repro.sim.tracing import KernelTracer

from ..conftest import make_phase, make_workload


def traced_run(workload, policy=None, config=None):
    scheduler = RdaScheduler(policy=policy, config=config) if policy else None
    kernel = Kernel(config=config, extension=scheduler)
    tracer = KernelTracer()
    kernel.tracer = tracer
    kernel.launch(workload)
    kernel.run(max_events=1_000_000)
    return kernel, tracer


class TestAnalysis:
    def test_dispatch_counts(self):
        kernel, tracer = traced_run(make_workload(n_processes=3))
        report = analyze_trace(tracer)
        assert len(report.threads) == 3
        assert report.total_dispatches >= 3
        for t in report.threads.values():
            assert t.first_dispatch_s is not None
            assert t.exit_s is not None

    def test_pp_wait_matches_thread_stats(self):
        wl = make_workload(n_processes=8, phases=[make_phase(wss_mb=8.0)])
        kernel, tracer = traced_run(wl, policy=StrictPolicy())
        report = analyze_trace(tracer)
        assert report.total_pp_wait_s > 0
        # trace-derived waits agree with the kernel's own accounting
        for proc in kernel.processes:
            t = proc.threads[0]
            traced = report.threads[t.tid].pp_wait_s
            assert traced == pytest.approx(t.stats.pp_wait_time_s, rel=1e-6, abs=1e-12)

    def test_denials_counted(self):
        wl = make_workload(n_processes=6, phases=[make_phase(wss_mb=9.0)])
        kernel, tracer = traced_run(wl, policy=StrictPolicy())
        report = analyze_trace(tracer)
        assert sum(t.pp_denials for t in report.threads.values()) >= 5

    def test_preemptions_under_load(self, small_machine):
        wl = make_workload(n_processes=6, phases=[make_phase(instructions=20_000_000)])
        kernel, tracer = traced_run(wl, config=small_machine)
        report = analyze_trace(tracer)
        assert sum(t.preemptions for t in report.threads.values()) > 0

    def test_describe_table(self):
        wl = make_workload(n_processes=4, phases=[make_phase(wss_mb=9.0)])
        kernel, tracer = traced_run(wl, policy=StrictPolicy())
        text = analyze_trace(tracer).describe(top=3)
        assert "pp-wait(ms)" in text
        assert "dispatches" in text

    def test_max_pp_wait(self):
        wl = make_workload(n_processes=4, phases=[make_phase(wss_mb=9.0)])
        kernel, tracer = traced_run(wl, policy=StrictPolicy())
        report = analyze_trace(tracer)
        assert report.max_pp_wait_s <= kernel.now
        assert report.max_pp_wait_s > 0
