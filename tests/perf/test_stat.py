"""perf-stat measurement session tests."""

import pytest

from repro.errors import SimulationError
from repro.perf.stat import PerfReport, PerfStat
from repro.sim.kernel import Kernel

from ..conftest import make_phase, make_workload


def report_of(**kw):
    defaults = dict(
        wall_s=2.0,
        instructions=1e9,
        cycles=2e9,
        flops=5e8,
        llc_refs=1e7,
        llc_misses=2e6,
        context_switches=100,
        pp_begin_calls=10,
        pp_denials=2,
        package_j=100.0,
        dram_j=20.0,
    )
    defaults.update(kw)
    return PerfReport(**defaults)


class TestDerivedMetrics:
    def test_system_energy(self):
        assert report_of().system_j == pytest.approx(120.0)

    def test_gflops(self):
        assert report_of().gflops == pytest.approx(0.25)

    def test_gflops_per_watt(self):
        r = report_of()
        assert r.gflops_per_watt == pytest.approx(5e8 / 120.0 / 1e9)

    def test_average_power(self):
        assert report_of().avg_system_power_w == pytest.approx(60.0)

    def test_ipc_and_miss_ratio(self):
        r = report_of()
        assert r.ipc == pytest.approx(0.5)
        assert r.llc_miss_ratio == pytest.approx(0.2)

    def test_zero_wall_time_degenerates_safely(self):
        r = report_of(wall_s=0.0)
        assert r.gflops == 0.0
        assert r.avg_system_power_w == 0.0

    def test_describe_contains_perf_style_lines(self):
        text = report_of().describe()
        assert "seconds time elapsed" in text
        assert "Joules power/energy-pkg/" in text
        assert "GFLOPS/Watt" in text


class TestSession:
    def test_measures_a_run(self):
        kernel = Kernel()
        stat = PerfStat(kernel)
        kernel.launch(make_workload(n_processes=2))
        stat.start()
        kernel.run()
        report = stat.stop()
        assert report.wall_s == pytest.approx(kernel.now)
        assert report.instructions > 0
        assert report.package_j > 0

    def test_stop_before_start_raises(self):
        with pytest.raises(SimulationError):
            PerfStat(Kernel()).stop()

    def test_bracketing_excludes_prior_activity(self):
        kernel = Kernel()
        kernel.launch(make_workload(n_processes=1))
        kernel.run()  # first run not measured
        first_instr = kernel.machine.counters.read
        stat = PerfStat(kernel)
        stat.start()
        kernel.launch(make_workload(n_processes=1))
        kernel.run()
        report = stat.stop()
        assert report.instructions == pytest.approx(1_000_000, rel=1e-6)
