"""Shared-LLC contention model tests, including hypothesis properties."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ResourceError
from repro.mem.contention import ContentionPoint, LlcDemand, SharedLlcModel

CAP = 15_728_640  # the paper's 15360 KB LLC


def model(gamma=2.0):
    return SharedLlcModel(CAP, gamma=gamma)


class TestDemandValidation:
    def test_rejects_negative_wss(self):
        with pytest.raises(ResourceError):
            LlcDemand(wss_bytes=-1, reuse=0.5)

    def test_rejects_out_of_range_reuse(self):
        with pytest.raises(ResourceError):
            LlcDemand(wss_bytes=10, reuse=1.5)

    def test_rejects_bad_capacity_and_gamma(self):
        with pytest.raises(ResourceError):
            SharedLlcModel(0)
        with pytest.raises(ResourceError):
            SharedLlcModel(CAP, gamma=0.5)


class TestUndersubscribed:
    def test_single_fitting_demand_is_fully_hot(self):
        pts = model().resolve([LlcDemand(CAP // 2, 0.9)])
        assert pts[0].hot_fraction == 1.0
        assert pts[0].share_bytes == CAP // 2
        assert not pts[0].oversubscribed

    def test_fitting_set_keeps_everyone_hot(self):
        demands = [LlcDemand(CAP // 4, 0.9)] * 3
        for pt in model().resolve(demands):
            assert pt.hot_fraction == 1.0

    def test_zero_demand_is_hot(self):
        pts = model().resolve([LlcDemand(0, 0.0), LlcDemand(2 * CAP, 0.9)])
        assert pts[0].hot_fraction == 1.0


class TestOversubscribed:
    def test_shares_are_demand_proportional(self):
        a, b = LlcDemand(CAP, 0.9), LlcDemand(3 * CAP, 0.9)
        pts = model().resolve([a, b])
        assert pts[0].share_bytes == pytest.approx(CAP / 4)
        assert pts[1].share_bytes == pytest.approx(3 * CAP / 4)
        assert all(p.oversubscribed for p in pts)

    def test_shares_sum_to_capacity(self):
        demands = [LlcDemand(CAP, 0.5), LlcDemand(2 * CAP, 0.5), LlcDemand(CAP // 2, 0.1)]
        pts = model().resolve(demands)
        assert sum(p.share_bytes for p in pts) == pytest.approx(CAP)

    def test_gamma_cliff(self):
        # 2x oversubscription: share/wss = 0.5, h = 0.25 with gamma=2
        pts = model(gamma=2.0).resolve([LlcDemand(CAP, 0.9), LlcDemand(CAP, 0.9)])
        assert pts[0].hot_fraction == pytest.approx(0.25)
        pts = model(gamma=1.0).resolve([LlcDemand(CAP, 0.9), LlcDemand(CAP, 0.9)])
        assert pts[0].hot_fraction == pytest.approx(0.5)

    def test_hit_probability_scales_with_reuse(self):
        pt = ContentionPoint(
            share_bytes=1.0, hot_fraction=0.5, total_demand_bytes=10, oversubscribed=True
        )
        assert pt.hit_probability(0.8) == pytest.approx(0.4)
        assert pt.hit_probability(0.0) == 0.0


class TestSharing:
    def test_shared_key_counted_once(self):
        shared = [LlcDemand(CAP, 0.9, sharing_key="proc1")] * 4
        assert model().unique_demand_bytes(shared) == CAP
        pts = model().resolve(shared)
        assert all(p.hot_fraction == 1.0 for p in pts)

    def test_distinct_keys_counted_separately(self):
        demands = [
            LlcDemand(CAP, 0.9, sharing_key="p1"),
            LlcDemand(CAP, 0.9, sharing_key="p2"),
        ]
        assert model().unique_demand_bytes(demands) == 2 * CAP

    def test_private_demands_always_counted(self):
        demands = [LlcDemand(CAP, 0.9, sharing_key=None)] * 3
        assert model().unique_demand_bytes(demands) == 3 * CAP

    def test_fits_accounts_for_sharing(self):
        shared = [LlcDemand(CAP, 0.9, sharing_key="x")] * 10
        assert model().fits(shared)
        assert not model().fits([LlcDemand(CAP + 1, 0.9)])


class TestGroupedResolution:
    def test_resolve_grouped_keys_match(self):
        demands = {
            "a": LlcDemand(CAP // 2, 0.9),
            "b": LlcDemand(CAP, 0.9),
        }
        pts = model().resolve_grouped(demands)
        assert set(pts) == {"a", "b"}
        assert pts["a"].share_bytes < pts["b"].share_bytes


wss_st = st.integers(min_value=0, max_value=4 * CAP)
reuse_st = st.floats(min_value=0.0, max_value=1.0)
demand_st = st.builds(LlcDemand, wss_bytes=wss_st, reuse=reuse_st)


class TestProperties:
    @given(st.lists(demand_st, min_size=1, max_size=12))
    def test_hot_fraction_in_unit_interval(self, demands):
        for pt in model().resolve(demands):
            assert 0.0 <= pt.hot_fraction <= 1.0

    @given(st.lists(demand_st, min_size=1, max_size=12))
    def test_shares_never_exceed_demand_or_capacity(self, demands):
        pts = model().resolve(demands)
        for d, pt in zip(demands, pts):
            assert pt.share_bytes <= d.wss_bytes + 1e-9
        assert sum(p.share_bytes for p in pts) <= max(
            CAP, sum(d.wss_bytes for d in demands)
        ) + 1e-6

    @given(demand_st, st.lists(demand_st, min_size=0, max_size=8), demand_st)
    def test_more_corunners_never_raise_hot_fraction(self, subject, others, extra):
        h_before = model().hot_fraction(subject, others)
        h_after = model().hot_fraction(subject, others + [extra])
        assert h_after <= h_before + 1e-12

    @given(st.lists(demand_st, min_size=1, max_size=12))
    def test_oversubscription_flag_consistent(self, demands):
        pts = model().resolve(demands)
        total = model().unique_demand_bytes(demands)
        assert all(p.oversubscribed == (total > CAP) for p in pts)
        assert all(p.total_demand_bytes == total for p in pts)
