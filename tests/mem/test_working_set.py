"""Footprint / WSS / reuse-ratio computation tests (§2.4 window stats)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.progress_period import ReuseLevel
from repro.mem.working_set import WindowStats, reuse_level_of_ratio, window_stats


class TestWindowStats:
    def test_empty_window(self):
        s = window_stats([])
        assert s.n_accesses == 0
        assert s.footprint_bytes == 0
        assert s.wss_bytes == 0
        assert s.reuse_ratio == 0.0

    def test_footprint_counts_unique_lines(self):
        # 4 accesses, 2 distinct lines
        s = window_stats([0, 8, 64, 72], granularity_bytes=64)
        assert s.footprint_bytes == 2 * 64
        assert s.n_accesses == 4

    def test_wss_requires_min_accesses(self):
        # line 0 touched twice, line 1 once
        s = window_stats([0, 0, 64], min_accesses=2)
        assert s.wss_bytes == 64
        assert s.footprint_bytes == 128

    def test_streaming_has_unit_reuse_ratio(self):
        s = window_stats([i * 64 for i in range(100)])
        assert s.reuse_ratio == pytest.approx(1.0)
        assert s.wss_bytes == 0  # nothing touched twice

    def test_hot_loop_has_high_reuse(self):
        s = window_stats([0, 64, 128] * 50)
        assert s.reuse_ratio == pytest.approx(50.0)
        assert s.wss_bytes == 3 * 64

    def test_custom_granularity(self):
        s = window_stats([0, 100, 200], granularity_bytes=256)
        assert s.footprint_bytes == 256  # all in one 256-byte block
        assert s.wss_bytes == 256


class TestSimilarity:
    def make(self, wss, reuse):
        return WindowStats(n_accesses=100, footprint_bytes=wss, wss_bytes=wss, reuse_ratio=reuse)

    def test_identical_windows_similar(self):
        a = self.make(1000, 5.0)
        assert a.similar_to(a)

    def test_within_tolerance(self):
        assert self.make(1000, 5.0).similar_to(self.make(1200, 5.5), tolerance=0.25)

    def test_wss_outside_tolerance(self):
        assert not self.make(1000, 5.0).similar_to(self.make(2000, 5.0), tolerance=0.25)

    def test_reuse_outside_tolerance(self):
        assert not self.make(1000, 5.0).similar_to(self.make(1000, 10.0), tolerance=0.25)

    def test_symmetry(self):
        a, b = self.make(1000, 5.0), self.make(1300, 5.0)
        assert a.similar_to(b) == b.similar_to(a)

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.floats(min_value=0, max_value=100),
    )
    def test_reflexive_property(self, wss, reuse):
        w = self.make(wss, reuse)
        assert w.similar_to(w)


class TestReuseLevels:
    @pytest.mark.parametrize(
        "ratio,level",
        [
            (1.0, ReuseLevel.LOW),
            (1.9, ReuseLevel.LOW),
            (2.0, ReuseLevel.MEDIUM),
            (7.9, ReuseLevel.MEDIUM),
            (8.0, ReuseLevel.HIGH),
            (50.0, ReuseLevel.HIGH),
        ],
    )
    def test_thresholds(self, ratio, level):
        assert reuse_level_of_ratio(ratio) is level

    def test_blas_archetypes(self):
        stream = window_stats([i * 64 for i in range(200)])
        blocked = window_stats([(i % 16) * 64 for i in range(200)])
        assert reuse_level_of_ratio(stream.reuse_ratio) is ReuseLevel.LOW
        assert reuse_level_of_ratio(blocked.reuse_ratio) is ReuseLevel.HIGH


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 24), max_size=300))
    def test_wss_never_exceeds_footprint(self, addrs):
        s = window_stats(addrs)
        assert s.wss_bytes <= s.footprint_bytes
        assert s.footprint_bytes <= max(1, s.n_accesses) * 64

    @given(st.lists(st.integers(min_value=0, max_value=1 << 24), min_size=1, max_size=300))
    def test_reuse_ratio_bounds(self, addrs):
        s = window_stats(addrs)
        assert 1.0 <= s.reuse_ratio <= len(addrs)
