"""Address-space and region tests."""

import numpy as np
import pytest

from repro.errors import ProfilerError
from repro.mem.address import AddressSpace, Region


class TestRegion:
    def test_scalar_addressing(self):
        r = Region("a", base=0x1000, size=256)
        assert r.addr(0) == 0x1000
        assert r.addr(255) == 0x10FF

    def test_offsets_wrap_modulo_region(self):
        r = Region("a", base=0x1000, size=256)
        assert r.addr(256) == 0x1000
        assert r.addr(300) == 0x1000 + 44

    def test_vectorized_addressing(self):
        r = Region("a", base=0x1000, size=1024)
        out = r.addr(np.array([0, 8, 16]))
        assert list(out) == [0x1000, 0x1008, 0x1010]

    def test_element_addressing(self):
        r = Region("a", base=0, size=1024)
        out = r.element_addr(np.array([0, 1, 2]), element_bytes=100)
        assert list(out) == [0, 100, 200]

    def test_end_property(self):
        assert Region("a", 100, 50).end == 150


class TestAddressSpace:
    def test_regions_do_not_overlap(self):
        space = AddressSpace()
        a = space.alloc("a", 10_000_000)
        b = space.alloc("b", 10_000_000)
        assert a.end <= b.base

    def test_lookup_by_name(self):
        space = AddressSpace()
        a = space.alloc("a", 64)
        assert space["a"] is a
        assert "a" in space and "b" not in space

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.alloc("a", 64)
        with pytest.raises(ProfilerError):
            space.alloc("a", 64)

    def test_zero_size_rejected(self):
        with pytest.raises(ProfilerError):
            AddressSpace().alloc("a", 0)

    def test_unknown_region_raises(self):
        with pytest.raises(ProfilerError):
            AddressSpace()["missing"]

    def test_regions_listing(self):
        space = AddressSpace()
        space.alloc("a", 64)
        space.alloc("b", 64)
        assert [r.name for r in space.regions()] == ["a", "b"]
