"""Cache-hierarchy (L1/L2/LLC/DRAM) tests."""

import pytest

from repro.mem.hierarchy import CacheHierarchy


class TestSingleCore:
    def test_cold_access_goes_to_dram(self):
        h = CacheHierarchy(n_cores=1)
        r = h.access(0, 0x1000)
        assert r.level == "DRAM" and r.dram

    def test_second_access_hits_l1(self):
        h = CacheHierarchy(n_cores=1)
        h.access(0, 0x1000)
        r = h.access(0, 0x1000)
        assert r.level == "L1" and not r.dram

    def test_latency_grows_down_the_hierarchy(self):
        h = CacheHierarchy(n_cores=1)
        lat = {}
        h.access(0, 0)
        lat["L1"] = h.access(0, 0).latency_s
        # Evict from L1 (32 KB, 64 sets x 8 ways): stream 64 KiB
        for i in range(1, 1024 + 1):
            h.access(0, i * 64)
        r = h.access(0, 0)
        assert r.level in ("L2", "LLC")
        assert r.latency_s > lat["L1"]

    def test_stats_count_levels(self):
        h = CacheHierarchy(n_cores=1)
        h.access(0, 0)
        h.access(0, 0)
        st = h.stats[0]
        assert st.dram_accesses == 1
        assert st.l1_hits == 1
        assert st.accesses == 2

    def test_flush_forces_dram(self):
        h = CacheHierarchy(n_cores=1)
        h.access(0, 0)
        h.flush()
        assert h.access(0, 0).level == "DRAM"


class TestSharedLlc:
    def test_cores_share_llc_data(self):
        h = CacheHierarchy(n_cores=2)
        h.access(0, 0x2000)  # core 0 brings the line into the LLC
        r = h.access(1, 0x2000)  # core 1 misses private caches, hits LLC
        assert r.level == "LLC"

    def test_private_caches_are_private(self):
        h = CacheHierarchy(n_cores=2)
        h.access(0, 0x2000)
        h.access(1, 0x2000)
        r = h.access(1, 0x2000)
        assert r.level == "L1"  # second touch by core 1 is local

    def test_interleave_runs_all_traces(self):
        h = CacheHierarchy(n_cores=2)
        t0 = [i * 64 for i in range(100)]
        t1 = [(1 << 24) + i * 64 for i in range(50)]
        stats = h.interleave([t0, t1])
        assert stats[0].accesses == 100
        assert stats[1].accesses == 50

    def test_interleave_rejects_too_many_traces(self):
        h = CacheHierarchy(n_cores=1)
        with pytest.raises(ValueError):
            h.interleave([[0], [64]])

    def test_llc_contention_raises_miss_ratio(self):
        """Two streaming cores over > capacity thrash the shared LLC more
        than one core alone — the paper's core mechanism, trace-driven."""
        llc_lines = CacheHierarchy().llc.config.n_lines
        span = llc_lines * 64  # exactly LLC capacity per core
        solo = CacheHierarchy(n_cores=2)
        trace = [i * 64 for i in range(span // 64)] * 2
        solo.access_trace(0, trace)
        duo = CacheHierarchy(n_cores=2)
        other = [(1 << 30) + i * 64 for i in range(span // 64)] * 2
        duo.interleave([trace, other])
        assert duo.stats[0].llc_miss_ratio >= solo.stats[0].llc_miss_ratio

    def test_invalid_core_index_raises(self):
        h = CacheHierarchy(n_cores=1)
        with pytest.raises(IndexError):
            h.access(3, 0)

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy(n_cores=0)
