"""MemoryTrace container tests."""

import numpy as np
import pytest

from repro.errors import ProfilerError
from repro.mem.trace import MemoryTrace, concat_traces


def trace_of(n, ipa=3.0, **kw):
    return MemoryTrace(np.arange(n, dtype=np.int64) * 64, instructions_per_access=ipa, **kw)


class TestConstruction:
    def test_length_and_instructions(self):
        t = trace_of(300)
        assert len(t) == 300
        assert t.instructions == pytest.approx(900)

    def test_rejects_2d_addresses(self):
        with pytest.raises(ProfilerError):
            MemoryTrace(np.zeros((2, 2), dtype=np.int64))

    def test_rejects_bad_instruction_mix(self):
        with pytest.raises(ProfilerError):
            MemoryTrace(np.zeros(4, dtype=np.int64), instructions_per_access=0)

    def test_coerces_dtype(self):
        t = MemoryTrace(np.array([1.0, 2.0]))
        assert t.addresses.dtype == np.int64


class TestWindows:
    def test_window_size_conversion(self):
        t = trace_of(100, ipa=3.0)
        assert t.window_accesses(300) == 100
        assert t.window_accesses(30) == 10

    def test_window_too_small_raises(self):
        t = trace_of(100, ipa=3.0)
        with pytest.raises(ProfilerError):
            t.window_accesses(1)

    def test_windows_partition_trace(self):
        t = trace_of(100, ipa=1.0)
        ws = list(t.windows(25))
        assert len(ws) == 4
        assert all(len(w) == 25 for w in ws)
        assert np.concatenate(ws).tolist() == t.addresses.tolist()

    def test_trailing_partial_window_dropped(self):
        t = trace_of(105, ipa=1.0)
        assert len(list(t.windows(25))) == 4


class TestJmpSamples:
    def test_jmps_aligned_to_windows(self):
        jmps = np.arange(8, dtype=np.int64)
        t = MemoryTrace(
            np.zeros(2048, dtype=np.int64),
            instructions_per_access=1.0,
            jmp_addresses=jmps,
            jmp_sample_stride=256,
        )
        w0 = t.jmps_in_window(0, 1024)  # accesses 0..1023 -> jmp samples 0..3
        assert w0.tolist() == [0, 1, 2, 3]
        w1 = t.jmps_in_window(1, 1024)
        assert w1.tolist() == [4, 5, 6, 7]

    def test_no_jmps_returns_empty(self):
        t = trace_of(100)
        assert t.jmps_in_window(0, 30).size == 0


class TestConcat:
    def test_concat_preserves_order(self):
        a, b = trace_of(10), MemoryTrace(np.full(5, 7, dtype=np.int64))
        c = concat_traces([a, b])
        assert len(c) == 15
        assert c.addresses[-1] == 7

    def test_concat_requires_matching_mix(self):
        with pytest.raises(ProfilerError):
            concat_traces([trace_of(4, ipa=3.0), trace_of(4, ipa=2.0)])

    def test_concat_empty_rejected(self):
        with pytest.raises(ProfilerError):
            concat_traces([])
