"""Partitioned-LLC model tests (§6 future-work extension)."""

import pytest

from repro.errors import ResourceError
from repro.mem.contention import LlcDemand
from repro.mem.partition import PartitionedLlcModel

CAP = 16_000_000
PEN = 2_000_000


def model(**kw):
    defaults = dict(streaming_partition_bytes=PEN, streaming_reuse_threshold=0.15)
    defaults.update(kw)
    return PartitionedLlcModel(CAP, **defaults)


def stream(wss=8_000_000):
    return LlcDemand(wss_bytes=wss, reuse=0.05)


def hot(wss=4_000_000):
    return LlcDemand(wss_bytes=wss, reuse=0.9)


class TestClassification:
    def test_low_reuse_is_streaming(self):
        assert model().is_streaming(stream())

    def test_oversized_is_streaming_even_with_reuse(self):
        assert model().is_streaming(LlcDemand(wss_bytes=2 * CAP, reuse=0.9))

    def test_reusable_fitting_demand_is_protected(self):
        assert not model().is_streaming(hot())

    def test_threshold_boundary(self):
        m = model(streaming_reuse_threshold=0.5)
        assert m.is_streaming(LlcDemand(1000, reuse=0.5))
        assert not m.is_streaming(LlcDemand(1000, reuse=0.51))


class TestValidation:
    def test_pen_must_fit_inside_cache(self):
        with pytest.raises(ResourceError):
            PartitionedLlcModel(CAP, streaming_partition_bytes=CAP)
        with pytest.raises(ResourceError):
            PartitionedLlcModel(CAP, streaming_partition_bytes=0)

    def test_threshold_range(self):
        with pytest.raises(ResourceError):
            PartitionedLlcModel(CAP, streaming_reuse_threshold=1.5)

    def test_default_pen_is_an_eighth(self):
        m = PartitionedLlcModel(CAP)
        assert m.streaming_partition_bytes == CAP // 8
        assert m.main_partition_bytes == CAP - CAP // 8


class TestIsolation:
    def test_streams_do_not_degrade_protected_demands(self):
        m = model()
        protected = [hot(6_000_000), hot(6_000_000)]  # fits 14 MB main
        alone = m.resolve(protected)
        with_streams = m.resolve(protected + [stream(50_000_000)] * 4)
        for a, b in zip(alone, with_streams[:2]):
            assert b.hot_fraction == pytest.approx(a.hot_fraction)

    def test_streams_confined_to_pen(self):
        pts = model().resolve([stream(8_000_000)])
        assert pts[0].share_bytes <= PEN

    def test_protected_contend_within_main_partition(self):
        m = model()
        pts = m.resolve([hot(10_000_000), hot(10_000_000)])  # 20 MB vs 14 MB
        assert all(p.oversubscribed for p in pts)
        assert sum(p.share_bytes for p in pts) == pytest.approx(
            m.main_partition_bytes
        )

    def test_streams_contend_within_pen(self):
        m = model()
        pts = m.resolve([stream(3_000_000), stream(3_000_000)])
        assert sum(p.share_bytes for p in pts) == pytest.approx(PEN)

    def test_mixed_resolution_preserves_order(self):
        m = model()
        demands = [hot(), stream(), hot(), stream()]
        pts = m.resolve(demands)
        assert len(pts) == 4
        # the protected pair fits the main partition entirely
        assert pts[0].hot_fraction == 1.0 and pts[2].hot_fraction == 1.0

    def test_shared_keys_respected_within_partition(self):
        m = model()
        sibs = [
            LlcDemand(10_000_000, reuse=0.9, sharing_key="p"),
            LlcDemand(10_000_000, reuse=0.9, sharing_key="p"),
        ]
        pts = m.resolve(sibs)
        assert all(p.hot_fraction == 1.0 for p in pts)  # counted once, fits
