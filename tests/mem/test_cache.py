"""Set-associative cache simulator tests, with LRU stack properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.mem.cache import Cache


def toy_cache(capacity=4096, ways=4, replacement="lru", line=64):
    return Cache(
        CacheConfig("toy", capacity, line_bytes=line, associativity=ways),
        replacement=replacement,
    )


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        c = toy_cache()
        assert c.access(0) is False
        assert c.access(0) is True

    def test_same_line_aliases(self):
        c = toy_cache(line=64)
        c.access(0)
        assert c.access(63) is True
        assert c.access(64) is False

    def test_lookup_does_not_fill(self):
        c = toy_cache()
        assert c.lookup(0) is False
        assert c.access(0) is False  # still a miss

    def test_stats_accumulate(self):
        c = toy_cache()
        c.access_trace([0, 0, 64, 0])
        assert c.stats.accesses == 4
        assert c.stats.hits == 2
        assert c.stats.misses == 2
        assert c.stats.hit_rate == pytest.approx(0.5)

    def test_invalidate_all_empties(self):
        c = toy_cache()
        c.access(0)
        c.invalidate_all()
        assert c.resident_lines() == 0
        assert c.access(0) is False

    def test_resident_bytes(self):
        c = toy_cache()
        for i in range(5):
            c.access(i * 64)
        assert c.resident_bytes() == 5 * 64


class TestEviction:
    def test_set_overflow_evicts(self):
        c = toy_cache(capacity=4096, ways=4)  # 16 sets
        n_sets = c.n_sets
        # 5 lines mapping to set 0: the first is LRU and must be evicted
        addrs = [k * n_sets * 64 for k in range(5)]
        for a in addrs:
            c.access(a)
        assert c.stats.evictions == 1
        assert c.access(addrs[0]) is False  # evicted
        assert c.access(addrs[4]) is True

    def test_lru_protects_recently_used(self):
        c = toy_cache(capacity=4096, ways=4)
        n_sets = c.n_sets
        addrs = [k * n_sets * 64 for k in range(4)]
        for a in addrs:
            c.access(a)
        c.access(addrs[0])  # make line 0 MRU
        c.access(4 * n_sets * 64)  # evicts addrs[1], not addrs[0]
        assert c.access(addrs[0]) is True
        assert c.access(addrs[1]) is False

    def test_working_set_within_capacity_all_hits_on_second_pass(self):
        c = toy_cache(capacity=64 * 1024, ways=8)
        lines = [i * 64 for i in range(512)]  # exactly half capacity
        c.access_trace(lines)
        before = c.stats.hits
        c.access_trace(lines)
        assert c.stats.hits == before + len(lines)

    def test_thrash_when_working_set_exceeds_capacity_fifo_pattern(self):
        c = toy_cache(capacity=4096, ways=4)
        lines = [i * 64 for i in range(2 * 4096 // 64)]
        c.access_trace(lines)
        c.stats.reset()
        c.access_trace(lines)  # sequential re-sweep of 2x capacity under LRU
        assert c.stats.hit_rate == 0.0


class TestReplacementPolicies:
    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    def test_all_policies_function(self, policy):
        c = toy_cache(replacement=policy)
        trace = [(i % 32) * 64 for i in range(1000)]  # fits: 32 of 64 lines
        c.access_trace(trace)
        assert c.stats.accesses == 1000
        assert 0 < c.stats.hits <= 1000

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            toy_cache(replacement="plru2")

    def test_random_policy_deterministic_with_seed(self):
        trace = [(i * 7919 % 4096) * 64 for i in range(2000)]
        a = toy_cache(replacement="random")
        b = toy_cache(replacement="random")
        a.access_trace(trace)
        b.access_trace(trace)
        assert a.stats.hits == b.stats.hits


class TestCapacityMonotonicityProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=50, max_size=400)
    )
    def test_bigger_lru_cache_never_hits_less(self, addrs):
        """LRU inclusion: a fully-associative-per-set superset cache of twice
        the ways hits on every address a smaller one hits."""
        small = Cache(
            CacheConfig("s", 64 * 64, line_bytes=64, associativity=64)
        )  # fully associative, 64 lines
        big = Cache(
            CacheConfig("b", 128 * 64, line_bytes=64, associativity=128)
        )  # fully associative, 128 lines
        for a in addrs:
            hs = small.access(a)
            hb = big.access(a)
            assert hb or not hs  # small hit implies big hit

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=10, max_size=200)
    )
    def test_stats_are_consistent(self, addrs):
        c = toy_cache()
        c.access_trace(addrs)
        assert c.stats.hits + c.stats.misses == c.stats.accesses
        assert c.resident_lines() <= c.config.n_lines
