"""Replacement policy state machine tests."""

import pytest

from repro.mem.replacement import FifoState, LruState, RandomState, make_replacement


class TestLru:
    def test_victim_is_least_recent(self):
        lru = LruState(n_sets=1, n_ways=4)
        for way in range(4):
            lru.on_access(0, way)
        assert lru.victim(0) == 0
        lru.on_access(0, 0)
        assert lru.victim(0) == 1

    def test_sets_are_independent(self):
        lru = LruState(n_sets=2, n_ways=2)
        lru.on_access(0, 1)
        lru.on_access(1, 0)
        assert lru.victim(0) == 0
        assert lru.victim(1) == 1


class TestFifo:
    def test_round_robin_victims(self):
        fifo = FifoState(n_sets=1, n_ways=3)
        assert [fifo.victim(0) for _ in range(5)] == [0, 1, 2, 0, 1]

    def test_hits_do_not_advance_pointer(self):
        fifo = FifoState(n_sets=1, n_ways=3)
        fifo.on_access(0, 2)  # a hit
        assert fifo.victim(0) == 0


class TestRandom:
    def test_victims_in_range_and_deterministic(self):
        a = RandomState(n_sets=1, n_ways=8, seed=7)
        b = RandomState(n_sets=1, n_ways=8, seed=7)
        va = [a.victim(0) for _ in range(50)]
        vb = [b.victim(0) for _ in range(50)]
        assert va == vb
        assert all(0 <= v < 8 for v in va)
        assert len(set(va)) > 1  # actually random


class TestFactory:
    @pytest.mark.parametrize("name,cls", [("lru", LruState), ("fifo", FifoState), ("random", RandomState)])
    def test_dispatch(self, name, cls):
        assert isinstance(make_replacement(name, 4, 4), cls)

    def test_case_insensitive(self):
        assert isinstance(make_replacement("LRU", 4, 4), LruState)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_replacement("mru", 4, 4)
