"""Loop-nest mapping tests (§2.4 ParseAPI substitute)."""

import numpy as np
import pytest

from repro.errors import ProfilerError
from repro.profiler.loopmap import Loop, LoopNest, SyntheticBinary, map_period_to_loop


@pytest.fixture
def binary():
    b = SyntheticBinary()
    f = b.add_function("interf", 0x1000, 0x9000)
    outer = b.add_loop(f, "outer", 0x1100, 0x8F00, backedge=0x8E00)
    inner = b.add_loop(f, "inner", 0x1200, 0x8D00, backedge=0x8C00, parent=outer)
    g = b.add_function("relax", 0xA000, 0xB000)
    b.add_loop(g, "sweep", 0xA100, 0xAF00, backedge=0xAE00)
    return b


class TestStructure:
    def test_function_lookup(self, binary):
        assert binary.function_of(0x1500).name == "interf"
        assert binary.function_of(0xA500).name == "relax"
        assert binary.function_of(0xFFFF) is None

    def test_overlapping_functions_rejected(self, binary):
        with pytest.raises(ProfilerError):
            binary.add_function("bad", 0x8000, 0xA800)

    def test_loop_outside_function_rejected(self, binary):
        f = binary.functions[0]
        with pytest.raises(ProfilerError):
            binary.add_loop(f, "bad", 0x0, 0x100, backedge=0x50)

    def test_nesting_validated(self, binary):
        f = binary.functions[0]
        outer = f.loops[0]
        with pytest.raises(ProfilerError):
            binary.add_loop(f, "bad", 0x1000, 0x9000, backedge=0x1000, parent=outer)

    def test_backedge_must_be_inside(self):
        with pytest.raises(ProfilerError):
            Loop("l", 0x100, 0x200, backedge=0x300)

    def test_depth_and_outermost(self, binary):
        outer = binary.functions[0].loops[0]
        inner = outer.children[0]
        assert outer.depth() == 0
        assert inner.depth() == 1
        assert inner.outermost() is outer

    def test_innermost_containing(self, binary):
        nest = LoopNest(binary.functions[0])
        assert nest.innermost_containing(0x8C00).name == "inner"
        assert nest.innermost_containing(0x8E00).name == "outer"
        assert nest.innermost_containing(0x1050) is None


class TestMapping:
    def test_inner_jmps_map_to_outermost_loop(self, binary):
        jmps = np.full(100, 0x8C00, dtype=np.int64)  # inner backedge
        loop = map_period_to_loop(binary, jmps)
        assert loop is not None and loop.name == "outer"

    def test_majority_vote_wins(self, binary):
        jmps = np.array([0x8C00] * 80 + [0xAE00] * 20, dtype=np.int64)
        assert map_period_to_loop(binary, jmps).name == "outer"
        jmps = np.array([0x8C00] * 20 + [0xAE00] * 80, dtype=np.int64)
        assert map_period_to_loop(binary, jmps).name == "sweep"

    def test_unmappable_samples_return_none(self, binary):
        assert map_period_to_loop(binary, np.array([0xFFFFF])) is None
        assert map_period_to_loop(binary, np.array([], dtype=np.int64)) is None

    def test_samples_outside_any_loop_ignored(self, binary):
        jmps = np.array([0x1050] * 50 + [0x8C00] * 5, dtype=np.int64)
        assert map_period_to_loop(binary, jmps).name == "outer"
