"""Progress-period detection tests (§2.4 algorithm)."""

import pytest

from repro.core.progress_period import ReuseLevel
from repro.mem.working_set import WindowStats
from repro.profiler.detect import DetectorConfig, DetectedPeriod, detect_periods
from repro.profiler.sampling import WindowProfile
from repro.workloads.tracegen import phased_trace
from repro.profiler.sampling import sample_windows

WIN = 1_000_000  # instructions per window


def profile_of(specs):
    """Build a WindowProfile from (wss, reuse) pairs."""
    windows = tuple(
        WindowStats(n_accesses=1000, footprint_bytes=w, wss_bytes=w, reuse_ratio=r)
        for w, r in specs
    )
    return WindowProfile(window_instructions=WIN, windows=windows)


class TestDetection:
    def test_uniform_profile_is_one_period(self):
        profile = profile_of([(1000, 5.0)] * 8)
        periods = detect_periods(profile, DetectorConfig(min_period_instructions=2 * WIN))
        assert len(periods) == 1
        p = periods[0]
        assert (p.first_window, p.last_window) == (0, 7)
        assert p.wss_bytes == pytest.approx(1000)

    def test_two_behaviours_two_periods(self):
        profile = profile_of([(1000, 5.0)] * 4 + [(50_000, 30.0)] * 4)
        periods = detect_periods(profile, DetectorConfig(min_period_instructions=2 * WIN))
        assert len(periods) == 2
        assert periods[0].last_window == 3
        assert periods[1].first_window == 4

    def test_short_repetition_ignored(self):
        # only 2 similar windows, but 4 required
        profile = profile_of(
            [(1000, 5.0), (1000, 5.0), (90_000, 2.0), (5, 1.0), (700, 9.0), (42, 3.0)]
        )
        periods = detect_periods(profile, DetectorConfig(min_period_instructions=4 * WIN))
        assert periods == []

    def test_noise_between_periods_skipped(self):
        profile = profile_of(
            [(1000, 5.0)] * 4 + [(123_456, 2.0)] + [(1000, 5.0)] * 4
        )
        periods = detect_periods(profile, DetectorConfig(min_period_instructions=3 * WIN))
        assert len(periods) == 2

    def test_period_metrics_are_averages(self):
        profile = profile_of([(900, 4.6), (1000, 5.0), (1100, 5.4)])
        periods = detect_periods(profile, DetectorConfig(min_period_instructions=2 * WIN))
        assert len(periods) == 1
        assert periods[0].wss_bytes == pytest.approx(1000)
        assert periods[0].reuse_ratio == pytest.approx(5.0, abs=0.01)

    def test_tolerance_controls_similarity(self):
        drifting = profile_of([(1000 * (1.1**k), 5.0) for k in range(6)])
        strict = detect_periods(
            drifting,
            DetectorConfig(min_period_instructions=6 * WIN, similarity_tolerance=0.05),
        )
        loose = detect_periods(
            drifting,
            DetectorConfig(min_period_instructions=6 * WIN, similarity_tolerance=0.8),
        )
        assert strict == []
        assert len(loose) == 1

    def test_instructions_and_reuse_level(self):
        p = DetectedPeriod(
            first_window=2, last_window=5, wss_bytes=1e6, reuse_ratio=10.0,
            window_instructions=WIN,
        )
        assert p.n_windows == 4
        assert p.instructions == 4 * WIN
        assert p.reuse_level is ReuseLevel.HIGH


class TestEndToEndOnTraces:
    def test_detects_phases_of_synthetic_trace(self):
        trace = phased_trace(
            [("blocked", 256 * 1024, 8), ("stream", 8 << 20, 1), ("blocked", 64 * 1024, 8)],
            accesses_per_phase=500_000,
        )
        profile = sample_windows(trace, 300_000)
        periods = detect_periods(
            profile, DetectorConfig(min_period_instructions=600_000)
        )
        assert len(periods) >= 2
        # The two blocked phases must differ in detected working set.
        wss = sorted(p.wss_bytes for p in periods)
        assert wss[-1] > 2 * wss[0]

    def test_min_windows_ceiling(self):
        cfg = DetectorConfig(min_period_instructions=2_500_000)
        assert cfg.min_windows(1_000_000) == 3
        assert cfg.min_windows(2_500_000) == 2  # floor of 2
