"""ProfilerPipeline (end-to-end §2.4) tests."""

import pytest

from repro.errors import ProfilerError
from repro.profiler.detect import DetectorConfig
from repro.profiler.loopmap import SyntheticBinary
from repro.profiler.pipeline import ProfilerPipeline
from repro.workloads.tracegen import phased_trace, water_pp1_trace

WIN = 300_000


@pytest.fixture
def pipeline():
    return ProfilerPipeline(
        window_instructions=WIN,
        detector=DetectorConfig(min_period_instructions=2 * WIN),
    )


class TestProfile:
    def test_detects_periods_of_phased_trace(self, pipeline):
        trace = phased_trace(
            [("blocked", 256 * 1024, 8), ("stream", 8 << 20, 1)],
            accesses_per_phase=500_000,
        )
        profile = pipeline.profile(trace)
        assert len(profile.periods) >= 2
        assert len(profile.windows) == len(trace) // trace.window_accesses(WIN)

    def test_annotations_one_per_period(self, pipeline):
        trace = phased_trace(
            [("blocked", 128 * 1024, 8), ("blocked", 512 * 1024, 8)],
            accesses_per_phase=400_000,
        )
        profile = pipeline.profile(trace)
        specs = profile.annotations()
        assert len(specs) == len(profile.periods)
        assert all(s.demand_bytes > 0 for s in specs)

    def test_loop_mapping_with_binary(self, pipeline):
        binary = SyntheticBinary()
        f = binary.add_function("interf", 0x1000, 0x9000)
        outer = binary.add_loop(f, "rows", 0x1100, 0x8F00, backedge=0x8E00)
        binary.add_loop(f, "partners", 0x1200, 0x8D00, backedge=0x8C00, parent=outer)
        layout = {"inner_backedge": 0x8C00, "outer_backedge": 0x8E00}
        trace = water_pp1_trace(8000, n_accesses=600_000, jmp_layout=layout)
        profile = pipeline.profile(trace, binary=binary)
        assert profile.periods
        loop = profile.loop_of(profile.periods[0])
        assert loop is not None and loop.name == "rows"

    def test_loop_of_without_binary_is_none(self, pipeline):
        trace = water_pp1_trace(8000, n_accesses=600_000)
        profile = pipeline.profile(trace)
        assert profile.loop_of(profile.periods[0]) is None

    def test_invalid_window_rejected(self):
        with pytest.raises(ProfilerError):
            ProfilerPipeline(window_instructions=0)


class TestScalingStudy:
    # The scaling study needs a window large enough to span a few rows of
    # the pair sweep at the largest input — the granularity sensitivity the
    # paper handled "by manually experimenting with different window sizes".
    @pytest.fixture
    def pipeline(self):
        return ProfilerPipeline(window_instructions=1_000_000)

    def test_holdout_accuracy_reported(self, pipeline):
        study = pipeline.scaling_study(
            lambda n: water_pp1_trace(int(n), n_accesses=1_200_000),
            [8000, 15625, 32768, 64000],
        )
        assert len(study.wss_bytes) == 4
        assert study.holdout_accuracy is not None
        assert study.holdout_accuracy > 0.7
        assert study.predict(20000) > study.wss_bytes[0]

    def test_no_holdout_when_fitting_all(self, pipeline):
        study = pipeline.scaling_study(
            lambda n: water_pp1_trace(int(n), n_accesses=900_000),
            [8000, 15625, 32768],
            fit_on=3,
        )
        assert study.holdout_accuracy is None

    def test_validation(self, pipeline):
        with pytest.raises(ProfilerError):
            pipeline.scaling_study(lambda n: water_pp1_trace(8000), [8000])
        with pytest.raises(ProfilerError):
            pipeline.scaling_study(
                lambda n: water_pp1_trace(8000), [1, 2, 3], fit_on=1
            )
