"""Profile-to-annotation tests (§4.4)."""

import pytest

from repro.core.progress_period import ReuseLevel
from repro.errors import ProfilerError
from repro.profiler.annotate import annotate_workload_phase, period_annotation
from repro.profiler.detect import DetectedPeriod
from repro.profiler.regression import LogRegression

from ..conftest import make_phase


def detected(wss=2_500_000.0, reuse_ratio=20.0):
    return DetectedPeriod(
        first_window=0,
        last_window=4,
        wss_bytes=wss,
        reuse_ratio=reuse_ratio,
        window_instructions=1_000_000,
    )


class TestAnnotation:
    def test_direct_annotation_uses_profiled_wss(self):
        spec = period_annotation(detected(wss=3e6))
        assert spec.demand_bytes == 3_000_000
        assert spec.reuse is ReuseLevel.HIGH

    def test_reuse_level_from_ratio(self):
        assert period_annotation(detected(reuse_ratio=1.2)).reuse is ReuseLevel.LOW
        assert period_annotation(detected(reuse_ratio=4.0)).reuse is ReuseLevel.MEDIUM

    def test_predictor_parameterizes_demand(self):
        reg = LogRegression(a=0.0, b=1e6)
        import math

        spec = period_annotation(detected(), input_size=math.e**2, wss_predictor=reg)
        assert spec.demand_bytes == pytest.approx(2e6, rel=1e-6)

    def test_predictor_requires_input_size(self):
        with pytest.raises(ProfilerError):
            period_annotation(detected(), wss_predictor=LogRegression(1, 1))

    def test_negative_prediction_clamped(self):
        reg = LogRegression(a=-1e9, b=1.0)
        spec = period_annotation(detected(), input_size=10, wss_predictor=reg)
        assert spec.demand_bytes == 0

    def test_annotate_phase_replaces_pp(self):
        phase = make_phase(declare_pp=False)
        assert phase.pp is None
        annotated = annotate_workload_phase(phase, detected(wss=1e6))
        assert annotated.pp is not None
        assert annotated.pp.demand_bytes == 1_000_000
        assert annotated.instructions == phase.instructions  # rest untouched
