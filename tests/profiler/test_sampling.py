"""Window sampling tests (§2.4 stage 1)."""

import numpy as np
import pytest

from repro.errors import ProfilerError
from repro.mem.trace import MemoryTrace
from repro.profiler.sampling import sample_windows
from repro.workloads.tracegen import blocked_trace, streaming_trace


class TestSampling:
    def test_streaming_trace_has_tiny_wss(self):
        profile = sample_windows(streaming_trace(10_000_000, 300_000), 300_000)
        # every line touched 8 times in a burst (64B line / 8B stride), never again
        assert profile.mean_reuse_ratio == pytest.approx(8.0, rel=0.05)
        assert profile.mean_footprint_bytes > 0

    def test_blocked_trace_hot_set_is_block(self):
        block = 128 * 1024
        # one block group = (block/8 elements) * 8 passes = 131072 accesses;
        # align the window to it so each window sees exactly one block
        group_accesses = (block // 8) * 8
        trace = blocked_trace(block, 4 * group_accesses, reuse_passes=8)
        profile = sample_windows(trace, int(group_accesses * 3))
        assert profile.mean_wss_bytes == pytest.approx(block, rel=0.05)
        assert profile.mean_reuse_ratio >= 4.0

    def test_window_count(self):
        trace = streaming_trace(1 << 20, 900_000)
        profile = sample_windows(trace, 300_000)  # 3 instr/access -> 100k acc
        assert len(profile) == 9

    def test_trace_shorter_than_window_raises(self):
        trace = streaming_trace(1 << 20, 1000)
        with pytest.raises(ProfilerError):
            sample_windows(trace, 10_000_000)

    def test_invalid_window_size(self):
        with pytest.raises(ProfilerError):
            sample_windows(streaming_trace(1 << 20, 1000), 0)

    def test_min_accesses_knob(self):
        addrs = np.array([0, 64, 64, 128, 128, 128], dtype=np.int64)
        trace = MemoryTrace(addrs, instructions_per_access=1.0)
        loose = sample_windows(trace, 6, min_accesses=2)
        tight = sample_windows(trace, 6, min_accesses=3)
        assert loose.windows[0].wss_bytes == 2 * 64
        assert tight.windows[0].wss_bytes == 1 * 64
