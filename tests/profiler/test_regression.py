"""Logarithmic WSS regression tests (figure 12)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ProfilerError
from repro.profiler.regression import (
    LogRegression,
    fit_log_regression,
    prediction_accuracy,
)


class TestFit:
    def test_exact_log_curve_recovered(self):
        a, b = 2.5e6, 4.2e5
        xs = [8000, 15625, 32768]
        ys = [a + b * math.log(x) for x in xs]
        reg = fit_log_regression(xs, ys)
        assert reg.a == pytest.approx(a, rel=1e-9)
        assert reg.b == pytest.approx(b, rel=1e-9)

    def test_perfect_curve_predicts_perfectly(self):
        reg = LogRegression(a=1.0, b=2.0)
        xs = [10, 100, 1000]
        ys = [reg.predict(x) for x in xs]
        refit = fit_log_regression(xs, ys)
        assert prediction_accuracy(refit.predict(5000), reg.predict(5000)) == pytest.approx(1.0)

    def test_vectorized_predict(self):
        reg = LogRegression(a=0.0, b=1.0)
        out = reg.predict(np.array([math.e, math.e**2]))
        assert out == pytest.approx([1.0, 2.0])

    def test_callable(self):
        reg = LogRegression(a=5.0, b=0.0)
        assert reg(123) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ProfilerError):
            fit_log_regression([1], [2])
        with pytest.raises(ProfilerError):
            fit_log_regression([0, 1], [1, 2])
        with pytest.raises(ProfilerError):
            fit_log_regression([1, 2], [1, 2, 3])
        with pytest.raises(ProfilerError):
            LogRegression(1, 1).predict(-1)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ProfilerError):
            fit_log_regression([-1, 2], [1, 2])

    def test_nonfinite_inputs_rejected(self):
        with pytest.raises(ProfilerError):
            fit_log_regression([1.0, float("inf")], [1.0, 2.0])
        with pytest.raises(ProfilerError):
            fit_log_regression([1.0, 2.0], [float("nan"), 2.0])

    def test_constant_x_falls_back_to_mean(self):
        # all samples at one input size give a rank-deficient design
        # matrix; the fit must degrade to the constant model, not emit a
        # RankWarning and garbage coefficients
        reg = fit_log_regression([4096, 4096, 4096], [10.0, 20.0, 30.0])
        assert reg.b == 0.0
        assert reg.a == pytest.approx(20.0)
        assert reg.predict(1e9) == pytest.approx(20.0)

    def test_nearly_constant_x_is_treated_as_constant(self):
        x = 1e6
        reg = fit_log_regression([x, x * (1 + 1e-15)], [5.0, 7.0])
        assert reg.b == 0.0
        assert reg.a == pytest.approx(6.0)

    def test_constant_x_constant_y_is_exact(self):
        reg = fit_log_regression([2.0, 2.0], [9.0, 9.0])
        assert reg.predict(2.0) == pytest.approx(9.0)


class TestAccuracy:
    def test_perfect_prediction(self):
        assert prediction_accuracy(10.0, 10.0) == 1.0

    def test_paper_style_accuracy(self):
        # "For PP1 ... the prediction accuracy is 92%"
        assert prediction_accuracy(9.2, 10.0) == pytest.approx(0.92)
        assert prediction_accuracy(10.8, 10.0) == pytest.approx(0.92)

    def test_zero_actual_rejected(self):
        with pytest.raises(ProfilerError):
            prediction_accuracy(1.0, 0.0)

    @given(
        st.floats(min_value=0.1, max_value=1e9),
        st.floats(min_value=0.1, max_value=1e9),
    )
    def test_accuracy_at_most_one(self, pred, actual):
        assert prediction_accuracy(pred, actual) <= 1.0


class TestLinearity:
    @given(
        st.floats(min_value=-1e6, max_value=1e6),
        st.floats(min_value=-1e6, max_value=1e6),
        st.lists(
            st.floats(min_value=1.0, max_value=1e6), min_size=2, max_size=10, unique=True
        ),
    )
    def test_fit_is_exact_on_generated_curves(self, a, b, xs):
        ys = [a + b * math.log(x) for x in xs]
        reg = fit_log_regression(xs, ys)
        for x, y in zip(xs, ys):
            assert reg.predict(x) == pytest.approx(y, abs=1e-3 * (1 + abs(y)))
