"""Online WSS estimator: unit behavior plus its contract properties.

The property tests pin the three guarantees the admission service builds
on: predictions are bounded by the observed window, monotone sample sets
yield monotone predictions, and the estimator is a pure function of its
sample history (determinism).
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.predict import OnlineWssEstimator

KEY = ("client-1", "dgemm")


def feed(est, pairs, key=KEY):
    for declared, observed in pairs:
        est.observe(key, declared, observed)


class TestGates:
    def test_below_min_samples_returns_none(self):
        est = OnlineWssEstimator(min_samples=3)
        feed(est, [(100, 50), (200, 60)])
        assert est.predict(KEY, 100) is None

    def test_at_min_samples_predicts(self):
        est = OnlineWssEstimator(min_samples=3)
        feed(est, [(100, 50), (200, 60), (400, 70)])
        assert est.predict(KEY, 200) is not None

    def test_nonpositive_declared_returns_none(self):
        est = OnlineWssEstimator(min_samples=2)
        feed(est, [(100, 50), (200, 60)])
        assert est.predict(KEY, 0) is None
        assert est.predict(KEY, -5) is None

    def test_nonpositive_samples_ignored(self):
        est = OnlineWssEstimator(min_samples=2)
        est.observe(KEY, 0, 50)
        est.observe(KEY, 100, 0)
        assert est.sample_count(KEY) == 0

    def test_unknown_key_returns_none(self):
        assert OnlineWssEstimator().predict(("x", "y"), 100) is None

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            OnlineWssEstimator(history=1)
        with pytest.raises(ValueError):
            OnlineWssEstimator(min_samples=1)
        with pytest.raises(ValueError):
            OnlineWssEstimator(error_band=0.0)


class TestLearning:
    def test_constant_liar_is_corrected(self):
        # a client declaring 2x its true working set converges onto the
        # truth once the window holds only (2w, w) pairs
        est = OnlineWssEstimator(min_samples=3)
        feed(est, [(2000, 1000)] * 4)
        assert est.predict(KEY, 2000) == 1000

    def test_log_curve_is_recovered(self):
        a, b = 1000.0, 300.0
        pairs = [(x, int(a + b * math.log(x))) for x in (512, 2048, 8192)]
        est = OnlineWssEstimator(min_samples=3)
        feed(est, pairs)
        expected = a + b * math.log(4096)
        assert est.predict(KEY, 4096) == pytest.approx(expected, rel=0.01)

    def test_keys_are_independent(self):
        est = OnlineWssEstimator(min_samples=2)
        feed(est, [(1000, 100)] * 3, key=("c1", "a"))
        feed(est, [(1000, 900)] * 3, key=("c1", "b"))
        assert est.predict(("c1", "a"), 1000) == 100
        assert est.predict(("c1", "b"), 1000) == 900

    def test_history_ring_forgets_old_samples(self):
        est = OnlineWssEstimator(history=4, min_samples=2,
                                 confidence_window=4)
        feed(est, [(1000, 2000)] * 4)  # old regime
        # enough new-regime samples to evict the ring AND displace the
        # transition errors from the confidence window
        feed(est, [(1000, 100)] * 8)
        assert est.sample_count(KEY) == 4
        assert est.predict(KEY, 1000) == 100


class TestConfidence:
    def test_fresh_model_is_trusted(self):
        assert OnlineWssEstimator().confidence(KEY) == 1.0

    def test_bad_feedback_suppresses_predictions(self):
        est = OnlineWssEstimator(min_samples=2, confidence_window=4)
        feed(est, [(1000, 500)] * 3)
        for _ in range(4):
            est.note_error(KEY, 5.0)
        assert est.confidence(KEY) == 0.0
        assert est.predict(KEY, 1000) is None

    def test_confidence_recovers_after_drift(self):
        # the regression-test for the gating deadlock: confidence is fed
        # by the model scoring itself on each incoming sample, so after a
        # drift the retrained model's small errors displace the large ones
        est = OnlineWssEstimator(
            history=4, min_samples=2, confidence_window=4
        )
        feed(est, [(1000, 100)] * 4)
        assert est.predict(KEY, 1000) == 100
        feed(est, [(1000, 800)] * 3)   # drift: errors blow the band
        assert est.predict(KEY, 1000) is None
        feed(est, [(1000, 800)] * 6)   # retrained + rescored
        assert est.predict(KEY, 1000) == 800


class TestPlacementHint:
    def test_peak_confident_prediction_wins(self):
        est = OnlineWssEstimator(min_samples=2)
        feed(est, [(1000, 300)] * 3, key=("c1", "a"))
        feed(est, [(1000, 700)] * 3, key=("c1", "b"))
        assert est.predict(("c1", "a"), 1000) == 300
        assert est.predict(("c1", "b"), 1000) == 700
        assert est.predicted_for_client("c1") == 700
        assert est.predicted_for_client("other") is None


class TestPersistence:
    def test_export_load_roundtrip(self):
        est = OnlineWssEstimator(min_samples=2)
        feed(est, [(1000, 400), (2000, 500), (4000, 600)])
        clone = OnlineWssEstimator(min_samples=2)
        clone.load_samples(list(est.export_samples()))
        assert clone.predict(KEY, 3000) == est.predict(KEY, 3000)


# one (declared, observed) sample: declared >= 1 byte, observed positive
SAMPLE = st.tuples(
    st.integers(min_value=1, max_value=2**40),
    st.integers(min_value=1, max_value=2**40),
)


class TestProperties:
    @given(st.lists(SAMPLE, min_size=3, max_size=24),
           st.integers(min_value=1, max_value=2**41))
    @settings(max_examples=200)
    def test_prediction_bounded_by_observed_window(self, pairs, declared):
        est = OnlineWssEstimator(min_samples=3)
        feed(est, pairs)
        value = est.predict(KEY, declared)
        if value is not None:
            lo = min(y for _, y in pairs[-est.history:])
            hi = max(y for _, y in pairs[-est.history:])
            assert lo <= value <= hi

    @given(st.lists(SAMPLE, min_size=3, max_size=24),
           st.integers(min_value=1, max_value=2**41),
           st.integers(min_value=1, max_value=2**41))
    @settings(max_examples=200)
    def test_prediction_is_deterministic(self, pairs, d1, d2):
        one = OnlineWssEstimator(min_samples=3)
        two = OnlineWssEstimator(min_samples=3)
        feed(one, pairs)
        feed(two, pairs)
        assert one.predict(KEY, d1) == two.predict(KEY, d1)
        # repeated queries must not perturb the model either
        assert one.predict(KEY, d2) == two.predict(KEY, d2)
        assert one.predict(KEY, d1) == two.predict(KEY, d1)

    @given(
        st.lists(
            st.integers(min_value=1, max_value=2**40),
            min_size=3, max_size=16, unique=True,
        ),
        st.lists(st.integers(min_value=1, max_value=2**40),
                 min_size=3, max_size=16),
        st.integers(min_value=1, max_value=2**41),
        st.integers(min_value=1, max_value=2**41),
    )
    @settings(max_examples=200)
    def test_monotone_samples_give_monotone_predictions(
        self, xs, ys, d1, d2
    ):
        # similarly-ordered samples (bigger declared -> bigger observed)
        # must never predict a *smaller* working set for a *larger*
        # declared demand; rounding to whole bytes may differ by one
        n = min(len(xs), len(ys))
        pairs = list(zip(sorted(xs)[:n], sorted(ys)[:n]))
        est = OnlineWssEstimator(min_samples=3, history=16)
        feed(est, pairs)
        lo_d, hi_d = min(d1, d2), max(d1, d2)
        p_lo = est.predict(KEY, lo_d)
        p_hi = est.predict(KEY, hi_d)
        if p_lo is not None and p_hi is not None:
            assert p_lo <= p_hi + 1
