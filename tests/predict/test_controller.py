"""Elastic re-admission controller: hysteresis and streak bookkeeping."""

from repro.predict import ElasticController, MispredictDetector

KEY = ("c1", "dgemm")


def sample(charged, observed):
    return MispredictDetector(error_band=0.25).classify(charged, observed)


OVER = sample(200, 100)
UNDER = sample(50, 100)
OK = sample(100, 100)


class TestHysteresis:
    def test_single_misprediction_does_not_act(self):
        c = ElasticController(hysteresis=2)
        assert c.update(KEY, OVER) is None

    def test_sustained_overprediction_shrinks(self):
        c = ElasticController(hysteresis=2)
        assert c.update(KEY, OVER) is None
        decision = c.update(KEY, OVER)
        assert decision is not None
        assert decision.action == "shrink"
        assert decision.key == KEY

    def test_sustained_underprediction_grows(self):
        c = ElasticController(hysteresis=2)
        c.update(KEY, UNDER)
        decision = c.update(KEY, UNDER)
        assert decision is not None and decision.action == "grow"

    def test_ok_resets_the_streak(self):
        c = ElasticController(hysteresis=2)
        c.update(KEY, OVER)
        c.update(KEY, OK)
        assert c.update(KEY, OVER) is None

    def test_direction_flip_restarts_the_streak(self):
        c = ElasticController(hysteresis=2)
        c.update(KEY, OVER)
        assert c.update(KEY, UNDER) is None
        decision = c.update(KEY, UNDER)
        assert decision is not None and decision.action == "grow"

    def test_streak_resets_after_acting(self):
        c = ElasticController(hysteresis=2)
        c.update(KEY, OVER)
        assert c.update(KEY, OVER) is not None
        # needs a fresh full streak before the next action
        assert c.update(KEY, OVER) is None
        assert c.update(KEY, OVER) is not None

    def test_hysteresis_one_acts_immediately(self):
        c = ElasticController(hysteresis=1)
        decision = c.update(KEY, OVER)
        assert decision is not None and decision.action == "shrink"

    def test_keys_tracked_independently(self):
        c = ElasticController(hysteresis=2)
        other = ("c2", "fft")
        c.update(KEY, OVER)
        assert c.update(other, OVER) is None
        assert c.update(KEY, OVER) is not None

    def test_forget_clears_state(self):
        c = ElasticController(hysteresis=2)
        c.update(KEY, OVER)
        c.forget(KEY)
        assert c.update(KEY, OVER) is None

    def test_forget_unknown_key_is_noop(self):
        ElasticController().forget(("nobody", ""))
