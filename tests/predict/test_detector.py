"""Misprediction detector: error classification and its edge cases."""

import pytest
from hypothesis import given, strategies as st

from repro.predict import MispredictDetector, Misprediction
from repro.predict.detector import _REL_ERROR_CAP


class TestClassify:
    def test_within_band_is_ok(self):
        d = MispredictDetector(error_band=0.25)
        sample = d.classify(charged_bytes=110, observed_bytes=100)
        assert sample.direction == "ok"
        assert not sample.mispredicted
        assert sample.rel_error == pytest.approx(0.10)

    def test_overprediction(self):
        d = MispredictDetector(error_band=0.25)
        sample = d.classify(charged_bytes=200, observed_bytes=100)
        assert sample.direction == "over"
        assert sample.mispredicted
        assert sample.rel_error == pytest.approx(1.0)

    def test_underprediction(self):
        d = MispredictDetector(error_band=0.25)
        sample = d.classify(charged_bytes=50, observed_bytes=100)
        assert sample.direction == "under"
        assert sample.rel_error == pytest.approx(-0.5)

    def test_band_edges_are_ok(self):
        d = MispredictDetector(error_band=0.25)
        assert d.classify(125, 100).direction == "ok"
        assert d.classify(75, 100).direction == "ok"

    def test_zero_observed_with_zero_charge_is_ok(self):
        sample = MispredictDetector().classify(0, 0)
        assert sample.direction == "ok"
        assert sample.rel_error == 0.0

    def test_zero_observed_with_charge_caps_the_error(self):
        sample = MispredictDetector().classify(1000, 0)
        assert sample.direction == "over"
        assert sample.rel_error == _REL_ERROR_CAP

    def test_huge_ratio_is_capped(self):
        sample = MispredictDetector().classify(10**18, 1)
        assert sample.rel_error == _REL_ERROR_CAP

    def test_band_validation(self):
        with pytest.raises(ValueError):
            MispredictDetector(error_band=0.0)

    def test_sample_is_immutable(self):
        sample = MispredictDetector().classify(100, 100)
        assert isinstance(sample, Misprediction)
        with pytest.raises(AttributeError):
            sample.direction = "over"

    @given(st.integers(min_value=0, max_value=2**50),
           st.integers(min_value=1, max_value=2**50))
    def test_error_is_finite_and_direction_consistent(self, charged, observed):
        d = MispredictDetector(error_band=0.25)
        s = d.classify(charged, observed)
        assert abs(s.rel_error) <= _REL_ERROR_CAP
        if s.direction == "over":
            assert s.rel_error > 0.25
        elif s.direction == "under":
            assert s.rel_error < -0.25
        else:
            assert -0.25 <= s.rel_error <= 0.25
