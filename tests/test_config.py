"""Machine configuration tests (Table 1)."""

import dataclasses

import pytest

from repro.config import (
    CacheConfig,
    CpuConfig,
    MachineConfig,
    MemoryConfig,
    PowerConfig,
    SchedulerConfig,
    default_machine_config,
)
from repro.errors import ConfigError


class TestTable1Defaults:
    def test_cpu_matches_paper(self):
        cfg = default_machine_config()
        assert cfg.cpu.n_cores == 12
        assert cfg.cpu.frequency_hz == pytest.approx(1.9e9)
        assert "E5-2420" in cfg.cpu.model

    def test_cache_sizes_match_paper(self):
        cfg = default_machine_config()
        assert cfg.l1d.capacity_bytes == 32 * 1024
        assert cfg.l1i.capacity_bytes == 32 * 1024
        assert cfg.l2.capacity_bytes == 256 * 1024
        assert cfg.llc.capacity_bytes == 15360 * 1024

    def test_llc_is_shared_and_private_levels_are_not(self):
        cfg = default_machine_config()
        assert cfg.llc.shared
        assert not cfg.l1d.shared
        assert not cfg.l2.shared

    def test_memory_16_gib(self):
        assert default_machine_config().memory.capacity_bytes == 16 * 1024**3

    def test_describe_renders_table1(self):
        text = default_machine_config().describe()
        assert "15360 KBytes" in text
        assert "12 Cores" in text
        assert "CentOS 6.6, Linux 4.6.0" in text
        assert "16 GiB" in text


class TestCacheConfigValidation:
    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 4096, line_bytes=48)

    def test_rejects_capacity_not_multiple_of_line(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 1000, line_bytes=64)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 4096, line_bytes=64, associativity=7)

    def test_geometry_arithmetic(self):
        c = CacheConfig("c", 64 * 1024, line_bytes=64, associativity=8)
        assert c.n_lines == 1024
        assert c.n_sets == 128

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 0)


class TestComponentValidation:
    def test_cpu_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            CpuConfig(n_cores=0)

    def test_cpu_rejects_full_overlap(self):
        with pytest.raises(ConfigError):
            CpuConfig(memory_overlap=1.0)

    def test_memory_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            MemoryConfig(latency_s=-1.0)

    def test_power_rejects_negative(self):
        with pytest.raises(ConfigError):
            PowerConfig(core_active_w=-1.0)

    def test_scheduler_rejects_zero_timeslice(self):
        with pytest.raises(ConfigError):
            SchedulerConfig(timeslice_s=0.0)

    def test_machine_requires_shared_llc(self):
        private = CacheConfig("L3", 15360 * 1024, associativity=20, shared=False)
        with pytest.raises(ConfigError):
            MachineConfig(llc=private)


class TestDerivedProperties:
    def test_cycle_time(self):
        assert default_machine_config().cpu.cycle_s == pytest.approx(1 / 1.9e9)

    def test_llc_capacity_shortcut(self):
        cfg = default_machine_config()
        assert cfg.llc_capacity == cfg.llc.capacity_bytes

    def test_config_is_frozen(self):
        cfg = default_machine_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.os_name = "other"  # type: ignore[misc]
