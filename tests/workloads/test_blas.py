"""BLAS kernel model tests (Table 2 invariants)."""

import pytest

from repro.core.progress_period import ReuseLevel
from repro.errors import WorkloadError
from repro.workloads.blas import (
    ALL_KERNELS,
    BLAS1_KERNELS,
    BLAS2_KERNELS,
    BLAS3_KERNELS,
    dgemm_process,
    kernel_model,
    kernel_phase,
    kernel_process,
)

MB = 1_000_000


class TestTable2Inventory:
    def test_twelve_kernels(self):
        assert len(ALL_KERNELS) == 12
        assert len(BLAS1_KERNELS) == len(BLAS2_KERNELS) == len(BLAS3_KERNELS) == 4

    def test_level1_names(self):
        assert {k.name for k in BLAS1_KERNELS} == {"daxpy", "dcopy", "dscal", "dswap"}

    def test_level2_names(self):
        assert {k.name for k in BLAS2_KERNELS} == {"dgemvN", "dgemvT", "dtrmv", "dtrsv"}

    def test_level3_names(self):
        assert {k.name for k in BLAS3_KERNELS} == {"dgemm", "dsyrk", "dtrmm", "dtrsm"}

    def test_level1_working_sets(self):
        # Table 2: ".6" MB, low reuse
        for k in BLAS1_KERNELS:
            assert k.wss_bytes == int(0.6 * MB)
            assert k.reuse_level is ReuseLevel.LOW

    def test_level2_working_sets(self):
        for k in BLAS2_KERNELS:
            assert k.wss_bytes == int(0.6 * MB)
            assert k.reuse_level is ReuseLevel.MEDIUM

    def test_level3_working_sets(self):
        # Table 2: 1.6, 2.4, 2.4, 3.2
        sizes = sorted(k.wss_bytes for k in BLAS3_KERNELS)
        assert sizes == [int(1.6 * MB), int(2.4 * MB), int(2.4 * MB), int(3.2 * MB)]
        for k in BLAS3_KERNELS:
            assert k.reuse_level is ReuseLevel.HIGH

    def test_each_fits_llc_individually(self):
        """§3.4 constraint 1: individual working sets fit the cache."""
        llc = 15360 * 1024
        for k in ALL_KERNELS:
            assert k.wss_bytes < llc

    def test_reuse_ordering_by_level(self):
        assert max(k.reuse for k in BLAS1_KERNELS) < min(k.reuse for k in BLAS2_KERNELS)
        assert max(k.reuse for k in BLAS2_KERNELS) < min(k.reuse for k in BLAS3_KERNELS)

    def test_copy_kernels_have_no_flops(self):
        assert kernel_model("dcopy").flops_per_instr == 0.0
        assert kernel_model("dswap").flops_per_instr == 0.0

    def test_dgemm_flop_count_is_2n3(self):
        k = kernel_model("dgemm")
        # 2 * 512^3 = 268 MFLOPs
        assert k.instructions * k.flops_per_instr == pytest.approx(2 * 512**3, rel=0.01)


class TestConstruction:
    def test_lookup_unknown_kernel(self):
        with pytest.raises(WorkloadError):
            kernel_model("sgemm")

    def test_phase_carries_pp(self):
        phase = kernel_phase("dgemm")
        assert phase.pp is not None
        assert phase.pp.demand_bytes == int(1.6 * MB)

    def test_phase_without_pp(self):
        assert kernel_phase("dgemm", declare_pp=False).pp is None

    def test_process_is_single_threaded(self):
        spec = kernel_process("daxpy")
        assert spec.n_threads == 1
        assert len(spec.program) == 1

    def test_dgemm_granularities(self):
        # figure 11's three decompositions
        assert dgemm_process(1).program[0].pp.subperiods == 1
        assert dgemm_process(512).program[0].pp.subperiods == 512
        assert dgemm_process(512**2).program[0].pp.subperiods == 262_144
