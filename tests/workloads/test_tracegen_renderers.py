"""Renderer trace generator tests (raytrace / volrend)."""

import numpy as np
import pytest

from repro.core.progress_period import ReuseLevel
from repro.errors import ProfilerError
from repro.mem.working_set import reuse_level_of_ratio
from repro.profiler.sampling import sample_windows
from repro.workloads.tracegen import raytrace_trace, volrend_trace


class TestRaytrace:
    def test_high_reuse_signature(self):
        profile = sample_windows(raytrace_trace(n_accesses=900_000), 300_000)
        # BVH tops are re-walked by every ray: Table 2 calls raytrace high
        assert reuse_level_of_ratio(profile.mean_reuse_ratio) is ReuseLevel.HIGH

    def test_bigger_scene_bigger_working_set(self):
        small = sample_windows(raytrace_trace(20_000, 900_000), 300_000)
        big = sample_windows(raytrace_trace(200_000, 900_000), 300_000)
        assert big.mean_wss_bytes > small.mean_wss_bytes

    def test_deterministic(self):
        a = raytrace_trace(n_accesses=50_000)
        b = raytrace_trace(n_accesses=50_000)
        assert np.array_equal(a.addresses, b.addresses)

    def test_scene_size_validated(self):
        with pytest.raises(ProfilerError):
            raytrace_trace(n_scene_nodes=10)

    def test_requested_length(self):
        assert len(raytrace_trace(n_accesses=12_345)) == 12_345


class TestVolrend:
    def test_high_reuse_signature(self):
        profile = sample_windows(volrend_trace(n_accesses=900_000), 300_000)
        assert reuse_level_of_ratio(profile.mean_reuse_ratio) is ReuseLevel.HIGH

    def test_bigger_volume_bigger_working_set(self):
        small = sample_windows(volrend_trace(64, 900_000), 300_000)
        big = sample_windows(volrend_trace(256, 900_000), 300_000)
        assert big.mean_wss_bytes > small.mean_wss_bytes

    def test_volume_tile_validated(self):
        with pytest.raises(ProfilerError):
            volrend_trace(volume_side=16, tile=16)

    def test_requested_length(self):
        assert len(volrend_trace(n_accesses=10_000)) == 10_000

    def test_jmp_layout(self):
        layout = {"inner_backedge": 0x100, "outer_backedge": 0x200}
        t = volrend_trace(n_accesses=100_000, jmp_layout=layout)
        assert t.jmp_addresses is not None and t.jmp_addresses.size > 0
