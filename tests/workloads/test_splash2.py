"""SPLASH-2 application model tests (Table 2 invariants)."""

import pytest

from repro.core.progress_period import ReuseLevel
from repro.workloads.base import PhaseKind
from repro.workloads.splash2 import (
    ocean_cp_workload,
    raytrace_workload,
    volrend_workload,
    water_nsquared_workload,
    water_spatial_workload,
    wss_of_molecules,
)
from repro.workloads.splash2.water_nsquared import (
    N_MOLECULES_1X,
    interference_workload,
    largest_pp_phase,
)

MB = 1_000_000


def pp_phases(workload):
    """Distinct progress-period phases of one process' program."""
    spec = workload.processes[0]
    seen = {}
    for phase in spec.program_for(0):
        if phase.pp is not None and phase.name not in seen:
            seen[phase.name] = phase
    return list(seen.values())


class TestTable2Shape:
    @pytest.mark.parametrize(
        "factory,n_proc,n_threads",
        [
            (water_spatial_workload, 12, 2),
            (water_nsquared_workload, 12, 2),
            (ocean_cp_workload, 48, 2),
            (raytrace_workload, 48, 4),
            (volrend_workload, 48, 4),
        ],
    )
    def test_process_and_thread_counts(self, factory, n_proc, n_threads):
        wl = factory()
        assert wl.n_processes == n_proc
        assert all(p.n_threads == n_threads for p in wl.processes)

    def test_water_nsq_periods(self):
        phases = pp_phases(water_nsquared_workload())
        assert sorted(p.declared_demand() for p in phases) == [
            int(3.6 * MB), int(3.6 * MB), int(3.7 * MB),
        ]
        assert all(p.declared_reuse() is ReuseLevel.HIGH for p in phases)

    def test_water_sp_periods(self):
        phases = pp_phases(water_spatial_workload())
        assert sorted(p.declared_demand() for p in phases) == [
            int(1.3 * MB), int(1.3 * MB), int(1.6 * MB), int(1.6 * MB),
        ]
        assert all(p.declared_reuse() is ReuseLevel.LOW for p in phases)

    def test_ocean_periods(self):
        phases = pp_phases(ocean_cp_workload())
        demands = sorted(p.declared_demand() for p in phases)
        assert demands == [
            int(0.59 * MB), int(0.76 * MB), int(1.5 * MB), int(2.1 * MB),
        ]
        reuses = {str(p.declared_reuse()) for p in phases}
        assert reuses == {"high", "med"}

    def test_raytrace_periods(self):
        phases = pp_phases(raytrace_workload())
        assert sorted(p.declared_demand() for p in phases) == [
            int(5.1 * MB), int(5.2 * MB),
        ]
        assert all(p.shared for p in phases)  # one scene per process

    def test_volrend_periods_are_per_thread(self):
        phases = pp_phases(volrend_workload())
        assert sorted(p.declared_demand() for p in phases) == [
            int(1.7 * MB), int(1.8 * MB),
        ]
        assert all(not p.shared for p in phases)  # private tiles

    def test_barriers_between_periods(self):
        """§3.4: synchronization lives outside progress periods."""
        for factory in (water_nsquared_workload, ocean_cp_workload):
            program = factory().processes[0].program_for(0)
            kinds = [p.kind for p in program]
            for i, phase in enumerate(program):
                if phase.kind is PhaseKind.BARRIER:
                    assert phase.pp is None
            assert PhaseKind.BARRIER in kinds

    def test_every_period_fits_llc(self):
        llc = 15360 * 1024
        for factory in (
            water_spatial_workload,
            water_nsquared_workload,
            ocean_cp_workload,
            raytrace_workload,
            volrend_workload,
        ):
            for phase in pp_phases(factory()):
                assert phase.declared_demand() < llc


class TestInputScaling:
    def test_wss_grows_sublinearly(self):
        w1 = wss_of_molecules(8000)
        w8 = wss_of_molecules(64000)
        assert w8 > w1
        assert w8 < 8 * w1  # sublinear

    def test_figure13_anchor(self):
        """6 instances fit the LLC at 8000 molecules, 12 do not."""
        llc = 15360 * 1024
        wss = wss_of_molecules(8000)
        assert 6 * wss <= llc < 12 * wss

    def test_invalid_molecule_count(self):
        with pytest.raises(ValueError):
            wss_of_molecules(0)

    def test_locality_degrades_with_input(self):
        small = largest_pp_phase(512)
        big = largest_pp_phase(64000)
        assert big.llc_refs_per_memref > small.llc_refs_per_memref
        assert big.reuse < small.reuse
        assert big.memory_overlap > small.memory_overlap

    def test_interference_workload_shape(self):
        wl = interference_workload(8000, 6)
        assert wl.n_processes == 6
        assert all(p.n_threads == 1 for p in wl.processes)
        assert wl.processes[0].program[0].wss_bytes == wss_of_molecules(8000)
