"""Synthetic trace generator tests."""

import numpy as np
import pytest

from repro.errors import ProfilerError
from repro.mem.working_set import window_stats
from repro.profiler.sampling import sample_windows
from repro.workloads.tracegen import (
    blocked_trace,
    ocean_pp1_trace,
    ocean_pp2_trace,
    phased_trace,
    streaming_trace,
    water_pp1_trace,
    water_pp2_trace,
)


class TestGenericGenerators:
    def test_streaming_footprint_matches_accesses(self):
        t = streaming_trace(1 << 26, n_accesses=80_000, stride=8)
        s = window_stats(t.addresses)
        # 8 accesses per line: footprint = accesses/8 lines
        assert s.footprint_bytes == pytest.approx(80_000 / 8 * 64, rel=0.01)
        assert s.wss_bytes == pytest.approx(s.footprint_bytes, rel=0.01)

    def test_blocked_hot_set_is_block_sized(self):
        block = 64 * 1024
        t = blocked_trace(block, n_accesses=100_000, reuse_passes=8)
        s = window_stats(t.addresses[: 8 * block // 8])
        assert s.wss_bytes == pytest.approx(block, rel=0.05)

    def test_blocked_requires_pass(self):
        with pytest.raises(ProfilerError):
            blocked_trace(1024, reuse_passes=0)

    def test_requested_length_honoured(self):
        for gen in (streaming_trace, blocked_trace):
            assert len(gen(1 << 20, 12345)) == 12345


class TestFigure12Generators:
    @pytest.mark.parametrize(
        "gen,inputs",
        [
            (water_pp1_trace, (8000, 64000)),
            (water_pp2_trace, (8000, 64000)),
            (ocean_pp1_trace, (514, 4098)),
            (ocean_pp2_trace, (514, 4098)),
        ],
    )
    def test_wss_grows_sublinearly_with_input(self, gen, inputs):
        small, large = inputs
        scale = large / small
        wss = [
            sample_windows(gen(n, n_accesses=1_200_000), 1_000_000).mean_wss_bytes
            for n in inputs
        ]
        assert wss[1] > wss[0] * 1.02  # grows
        assert wss[1] < wss[0] * scale  # sublinearly

    def test_water_pp1_wss_order_of_magnitude(self):
        wss = sample_windows(water_pp1_trace(8000), 1_000_000).mean_wss_bytes
        assert 0.5e6 < wss < 5e6

    def test_generators_are_deterministic(self):
        a = water_pp1_trace(8000, n_accesses=100_000)
        b = water_pp1_trace(8000, n_accesses=100_000)
        assert np.array_equal(a.addresses, b.addresses)

    def test_too_small_inputs_rejected(self):
        with pytest.raises(ProfilerError):
            water_pp1_trace(10)
        with pytest.raises(ProfilerError):
            ocean_pp1_trace(4)

    def test_jmp_layout_emits_samples(self):
        layout = {"inner_backedge": 0x1000, "outer_backedge": 0x2000}
        t = water_pp1_trace(8000, n_accesses=100_000, jmp_layout=layout)
        assert t.jmp_addresses is not None
        vals = set(t.jmp_addresses.tolist())
        assert vals == {0x1000, 0x2000}
        # the inner backedge dominates
        inner = (t.jmp_addresses == 0x1000).sum()
        assert inner > len(t.jmp_addresses) / 2


class TestPhasedTrace:
    def test_phases_occupy_disjoint_regions(self):
        t = phased_trace(
            [("stream", 1 << 20, 1), ("stream", 1 << 20, 1)], accesses_per_phase=1000
        )
        first, second = t.addresses[:1000], t.addresses[1000:]
        assert first.max() < second.min()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProfilerError):
            phased_trace([("mmap", 1, 1)])
