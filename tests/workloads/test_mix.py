"""Workload mixing tests."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.base import mix_workloads
from repro.workloads.splash2 import raytrace_workload
from repro.workloads.suite import blas_workload

from ..conftest import make_workload


class TestMix:
    def test_all_processes_present(self):
        a = make_workload(n_processes=3, name="a")
        b = make_workload(n_processes=5, name="b")
        mixed = mix_workloads(a, b)
        assert mixed.n_processes == 8
        assert mixed.name == "a+b"

    def test_round_robin_interleaving(self):
        a = make_workload(n_processes=3, name="a")
        b = make_workload(n_processes=3, name="b")
        mixed = mix_workloads(a, b)
        names = [p.name for p in mixed.processes]
        assert names == ["a", "b", "a", "b", "a", "b"]

    def test_uneven_lanes_drain(self):
        a = make_workload(n_processes=1, name="a")
        b = make_workload(n_processes=4, name="b")
        names = [p.name for p in mix_workloads(a, b).processes]
        assert names == ["a", "b", "b", "b", "b"]

    def test_custom_name(self):
        mixed = mix_workloads(make_workload(name="x"), name="consolidated")
        assert mixed.name == "consolidated"

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            mix_workloads()

    def test_table2_mix_builds(self):
        mixed = mix_workloads(
            raytrace_workload(n_processes=4), blas_workload(1, n_processes=8)
        )
        assert mixed.n_processes == 12
        assert "Raytrace" in mixed.description

    def test_inputs_unmodified(self):
        a = make_workload(n_processes=2, name="a")
        before = list(a.processes)
        mix_workloads(a, make_workload(n_processes=2, name="b"))
        assert list(a.processes) == before


class TestMigrations:
    def test_single_thread_per_core_never_migrates(self):
        from repro.experiments.runner import run_workload_full
        from ..conftest import make_phase

        result = run_workload_full(make_workload(n_processes=4), None)
        for proc in result.kernel.processes:
            assert proc.threads[0].stats.migrations == 0

    def test_oversubscribed_machine_migrates(self, small_machine):
        from repro.experiments.runner import run_workload_full
        from repro.perf.counters import HwCounter
        from ..conftest import make_phase

        wl = make_workload(
            n_processes=6, phases=[make_phase(instructions=20_000_000)]
        )
        result = run_workload_full(wl, None, config=small_machine)
        migrations = result.kernel.machine.counters.read(HwCounter.MIGRATIONS)
        assert migrations > 0
        per_thread = sum(
            p.threads[0].stats.migrations for p in result.kernel.processes
        )
        assert per_thread == migrations
