"""Table 2 suite construction tests."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.suite import (
    WORKLOAD_NAMES,
    blas_workload,
    table2_workloads,
    workload_by_name,
)


class TestSuite:
    def test_eight_workloads_in_paper_order(self):
        assert WORKLOAD_NAMES == (
            "BLAS-1", "BLAS-2", "BLAS-3",
            "Water_sp", "Water_nsq", "Ocean_cp", "Raytrace", "Volrend",
        )

    def test_table2_builds_all(self):
        workloads = table2_workloads()
        assert list(workloads) == list(WORKLOAD_NAMES)
        for name, wl in workloads.items():
            assert wl.name == name
            assert wl.n_processes > 0

    def test_blas_workloads_have_96_processes(self):
        for level in (1, 2, 3):
            wl = blas_workload(level)
            assert wl.n_processes == 96
            assert wl.n_threads == 96  # single-threaded

    def test_blas_interleaves_kernels(self):
        wl = blas_workload(3)
        first_four = [p.name for p in wl.processes[:4]]
        assert len(set(first_four)) == 4  # one of each kernel

    def test_process_counts_match_table2(self):
        expect = {
            "BLAS-1": 96, "BLAS-2": 96, "BLAS-3": 96,
            "Water_sp": 12, "Water_nsq": 12,
            "Ocean_cp": 48, "Raytrace": 48, "Volrend": 48,
        }
        for name, n in expect.items():
            assert workload_by_name(name).n_processes == n

    def test_unknown_workload_raises(self):
        with pytest.raises(WorkloadError, match="BLAS-1"):
            workload_by_name("PARSEC")

    def test_bad_blas_level(self):
        with pytest.raises(WorkloadError):
            blas_workload(4)

    def test_indivisible_process_count(self):
        with pytest.raises(WorkloadError):
            blas_workload(1, n_processes=97)

    def test_workloads_are_fresh_instances(self):
        assert workload_by_name("BLAS-1") is not workload_by_name("BLAS-1")
