"""Workload abstraction tests."""

import pytest

from repro.core.progress_period import ResourceKind, ReuseLevel
from repro.errors import WorkloadError
from repro.workloads.base import (
    Phase,
    PhaseKind,
    PpSpec,
    ProcessSpec,
    Workload,
    barrier_phase,
    compute_phase,
)

from ..conftest import make_phase


class TestPhaseValidation:
    def test_compute_phase_needs_instructions(self):
        with pytest.raises(WorkloadError):
            Phase(name="x", instructions=0)

    def test_barrier_needs_none(self):
        barrier_phase()  # ok

    def test_reuse_range(self):
        with pytest.raises(WorkloadError):
            Phase(name="x", instructions=1, reuse=1.5)

    def test_llc_ref_fraction_bounded(self):
        with pytest.raises(WorkloadError):
            Phase(name="x", instructions=1, llc_refs_per_memref=1.5)

    def test_overlap_override_validated(self):
        with pytest.raises(WorkloadError):
            Phase(name="x", instructions=1, memory_overlap=1.0)

    def test_subperiods_positive(self):
        with pytest.raises(WorkloadError):
            PpSpec(subperiods=0)


class TestPhaseDeclarations:
    def test_declared_defaults_to_actual(self):
        phase = make_phase(wss_mb=2.0, reuse=0.9)
        assert phase.declared_demand() == phase.wss_bytes
        assert phase.declared_reuse() is ReuseLevel.HIGH

    def test_declared_can_differ_from_actual(self):
        phase = compute_phase(
            "x", 1000, wss_bytes=100, reuse=0.9, declared_demand=999,
            declared_reuse=ReuseLevel.LOW,
        )
        assert phase.declared_demand() == 999
        assert phase.declared_reuse() is ReuseLevel.LOW

    def test_period_request_carries_scope(self):
        shared = make_phase(shared=True)
        req = shared.period_request(pid=7)
        assert req.sharing_key == (7, shared.name)
        assert req.resource is ResourceKind.LLC
        private = make_phase(shared=False)
        assert private.period_request(pid=7).sharing_key is None

    def test_period_request_requires_pp(self):
        with pytest.raises(WorkloadError):
            make_phase(declare_pp=False).period_request(pid=1)

    def test_with_subperiods(self):
        phase = make_phase().with_subperiods(512)
        assert phase.pp.subperiods == 512
        with pytest.raises(WorkloadError):
            make_phase(declare_pp=False).with_subperiods(2)

    def test_totals(self):
        phase = make_phase(instructions=1000, flops_per_instr=2.0)
        assert phase.flops == 2000
        assert phase.mem_refs == pytest.approx(400)


class TestProcessSpec:
    def test_uniform_program(self):
        spec = ProcessSpec(name="p", program=[make_phase()], n_threads=3)
        assert spec.program_for(0) == spec.program_for(2)

    def test_per_thread_program_length_checked(self):
        with pytest.raises(WorkloadError):
            ProcessSpec(
                name="p",
                program=[make_phase()],
                n_threads=2,
                per_thread_programs=[[make_phase()]],
            )

    def test_thread_count_positive(self):
        with pytest.raises(WorkloadError):
            ProcessSpec(name="p", program=[make_phase()], n_threads=0)


class TestWorkload:
    def test_counts(self):
        spec = ProcessSpec(name="p", program=[make_phase()], n_threads=2)
        wl = Workload(name="w", processes=[spec] * 3)
        assert wl.n_processes == 3
        assert wl.n_threads == 6

    def test_total_flops(self):
        phase = make_phase(instructions=1000, flops_per_instr=1.0)
        spec = ProcessSpec(name="p", program=[phase], n_threads=2)
        wl = Workload(name="w", processes=[spec] * 3)
        assert wl.total_flops() == pytest.approx(6000)

    def test_empty_workload_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(name="w", processes=[])
