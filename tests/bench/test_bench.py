"""Bench harness: record schema, digests, file round-trips, the gate."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    AREA_NAMES,
    BENCH_FILES,
    BenchError,
    BenchOptions,
    BenchRecord,
    RECORD_FIELDS,
    compare_records,
    config_digest,
    format_problems,
    load_records,
    run_bench,
    write_records,
)
from repro.bench.areas import bench_sim


def record(**overrides) -> BenchRecord:
    base = dict(
        area="sim", metric="events_per_s", value=1000.0, unit="events/s",
        seed=1, config_digest="abc123", wall_s=0.5,
    )
    base.update(overrides)
    return BenchRecord(**base)


class TestSchema:
    def test_record_fields_are_the_documented_seven(self):
        assert RECORD_FIELDS == (
            "area", "metric", "value", "unit", "seed", "config_digest",
            "wall_s",
        )
        assert set(record().to_dict()) == set(RECORD_FIELDS)

    def test_unit_drives_comparison_direction(self):
        assert record(unit="events/s").higher_is_better
        assert record(unit="events/s").gated
        assert record(unit="s").lower_is_better
        assert record(unit="s").gated
        assert not record(unit="events").gated
        assert not record(unit="GFLOPS").gated

    def test_config_digest_is_stable_and_order_insensitive(self):
        a = config_digest({"x": 1, "y": [1, 2]})
        b = config_digest({"y": [1, 2], "x": 1})
        assert a == b
        assert len(a) == 16
        assert config_digest({"x": 2, "y": [1, 2]}) != a

    def test_write_load_round_trip(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        records = [record(), record(metric="events_total", unit="events")]
        write_records(path, records)
        assert load_records(path) == records
        # the file itself is plain sorted JSON (diff-friendly)
        payload = json.loads(open(path).read())
        assert isinstance(payload, list) and len(payload) == 2

    def test_load_rejects_wrong_shape(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a list"}')
        with pytest.raises(BenchError):
            load_records(str(bad))
        bad.write_text('[{"area": "sim"}]')
        with pytest.raises(BenchError, match="keys"):
            load_records(str(bad))


class TestCompare:
    def test_within_tolerance_passes(self):
        base = [record(value=1000.0)]
        cur = [record(value=800.0)]  # -20% < 30% tolerance
        assert compare_records(base, cur, 0.30) == []

    def test_throughput_regression_fails(self):
        base = [record(value=1000.0)]
        cur = [record(value=600.0)]  # -40%
        problems = compare_records(base, cur, 0.30)
        assert len(problems) == 1 and "below baseline" in problems[0]

    def test_throughput_improvement_passes(self):
        assert compare_records([record(value=1000.0)],
                               [record(value=5000.0)], 0.30) == []

    def test_latency_regression_fails(self):
        base = [record(metric="p99", unit="s", value=0.010)]
        cur = [record(metric="p99", unit="s", value=0.020)]  # 2x slower
        problems = compare_records(base, cur, 0.30)
        assert len(problems) == 1 and "above baseline" in problems[0]

    def test_latency_improvement_passes(self):
        base = [record(metric="p99", unit="s", value=0.010)]
        cur = [record(metric="p99", unit="s", value=0.001)]
        assert compare_records(base, cur, 0.30) == []

    def test_counts_are_informational(self):
        base = [record(metric="events_total", unit="events", value=1000.0)]
        cur = [record(metric="events_total", unit="events", value=1.0)]
        assert compare_records(base, cur, 0.30) == []

    def test_digest_mismatch_is_a_hard_failure(self):
        base = [record(config_digest="aaaa")]
        cur = [record(config_digest="bbbb", value=99999.0)]
        problems = compare_records(base, cur, 0.30)
        assert len(problems) == 1 and "re-bless" in problems[0]

    def test_missing_metric_is_a_failure(self):
        problems = compare_records([record()], [], 0.30)
        assert len(problems) == 1 and "missing" in problems[0]

    def test_format_problems(self):
        assert "no regressions" in format_problems([])
        assert "1 regression" in format_problems(["sim/x: slow"])


class TestRunner:
    def test_area_names_match_files(self):
        assert AREA_NAMES == (
            "sim", "serve", "cluster", "fleet", "serve_overload",
            "serve_predict",
        )
        assert set(BENCH_FILES) == set(AREA_NAMES)

    def test_unknown_area_is_rejected(self, tmp_path):
        opts = BenchOptions(areas=["sim", "nope"], out_dir=str(tmp_path))
        with pytest.raises(BenchError, match="nope"):
            run_bench(opts, echo=lambda _line: None)

    def test_missing_baseline_is_rejected(self, tmp_path):
        opts = BenchOptions(
            quick=True, areas=["sim"], out_dir=str(tmp_path),
            compare_to=str(tmp_path / "absent"),
        )
        with pytest.raises(BenchError, match="does not exist"):
            run_bench(opts, echo=lambda _line: None)

    def test_quick_and_full_share_config_digests(self):
        # rep counts must not leak into the digest: a --quick CI run has to
        # be comparable against best-of-3 committed baselines
        quick = {r.metric: r for r in bench_sim(5, reps=1)}
        full_digest = quick["events_per_s"].config_digest
        assert all(r.config_digest == full_digest for r in quick.values())
        other_seed = bench_sim(6, reps=1)[0]
        assert other_seed.config_digest != full_digest


class TestCommittedBaselines:
    """The BENCH_*.json files at the repo root stay loadable and coherent."""

    @pytest.mark.parametrize("area", AREA_NAMES)
    def test_baseline_file_is_valid(self, area):
        import os

        root = os.path.join(os.path.dirname(__file__), "..", "..")
        path = os.path.join(root, BENCH_FILES[area])
        records = load_records(path)
        assert records, f"{path} is empty"
        digests = {r.config_digest for r in records}
        assert len(digests) == 1, "one digest per area file"
        assert all(r.area == area for r in records)
