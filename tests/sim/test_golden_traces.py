"""Golden-trace regression tests: the scheduler's decisions are pinned.

Two canonical small workloads run under a :class:`KernelTracer`; the
serialized event sequences must match ``tests/data/*.trace`` byte for byte.
Any change to dispatch order, admission decisions, or event timestamps —
intended or not — shows up as a readable diff against the golden file.

To re-bless after a *deliberate* scheduler change::

    PYTHONPATH=src python -m tests.sim.test_golden_traces

then review the diff like any other code change.
"""

from __future__ import annotations

from pathlib import Path

from repro.config import CacheConfig, CpuConfig, MachineConfig
from repro.core.policy import CompromisePolicy, StrictPolicy
from repro.core.rda import RdaScheduler
from repro.sim.kernel import Kernel
from repro.sim.tracing import KernelTracer, serialize_trace
from repro.units import kib
from repro.workloads.base import ProcessSpec, Workload, barrier_phase

from ..conftest import make_phase

DATA_DIR = Path(__file__).resolve().parent.parent / "data"

#: golden name -> builder producing the serialized trace
GOLDENS = {}


def golden(name):
    def deco(fn):
        GOLDENS[name] = fn
        return fn

    return deco


def _machine() -> MachineConfig:
    """The fixed 2-core / 1 MiB-LLC machine both golden traces run on."""
    return MachineConfig(
        cpu=CpuConfig(n_cores=2),
        llc=CacheConfig("L3-Shared", kib(1024), associativity=16, shared=True),
    )


def _run(workload: Workload, policy) -> str:
    config = _machine()
    scheduler = RdaScheduler(policy=policy, config=config)
    kernel = Kernel(config=config, extension=scheduler)
    kernel.tracer = KernelTracer()
    kernel.launch(workload)
    kernel.run(max_events=1_000_000)
    return serialize_trace(kernel.tracer)


@golden("strict_contended.trace")
def strict_contended() -> str:
    """3 x (0.5 MB, 0.3 MB) periods against 1 MiB under RDA:Strict —
    denials, waitlist wakes, and preemptions all appear in the trace."""
    wl = Workload(
        name="golden-strict",
        processes=[
            ProcessSpec(
                name="g",
                program=[
                    make_phase("alpha", instructions=400_000, wss_mb=0.5),
                    make_phase("beta", instructions=250_000, wss_mb=0.3),
                ],
            )
        ]
        * 3,
    )
    return _run(wl, StrictPolicy())


@golden("compromise_barrier.trace")
def compromise_barrier() -> str:
    """2 x 2 threads with a shared working set and a barrier under
    RDA:Compromise(1.5) — barrier parks/releases and shared-set admission."""
    wl = Workload(
        name="golden-compromise",
        processes=[
            ProcessSpec(
                name="g",
                n_threads=2,
                program=[
                    make_phase("gather", instructions=300_000, wss_mb=0.6, shared=True),
                    barrier_phase("sync"),
                    make_phase("apply", instructions=200_000, wss_mb=0.4, shared=True),
                ],
            )
        ]
        * 2,
    )
    return _run(wl, CompromisePolicy(oversubscription=1.5))


@golden("strict_waitlist_storm.trace")
def strict_waitlist_storm() -> str:
    """6 single-phase processes each demanding 0.6 MB against 1 MiB under
    RDA:Strict — at most one admitted period fits, so the waitlist stays
    deep the whole run and the trace is dominated by deny/wake churn (the
    heap-tombstone and compaction paths the engine rewrite touched)."""
    wl = Workload(
        name="golden-waitlist",
        processes=[
            ProcessSpec(
                name="w",
                program=[
                    make_phase("hog", instructions=150_000, wss_mb=0.6),
                    make_phase("tail", instructions=100_000, wss_mb=0.6),
                ],
            )
        ]
        * 6,
    )
    return _run(wl, StrictPolicy())


class TestGoldenTraces:
    def test_strict_contended_matches_golden(self):
        expected = (DATA_DIR / "strict_contended.trace").read_text()
        assert strict_contended() == expected

    def test_compromise_barrier_matches_golden(self):
        expected = (DATA_DIR / "compromise_barrier.trace").read_text()
        assert compromise_barrier() == expected

    def test_strict_waitlist_storm_matches_golden(self):
        expected = (DATA_DIR / "strict_waitlist_storm.trace").read_text()
        assert strict_waitlist_storm() == expected

    def test_waitlist_storm_is_waitlist_heavy(self):
        text = strict_waitlist_storm()
        denies = text.count("pp_deny")
        wakes = text.count("pp_wake")
        assert denies >= 5 and wakes >= 5

    def test_serialization_is_history_independent(self):
        """Global tid counters advance between runs; the serialized form
        must not care (tids are relabelled by first appearance)."""
        assert strict_contended() == strict_contended()

    def test_traces_exercise_the_interesting_events(self):
        text = strict_contended()
        for marker in ("pp_begin", "pp_deny", "pp_wake", "dispatch", "exit"):
            assert marker in text
        text = compromise_barrier()
        for marker in ("barrier_wait", "barrier_release", "pp_begin"):
            assert marker in text


def _bless() -> None:  # pragma: no cover - manual re-blessing entry point
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    for name, builder in GOLDENS.items():
        path = DATA_DIR / name
        path.write_text(builder())
        print(f"wrote {path} ({len(path.read_text().splitlines())} events)")


if __name__ == "__main__":  # pragma: no cover
    _bless()
