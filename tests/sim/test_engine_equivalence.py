"""Property test: the optimized Engine is trace-identical to a reference.

The production :class:`~repro.sim.engine.Engine` earns its speed from a
tuple-keyed heap, tombstone cancellation with in-place compaction, and a
flattened dispatch loop.  None of that may be observable: this file pits it
against ``ReferenceEngine`` — a deliberately naive straight-line
implementation (sorted-scan event list, no heap, no tombstones, no local
aliasing) — over Hypothesis-generated schedules that include cancels from
inside callbacks, reschedules (callbacks scheduling new events, possibly at
the current instant), equal-timestamp collisions, and ``run(until=)``
segments over empty and non-empty queues.  Both must produce byte-equal
traces: same (time, label) firing order, same final clock, same
events_processed.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine


# ----------------------------------------------------------------------
# the straight-line reference
# ----------------------------------------------------------------------
class _RefHandle:
    def __init__(self, time: float, seq: int, callback, args) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False


class ReferenceEngine:
    """Spec-by-construction event loop: O(n) scan per event, no cleverness."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._events: List[_RefHandle] = []
        self._seq = 0
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any):
        assert delay >= 0
        handle = _RefHandle(self._now + delay, self._seq, callback, args)
        self._seq += 1
        self._events.append(handle)
        return handle

    def cancel(self, handle: _RefHandle) -> None:
        handle.cancelled = True

    def _next(self) -> Optional[_RefHandle]:
        live = [e for e in self._events if not e.cancelled]
        if not live:
            return None
        return min(live, key=lambda e: (e.time, e.seq))

    def run(self, until: Optional[float] = None) -> None:
        while True:
            event = self._next()
            if event is None or (until is not None and event.time > until):
                if until is not None and until > self._now:
                    self._now = until
                return
            self._events.remove(event)
            self._now = event.time
            self.events_processed += 1
            event.callback(*event.args)


# ----------------------------------------------------------------------
# one schedule spec driven through either engine
# ----------------------------------------------------------------------
# Delays come from a tiny grid so that equal-timestamp collisions (the FIFO
# tie-break) are the common case, not a fluke.
_DELAYS = st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0])

_ROOT = st.fixed_dictionaries({
    "delay": _DELAYS,
    # roots this one cancels when it fires (indices into the root list;
    # out-of-range indices are ignored by the driver)
    "cancels": st.lists(st.integers(0, 15), max_size=2),
    # children this one schedules when it fires (a reschedule, possibly at
    # delay 0.0 = the current instant)
    "children": st.lists(_DELAYS, max_size=2),
})

_SPEC = st.fixed_dictionaries({
    "roots": st.lists(_ROOT, max_size=16),
    # roots cancelled from outside before the run starts
    "precancel": st.lists(st.integers(0, 15), max_size=4),
    # optional first run(until=...) segment before the draining run()
    "until": st.one_of(st.none(), _DELAYS),
})


def _drive(engine, spec) -> List[Any]:
    """Execute one spec against ``engine``; return the observable trace."""
    trace: List[Any] = []
    handles: List[Any] = []

    def fire(label: str, cancels, children) -> None:
        trace.append((round(engine.now, 9), label))
        for idx in cancels:
            if idx < len(handles):
                engine.cancel(handles[idx])
        for k, delay in enumerate(children):
            child_label = f"{label}.{k}"
            engine.schedule(delay, fire, child_label, (), ())

    for i, root in enumerate(spec["roots"]):
        handles.append(
            engine.schedule(
                root["delay"], fire, f"r{i}", root["cancels"], root["children"]
            )
        )
    for idx in spec["precancel"]:
        if idx < len(handles):
            engine.cancel(handles[idx])

    if spec["until"] is not None:
        engine.run(until=spec["until"])
        trace.append(("segment", round(engine.now, 9)))
    engine.run()
    trace.append(("final", round(engine.now, 9), engine.events_processed))
    return trace


class TestEngineEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(spec=_SPEC)
    def test_trace_identical_to_reference(self, spec):
        assert _drive(Engine(), spec) == _drive(ReferenceEngine(), spec)

    @settings(max_examples=50, deadline=None)
    @given(until=_DELAYS)
    def test_run_until_on_empty_queue_matches(self, until):
        spec = {"roots": [], "precancel": [], "until": until}
        assert _drive(Engine(), spec) == _drive(ReferenceEngine(), spec)

    def test_compaction_pressure_does_not_change_the_trace(self):
        # enough mid-run cancels to force _maybe_compact() inside run():
        # one root cancels 200 later-scheduled siblings when it fires
        def build(engine):
            trace = []
            victims = []

            def early():
                trace.append((engine.now, "early"))
                for handle in victims:
                    engine.cancel(handle)

            def victim(i):
                trace.append((engine.now, f"v{i}"))

            engine.schedule(0.5, early)
            for i in range(4 * Engine.COMPACT_MIN_CANCELLED):
                victims.append(engine.schedule(1.0 + i * 1e-6, victim, i))
            survivor = engine.schedule(3.0, lambda: trace.append((engine.now, "end")))
            assert survivor is not None
            engine.run()
            trace.append(("final", engine.now, engine.events_processed))
            return trace

        assert build(Engine()) == build(ReferenceEngine())

    def test_reference_engine_sanity(self):
        # the reference itself honours FIFO order at equal timestamps
        eng = ReferenceEngine()
        out = []
        eng.schedule(1.0, out.append, "a")
        eng.schedule(1.0, out.append, "b")
        eng.schedule(0.0, out.append, "c")
        eng.run()
        assert out == ["c", "a", "b"]
        assert math.isclose(eng.now, 1.0)
