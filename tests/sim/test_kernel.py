"""Kernel integration tests: execution, fairness, barriers, accounting."""

import pytest

from repro.errors import SimulationError
from repro.perf.counters import HwCounter
from repro.sim.kernel import Kernel
from repro.sim.process import ThreadState
from repro.workloads.base import ProcessSpec, Workload, barrier_phase

from ..conftest import make_phase, make_workload


def run(workload, config=None, **kw):
    kernel = Kernel(config=config)
    kernel.launch(workload)
    kernel.run(**kw)
    return kernel


class TestCompletion:
    def test_single_process_completes(self):
        kernel = run(make_workload(n_processes=1))
        assert kernel.all_exited
        assert kernel.now > 0

    def test_all_instructions_retired(self):
        wl = make_workload(n_processes=3, phases=[make_phase(instructions=500_000)])
        kernel = run(wl)
        retired = kernel.machine.counters.read(HwCounter.INSTRUCTIONS)
        assert retired == pytest.approx(3 * 500_000, rel=1e-6)

    def test_all_flops_retired(self):
        wl = make_workload(
            n_processes=2,
            phases=[make_phase(instructions=400_000, flops_per_instr=1.5)],
        )
        kernel = run(wl)
        flops = kernel.machine.counters.read(HwCounter.FP_OPS)
        assert flops == pytest.approx(2 * 400_000 * 1.5, rel=1e-6)

    def test_multiphase_program_runs_in_order(self):
        phases = [make_phase("a", instructions=100_000), make_phase("b", instructions=100_000)]
        kernel = run(make_workload(n_processes=1, phases=phases))
        t = kernel.processes[0].threads[0]
        assert t.done and t.state is ThreadState.EXITED

    def test_thread_stats_time_adds_up(self):
        kernel = run(make_workload(n_processes=1))
        t = kernel.processes[0].threads[0]
        total = (
            t.stats.run_time_s
            + t.stats.ready_time_s
            + t.stats.pp_wait_time_s
            + t.stats.blocked_time_s
        )
        assert total == pytest.approx(t.stats.turnaround_s, rel=1e-6)


class TestTimesharing:
    def test_more_processes_than_cores_timeshare(self, small_machine):
        # 2 cores, 6 processes: context switches must occur
        wl = make_workload(n_processes=6, phases=[make_phase(instructions=20_000_000)])
        kernel = run(wl, config=small_machine)
        assert kernel.machine.counters.read(HwCounter.CONTEXT_SWITCHES) > 0
        assert kernel.all_exited

    def test_fairness_of_identical_processes(self, small_machine):
        wl = make_workload(n_processes=4, phases=[make_phase(instructions=20_000_000)])
        kernel = run(wl, config=small_machine)
        finishes = [p.threads[0].stats.exit_time_s for p in kernel.processes]
        # round-robin of identical work: all finish within one quantum-ish
        spread = max(finishes) - min(finishes)
        assert spread < 0.25 * max(finishes)

    def test_single_thread_per_core_never_switches(self, small_machine):
        wl = make_workload(n_processes=2, phases=[make_phase(instructions=5_000_000)])
        kernel = run(wl, config=small_machine)
        assert kernel.machine.counters.read(HwCounter.CONTEXT_SWITCHES) == 0

    def test_makespan_scales_with_load(self, small_machine):
        t1 = run(
            make_workload(n_processes=2, phases=[make_phase(instructions=10_000_000)]),
            config=small_machine,
        ).now
        t2 = run(
            make_workload(n_processes=4, phases=[make_phase(instructions=10_000_000)]),
            config=small_machine,
        ).now
        assert t2 > 1.8 * t1  # doubling work on saturated cores ~doubles time


class TestBarriers:
    def test_threads_wait_for_siblings(self):
        phases = [
            make_phase("before", instructions=1_000_000),
            barrier_phase(),
            make_phase("after", instructions=1_000_000),
        ]
        wl = make_workload(n_processes=1, n_threads=4, phases=phases)
        kernel = run(wl)
        assert kernel.all_exited

    def test_unbalanced_arrival_blocks_early_threads(self, small_machine):
        """Two threads with different pre-barrier work: the fast one blocks."""
        spec = ProcessSpec(
            name="unbal",
            program=[make_phase("x"), barrier_phase(), make_phase("y")],
            n_threads=2,
            per_thread_programs=[
                [make_phase("fast", instructions=100_000), barrier_phase(),
                 make_phase("tail", instructions=100_000)],
                [make_phase("slow", instructions=30_000_000), barrier_phase(),
                 make_phase("tail", instructions=100_000)],
            ],
        )
        kernel = run(Workload(name="w", processes=[spec]), config=small_machine)
        fast = kernel.processes[0].threads[0]
        assert fast.stats.blocked_time_s > 0

    def test_consecutive_barriers(self):
        phases = [
            make_phase(instructions=100_000),
            barrier_phase("b1"),
            barrier_phase("b2"),
            make_phase(instructions=100_000),
        ]
        kernel = run(make_workload(n_processes=1, n_threads=3, phases=phases))
        assert kernel.all_exited


class TestDiagnostics:
    def test_sync_brings_counters_current(self):
        kernel = Kernel()
        kernel.launch(make_workload(n_processes=1, phases=[make_phase(instructions=10_000_000)]))
        kernel.run(until=0.001)
        kernel.sync()
        assert kernel.machine.counters.read(HwCounter.INSTRUCTIONS) > 0
        assert not kernel.all_exited

    def test_diagnose_lists_live_threads(self):
        kernel = Kernel()
        kernel.launch(make_workload(n_processes=1))
        text = kernel.diagnose()
        assert "tid=" in text

    def test_run_until_then_finish(self):
        kernel = Kernel()
        kernel.launch(make_workload(n_processes=2))
        kernel.run(until=1e-6)
        kernel.run()
        assert kernel.all_exited


class TestEnergyAccrual:
    def test_energy_accumulates_with_time(self):
        kernel = run(make_workload(n_processes=2))
        sample = kernel.machine.rapl.sample()
        assert sample.package_j > 0
        assert sample.dram_j > 0

    def test_busier_machine_uses_more_power(self, small_machine):
        light = run(
            make_workload(n_processes=1, phases=[make_phase(instructions=10_000_000)]),
            config=small_machine,
        )
        heavy = run(
            make_workload(n_processes=2, phases=[make_phase(instructions=10_000_000)]),
            config=small_machine,
        )
        p_light = light.machine.rapl.sample().package_j / light.now
        p_heavy = heavy.machine.rapl.sample().package_j / heavy.now
        assert p_heavy > p_light
