"""Machine bundle tests."""

import pytest

from repro.config import default_machine_config
from repro.mem.contention import SharedLlcModel
from repro.mem.partition import PartitionedLlcModel
from repro.perf.counters import HwCounter
from repro.sim.machine import Machine


class TestMachine:
    def test_defaults(self):
        m = Machine()
        assert m.n_cores == 12
        assert isinstance(m.llc_model, SharedLlcModel)
        assert m.llc_model.capacity_bytes == default_machine_config().llc_capacity

    def test_custom_llc_model(self):
        model = PartitionedLlcModel(default_machine_config().llc_capacity)
        m = Machine(llc_model=model)
        assert m.llc_model is model

    def test_accrue_interval_updates_counters_and_energy(self):
        m = Machine()
        m.accrue_interval(1.0, n_active_cores=6, dram_accesses=1000, context_switches=3)
        assert m.counters.read(HwCounter.LLC_MISSES) == 1000
        assert m.counters.read(HwCounter.CONTEXT_SWITCHES) == 3
        assert m.rapl.sample().package_j > 0

    def test_rapl_sample_advances_clock(self):
        m = Machine()
        s = m.rapl_sample(2.0, n_active_cores=0)
        assert s.time_s == 2.0
        assert s.package_j > 0
