"""CFS-like scheduler policy tests."""

import pytest

from repro.config import SchedulerConfig
from repro.sim.cfs import SCHED_LATENCY_S, CfsScheduler
from repro.sim.process import Process
from repro.workloads.base import ProcessSpec

from ..conftest import make_phase


def make_cfs(n_cores=12):
    return CfsScheduler(SchedulerConfig(), n_cores=n_cores)


def make_thread(vruntime=0.0):
    proc = Process(ProcessSpec(name="p", program=[make_phase()]))
    t = proc.threads[0]
    t.vruntime = vruntime
    return t


class TestTimeslice:
    def test_uncontended_gets_full_latency(self):
        cfs = make_cfs(n_cores=12)
        assert cfs.timeslice(1) == pytest.approx(SCHED_LATENCY_S)
        assert cfs.timeslice(12) == pytest.approx(SCHED_LATENCY_S)

    def test_slice_shrinks_with_oversubscription(self):
        cfs = make_cfs(n_cores=12)
        assert cfs.timeslice(24) == pytest.approx(SCHED_LATENCY_S / 2)
        assert cfs.timeslice(48) == pytest.approx(SCHED_LATENCY_S / 4)

    def test_min_granularity_floor(self):
        cfs = make_cfs(n_cores=12)
        heavily = cfs.timeslice(12 * 1000)
        assert heavily == pytest.approx(cfs.config.min_granularity_s)

    def test_96_processes_on_12_cores_hits_floor(self):
        """The Table 2 BLAS configuration: 8 runnable per core."""
        cfs = make_cfs(n_cores=12)
        assert cfs.timeslice(96) == pytest.approx(
            max(SCHED_LATENCY_S / 8, cfs.config.min_granularity_s)
        )


class TestEnqueueSemantics:
    def test_pick_next_is_fair(self):
        cfs = make_cfs()
        slow = make_thread(vruntime=10.0)
        starved = make_thread(vruntime=1.0)
        cfs.enqueue(slow)
        cfs.enqueue(starved)
        assert cfs.pick_next() is starved

    def test_waking_thread_floored_to_min_vruntime(self):
        cfs = make_cfs()
        runner = make_thread(vruntime=50.0)
        cfs.enqueue(runner)
        cfs.pick_next()
        sleeper = make_thread(vruntime=0.0)
        cfs.enqueue(sleeper, waking=True)
        assert sleeper.vruntime == pytest.approx(50.0)

    def test_waking_does_not_penalize_ahead_thread(self):
        cfs = make_cfs()
        runner = make_thread(vruntime=10.0)
        cfs.enqueue(runner)
        cfs.pick_next()
        ahead = make_thread(vruntime=99.0)
        cfs.enqueue(ahead, waking=True)
        assert ahead.vruntime == pytest.approx(99.0)

    def test_charge_accumulates(self):
        cfs = make_cfs()
        t = make_thread()
        cfs.charge(t, 0.002)
        cfs.charge(t, 0.003)
        assert t.vruntime == pytest.approx(0.005)

    def test_dequeue(self):
        cfs = make_cfs()
        t = make_thread()
        cfs.enqueue(t)
        assert cfs.dequeue(t) is True
        assert cfs.pick_next() is None
        assert cfs.n_queued == 0
