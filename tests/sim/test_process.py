"""Process/Thread lifecycle tests."""

import pytest

from repro.errors import SchedulerError
from repro.sim.process import Process, Thread, ThreadState
from repro.workloads.base import ProcessSpec, barrier_phase

from ..conftest import make_phase


def proc_of(phases, n_threads=1):
    return Process(ProcessSpec(name="p", program=phases, n_threads=n_threads))


class TestThreadProgram:
    def test_walks_phases(self):
        p = proc_of([make_phase("a"), make_phase("b")])
        t = p.threads[0]
        assert t.current_phase.name == "a"
        t.advance_phase()
        assert t.current_phase.name == "b"
        t.advance_phase()
        assert t.done and t.current_phase is None

    def test_advance_past_end_raises(self):
        p = proc_of([make_phase()])
        t = p.threads[0]
        t.advance_phase()
        with pytest.raises(SchedulerError):
            t.advance_phase()

    def test_instr_remaining(self):
        p = proc_of([make_phase(instructions=1000)])
        t = p.threads[0]
        assert t.instr_remaining() == 1000
        t.instr_done = 400
        assert t.instr_remaining() == 600

    def test_barrier_phase_has_no_instructions(self):
        p = proc_of([barrier_phase(), make_phase()])
        assert p.threads[0].instr_remaining() == 0.0

    def test_per_thread_programs(self):
        spec = ProcessSpec(
            name="het",
            program=[make_phase("default")],
            n_threads=2,
            per_thread_programs=[[make_phase("a")], [make_phase("b")]],
        )
        p = Process(spec)
        assert p.threads[0].current_phase.name == "a"
        assert p.threads[1].current_phase.name == "b"


class TestStateAccounting:
    def test_time_folds_into_buckets(self):
        p = proc_of([make_phase()])
        t = p.threads[0]
        t.state_since = 0.0
        t.set_state(ThreadState.RUNNING, 0.0)
        t.set_state(ThreadState.READY, 2.0)  # ran 2 s
        t.set_state(ThreadState.RUNNING, 5.0)  # ready 3 s
        t.set_state(ThreadState.PP_WAIT, 6.0)  # ran 1 s
        t.set_state(ThreadState.EXITED, 10.0)  # pp-waited 4 s
        assert t.stats.run_time_s == pytest.approx(3.0)
        assert t.stats.ready_time_s == pytest.approx(3.0)
        assert t.stats.pp_wait_time_s == pytest.approx(4.0)

    def test_backwards_time_rejected(self):
        p = proc_of([make_phase()])
        t = p.threads[0]
        t.set_state(ThreadState.RUNNING, 5.0)
        with pytest.raises(SchedulerError):
            t.set_state(ThreadState.READY, 4.0)

    def test_runnable_predicate(self):
        p = proc_of([make_phase()])
        t = p.threads[0]
        t.set_state(ThreadState.READY, 0.0)
        assert t.runnable
        t.set_state(ThreadState.PP_WAIT, 0.0)
        assert not t.runnable


class TestProcess:
    def test_unique_pids_and_tids(self):
        a, b = proc_of([make_phase()], 2), proc_of([make_phase()], 2)
        assert a.pid != b.pid
        tids = [t.tid for t in a.threads + b.threads]
        assert len(set(tids)) == 4

    def test_done_requires_all_threads(self):
        p = proc_of([make_phase()], n_threads=2)
        p.threads[0].set_state(ThreadState.EXITED, 0.0)
        assert not p.done
        p.threads[1].set_state(ThreadState.EXITED, 0.0)
        assert p.done

    def test_live_threads(self):
        p = proc_of([make_phase()], n_threads=3)
        p.threads[0].set_state(ThreadState.EXITED, 0.0)
        assert len(p.live_threads) == 2


class TestBarrierBookkeeping:
    def barrier_proc(self, n_threads=3):
        return proc_of([barrier_phase(), make_phase()], n_threads=n_threads)

    def test_barrier_completes_on_last_arrival(self):
        p = self.barrier_proc()
        assert p.barrier_arrive(p.threads[0]) is False
        assert p.barrier_arrive(p.threads[1]) is False
        assert p.barrier_arrive(p.threads[2]) is True

    def test_barrier_resets_after_completion(self):
        p = self.barrier_proc()
        for t in p.threads:
            p.barrier_arrive(t)
        assert p.pending_barriers() == []

    def test_exited_thread_not_expected(self):
        p = self.barrier_proc()
        p.barrier_arrive(p.threads[0])
        p.barrier_arrive(p.threads[1])
        p.threads[2].set_state(ThreadState.EXITED, 0.0)
        assert p.barrier_ready(0) is True

    def test_barrier_ready_false_when_empty(self):
        p = self.barrier_proc()
        assert p.barrier_ready(0) is False
