"""Discrete-event engine tests, including ordering properties."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        fired = []
        eng.schedule(2.0, fired.append, "late")
        eng.schedule(1.0, fired.append, "early")
        eng.run()
        assert fired == ["early", "late"]

    def test_equal_times_fire_fifo(self):
        eng = Engine()
        fired = []
        for k in range(10):
            eng.schedule(1.0, fired.append, k)
        eng.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self):
        eng = Engine()
        seen = []
        eng.schedule(3.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [3.5]

    def test_schedule_at_absolute_time(self):
        eng = Engine(start_time=10.0)
        fired = []
        eng.schedule_at(11.0, fired.append, "x")
        eng.run()
        assert eng.now == 11.0 and fired == ["x"]

    def test_rejects_past_scheduling(self):
        eng = Engine(start_time=5.0)
        with pytest.raises(SimulationError):
            eng.schedule(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            eng.schedule_at(4.0, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        eng = Engine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                eng.schedule(1.0, chain, n + 1)

        eng.schedule(0.0, chain, 0)
        eng.run()
        assert fired == [0, 1, 2, 3]
        assert eng.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        fired = []
        handle = eng.schedule(1.0, fired.append, "x")
        eng.cancel(handle)
        eng.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        eng = Engine()
        handle = eng.schedule(1.0, lambda: None)
        eng.cancel(handle)
        eng.cancel(handle)
        eng.run()

    def test_pending_reflects_cancellation(self):
        eng = Engine()
        handle = eng.schedule(1.0, lambda: None)
        assert handle.pending
        handle.cancel()
        assert not handle.pending

    def test_peek_skips_cancelled(self):
        eng = Engine()
        h1 = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        eng.cancel(h1)
        assert eng.peek_time() == 2.0

    def test_queue_compacts_under_heavy_cancellation(self):
        # Regression: cancelled handles used to linger until popped, so a
        # long run cancelling many timers grew the heap without bound.
        eng = Engine()
        live = [eng.schedule(1e9, lambda: None) for _ in range(10)]
        for _ in range(100):
            handles = [eng.schedule(1.0, lambda: None) for _ in range(100)]
            for h in handles:
                eng.cancel(h)
            # bounded: live entries + compaction slack, never ~10k garbage
            assert len(eng._queue) <= len(live) + 2 * Engine.COMPACT_MIN_CANCELLED
        assert eng.peek_time() == 1e9
        assert all(h.pending for h in live)

    def test_compaction_preserves_event_order(self):
        eng = Engine()
        fired = []
        for k in range(200):
            h = eng.schedule(float(k), fired.append, k)
            if k % 2:
                eng.cancel(h)
        eng.run()
        assert fired == list(range(0, 200, 2))


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        eng = Engine()
        fired = []
        eng.schedule(1.0, fired.append, "a")
        eng.schedule(5.0, fired.append, "b")
        eng.run(until=2.0)
        assert fired == ["a"]
        assert eng.now == 2.0
        eng.run()
        assert fired == ["a", "b"]

    def test_run_until_on_empty_queue_advances_clock(self):
        # Regression: an empty queue used to leave the clock at `now`,
        # contradicting the docstring ("the clock is advanced to `until`").
        eng = Engine()
        eng.run(until=4.0)
        assert eng.now == 4.0

    def test_run_until_past_last_event_advances_clock(self):
        eng = Engine()
        fired = []
        eng.schedule(1.0, fired.append, "a")
        eng.run(until=3.0)
        assert fired == ["a"]
        assert eng.now == 3.0

    def test_run_until_in_the_past_leaves_clock(self):
        eng = Engine(start_time=5.0)
        eng.run(until=2.0)
        assert eng.now == 5.0

    def test_max_events_guards_livelock(self):
        eng = Engine()

        def forever():
            eng.schedule(1.0, forever)

        eng.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            eng.run(max_events=50)

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_engine_not_reentrant(self):
        eng = Engine()
        errors = []

        def reenter():
            try:
                eng.run()
            except SimulationError as e:
                errors.append(e)

        eng.schedule(0.0, reenter)
        eng.run()
        assert len(errors) == 1

    def test_events_processed_counter(self):
        eng = Engine()
        for _ in range(5):
            eng.schedule(1.0, lambda: None)
        eng.run()
        assert eng.events_processed == 5


class TestOrderingProperty:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_any_delay_set_fires_sorted(self, delays):
        eng = Engine()
        fired = []
        for d in delays:
            eng.schedule(d, lambda t=d: fired.append(t))
        eng.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
