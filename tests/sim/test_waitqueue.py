"""Kernel wait-queue tests."""

import pytest

from repro.errors import SchedulerError
from repro.sim.process import Process
from repro.sim.waitqueue import WaitQueue
from repro.workloads.base import ProcessSpec

from ..conftest import make_phase


def threads(n):
    return Process(ProcessSpec(name="p", program=[make_phase()], n_threads=n)).threads


class TestWaitQueue:
    def test_park_and_wake_one_fifo(self):
        q = WaitQueue()
        a, b = threads(2)
        q.park(a)
        q.park(b)
        assert q.wake_one() is a
        assert q.wake_one() is b
        assert q.wake_one() is None

    def test_wake_specific(self):
        q = WaitQueue()
        a, b = threads(2)
        q.park(a)
        q.park(b)
        assert q.wake(b) is True
        assert q.wake(b) is False
        assert list(q.waiters()) == [a]

    def test_wake_all_preserves_order(self):
        q = WaitQueue()
        ts = threads(4)
        for t in ts:
            q.park(t)
        assert q.wake_all() == ts
        assert len(q) == 0

    def test_double_park_rejected(self):
        q = WaitQueue("barrier")
        (t,) = threads(1)
        q.park(t)
        with pytest.raises(SchedulerError, match="barrier"):
            q.park(t)

    def test_membership(self):
        q = WaitQueue()
        a, b = threads(2)
        q.park(a)
        assert a in q and b not in q
        assert len(q) == 1
