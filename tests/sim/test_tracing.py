"""Kernel tracing and timeline rendering tests."""

import pytest

from repro.core.policy import StrictPolicy
from repro.core.rda import RdaScheduler
from repro.sim.kernel import Kernel
from repro.sim.tracing import KernelTracer, TraceKind, render_timeline
from repro.workloads.base import barrier_phase

from ..conftest import make_phase, make_workload


def traced_run(workload, policy=None, config=None):
    scheduler = RdaScheduler(policy=policy, config=config) if policy else None
    kernel = Kernel(config=config, extension=scheduler)
    tracer = KernelTracer()
    kernel.tracer = tracer
    kernel.launch(workload)
    kernel.run(max_events=1_000_000)
    return kernel, tracer


class TestEventCapture:
    def test_dispatch_and_exit_for_every_thread(self):
        kernel, tracer = traced_run(make_workload(n_processes=3))
        dispatched = {e.tid for e in tracer.of_kind(TraceKind.DISPATCH)}
        exited = {e.tid for e in tracer.of_kind(TraceKind.EXIT)}
        all_tids = {t.tid for p in kernel.processes for t in p.threads}
        assert dispatched == all_tids
        assert exited == all_tids

    def test_preemptions_recorded_under_oversubscription(self, small_machine):
        wl = make_workload(n_processes=6, phases=[make_phase(instructions=20_000_000)])
        kernel, tracer = traced_run(wl, config=small_machine)
        assert len(tracer.of_kind(TraceKind.PREEMPT)) > 0

    def test_pp_lifecycle_events(self):
        wl = make_workload(n_processes=6, phases=[make_phase(wss_mb=8.0)])
        kernel, tracer = traced_run(wl, policy=StrictPolicy())
        assert tracer.of_kind(TraceKind.PP_BEGIN)
        assert tracer.of_kind(TraceKind.PP_DENY)
        assert tracer.of_kind(TraceKind.PP_WAKE)
        # every denial eventually pairs with a wake
        denied = [e.tid for e in tracer.of_kind(TraceKind.PP_DENY)]
        woken = [e.tid for e in tracer.of_kind(TraceKind.PP_WAKE)]
        assert sorted(denied) == sorted(woken)

    def test_barrier_events(self):
        phases = [make_phase(), barrier_phase(), make_phase("after")]
        wl = make_workload(n_processes=1, n_threads=3, phases=phases)
        kernel, tracer = traced_run(wl)
        waits = tracer.of_kind(TraceKind.BARRIER_WAIT)
        releases = tracer.of_kind(TraceKind.BARRIER_RELEASE)
        assert len(waits) == 2  # last arrival never parks
        assert len(releases) == 2

    def test_events_are_time_ordered(self):
        kernel, tracer = traced_run(make_workload(n_processes=4))
        times = [e.time_s for e in tracer.events]
        assert times == sorted(times)

    def test_of_thread_filter(self):
        kernel, tracer = traced_run(make_workload(n_processes=2))
        tid = kernel.processes[0].threads[0].tid
        assert all(e.tid == tid for e in tracer.of_thread(tid))
        assert tracer.of_thread(tid)

    def test_capacity_cap_drops_events(self):
        kernel = Kernel()
        tracer = KernelTracer(capacity=3)
        kernel.tracer = tracer
        kernel.launch(make_workload(n_processes=4))
        kernel.run()
        assert len(tracer) == 3
        assert tracer.dropped > 0


class TestTimeline:
    def test_rendered_timeline_shape(self, small_machine):
        wl = make_workload(n_processes=4, phases=[make_phase(instructions=5_000_000)])
        kernel, tracer = traced_run(wl, config=small_machine)
        text = render_timeline(tracer, kernel, width=40)
        lines = text.splitlines()
        assert lines[0].startswith("timeline:")
        assert len(lines) == 1 + small_machine.cpu.n_cores
        assert all(line.startswith("cpu") for line in lines[1:])
        # busy machine: the lanes contain process glyphs
        body = "".join(lines[1:])
        assert any(c.isalpha() for c in body.replace("cpu", ""))

    def test_empty_timeline(self):
        kernel = Kernel()
        tracer = KernelTracer()
        assert render_timeline(tracer, kernel) == "(empty timeline)"

    def test_custom_labeller(self, small_machine):
        wl = make_workload(n_processes=2)
        kernel, tracer = traced_run(wl, config=small_machine)
        text = render_timeline(tracer, kernel, width=30, label_of=lambda tid: "#")
        assert "#" in text
