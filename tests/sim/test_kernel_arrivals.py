"""Kernel edge cases: staggered arrivals, partial runs, error paths."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Kernel
from repro.sim.process import ThreadState

from ..conftest import make_phase, make_workload


class TestStaggeredArrivals:
    def test_processes_start_at_their_offsets(self):
        kernel = Kernel()
        wl = make_workload(n_processes=3)
        offsets = [0.0, 0.010, 0.020]
        for spec, at in zip(wl.processes, offsets):
            kernel.spawn(spec, at=at)
        kernel.run()
        starts = sorted(p.threads[0].stats.spawn_time_s for p in kernel.processes)
        assert starts == pytest.approx(offsets)

    def test_late_arrival_still_completes(self):
        kernel = Kernel()
        wl = make_workload(n_processes=2)
        kernel.spawn(wl.processes[0], at=0.0)
        kernel.spawn(wl.processes[1], at=0.5)
        kernel.run()
        assert kernel.all_exited
        assert kernel.now >= 0.5

    def test_spawn_during_run_via_event(self):
        kernel = Kernel()
        wl = make_workload(n_processes=1)
        kernel.launch(wl)
        late = make_workload(n_processes=1)
        kernel.engine.schedule(0.001, lambda: kernel.spawn(late.processes[0]))
        kernel.run()
        assert kernel.all_exited
        assert len(kernel.processes) == 2

    def test_arrival_offsets_change_interleaving_not_work(self):
        from repro.experiments.runner import run_workload_full

        wl = make_workload(n_processes=3)
        a = run_workload_full(wl, None)
        b = run_workload_full(
            make_workload(n_processes=3), None, arrival_offsets=[0.0, 1e-3, 2e-3]
        )
        assert a.report.flops == pytest.approx(b.report.flops, rel=1e-9)
        assert b.report.wall_s >= a.report.wall_s  # late arrivals stretch it


class TestPartialRuns:
    def test_run_until_preserves_state(self):
        kernel = Kernel()
        kernel.launch(
            make_workload(n_processes=2, phases=[make_phase(instructions=50_000_000)])
        )
        kernel.run(until=0.001)
        assert not kernel.all_exited
        kernel.run()
        assert kernel.all_exited

    def test_repeated_run_calls_idempotent_after_completion(self):
        kernel = Kernel()
        kernel.launch(make_workload(n_processes=1))
        kernel.run()
        t = kernel.now
        kernel.run()
        assert kernel.now == t


class TestErrorPaths:
    def test_callback_exception_propagates(self):
        kernel = Kernel()

        def boom():
            raise RuntimeError("injected fault")

        kernel.engine.schedule(0.0, boom)
        with pytest.raises(RuntimeError, match="injected fault"):
            kernel.run()

    def test_faulty_extension_surfaces_its_error(self):
        from repro.sim.kernel import AdmissionDecision, SchedulingExtension

        class Buggy(SchedulingExtension):
            def on_pp_begin(self, thread, request):
                raise ValueError("extension bug")

            def on_pp_end(self, thread, pp_id):
                return ()

        kernel = Kernel(extension=Buggy())
        kernel.launch(make_workload(n_processes=1))
        with pytest.raises(ValueError, match="extension bug"):
            kernel.run()

    def test_stall_diagnosis_names_threads(self):
        from repro.core.rda import RdaScheduler
        from repro.core.policy import StrictPolicy

        scheduler = RdaScheduler(policy=StrictPolicy(), starvation_guard=False)
        kernel = Kernel(extension=scheduler)
        kernel.launch(
            make_workload(n_processes=1, phases=[make_phase(wss_mb=100.0)])
        )
        with pytest.raises(SimulationError) as exc:
            kernel.run()
        assert "pp_wait" in str(exc.value)
