"""Execution-model tests: rates, reloads, bandwidth cap, PP overhead."""

import pytest
from hypothesis import given, strategies as st

from repro.config import default_machine_config
from repro.mem.contention import ContentionPoint, LlcDemand, SharedLlcModel
from repro.sim.cpu import PP_OVERHEAD_CAP, ExecutionModel

from ..conftest import make_phase


@pytest.fixture
def model():
    return ExecutionModel(default_machine_config())


def point(hot=1.0, share=1e6):
    return ContentionPoint(
        share_bytes=share, hot_fraction=hot, total_demand_bytes=0, oversubscribed=hot < 1
    )


class TestRates:
    def test_warm_faster_than_thrashed(self, model):
        phase = make_phase(reuse=0.9)
        warm = model.rate(phase, point(hot=1.0))
        cold = model.rate(phase, point(hot=0.2))
        assert warm.seconds_per_instr < cold.seconds_per_instr
        assert warm.dram_per_instr < cold.dram_per_instr

    def test_low_reuse_insensitive_to_hot_fraction(self, model):
        phase = make_phase(reuse=0.0)
        warm = model.rate(phase, point(hot=1.0))
        cold = model.rate(phase, point(hot=0.0))
        assert warm.seconds_per_instr == pytest.approx(cold.seconds_per_instr)

    def test_base_rate_bounds(self, model):
        cfg = default_machine_config()
        phase = make_phase()
        r = model.rate(phase, point())
        assert r.seconds_per_instr >= cfg.cpu.cycle_s / cfg.cpu.base_ipc
        assert r.ipc <= cfg.cpu.base_ipc / cfg.cpu.cycle_s

    def test_solo_rate_fully_hot_when_fitting(self, model):
        phase = make_phase(wss_mb=1.0, reuse=0.9)
        r = model.solo_rate(phase)
        assert r.hot_fraction == 1.0

    def test_per_phase_overlap_override(self, model):
        from dataclasses import replace

        phase = make_phase(reuse=0.5)
        default = model.rate(phase, point())
        prefetched = model.rate(replace(phase, memory_overlap=0.95), point())
        assert prefetched.seconds_per_instr < default.seconds_per_instr

    def test_tracking_overhead_scales_rate(self, model):
        phase = make_phase()
        base = model.rate(phase, point())
        tracked = model.rate(phase, point(), tracking_overhead=0.5)
        assert tracked.seconds_per_instr == pytest.approx(
            base.seconds_per_instr * 1.5
        )


class TestReload:
    def test_reload_proportional_to_reusable_share(self, model):
        phase = make_phase(wss_mb=2.0, reuse=0.9)
        full = model.reload_cost(phase, point(share=10e6))
        assert full.seconds == pytest.approx(
            2e6 * 0.9 / default_machine_config().memory.bandwidth_bytes_per_s
        )
        assert full.dram_accesses == pytest.approx(2e6 * 0.9 / 64)

    def test_reload_capped_by_share(self, model):
        phase = make_phase(wss_mb=4.0, reuse=1.0)
        capped = model.reload_cost(phase, point(share=1e6))
        assert capped.dram_accesses == pytest.approx(1e6 / 64)

    def test_streaming_reload_is_cheap(self, model):
        hot = model.reload_cost(make_phase(wss_mb=2.0, reuse=0.9), point(share=10e6))
        cold = model.reload_cost(make_phase(wss_mb=2.0, reuse=0.05), point(share=10e6))
        assert cold.seconds < hot.seconds / 10


class TestBandwidthCap:
    def test_under_cap_rates_unchanged(self, model):
        phase = make_phase(reuse=0.9)
        rates = [model.rate(phase, point())]
        assert model.apply_bandwidth_cap(rates) == rates

    def test_saturated_rates_slow_down(self, model):
        # 12 heavy streamers exceed the bus
        phase = make_phase(reuse=0.0)
        solo = model.rate(phase, point(hot=0.0))
        rates = [solo] * 12
        capped = model.apply_bandwidth_cap(rates)
        assert all(c.seconds_per_instr > solo.seconds_per_instr for c in capped)

    def test_cap_achieves_bus_limit(self, model):
        cfg = default_machine_config()
        phase = make_phase(reuse=0.0)
        solo = model.rate(phase, point(hot=0.0))
        capped = model.apply_bandwidth_cap([solo] * 12)
        achieved = sum(c.dram_per_instr / c.seconds_per_instr for c in capped) * 64
        assert achieved == pytest.approx(cfg.memory.bandwidth_bytes_per_s, rel=1e-3)

    def test_compute_bound_thread_unaffected_by_zero_dram(self, model):
        compute = model.rate(make_phase(reuse=1.0, wss_mb=0.001), point())
        stream = model.rate(make_phase(reuse=0.0), point(hot=0.0))
        capped = model.apply_bandwidth_cap([compute] + [stream] * 12)
        # the pure-compute thread has no dram_per_instr -> no extra delay
        assert capped[0].seconds_per_instr == pytest.approx(
            compute.seconds_per_instr
            + compute.dram_per_instr * 0  # structural: dram term is ~0
        )


class TestPpOverhead:
    def phase_with_subs(self, n):
        return make_phase(instructions=100_000_000, subperiods=n)

    def test_unannotated_phase_free(self, model):
        phase = make_phase(declare_pp=False)
        assert model.pp_overhead_fraction(phase, 1e-9) == 0.0

    def test_single_period_negligible(self, model):
        frac = model.pp_overhead_fraction(self.phase_with_subs(1), 6e-10)
        assert frac < 0.001

    def test_overhead_grows_with_granularity(self, model):
        f1 = model.pp_overhead_fraction(self.phase_with_subs(1), 6e-10)
        f512 = model.pp_overhead_fraction(self.phase_with_subs(512), 6e-10)
        f262k = model.pp_overhead_fraction(self.phase_with_subs(512 * 512), 6e-10)
        assert f1 < f512 < f262k

    def test_overhead_saturates_at_cap(self, model):
        f = model.pp_overhead_fraction(self.phase_with_subs(10**9), 6e-10)
        assert f == pytest.approx(PP_OVERHEAD_CAP)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_overhead_bounded_property(self, n):
        model = ExecutionModel(default_machine_config())
        phase = make_phase(instructions=50_000_000, subperiods=n)
        f = model.pp_overhead_fraction(phase, 6e-10)
        assert 0.0 <= f <= PP_OVERHEAD_CAP + 1e-12
