"""CFS nice-level (weighted fairness) tests."""

import pytest

from repro.errors import SchedulerError, WorkloadError
from repro.sim.kernel import Kernel
from repro.sim.process import NICE_0_WEIGHT, nice_to_weight
from repro.workloads.base import ProcessSpec, Workload

from ..conftest import make_phase


class TestWeights:
    def test_nice_zero_is_base_weight(self):
        assert nice_to_weight(0) == NICE_0_WEIGHT

    def test_each_step_scales_by_1_25(self):
        assert nice_to_weight(1) == pytest.approx(NICE_0_WEIGHT / 1.25)
        assert nice_to_weight(-1) == pytest.approx(NICE_0_WEIGHT * 1.25)

    def test_range_validated(self):
        with pytest.raises(SchedulerError):
            nice_to_weight(20)
        with pytest.raises(WorkloadError):
            ProcessSpec(name="p", program=[make_phase()], nice=42)

    def test_weight_monotone_in_priority(self):
        weights = [nice_to_weight(n) for n in range(-20, 20)]
        assert weights == sorted(weights, reverse=True)


class TestWeightedScheduling:
    def run_pair(self, nice_a, nice_b, small_machine=None):
        """Two CPU-bound processes on one core; return their runtimes."""
        from dataclasses import replace

        from repro.config import CpuConfig, MachineConfig

        config = MachineConfig(cpu=CpuConfig(n_cores=1))
        phase = make_phase(instructions=30_000_000, wss_mb=0.01, declare_pp=False)
        wl = Workload(
            name="nice",
            processes=[
                ProcessSpec(name="a", program=[phase], nice=nice_a),
                ProcessSpec(name="b", program=[phase], nice=nice_b),
            ],
        )
        kernel = Kernel(config=config)
        kernel.launch(wl)
        kernel.run(max_events=500_000)
        a, b = (p.threads[0] for p in kernel.processes)
        return a, b

    def test_equal_nice_shares_equally(self):
        a, b = self.run_pair(0, 0)
        assert a.stats.run_time_s == pytest.approx(b.stats.run_time_s, rel=0.15)

    def test_niced_process_finishes_later(self):
        favored, niced = self.run_pair(-5, 5)
        assert favored.stats.exit_time_s < niced.stats.exit_time_s

    def test_favored_process_dominates_early_cpu(self):
        favored, niced = self.run_pair(-5, 5)
        # while both were runnable, the favored thread ran most of the time:
        # measure share up to the favored thread's exit
        t_end = favored.stats.exit_time_s
        assert favored.stats.run_time_s > 0.6 * t_end

    def test_same_total_work_retired(self):
        a, b = self.run_pair(-5, 5)
        assert a.stats.instructions == pytest.approx(b.stats.instructions, rel=1e-6)
