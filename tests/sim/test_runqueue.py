"""Run queue ordering tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchedulerError
from repro.sim.process import Process, Thread
from repro.sim.runqueue import RunQueue
from repro.workloads.base import ProcessSpec

from ..conftest import make_phase


def make_threads(n, vruntimes=None):
    spec = ProcessSpec(name="p", program=[make_phase()], n_threads=n)
    proc = Process(spec)
    if vruntimes:
        for t, v in zip(proc.threads, vruntimes):
            t.vruntime = v
    return proc.threads


class TestOrdering:
    def test_pop_returns_min_vruntime(self):
        q = RunQueue()
        threads = make_threads(3, vruntimes=[3.0, 1.0, 2.0])
        for t in threads:
            q.push(t)
        assert q.pop() is threads[1]
        assert q.pop() is threads[2]
        assert q.pop() is threads[0]

    def test_pop_empty_returns_none(self):
        assert RunQueue().pop() is None

    def test_equal_vruntime_order_is_deterministic(self):
        a = make_threads(5)
        q1, q2 = RunQueue(), RunQueue()
        for t in a:
            q1.push(t)
        for t in a:
            q2.push(t)
        order1 = [q1.pop().tid for _ in range(5)]
        order2 = [q2.pop().tid for _ in range(5)]
        assert order1 == order2

    def test_tie_break_decorrelates_tid_order(self):
        """Consecutive tids (threads of one process) must not pop in strict
        creation order — see the module docstring."""
        threads = make_threads(16)
        q = RunQueue()
        for t in threads:
            q.push(t)
        popped = [q.pop().tid for _ in range(16)]
        assert popped != sorted(popped)

    def test_min_vruntime(self):
        q = RunQueue()
        threads = make_threads(2, vruntimes=[5.0, 2.0])
        for t in threads:
            q.push(t)
        assert q.min_vruntime() == 2.0


class TestMembership:
    def test_contains_and_len(self):
        q = RunQueue()
        (t,) = make_threads(1)
        q.push(t)
        assert t in q and len(q) == 1
        q.pop()
        assert t not in q and len(q) == 0

    def test_double_push_rejected(self):
        q = RunQueue()
        (t,) = make_threads(1)
        q.push(t)
        with pytest.raises(SchedulerError):
            q.push(t)

    def test_lazy_remove(self):
        q = RunQueue()
        a, b = make_threads(2, vruntimes=[1.0, 2.0])
        q.push(a)
        q.push(b)
        assert q.remove(a) is True
        assert q.remove(a) is False
        assert q.pop() is b
        assert q.pop() is None

    def test_remove_then_repush(self):
        q = RunQueue()
        (t,) = make_threads(1)
        q.push(t)
        q.remove(t)
        q.push(t)  # must not raise
        assert q.pop() is t


class TestFairnessProperty:
    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=20))
    def test_pops_are_sorted_by_vruntime(self, vruntimes):
        q = RunQueue()
        threads = make_threads(len(vruntimes), vruntimes=vruntimes)
        for t in threads:
            q.push(t)
        popped = []
        while (t := q.pop()) is not None:
            popped.append(t.vruntime)
        assert popped == sorted(popped)
