"""Public API surface tests: everything advertised imports and resolves."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.config",
    "repro.units",
    "repro.errors",
    "repro.cli",
    "repro.core",
    "repro.core.api",
    "repro.core.itko",
    "repro.core.partitioning",
    "repro.core.policy",
    "repro.core.predicate",
    "repro.core.progress_monitor",
    "repro.core.progress_period",
    "repro.core.rda",
    "repro.core.registry",
    "repro.core.resource_monitor",
    "repro.core.threadpool",
    "repro.core.waitlist",
    "repro.sim",
    "repro.sim.cfs",
    "repro.sim.cpu",
    "repro.sim.engine",
    "repro.sim.kernel",
    "repro.sim.machine",
    "repro.sim.process",
    "repro.sim.runqueue",
    "repro.sim.tracing",
    "repro.sim.waitqueue",
    "repro.mem",
    "repro.mem.address",
    "repro.mem.cache",
    "repro.mem.contention",
    "repro.mem.hierarchy",
    "repro.mem.partition",
    "repro.mem.replacement",
    "repro.mem.trace",
    "repro.mem.working_set",
    "repro.energy",
    "repro.energy.dvfs",
    "repro.energy.power",
    "repro.energy.rapl",
    "repro.perf",
    "repro.perf.counters",
    "repro.perf.sched",
    "repro.perf.stat",
    "repro.profiler",
    "repro.profiler.annotate",
    "repro.profiler.detect",
    "repro.profiler.loopmap",
    "repro.profiler.pipeline",
    "repro.profiler.regression",
    "repro.profiler.sampling",
    "repro.serve",
    "repro.serve.client",
    "repro.serve.loadgen",
    "repro.serve.metrics",
    "repro.serve.protocol",
    "repro.serve.server",
    "repro.workloads",
    "repro.workloads.base",
    "repro.workloads.blas",
    "repro.workloads.suite",
    "repro.workloads.export",
    "repro.workloads.tracegen",
    "repro.workloads.splash2",
    "repro.experiments",
    "repro.experiments.charts",
    "repro.experiments.figures",
    "repro.experiments.metrics",
    "repro.experiments.report",
    "repro.experiments.runner",
    "repro.experiments.store",
    "repro.experiments.sweep",
    "repro.experiments.validation",
]


@pytest.mark.parametrize("module_name", PACKAGES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", PACKAGES)
def test_declared_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def test_top_level_convenience_surface():
    import repro

    assert callable(repro.run_workload)
    assert callable(repro.workload_by_name)
    assert repro.StrictPolicy().name == "RDA: Strict"
    assert repro.__version__


def test_every_public_module_has_a_docstring():
    for module_name in PACKAGES:
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
