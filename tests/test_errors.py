"""Exception hierarchy tests."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)

    def test_specializations(self):
        assert issubclass(errors.UnknownProgressPeriodError, errors.ProgressPeriodError)
        assert issubclass(errors.BlockingSyncInPeriodError, errors.ProgressPeriodError)
        assert issubclass(errors.ConfigError, errors.ReproError)

    def test_unknown_pp_carries_id(self):
        e = errors.UnknownProgressPeriodError(42)
        assert e.pp_id == 42
        assert "42" in str(e)

    def test_catching_the_base_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.SimulationError("x")
        with pytest.raises(errors.ReproError):
            raise errors.UnknownProgressPeriodError(1)
