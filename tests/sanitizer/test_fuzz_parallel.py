"""Parallel fuzz campaign: fan-out equivalence and isolation."""

import pytest

from repro.sanitizer.fuzz import run_fuzz


def signature(report):
    return [
        (o.seed, o.config, o.events, o.error, len(o.violations))
        for o in report.outcomes
    ]


class TestParallelCampaign:
    def test_parallel_runs_identical_simulations(self):
        kwargs = dict(seed=13, runs=4, configs=["strict", "default"])
        serial = run_fuzz(**kwargs)
        parallel = run_fuzz(**kwargs, jobs=3)
        assert signature(parallel) == signature(serial)
        assert parallel.runs == serial.runs == 4
        assert parallel.ok == serial.ok

    def test_jobs_one_is_the_serial_path(self):
        a = run_fuzz(seed=5, runs=2, configs=["strict"])
        b = run_fuzz(seed=5, runs=2, configs=["strict"], jobs=1)
        assert signature(a) == signature(b)

    def test_per_case_timeout_becomes_campaign_failure(self, monkeypatch):
        import repro.sanitizer.fuzz as fuzz_mod

        def hang(payload):
            import time

            time.sleep(60)

        monkeypatch.setattr(fuzz_mod, "_fuzz_task", hang)
        report = run_fuzz(
            seed=0, runs=1, configs=["strict"], jobs=2, timeout_s=0.3
        )
        assert not report.ok
        assert len(report.outcomes) == 1
        assert "timeout" in report.outcomes[0].error

    def test_crashed_worker_is_isolated(self, monkeypatch):
        import repro.sanitizer.fuzz as fuzz_mod

        real = fuzz_mod._fuzz_task.__wrapped__ if hasattr(
            fuzz_mod._fuzz_task, "__wrapped__"
        ) else fuzz_mod._fuzz_task

        def crashy(payload):
            import os

            if payload[0] == 1:  # second case dies hard
                os._exit(17)
            return real(payload)

        monkeypatch.setattr(fuzz_mod, "_fuzz_task", crashy)
        report = run_fuzz(seed=0, runs=3, configs=["strict"], jobs=2)
        assert len(report.outcomes) == 3
        crashed = [o for o in report.outcomes if o.error]
        assert len(crashed) == 1
        assert "crash" in crashed[0].error
        assert crashed[0].seed == 1
        # the other two cases completed normally despite the crash
        assert sum(1 for o in report.outcomes if not o.error) == 2

    def test_time_budget_skips_unlaunched_cases(self):
        report = run_fuzz(
            seed=0, runs=50, configs=["strict"], jobs=2, time_budget_s=0.0
        )
        # budget elapsed before (almost) anything launched: far fewer than
        # the requested 50 cases actually ran
        assert report.runs < 50
