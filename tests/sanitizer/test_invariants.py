"""Kernel sanitizer tests: clean runs stay clean, injected faults fire.

Every invariant checker gets two kinds of coverage:

* *clean*: real workloads under ``sanitize=True`` finish with zero
  violations (the oracle does not cry wolf), and
* *fault injection*: deliberately corrupted kernel/scheduler state makes
  exactly that checker report — proving the oracle can actually see the
  class of bug it claims to watch for.
"""

from __future__ import annotations

import pytest

from repro.core.policy import CompromisePolicy, StrictPolicy
from repro.core.progress_period import (
    PeriodRequest,
    PeriodState,
    ProgressPeriod,
    ResourceKind,
    ReuseLevel,
)
from repro.core.rda import RdaScheduler
from repro.errors import SanitizerError
from repro.sanitizer import (
    CHECKERS,
    ConservationChecker,
    DemandBoundChecker,
    DispatchOverlapChecker,
    KernelSanitizer,
    LostWakeupChecker,
    QueueExclusivityChecker,
    default_checkers,
    register_checker,
)
from repro.sanitizer.invariants import InvariantChecker
from repro.sim.kernel import Kernel
from repro.sim.process import ThreadState
from repro.sim.tracing import TraceEvent, TraceKind
from repro.units import kib

from ..conftest import make_phase, make_workload


def request(demand, key=None):
    return PeriodRequest(ResourceKind.LLC, demand, ReuseLevel.LOW, sharing_key=key)


def rig(small_machine, policy=None, **kwargs):
    """A kernel + RDA scheduler with a non-raising sanitizer attached."""
    scheduler = RdaScheduler(policy=policy or StrictPolicy(), config=small_machine)
    sanitizer = KernelSanitizer(strict=False, **kwargs)
    kernel = Kernel(config=small_machine, extension=scheduler, sanitize=sanitizer)
    return kernel, scheduler, sanitizer


def fired(sanitizer):
    """The set of invariant names that reported at least once."""
    return {v.invariant for v in sanitizer.violations}


# ======================================================================
# registry / plumbing
# ======================================================================
class TestRegistry:
    def test_all_five_invariants_registered(self):
        assert set(CHECKERS) == {
            "demand-bound",
            "lost-wakeup",
            "queue-exclusivity",
            "dispatch-overlap",
            "conservation",
        }

    def test_default_checkers_fresh_instances(self):
        a, b = default_checkers(), default_checkers()
        assert len(a) == len(CHECKERS)
        assert all(x is not y for x, y in zip(a, b))

    def test_subset_selection(self):
        only = default_checkers(only=["conservation"])
        assert len(only) == 1 and isinstance(only[0], ConservationChecker)

    def test_unknown_checker_name_raises(self):
        with pytest.raises(SanitizerError, match="unknown checker"):
            default_checkers(only=["no-such-invariant"])

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SanitizerError, match="duplicate"):

            @register_checker
            class Clone(InvariantChecker):
                name = "conservation"

    def test_nameless_checker_rejected(self):
        with pytest.raises(SanitizerError, match="distinct name"):

            @register_checker
            class Anonymous(InvariantChecker):
                pass

    def test_double_attach_rejected(self, small_machine):
        kernel, _, san = rig(small_machine)
        with pytest.raises(SanitizerError, match="already attached"):
            san.attach(kernel)


# ======================================================================
# clean runs: the oracle does not cry wolf
# ======================================================================
class TestCleanRuns:
    @pytest.mark.parametrize(
        "policy", [None, StrictPolicy(), CompromisePolicy(oversubscription=2.0)]
    )
    def test_contended_workload_is_violation_free(self, small_machine, policy):
        # 6 x 0.4 MB against a 1 MiB LLC: plenty of denials and wakes
        wl = make_workload(n_processes=6, phases=[make_phase(wss_mb=0.4)])
        sched = RdaScheduler(policy=policy, config=small_machine) if policy else None
        kernel = Kernel(config=small_machine, extension=sched, sanitize=True)
        kernel.launch(wl)
        kernel.run(max_events=2_000_000)  # strict mode: raises on violation
        assert kernel.sanitizer.ok
        assert kernel.sanitizer.summary() == "sanitizer: 0 violations"

    def test_barriers_and_shared_sets_are_violation_free(self, small_machine):
        from repro.workloads.base import barrier_phase

        phases = [
            make_phase("a", wss_mb=0.5, shared=True),
            barrier_phase("sync"),
            make_phase("b", wss_mb=0.3, shared=True),
        ]
        wl = make_workload(n_processes=3, n_threads=2, phases=phases)
        kernel, _, san = rig(small_machine)
        kernel.launch(wl)
        kernel.run(max_events=2_000_000)
        assert san.ok, san.summary()

    def test_strict_mode_raises_on_violation(self, small_machine):
        kernel, sched, _ = rig(small_machine)
        kernel.sanitizer.strict = True
        # corrupt state, then complete a trivial workload so run() finalizes
        sched.resources.increment_load(request(kib(2048)))  # 2 MiB > 1 MiB LLC
        kernel.launch(make_workload(n_processes=1, phases=[make_phase(declare_pp=False)]))
        with pytest.raises(SanitizerError, match="demand-bound"):
            kernel.run(max_events=100_000)


# ======================================================================
# invariant 1: aggregate admitted demand <= policy bound
# ======================================================================
class TestDemandBoundInjection:
    def test_oversubscribed_strict_fires(self, small_machine):
        _, sched, san = rig(small_machine)
        sched.resources.increment_load(request(kib(2048)))  # 2 MiB on 1 MiB
        san.on_quiescent(0.0)
        assert "demand-bound" in fired(san)

    def test_violation_latched_not_flooded(self, small_machine):
        _, sched, san = rig(small_machine)
        sched.resources.increment_load(request(kib(2048)))
        for t in range(10):
            san.on_quiescent(float(t))
        only = [v for v in san.violations if v.invariant == "demand-bound"]
        assert len(only) == 1  # one root cause, one report

    def test_latch_clears_when_condition_heals(self, small_machine):
        _, sched, san = rig(small_machine)
        req = request(kib(2048))
        sched.resources.increment_load(req)
        san.on_quiescent(0.0)
        sched.resources.release_load(req)
        san.on_quiescent(1.0)  # healed: latch resets
        sched.resources.increment_load(req)
        san.on_quiescent(2.0)  # broken again: reports again
        only = [v for v in san.violations if v.invariant == "demand-bound"]
        assert len(only) == 2

    def test_compromise_bound_scales_with_factor(self, small_machine):
        _, sched, san = rig(
            small_machine, policy=CompromisePolicy(oversubscription=2.0)
        )
        sched.resources.increment_load(request(kib(1536)))  # 1.5x: allowed
        san.on_quiescent(0.0)
        assert "demand-bound" not in fired(san)
        sched.resources.increment_load(request(kib(1024)))  # 2.5x: over
        san.on_quiescent(1.0)
        assert "demand-bound" in fired(san)

    def test_forced_admissions_are_exempt(self, small_machine):
        """Starvation-guard admissions bypass the policy bound by design."""
        _, sched, san = rig(small_machine)
        req = request(kib(4096))  # 4 MiB on a 1 MiB LLC
        period = ProgressPeriod(
            request=req, owner=object(), state=PeriodState.RUNNING, forced=True
        )
        sched.registry.add(period)
        sched.resources.increment_load(req)
        san.on_quiescent(0.0)
        assert "demand-bound" not in fired(san)


# ======================================================================
# invariant 2: every PP_DENY is followed by PP_WAKE or EXIT
# ======================================================================
def _event(kind, tid, core=None, t=0.0, detail=""):
    return TraceEvent(time_s=t, kind=kind, tid=tid, core=core, detail=detail)


class TestLostWakeupInjection:
    def test_deny_without_wake_fires_at_finalize(self, small_machine):
        kernel, _, san = rig(small_machine)
        san.on_kernel_event(kernel, _event(TraceKind.PP_DENY, tid=7, detail="w"))
        san.finalize()
        assert "lost-wakeup" in fired(san)

    def test_deny_then_wake_is_clean(self, small_machine):
        kernel, _, san = rig(small_machine)
        san.on_kernel_event(kernel, _event(TraceKind.PP_DENY, tid=7))
        san.on_kernel_event(kernel, _event(TraceKind.PP_WAKE, tid=7, t=1.0))
        san.finalize()
        assert san.ok

    def test_deny_then_exit_is_clean(self, small_machine):
        kernel, _, san = rig(small_machine)
        san.on_kernel_event(kernel, _event(TraceKind.PP_DENY, tid=7))
        san.on_kernel_event(kernel, _event(TraceKind.EXIT, tid=7, t=1.0))
        san.finalize()
        assert san.ok

    def test_spurious_wake_fires_immediately(self, small_machine):
        kernel, _, san = rig(small_machine)
        san.on_kernel_event(kernel, _event(TraceKind.PP_WAKE, tid=3))
        assert "lost-wakeup" in fired(san)
        assert "spurious" in san.violations[0].message

    def test_bounded_wait_fires_mid_simulation(self, small_machine):
        checker = LostWakeupChecker(max_wait_s=1e-3)
        san = KernelSanitizer(checkers=[checker], strict=False)
        sched = RdaScheduler(config=small_machine)
        kernel = Kernel(config=small_machine, extension=sched, sanitize=san)
        san.on_kernel_event(kernel, _event(TraceKind.PP_DENY, tid=5, t=0.0))
        san.on_quiescent(0.5e-3)  # still within the bound
        assert san.ok
        san.on_quiescent(2e-3)  # bound exceeded
        assert "lost-wakeup" in fired(san)


# ======================================================================
# invariant 3: run queue and wait queues are mutually exclusive
# ======================================================================
class TestQueueExclusivityInjection:
    def _partial_kernel(self, small_machine):
        """Run a 4-process workload briefly: 2 cores busy, 2 threads queued."""
        kernel, sched, san = rig(small_machine)
        kernel.launch(make_workload(n_processes=4, phases=[make_phase(declare_pp=False)]))
        kernel.run(until=1e-6)
        assert not san.violations  # consistent before corruption
        return kernel, san

    def test_queued_thread_in_wait_state_fires(self, small_machine):
        kernel, san = self._partial_kernel(small_machine)
        queued = next(
            t
            for p in kernel.processes
            for t in p.threads
            if t.state is ThreadState.READY and t in kernel.cfs.queue
        )
        queued.state = ThreadState.PP_WAIT  # corrupt: parked but still queued
        san.on_quiescent(kernel.now)
        assert "queue-exclusivity" in fired(san)

    def test_running_thread_without_core_fires(self, small_machine):
        kernel, san = self._partial_kernel(small_machine)
        core = next(c for c in kernel.cores if c.thread is not None)
        core.thread = None  # corrupt: thread believes it runs, core disagrees
        san.on_quiescent(kernel.now)
        assert "queue-exclusivity" in fired(san)
        assert any("not on any core" in v.message for v in san.violations)

    def test_barrier_waiter_on_runqueue_fires(self, small_machine):
        from repro.workloads.base import barrier_phase

        kernel, sched, san = rig(small_machine)
        phases = [make_phase("a", declare_pp=False), barrier_phase("sync"),
                  make_phase("b", declare_pp=False)]
        # 3 sibling threads, 2 cores: someone parks at the barrier early
        kernel.launch(make_workload(n_processes=1, n_threads=3, phases=phases))
        while not kernel._barriers and kernel.engine.peek_time() is not None:
            kernel.engine.step()
        assert kernel._barriers and not san.violations
        waiter = next(iter(next(iter(kernel._barriers.values())).waiters()))
        kernel.cfs.enqueue(waiter)  # corrupt: parked AND runnable
        san.on_quiescent(kernel.now)
        assert "queue-exclusivity" in fired(san)


# ======================================================================
# invariant 4: per-core dispatch intervals never overlap
# ======================================================================
class TestDispatchOverlapInjection:
    def test_double_dispatch_on_one_core_fires(self, small_machine):
        kernel, _, san = rig(small_machine)
        san.on_kernel_event(kernel, _event(TraceKind.DISPATCH, tid=1, core=0))
        san.on_kernel_event(kernel, _event(TraceKind.DISPATCH, tid=2, core=0, t=1.0))
        assert "dispatch-overlap" in fired(san)

    def test_one_thread_on_two_cores_fires(self, small_machine):
        kernel, _, san = rig(small_machine)
        san.on_kernel_event(kernel, _event(TraceKind.DISPATCH, tid=1, core=0))
        san.on_kernel_event(kernel, _event(TraceKind.DISPATCH, tid=1, core=1, t=1.0))
        assert "dispatch-overlap" in fired(san)

    def test_release_by_wrong_thread_fires(self, small_machine):
        kernel, _, san = rig(small_machine)
        san.on_kernel_event(kernel, _event(TraceKind.DISPATCH, tid=1, core=0))
        san.on_kernel_event(kernel, _event(TraceKind.PREEMPT, tid=2, core=0, t=1.0))
        assert "dispatch-overlap" in fired(san)

    def test_dispatch_release_dispatch_is_clean(self, small_machine):
        kernel, _, san = rig(small_machine)
        for ev in (
            _event(TraceKind.DISPATCH, tid=1, core=0),
            _event(TraceKind.PREEMPT, tid=1, core=0, t=1.0),
            _event(TraceKind.DISPATCH, tid=2, core=0, t=1.0),
            _event(TraceKind.EXIT, tid=2, core=0, t=2.0),
        ):
            san.on_kernel_event(kernel, ev)
        assert san.ok


# ======================================================================
# invariant 5: conservation of reserved capacity
# ======================================================================
class TestConservationInjection:
    def test_double_release_fires(self, small_machine):
        _, sched, san = rig(small_machine)
        a, b = request(kib(512)), request(kib(64))
        sched.resources.increment_load(a)
        sched.resources.increment_load(b)
        sched.resources.release_load(b)
        sched.resources.release_load(b)  # double release of b
        assert "conservation" in fired(san)
        assert any("matching charge" in v.message for v in san.violations)

    def test_usage_mutated_behind_monitors_back_fires(self, small_machine):
        _, sched, san = rig(small_machine)
        sched.resources.increment_load(request(kib(128)))
        san.on_quiescent(0.0)
        assert san.ok  # ledger and usage agree so far
        sched.llc.usage_bytes += 4096  # corrupt: bypassed increment_load
        san.on_quiescent(1.0)
        assert "conservation" in fired(san)
        assert any("ledger" in v.message for v in san.violations)

    def test_leaked_reservation_fires_at_finalize(self, small_machine):
        _, sched, san = rig(small_machine)
        sched.resources.increment_load(request(kib(128)))  # never released
        san.finalize()
        assert "conservation" in fired(san)
        assert any("never released" in v.message for v in san.violations)

    def test_balanced_charges_are_clean(self, small_machine):
        _, sched, san = rig(small_machine)
        a, b = request(kib(512)), request(kib(64), key="shared")
        for req in (a, b, b):  # shared set charged once, held twice
            sched.resources.increment_load(req)
        for req in (b, a, b):
            sched.resources.release_load(req)
        san.on_quiescent(0.0)
        san.finalize()
        assert san.ok, san.summary()


# ======================================================================
# violation reports
# ======================================================================
class TestReports:
    def test_violation_carries_event_window(self, small_machine):
        kernel, _, san = rig(small_machine)
        san.on_kernel_event(kernel, _event(TraceKind.DISPATCH, tid=1, core=0))
        san.on_kernel_event(kernel, _event(TraceKind.DISPATCH, tid=2, core=0, t=1.0))
        v = san.violations[0]
        assert v.invariant == "dispatch-overlap"
        assert [e.kind for e in v.window] == [TraceKind.DISPATCH, TraceKind.DISPATCH]
        assert "dispatch" in v.describe()

    def test_violation_cap_counts_drops(self, small_machine):
        _, _, san = rig(small_machine)
        for i in range(1100):
            san.report("demand-bound", f"synthetic #{i}")
        assert len(san.violations) == 1000
        assert san.dropped == 100
        assert "+100 dropped" in san.summary()

    def test_summary_lists_each_violation(self, small_machine):
        _, _, san = rig(small_machine)
        san.report("conservation", "one", tid=4)
        san.report("lost-wakeup", "two")
        text = san.summary()
        assert "2 invariant violation(s)" in text
        assert "conservation" in text and "lost-wakeup" in text
        with pytest.raises(SanitizerError):
            san.check()
