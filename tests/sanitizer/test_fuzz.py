"""Fuzzing-harness tests: the campaign is clean, seeded, and reproducible.

The headline test runs a 250-simulation campaign (50 seeds x the full
Strict/Compromise x strict_fifo-on/off grid plus the default policy) and
requires zero invariant violations and zero crashes — the scheduler
withstands oversized working sets, near-zero-length periods, mis-annotated
demands, bursty arrivals and mixed annotated/unannotated processes.
"""

from __future__ import annotations

import pytest

from repro.sanitizer import (
    FUZZ_CONFIGS,
    FuzzOutcome,
    FuzzReport,
    Violation,
    build_case,
    run_case,
    run_fuzz,
)
from repro.sanitizer.fuzz import fuzz_machine, fuzz_workload
from repro.units import kib
from repro.workloads.base import PhaseKind

import numpy as np


class TestCampaign:
    def test_250_simulations_zero_violations(self):
        # 50 seeds x 5 configs = 250 sanitized simulations (>= the 200
        # the acceptance bar asks for; the CLI default runs 200 seeds).
        report = run_fuzz(seed=0, runs=50)
        assert report.runs == 50
        assert len(report.outcomes) == 50 * len(FUZZ_CONFIGS)
        assert report.n_violations == 0
        assert not any(o.error for o in report.outcomes)
        assert report.ok, report.describe()

    def test_grid_covers_both_policies_and_fifo_modes(self):
        names = {c[0] for c in FUZZ_CONFIGS}
        assert {"strict", "strict+fifo", "compromise", "compromise+fifo"} <= names

    def test_progress_callback_sees_every_outcome(self):
        seen = []
        run_fuzz(seed=7, runs=2, progress=lambda i, o: seen.append((i, o.config)))
        assert len(seen) == 2 * len(FUZZ_CONFIGS)
        assert {i for i, _ in seen} == {0, 1}

    def test_time_budget_stops_early(self):
        report = run_fuzz(seed=0, runs=10_000, time_budget_s=0.2)
        assert report.runs < 10_000
        assert report.wall_s >= 0.2


class TestDeterminism:
    def test_same_seed_same_case(self):
        a, b = build_case(42), build_case(42)
        assert a.machine == b.machine
        assert a.offsets == b.offsets
        assert [p.name for p in a.workload.processes] == [
            p.name for p in b.workload.processes
        ]
        assert [
            (ph.name, ph.instructions, ph.wss_bytes)
            for p in a.workload.processes
            for ph in p.program
        ] == [
            (ph.name, ph.instructions, ph.wss_bytes)
            for p in b.workload.processes
            for ph in p.program
        ]

    def test_same_case_same_outcome(self):
        case = build_case(3)
        a = run_case(case, "strict")
        b = run_case(case, "strict")
        assert a.events == b.events
        assert a.ok and b.ok

    def test_different_seeds_differ(self):
        a, b = build_case(0), build_case(1)
        assert (
            a.machine != b.machine
            or [p.n_threads for p in a.workload.processes]
            != [p.n_threads for p in b.workload.processes]
            or a.offsets != b.offsets
        )


class TestGenerator:
    def test_machine_within_advertised_ranges(self):
        for seed in range(20):
            m = fuzz_machine(np.random.default_rng(seed))
            assert 2 <= m.cpu.n_cores <= 4
            assert kib(256) <= m.llc_capacity <= kib(2048)

    def test_workload_exercises_adversarial_corpus(self):
        """Across seeds the generator emits every adversarial ingredient."""
        oversized = tiny = unannotated = shared = barriers = multi = 0
        for seed in range(40):
            rng = np.random.default_rng(seed)
            machine = fuzz_machine(rng)
            wl, offsets = fuzz_workload(rng, machine)
            assert len(offsets) == wl.n_processes
            for spec in wl.processes:
                multi += spec.n_threads > 1
                for ph in spec.program:
                    if ph.kind is PhaseKind.BARRIER:
                        barriers += 1
                        continue
                    oversized += ph.wss_bytes > machine.llc_capacity
                    tiny += ph.instructions < 50
                    unannotated += ph.pp is None
                    shared += ph.shared
        assert min(oversized, tiny, unannotated, shared, barriers, multi) > 0

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz config"):
            run_case(build_case(0), "no-such-config")


class TestReportShapes:
    def test_outcome_ok_requires_no_violations_and_no_error(self):
        v = Violation(invariant="conservation", time_s=0.0, message="m")
        assert FuzzOutcome(seed=1, config="strict", violations=(), events=9).ok
        assert not FuzzOutcome(
            seed=1, config="strict", violations=(v,), events=9
        ).ok
        assert not FuzzOutcome(
            seed=1, config="strict", violations=(), events=9, error="boom"
        ).ok

    def test_describe_pins_failures_to_their_seed(self):
        v = Violation(invariant="conservation", time_s=0.0, message="drifted")
        report = FuzzReport(
            outcomes=[
                FuzzOutcome(seed=11, config="strict", violations=(v,), events=5),
                FuzzOutcome(seed=12, config="default", violations=(), events=5),
            ],
            runs=2,
        )
        text = report.describe()
        assert "seed=11" in text and "drifted" in text
        assert not report.ok and report.n_violations == 1
