"""Shared fixtures: small machines and toy workloads for fast tests."""

from __future__ import annotations

import pytest

from repro.config import (
    CacheConfig,
    CpuConfig,
    MachineConfig,
    MemoryConfig,
    PowerConfig,
    SchedulerConfig,
    default_machine_config,
)
from repro.core.progress_period import ReuseLevel
from repro.units import kib, mib, us
from repro.workloads.base import (
    Phase,
    PpSpec,
    ProcessSpec,
    Workload,
    barrier_phase,
)


@pytest.fixture
def paper_machine() -> MachineConfig:
    """Table 1: the paper's Xeon E5-2420."""
    return default_machine_config()


@pytest.fixture
def small_machine() -> MachineConfig:
    """A 2-core machine with a tiny LLC, for fast and readable tests."""
    return MachineConfig(
        cpu=CpuConfig(n_cores=2),
        llc=CacheConfig(
            "L3-Shared", kib(1024), associativity=16, shared=True
        ),
    )


def make_phase(
    name: str = "work",
    instructions: int = 1_000_000,
    wss_mb: float = 0.4,
    reuse: float = 0.9,
    declare_pp: bool = True,
    shared: bool = False,
    subperiods: int = 1,
    flops_per_instr: float = 1.0,
) -> Phase:
    """Terse compute-phase builder used across the suite."""
    wss = int(wss_mb * 1_000_000)
    return Phase(
        name=name,
        instructions=instructions,
        flops_per_instr=flops_per_instr,
        mem_refs_per_instr=0.4,
        llc_refs_per_memref=0.1,
        wss_bytes=wss,
        reuse=reuse,
        pp=PpSpec(demand_bytes=wss, subperiods=subperiods) if declare_pp else None,
        shared=shared,
    )


def make_workload(
    n_processes: int = 4,
    n_threads: int = 1,
    phases=None,
    name: str = "toy",
) -> Workload:
    """A workload of identical processes."""
    program = phases if phases is not None else [make_phase()]
    spec = ProcessSpec(name=name, program=program, n_threads=n_threads)
    return Workload(name=name, processes=[spec] * n_processes)


@pytest.fixture
def toy_workload() -> Workload:
    return make_workload()
