"""Unit-helper tests."""

import pytest

from repro import units


class TestByteUnits:
    def test_binary_multiples(self):
        assert units.kib(1) == 1024
        assert units.mib(1) == 1024**2
        assert units.gib(1) == 1024**3

    def test_fractional_sizes(self):
        assert units.mib(6.3) == int(6.3 * 1024 * 1024)
        assert units.kib(0.5) == 512

    def test_llc_of_paper_machine(self):
        # Table 1: "L3-Shared 15360 KBytes"
        assert units.kib(15360) == 15_728_640


class TestFrequencyUnits:
    def test_hz_scalers(self):
        assert units.khz(1) == 1e3
        assert units.mhz(1) == 1e6
        assert units.ghz(1.9) == pytest.approx(1.9e9)


class TestTimeUnits:
    def test_subsecond_scalers(self):
        assert units.ns(80) == pytest.approx(80e-9)
        assert units.us(3) == pytest.approx(3e-6)
        assert units.ms(6) == pytest.approx(6e-3)


class TestFormatting:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (2048, "2 KiB"),
            (15_728_640, "15 MiB"),
            (3 * 1024**3, "3 GiB"),
        ],
    )
    def test_fmt_bytes(self, n, expected):
        assert units.fmt_bytes(n) == expected

    @pytest.mark.parametrize(
        "t,expected",
        [
            (0.0, "0 s"),
            (5e-9, "5 ns"),
            (3e-6, "3 us"),
            (2.5e-3, "2.5 ms"),
            (1.5, "1.5 s"),
        ],
    )
    def test_fmt_time(self, t, expected):
        assert units.fmt_time(t) == expected

    def test_fmt_energy_ranges(self):
        assert units.fmt_energy(12.5) == "12.5 J"
        assert units.fmt_energy(0.25) == "250 mJ"
        assert units.fmt_energy(5e-5) == "50 uJ"
