"""Model-validation harness tests."""

import pytest

from repro.experiments.validation import ValidationPoint, validate_hit_rates


class TestValidation:
    @pytest.fixture(scope="class")
    def points(self):
        return validate_hit_rates(ratios=(0.5, 2.0), sweeps=12)

    def test_one_point_per_ratio(self, points):
        assert [p.oversubscription for p in points] == [0.5, 2.0]

    def test_fitting_case_agrees(self, points):
        fit = points[0]
        assert fit.measured_hit_rate > 0.95
        assert fit.predicted_gamma == 1.0
        assert fit.predicted_linear == 1.0

    def test_overflow_case_orders_models(self, points):
        over = points[1]
        # gamma model sits between the LRU collapse and the naive estimate
        assert over.measured_hit_rate <= over.predicted_gamma <= over.predicted_linear

    def test_rates_in_unit_interval(self, points):
        for p in points:
            for v in (p.measured_hit_rate, p.predicted_gamma, p.predicted_linear):
                assert 0.0 <= v <= 1.0

    def test_more_streams_supported(self):
        pts = validate_hit_rates(ratios=(1.5,), n_streams=4, sweeps=8)
        assert pts[0].n_streams == 4
        assert pts[0].predicted_gamma < 1.0
