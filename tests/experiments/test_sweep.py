"""Parameter-sweep harness tests."""

import pytest

from repro.core.policy import StrictPolicy
from repro.errors import ReproError
from repro.experiments.sweep import resolve_policy, sweep

from ..conftest import make_phase, make_workload


def toy_builder(n_processes=2, wss_mb=1.0):
    return make_workload(n_processes=n_processes, phases=[make_phase(wss_mb=wss_mb)])


class TestResolvePolicy:
    def test_shorthand(self):
        assert resolve_policy("default") is None
        assert resolve_policy("strict").name == "RDA: Strict"
        assert resolve_policy("compromise").oversubscription == 2.0

    def test_objects_pass_through(self):
        p = StrictPolicy()
        assert resolve_policy(p) is p
        assert resolve_policy(None) is None

    def test_unknown_rejected(self):
        with pytest.raises(ReproError):
            resolve_policy("fifo")


class TestSweep:
    def test_cartesian_product(self):
        rows = sweep(
            toy_builder,
            factors={"policy": ["default", "strict"], "n_processes": [2, 4]},
        )
        assert len(rows) == 4
        combos = {(r["policy"], r["n_processes"]) for r in rows}
        assert combos == {("default", 2), ("default", 4), ("strict", 2), ("strict", 4)}

    def test_rows_carry_metrics(self):
        rows = sweep(toy_builder, factors={"policy": ["default"]})
        row = rows[0]
        for key in ("gflops", "system_j", "wall_s", "workload"):
            assert key in row
        assert row["wall_s"] > 0

    def test_factor_effects_visible(self):
        # 4 processes fit the 12 cores; 48 must time-share -> longer wall
        rows = sweep(toy_builder, factors={"n_processes": [4, 48]})
        by_n = {r["n_processes"]: r for r in rows}
        assert by_n[48]["wall_s"] > 2 * by_n[4]["wall_s"]

    def test_extra_metrics(self):
        rows = sweep(
            toy_builder,
            factors={"policy": ["default"]},
            extra_metrics={"ipc": lambda rep: rep.ipc},
        )
        assert rows[0]["ipc"] > 0

    def test_empty_factors_rejected(self):
        with pytest.raises(ReproError):
            sweep(toy_builder, factors={})


class TestScaledBlas:
    def test_scaling_orders(self):
        from repro.workloads.blas import kernel_model

        dgemm = kernel_model("dgemm")
        double = dgemm.scaled(2.0)
        assert double.instructions == pytest.approx(8 * dgemm.instructions, rel=0.01)
        assert double.wss_bytes == pytest.approx(4 * dgemm.wss_bytes, rel=0.01)
        daxpy = kernel_model("daxpy").scaled(2.0)
        assert daxpy.instructions == pytest.approx(
            2 * kernel_model("daxpy").instructions, rel=0.01
        )

    def test_scaled_name(self):
        from repro.workloads.blas import kernel_model

        assert kernel_model("dgemm").scaled(0.5).name == "dgemm@0.5x"

    def test_invalid_scale(self):
        from repro.errors import WorkloadError
        from repro.workloads.blas import kernel_model

        with pytest.raises(WorkloadError):
            kernel_model("dgemm").scaled(0)

    def test_llc_cliff_in_solo_rate(self):
        """Once the scaled working set exceeds the LLC, solo speed drops —
        the validation the scaled kernels exist for."""
        from repro.config import default_machine_config
        from repro.sim.cpu import ExecutionModel
        from repro.workloads.blas import kernel_model

        model = ExecutionModel(default_machine_config())
        dgemm = kernel_model("dgemm")
        fits = model.solo_rate(dgemm.scaled(2.0).phase())  # 6.4 MB: fits
        spills = model.solo_rate(dgemm.scaled(4.0).phase())  # 25.6 MB: spills
        assert fits.hot_fraction == 1.0
        assert spills.hot_fraction < 1.0
        assert spills.seconds_per_instr > fits.seconds_per_instr