"""Report rendering tests."""

import pytest

from repro.experiments.figures import WssPrediction
from repro.experiments.report import (
    render_comparison_summary,
    render_figure7,
    render_figure8,
    render_figure9,
    render_figure10,
    render_figure11,
    render_figure12,
    render_figure13,
    render_policy_table,
)
from repro.perf.stat import PerfReport


def report(wall=1.0, pkg=50.0, dram=10.0, flops=1e9):
    return PerfReport(
        wall_s=wall, instructions=1e9, cycles=2e9, flops=flops,
        llc_refs=1e7, llc_misses=1e6, context_switches=5,
        pp_begin_calls=0, pp_denials=0, package_j=pkg, dram_j=dram,
    )


@pytest.fixture
def sweep():
    return {
        "Water_nsq": {"Linux Default": report(), "RDA: Strict": report(wall=0.5, pkg=25)},
        "Raytrace": {"Linux Default": report(), "RDA: Strict": report(wall=0.6, pkg=30)},
    }


class TestTables:
    def test_figure7_shows_system_energy(self, sweep):
        text = render_figure7(sweep)
        assert "Figure 7" in text
        assert "60.00" in text  # 50 + 10
        assert "Water_nsq" in text and "Raytrace" in text

    def test_figure8_shows_dram(self, sweep):
        assert "10.00" in render_figure8(sweep)

    def test_figure9_shows_gflops(self, sweep):
        text = render_figure9(sweep)
        assert "1.00" in text  # 1e9 flops / 1 s
        assert "2.00" in text  # strict: half the time

    def test_figure10_header(self, sweep):
        assert "GFLOPS per Watt" in render_figure10(sweep)

    def test_generic_table(self, sweep):
        text = render_policy_table(sweep, "wall_s", "Wall time")
        assert "Wall time" in text and "0.50" in text

    def test_rows_align_with_policies(self, sweep):
        lines = render_figure7(sweep).splitlines()
        header = lines[1]
        assert header.index("Linux Default") < header.index("RDA: Strict")


class TestFigureRenderers:
    def test_figure11(self):
        text = render_figure11({"outer": report(wall=1.0), "middle": report(wall=1.19)})
        assert "+19.0%" in text

    def test_figure12(self):
        curve = WssPrediction(
            name="Wnsq PP1",
            input_sizes=(8000, 15625, 32768, 64000),
            measured_mb=(1.5, 3.0, 5.3, 7.6),
            predicted_mb=(1.4, 3.2, 5.2, 6.9),
            accuracy=0.91,
        )
        text = render_figure12([curve])
        assert "Wnsq PP1" in text and "91%" in text and "7.60" in text

    def test_figure13(self):
        text = render_figure13({512: {1: 1.4, 6: 8.2, 12: 16.3}})
        assert "512" in text and "16.30" in text

    def test_comparison_summary(self, sweep):
        text = render_comparison_summary(sweep)
        assert "speedup" in text
        assert "RDA: Strict" in text
        assert "Linux Default" not in text.splitlines()[1]  # only non-baselines
