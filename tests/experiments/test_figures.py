"""Figure-harness tests (fast paths; full sweeps live in benchmarks/)."""

import pytest

from repro.experiments.figures import (
    figure11_overhead,
    figure12_wss_prediction,
    table1_machine,
    table2_rows,
)
from repro.experiments.report import (
    render_figure11,
    render_figure12,
    render_figure13,
    render_figure7,
)
from repro.perf.stat import PerfReport


class TestTables:
    def test_table1_text(self):
        text = table1_machine()
        assert "E5-2420" in text and "15360 KBytes" in text

    def test_table2_rows_match_paper(self):
        rows = {r["workload"]: r for r in table2_rows()}
        assert rows["BLAS-1"]["n_processes"] == 96
        assert rows["Water_nsq"]["threads_per_proc"] == 2
        assert rows["Raytrace"]["threads_per_proc"] == 4
        assert sorted(rows["Water_nsq"]["wss_mb"]) == [3.6, 3.6, 3.7]
        assert rows["BLAS-3"]["reuses"] == ["high"] * 4


class TestFigure12:
    def test_four_curves_with_paper_band_accuracy(self):
        curves = figure12_wss_prediction(n_accesses=1_200_000)
        assert [c.name for c in curves] == [
            "Wnsq PP1", "Wnsq PP2", "Ocp PP1", "Ocp PP2",
        ]
        for c in curves:
            # measured WSS grows with input
            assert c.measured_mb[-1] > c.measured_mb[0]
            # prediction accuracy in the paper's reported band (80-95 %),
            # with slack for the synthetic substrate
            assert c.accuracy >= 0.70, c

    def test_render_figure12(self):
        curves = figure12_wss_prediction(n_accesses=1_200_000)
        text = render_figure12(curves)
        assert "Wnsq PP1" in text and "accuracy" in text


class TestRendering:
    def fake_sweep(self):
        r = PerfReport(
            wall_s=1.0, instructions=1e9, cycles=1e9, flops=1e9,
            llc_refs=1e6, llc_misses=1e5, context_switches=10,
            pp_begin_calls=0, pp_denials=0, package_j=50.0, dram_j=10.0,
        )
        return {"W": {"Linux Default": r, "RDA: Strict": r}}

    def test_policy_table_lists_workloads_and_policies(self):
        text = render_figure7(self.fake_sweep())
        assert "Figure 7" in text
        assert "Linux Default" in text and "RDA: Strict" in text
        assert "W" in text

    def test_render_figure13_grid(self):
        text = render_figure13({8000: {1: 1.0, 6: 5.0, 12: 3.0}})
        assert "8000" in text and "5.00" in text
