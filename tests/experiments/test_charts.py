"""Text chart rendering tests."""

import pytest

from repro.experiments.charts import bar_chart, grouped_bar_chart, line_chart


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = bar_chart({"a": 10.0, "b": 5.0}, width=20)
        line_a, line_b = text.splitlines()
        assert line_a.count("█") == 20
        assert line_b.count("█") == 10

    def test_title_and_unit(self):
        text = bar_chart({"a": 1.0}, title="T", unit="J")
        assert text.startswith("T")
        assert "1.00 J" in text

    def test_zero_values(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in text  # renders without dividing by zero

    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_fractional_blocks(self):
        text = bar_chart({"a": 8.0, "b": 7.5}, width=8)
        a, b = text.splitlines()
        assert a.count("█") == 8
        assert b.count("█") == 7  # 7.5/8 of 8 cells = 7.5 cells


class TestGroupedBarChart:
    def test_groups_and_series(self):
        groups = {
            "W1": {"default": 10.0, "strict": 5.0},
            "W2": {"default": 8.0, "strict": 6.0},
        }
        text = grouped_bar_chart(groups, title="fig")
        assert text.startswith("fig")
        assert "W1" in text and "W2" in text
        assert text.count("default") == 2
        assert text.count("strict") == 2

    def test_global_scale_across_groups(self):
        groups = {"big": {"p": 100.0}, "small": {"p": 1.0}}
        text = grouped_bar_chart(groups, width=10)
        lines = [l for l in text.splitlines() if "|" in l]
        assert lines[0].count("█") == 10
        assert lines[1].count("█") <= 1

    def test_empty(self):
        assert grouped_bar_chart({}) == "(no data)"


class TestLineChart:
    def test_series_glyphs_and_legend(self):
        series = {
            "alpha": [(1.0, 1.0), (2.0, 2.0)],
            "beta": [(1.0, 2.0), (2.0, 1.0)],
        }
        text = line_chart(series, title="L")
        assert text.startswith("L")
        assert "o=alpha" in text and "x=beta" in text
        assert "o" in text and "x" in text

    def test_log_x_axis_label(self):
        text = line_chart({"s": [(1, 1), (1000, 2)]}, x_label="n", logx=True)
        assert "log scale" in text

    def test_extremes_stay_on_grid(self):
        # one series spanning a huge range must not raise
        text = line_chart({"s": [(1, 0.0), (1e6, 1e9)]}, width=30, height=8, logx=True)
        assert "(no data)" not in text

    def test_empty(self):
        assert line_chart({}) == "(no data)"
