"""Parallel experiment fleet: run keys, result cache, fan-out, failures.

The crash and timeout tests monkeypatch ``parallel._execute``; worker
processes are forked on Linux, so the patched module state is inherited by
the children.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

import pytest

from repro.config import CpuConfig, MachineConfig
from repro.core.policy import CompromisePolicy, StrictPolicy
from repro.errors import ReproError
from repro.experiments import parallel
from repro.experiments.parallel import (
    ProgressEvent,
    ResultCache,
    RunFailure,
    RunRequest,
    RunSuccess,
    run_grid,
    run_key,
)
from repro.experiments.sweep import sweep
from repro.perf.stat import PerfReport
from repro.experiments.store import report_from_dict, report_to_full_dict

from ..conftest import make_phase, make_workload


def tiny_workload(n_processes: int = 2, wss_mb: float = 0.3):
    return make_workload(
        n_processes=n_processes,
        phases=[make_phase(instructions=200_000, wss_mb=wss_mb)],
    )


def tiny_requests():
    wl = tiny_workload()
    return [
        RunRequest(workload=wl, policy=policy)
        for policy in (None, StrictPolicy(), CompromisePolicy())
    ]


# ----------------------------------------------------------------------
# Run keys
# ----------------------------------------------------------------------
class TestRunKey:
    def test_stable_across_calls(self):
        a = RunRequest(workload=tiny_workload(), policy=StrictPolicy(), seed=3)
        b = RunRequest(workload=tiny_workload(), policy=StrictPolicy(), seed=3)
        assert run_key(a) == run_key(b)
        assert len(run_key(a)) == 64

    def test_policy_changes_key(self):
        wl = tiny_workload()
        keys = {
            run_key(RunRequest(workload=wl, policy=p))
            for p in (None, StrictPolicy(), CompromisePolicy(),
                      CompromisePolicy(oversubscription=1.5))
        }
        assert len(keys) == 4

    def test_workload_spec_changes_key(self):
        base = RunRequest(workload=tiny_workload(wss_mb=0.3))
        grown = RunRequest(workload=tiny_workload(wss_mb=0.4))
        assert run_key(base) != run_key(grown)

    def test_config_changes_key(self):
        wl = tiny_workload()
        default = RunRequest(workload=wl)
        explicit = RunRequest(workload=wl, config=MachineConfig())
        eight_core = RunRequest(
            workload=wl, config=MachineConfig(cpu=CpuConfig(n_cores=8))
        )
        assert run_key(explicit) != run_key(eight_core)
        # None means "the committed default", hashed distinctly from an
        # explicitly pinned equal config
        assert run_key(default) != run_key(explicit)

    def test_seed_offsets_budget_and_sanitize_change_key(self):
        wl = tiny_workload()
        base = RunRequest(workload=wl)
        assert run_key(base) != run_key(replace(base, seed=1))
        assert run_key(base) != run_key(
            replace(base, arrival_offsets=(0.0, 1e-3))
        )
        assert run_key(base) != run_key(replace(base, max_events=10))
        assert run_key(base) != run_key(replace(base, sanitize=True))

    def test_tag_is_presentation_only(self):
        wl = tiny_workload()
        assert run_key(RunRequest(workload=wl, tag="a")) == run_key(
            RunRequest(workload=wl, tag="b")
        )


# ----------------------------------------------------------------------
# Cache round-trip
# ----------------------------------------------------------------------
def _report(**overrides) -> PerfReport:
    values = dict(
        wall_s=1.2345678901234567,
        instructions=1e9,
        cycles=2e9,
        flops=3.3e8,
        llc_refs=1e7,
        llc_misses=2.5e6,
        context_switches=42.0,
        pp_begin_calls=7.0,
        pp_denials=1.0,
        package_j=17.25,
        dram_j=3.125,
    )
    values.update(overrides)
    return PerfReport(**values)


class TestReportRoundTrip:
    def test_full_dict_round_trips_exactly(self):
        report = _report()
        assert report_from_dict(report_to_full_dict(report)) == report

    def test_rejects_missing_and_extra_fields(self):
        data = report_to_full_dict(_report())
        data.pop("cycles")
        with pytest.raises(ReproError, match="cycles"):
            report_from_dict(data)
        data = report_to_full_dict(_report())
        data["bogus"] = 1.0
        with pytest.raises(ReproError, match="bogus"):
            report_from_dict(data)


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = RunRequest(workload=tiny_workload())
        key = run_key(request)
        report = _report()
        path = cache.put(key, report, request)
        assert path.exists() and path.parent.name == key[:2]
        assert cache.get(key) == report
        assert len(cache) == 1

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("0" * 64) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = RunRequest(workload=tiny_workload())
        key = run_key(request)
        cache.put(key, _report(), request)
        cache.path(key).write_text("{not json")
        assert cache.get(key) is None


# ----------------------------------------------------------------------
# Grid execution
# ----------------------------------------------------------------------
class TestRunGrid:
    def test_serial_executes_all(self, tmp_path):
        outcomes = run_grid(tiny_requests(), jobs=1, cache=tmp_path)
        assert [o.ok for o in outcomes] == [True] * 3
        assert all(isinstance(o, RunSuccess) and not o.cached for o in outcomes)

    def test_parallel_equals_serial_key_for_key(self):
        requests = tiny_requests()
        serial = run_grid(requests, jobs=1)
        fleet = run_grid(requests, jobs=3)
        for a, b in zip(serial, fleet):
            assert a.key == b.key
            assert a.report == b.report  # every field, exact

    def test_warm_cache_runs_zero_simulations(self, tmp_path, monkeypatch):
        requests = tiny_requests()
        cold = run_grid(requests, jobs=1, cache=tmp_path)
        # a second invocation must not simulate at all — break the executor
        # so any attempt to run is loud
        monkeypatch.setattr(
            parallel, "_execute", lambda request: pytest.fail("simulated again")
        )
        warm = run_grid(requests, jobs=2, cache=tmp_path)
        assert all(o.cached for o in warm)
        for a, b in zip(cold, warm):
            assert a.key == b.key and a.report == b.report

    def test_outcomes_preserve_request_order(self):
        requests = tiny_requests()
        outcomes = run_grid(requests, jobs=2)
        assert [o.request.policy_name for o in outcomes] == [
            r.policy_name for r in requests
        ]

    def test_exception_becomes_error_record_and_grid_completes(self, tmp_path):
        good = tiny_requests()[0]
        bad = replace(good, max_events=2)  # trips the livelock valve
        outcomes = run_grid([bad, good, bad], jobs=2, cache=tmp_path)
        assert [o.ok for o in outcomes] == [False, True, False]
        assert outcomes[0].kind == "error"
        assert "max_events" in outcomes[0].message
        # failures are never cached
        assert ResultCache(tmp_path).get(outcomes[0].key) is None
        assert ResultCache(tmp_path).get(outcomes[1].key) is not None

    def test_worker_crash_is_isolated(self, monkeypatch):
        real_execute = parallel._execute

        def crashy(request):
            if request.policy is None:
                os._exit(13)  # simulated segfault: no exception, no result
            return real_execute(request)

        monkeypatch.setattr(parallel, "_execute", crashy)
        outcomes = run_grid(tiny_requests(), jobs=2)
        assert [o.ok for o in outcomes] == [False, True, True]
        assert outcomes[0].kind == "crash"
        assert "code 13" in outcomes[0].message

    def test_per_run_timeout_terminates_worker(self, monkeypatch):
        real_execute = parallel._execute

        def sleepy(request):
            if request.policy is None:
                time.sleep(60)
            return real_execute(request)

        monkeypatch.setattr(parallel, "_execute", sleepy)
        t0 = time.monotonic()
        outcomes = run_grid(tiny_requests(), jobs=3, timeout_s=0.5)
        assert time.monotonic() - t0 < 30
        assert [o.ok for o in outcomes] == [False, True, True]
        assert outcomes[0].kind == "timeout"

    def test_rejects_bad_job_count(self):
        with pytest.raises(ReproError):
            run_grid(tiny_requests(), jobs=0)

    def test_progress_events(self):
        events: list[ProgressEvent] = []
        run_grid(tiny_requests(), jobs=1, progress=events.append)
        assert len(events) == 3
        assert events[-1].done == events[-1].total == 3
        assert events[-1].executed == 3
        assert events[-1].cached == events[-1].failed == 0
        assert all(isinstance(e.outcome, (RunSuccess, RunFailure)) for e in events)


# ----------------------------------------------------------------------
# Determinism across the public sweep API (the acceptance criterion)
# ----------------------------------------------------------------------
class TestSweepDeterminism:
    def test_jobs_n_equals_jobs_1_key_for_key(self):
        def build(wss_mb):
            return tiny_workload(wss_mb=wss_mb)

        factors = {
            "policy": ["default", "strict"],
            "wss_mb": [0.2, 0.4],
        }
        serial = sweep(build, factors, jobs=1)
        fleet = sweep(build, factors, jobs=2)
        assert serial == fleet  # every row, every metric, exact

    def test_sweep_reads_cache_across_invocations(self, tmp_path, monkeypatch):
        factors = {"policy": ["default", "strict"], "wss_mb": [0.2]}

        def build(wss_mb):
            return tiny_workload(wss_mb=wss_mb)

        first = sweep(build, factors, jobs=1, cache=tmp_path)
        monkeypatch.setattr(
            parallel, "_execute", lambda request: pytest.fail("simulated again")
        )
        second = sweep(build, factors, jobs=1, cache=tmp_path)
        assert first == second


# ----------------------------------------------------------------------
# The bench harness rides on the same cache
# ----------------------------------------------------------------------
class TestBenchFleetCache:
    def test_warm_bench_runs_zero_simulations_and_matches(
        self, tmp_path, monkeypatch
    ):
        """A second `repro bench` fleet pass must be pure cache reuse: zero
        simulations executed, and every deterministic record (digest,
        runs_total, failures, gflops_total) identical to the cold pass."""
        from repro.bench.areas import bench_fleet

        cache_dir = str(tmp_path / "bench-cache")
        cold = {r.metric: r for r in bench_fleet(7, cache_dir=cache_dir)}
        monkeypatch.setattr(
            parallel, "_execute", lambda request: pytest.fail("simulated again")
        )
        warm = {r.metric: r for r in bench_fleet(7, cache_dir=cache_dir)}

        assert set(cold) == set(warm)
        for metric, a in cold.items():
            b = warm[metric]
            assert a.config_digest == b.config_digest
            assert a.seed == b.seed == 7
            if not (a.unit.endswith("/s") or a.unit == "s"):
                # counts and totals are simulation outputs — exact reuse
                assert a.value == b.value, metric
        assert cold["failures"].value == 0.0
