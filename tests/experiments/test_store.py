"""Result store and regression-diff tests."""

import pytest

from repro.errors import ReproError
from repro.experiments.store import ResultStore, diff_results, report_to_dict
from repro.perf.stat import PerfReport


def report():
    return PerfReport(
        wall_s=1.0, instructions=1e9, cycles=2e9, flops=5e8,
        llc_refs=1e7, llc_misses=2e6, context_switches=100,
        pp_begin_calls=10, pp_denials=2, package_j=100.0, dram_j=20.0,
    )


class TestStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        data = {"Water_nsq": {"strict": report_to_dict(report())}}
        store.save("fig7", data, meta={"commit": "abc"})
        doc = store.load("fig7")
        assert doc["name"] == "fig7"
        assert doc["meta"]["commit"] == "abc"
        assert doc["results"] == data

    def test_names_and_exists(self, tmp_path):
        store = ResultStore(tmp_path)
        assert not store.exists("x")
        store.save("x", {})
        store.save("a", {})
        assert store.exists("x")
        assert store.names() == ["a", "x"]

    def test_missing_load_raises(self, tmp_path):
        with pytest.raises(ReproError):
            ResultStore(tmp_path).load("nope")

    def test_invalid_names_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        for bad in ("", "../evil", ".hidden"):
            with pytest.raises(ReproError):
                store.save(bad, {})

    def test_report_to_dict_has_derived_metrics(self):
        d = report_to_dict(report())
        assert d["system_j"] == pytest.approx(120.0)
        assert d["gflops"] == pytest.approx(0.5)


class TestDiff:
    def test_identical_trees_match(self):
        a = {"x": [1.0, 2.0], "y": {"z": 3.0}}
        assert diff_results(a, a) == []

    def test_within_tolerance_matches(self):
        assert diff_results({"v": 100.0}, {"v": 104.0}, rel_tolerance=0.05) == []

    def test_drift_reported_with_percentage(self):
        drifts = diff_results({"v": 100.0}, {"v": 120.0}, rel_tolerance=0.05)
        assert len(drifts) == 1
        assert "+20.0%" in drifts[0]

    def test_missing_and_unexpected_keys(self):
        drifts = diff_results({"a": 1.0}, {"b": 1.0})
        assert any("missing key 'a'" in d for d in drifts)
        assert any("unexpected key 'b'" in d for d in drifts)

    def test_length_mismatch(self):
        drifts = diff_results([1.0, 2.0], [1.0])
        assert any("length" in d for d in drifts)

    def test_nested_paths_in_messages(self):
        drifts = diff_results({"a": {"b": [0.0, 5.0]}}, {"a": {"b": [0.0, 50.0]}})
        assert any("a.b[1]" in d for d in drifts)

    def test_non_numeric_mismatch(self):
        drifts = diff_results({"s": "x"}, {"s": "y"})
        assert drifts

    def test_zero_reference(self):
        assert diff_results({"v": 0.0}, {"v": 0.0}) == []
        assert diff_results({"v": 0.0}, {"v": 1.0}) != []


class TestEndToEndRegression:
    def test_store_and_verify_sweep_snapshot(self, tmp_path):
        """The intended workflow: snapshot a figure, verify a rerun."""
        from repro.experiments.runner import run_policies
        from ..conftest import make_workload

        store = ResultStore(tmp_path)
        first = {
            p: report_to_dict(r)
            for p, r in run_policies(lambda: make_workload(n_processes=3)).items()
        }
        store.save("toy-sweep", first)
        second = {
            p: report_to_dict(r)
            for p, r in run_policies(lambda: make_workload(n_processes=3)).items()
        }
        assert diff_results(store.load("toy-sweep")["results"], second) == []
