"""Repeated-measurement methodology tests (§4.1: four runs, ~2 % stddev)."""

import pytest

from repro.core.policy import StrictPolicy
from repro.experiments.runner import RepeatedResult, run_repeated

from ..conftest import make_phase, make_workload


def factory():
    return make_workload(n_processes=6, phases=[make_phase(wss_mb=4.0)])


class TestRunRepeated:
    def test_four_runs_by_default(self):
        result = run_repeated(factory, StrictPolicy())
        assert len(result.reports) == 4
        assert result.policy == "RDA: Strict"

    def test_jitter_produces_variation_and_small_cv(self):
        result = run_repeated(factory, None, n_runs=4, arrival_jitter_s=2e-3)
        walls = [r.wall_s for r in result.reports]
        assert len(set(walls)) > 1  # jitter changed something
        # the paper reports ~2 % average stddev; ours should be similar
        assert result.cv("wall_s") < 0.10

    def test_deterministic_under_fixed_seed(self):
        a = run_repeated(factory, None, n_runs=2, seed=7)
        b = run_repeated(factory, None, n_runs=2, seed=7)
        assert [r.wall_s for r in a.reports] == [r.wall_s for r in b.reports]

    def test_different_seeds_differ(self):
        a = run_repeated(factory, None, n_runs=1, seed=1)
        b = run_repeated(factory, None, n_runs=1, seed=2)
        assert a.reports[0].wall_s != b.reports[0].wall_s

    def test_mean_and_std(self):
        result = run_repeated(factory, None, n_runs=3)
        wall_mean = result.mean("wall_s")
        assert min(r.wall_s for r in result.reports) <= wall_mean
        assert wall_mean <= max(r.wall_s for r in result.reports)
        assert result.std("wall_s") >= 0.0

    def test_single_run_has_zero_std(self):
        result = run_repeated(factory, None, n_runs=1)
        assert result.std("wall_s") == 0.0

    def test_invalid_run_count(self):
        with pytest.raises(ValueError):
            run_repeated(factory, None, n_runs=0)

    def test_offsets_must_match_processes(self):
        from repro.experiments.runner import run_workload_full

        with pytest.raises(ValueError):
            run_workload_full(factory(), None, arrival_offsets=[0.0])
