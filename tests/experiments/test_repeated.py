"""Repeated-measurement methodology tests (§4.1: four runs, ~2 % stddev)."""

import pytest

from repro.core.policy import StrictPolicy
from repro.errors import ReproError, SanitizerError
from repro.experiments.runner import RepeatedResult, run_policies, run_repeated
from repro.perf.stat import PerfReport

from ..conftest import make_phase, make_workload


def factory():
    return make_workload(n_processes=6, phases=[make_phase(wss_mb=4.0)])


class TestRunRepeated:
    def test_four_runs_by_default(self):
        result = run_repeated(factory, StrictPolicy())
        assert len(result.reports) == 4
        assert result.policy == "RDA: Strict"

    def test_jitter_produces_variation_and_small_cv(self):
        result = run_repeated(factory, None, n_runs=4, arrival_jitter_s=2e-3)
        walls = [r.wall_s for r in result.reports]
        assert len(set(walls)) > 1  # jitter changed something
        # the paper reports ~2 % average stddev; ours should be similar
        assert result.cv("wall_s") < 0.10

    def test_deterministic_under_fixed_seed(self):
        a = run_repeated(factory, None, n_runs=2, seed=7)
        b = run_repeated(factory, None, n_runs=2, seed=7)
        assert [r.wall_s for r in a.reports] == [r.wall_s for r in b.reports]

    def test_different_seeds_differ(self):
        a = run_repeated(factory, None, n_runs=1, seed=1)
        b = run_repeated(factory, None, n_runs=1, seed=2)
        assert a.reports[0].wall_s != b.reports[0].wall_s

    def test_mean_and_std(self):
        result = run_repeated(factory, None, n_runs=3)
        wall_mean = result.mean("wall_s")
        assert min(r.wall_s for r in result.reports) <= wall_mean
        assert wall_mean <= max(r.wall_s for r in result.reports)
        assert result.std("wall_s") >= 0.0

    def test_single_run_has_zero_std(self):
        result = run_repeated(factory, None, n_runs=1)
        assert result.std("wall_s") == 0.0

    def test_invalid_run_count(self):
        with pytest.raises(ValueError):
            run_repeated(factory, None, n_runs=0)

    def test_offsets_must_match_processes(self):
        from repro.experiments.runner import run_workload_full

        with pytest.raises(ValueError):
            run_workload_full(factory(), None, arrival_offsets=[0.0])


def _flat_report(value: float) -> PerfReport:
    return PerfReport(
        wall_s=value, instructions=0.0, cycles=0.0, flops=0.0, llc_refs=0.0,
        llc_misses=0.0, context_switches=0.0, pp_begin_calls=0.0,
        pp_denials=0.0, package_j=0.0, dram_j=0.0,
    )


class TestRepeatedResultEdgeCases:
    def test_single_report_std_and_cv_are_zero(self):
        result = RepeatedResult("toy", "Linux Default", (_flat_report(2.0),))
        assert result.std("wall_s") == 0.0
        assert result.cv("wall_s") == 0.0

    def test_zero_mean_cv_is_zero_not_nan(self):
        reports = (_flat_report(1.0), _flat_report(2.0))
        result = RepeatedResult("toy", "Linux Default", reports)
        assert result.mean("flops") == 0.0
        assert result.cv("flops") == 0.0  # no division by the zero mean

    def test_identical_reports_have_zero_std(self):
        reports = (_flat_report(3.0),) * 4
        result = RepeatedResult("toy", "Linux Default", reports)
        assert result.std("wall_s") == 0.0
        assert result.cv("wall_s") == 0.0


class TestKwargThreading:
    """Regression: repeated/jittered runs used to silently drop ``sanitize``
    and ``max_events`` on their way to ``run_workload_full``."""

    def test_run_repeated_threads_max_events(self):
        with pytest.raises(ReproError, match="max_events"):
            run_repeated(factory, None, n_runs=2, max_events=2)

    def test_run_policies_threads_max_events(self):
        with pytest.raises(ReproError, match="max_events"):
            run_policies(factory, max_events=2)

    def test_run_repeated_threads_sanitize(self):
        # a clean workload passes under the sanitizer and still reports
        result = run_repeated(factory, StrictPolicy(), n_runs=2, sanitize=True)
        assert len(result.reports) == 2

    def test_run_repeated_sanitize_surfaces_violations(self, monkeypatch):
        from repro.sanitizer.sanitizer import KernelSanitizer

        def boom(self, *args, **kwargs):
            raise SanitizerError("injected violation")

        monkeypatch.setattr(KernelSanitizer, "on_quiescent", boom)
        with pytest.raises(ReproError, match="injected violation"):
            run_repeated(factory, StrictPolicy(), n_runs=1, sanitize=True)


class TestRepeatedParallelEquivalence:
    def test_jobs_2_matches_serial(self):
        serial = run_repeated(factory, StrictPolicy(), n_runs=3, seed=5)
        fleet = run_repeated(factory, StrictPolicy(), n_runs=3, seed=5, jobs=2)
        assert serial.reports == fleet.reports

    def test_run_policies_jobs_2_matches_serial(self):
        serial = run_policies(factory)
        fleet = run_policies(factory, jobs=2)
        assert serial == fleet
