"""Policy comparison metric tests."""

import pytest

from repro.experiments.metrics import PolicyComparison, compare, compare_all
from repro.perf.stat import PerfReport


def report(wall=1.0, flops=1e9, pkg=50.0, dram=10.0):
    return PerfReport(
        wall_s=wall,
        instructions=1e9,
        cycles=2e9,
        flops=flops,
        llc_refs=1e7,
        llc_misses=1e6,
        context_switches=0,
        pp_begin_calls=0,
        pp_denials=0,
        package_j=pkg,
        dram_j=dram,
    )


class TestCompare:
    def test_speedup_from_gflops(self):
        cmp = compare("w", "p", report(wall=2.0), report(wall=1.0))
        assert cmp.speedup == pytest.approx(2.0)

    def test_energy_ratios(self):
        cmp = compare("w", "p", report(pkg=80, dram=20), report(pkg=40, dram=12))
        assert cmp.system_energy_ratio == pytest.approx(52 / 100)
        assert cmp.system_energy_decrease == pytest.approx(0.48)
        assert cmp.dram_energy_ratio == pytest.approx(0.6)
        assert cmp.dram_energy_decrease == pytest.approx(0.4)

    def test_efficiency_gain(self):
        base = report(wall=1.0, pkg=90, dram=10)  # 1 GFLOPS at 100 J
        cand = report(wall=1.0, pkg=40, dram=10)  # 1 GFLOPS at 50 J
        cmp = compare("w", "p", base, cand)
        assert cmp.efficiency_gain == pytest.approx(2.0)

    def test_flop_free_workload_uses_runtime(self):
        base = report(wall=4.0, flops=0.0)
        cand = report(wall=2.0, flops=0.0)
        assert compare("w", "p", base, cand).speedup == pytest.approx(2.0)

    def test_describe_contains_headline_numbers(self):
        cmp = compare("Water_nsq", "RDA: Strict", report(pkg=100), report(pkg=50))
        text = cmp.describe()
        assert "Water_nsq" in text and "RDA: Strict" in text


class TestCompareAll:
    def test_excludes_baseline(self):
        reports = {
            "Linux Default": report(),
            "RDA: Strict": report(wall=0.5),
            "RDA: Compromise": report(wall=0.8),
        }
        out = compare_all("w", reports)
        assert set(out) == {"RDA: Strict", "RDA: Compromise"}
        assert out["RDA: Strict"].speedup > out["RDA: Compromise"].speedup
