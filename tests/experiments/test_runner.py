"""Experiment runner tests."""

import pytest

from repro.core.policy import CompromisePolicy, StrictPolicy
from repro.experiments.runner import (
    POLICIES,
    run_policies,
    run_workload,
    run_workload_full,
)

from ..conftest import make_phase, make_workload


class TestPolicies:
    def test_paper_legend(self):
        assert list(POLICIES) == ["Linux Default", "RDA: Strict", "RDA: Compromise"]
        assert POLICIES["Linux Default"] is None
        assert isinstance(POLICIES["RDA: Strict"], StrictPolicy)
        assert isinstance(POLICIES["RDA: Compromise"], CompromisePolicy)
        assert POLICIES["RDA: Compromise"].oversubscription == 2.0


class TestRunWorkload:
    def test_returns_complete_report(self):
        report = run_workload(make_workload(n_processes=2), None)
        assert report.wall_s > 0
        assert report.instructions > 0
        assert report.system_j > 0

    def test_full_result_keeps_kernel(self):
        result = run_workload_full(make_workload(n_processes=2), StrictPolicy())
        assert result.kernel.all_exited
        assert result.scheduler is not None
        assert result.policy == "RDA: Strict"
        assert result.wall_s == result.report.wall_s

    def test_default_run_has_no_scheduler(self):
        result = run_workload_full(make_workload(n_processes=2), None)
        assert result.scheduler is None
        assert result.policy == "Linux Default"
        assert result.report.pp_begin_calls == 0

    def test_rda_run_records_pp_calls(self):
        result = run_workload_full(make_workload(n_processes=3), StrictPolicy())
        assert result.report.pp_begin_calls == 3


class TestRunPolicies:
    def test_runs_every_policy(self):
        reports = run_policies(lambda: make_workload(n_processes=2))
        assert set(reports) == set(POLICIES)
        for r in reports.values():
            assert r.wall_s > 0

    def test_accepts_workload_instance(self):
        wl = make_workload(n_processes=2)
        reports = run_policies(wl, policies={"Linux Default": None})
        assert "Linux Default" in reports

    def test_custom_policy_dict(self):
        reports = run_policies(
            lambda: make_workload(n_processes=2),
            policies={"only-strict": StrictPolicy()},
        )
        assert list(reports) == ["only-strict"]
