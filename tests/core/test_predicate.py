"""Algorithm 1 tests: the scheduling predicate."""

import pytest
from hypothesis import given, strategies as st

from repro.core.policy import CompromisePolicy, StrictPolicy
from repro.core.predicate import Decision, SchedulingPredicate
from repro.core.progress_period import (
    PeriodRequest,
    ProgressPeriod,
    ResourceKind,
    ReuseLevel,
)
from repro.core.resource_monitor import ResourceMonitor

CAP = 10_000


def setup(policy=None):
    resources = ResourceMonitor()
    resources.register(ResourceKind.LLC, CAP)
    return SchedulingPredicate(resources, policy or StrictPolicy())


def period(demand, key=None):
    return ProgressPeriod(
        request=PeriodRequest(ResourceKind.LLC, demand, ReuseLevel.HIGH, sharing_key=key),
        owner=object(),
    )


class TestAlgorithm1:
    def test_admit_charges_load(self):
        pred = setup()
        assert pred.try_schedule(period(4000)) is Decision.RUN
        assert pred.resources.state(ResourceKind.LLC).usage_bytes == 4000

    def test_deny_does_not_charge(self):
        pred = setup()
        pred.try_schedule(period(9000))
        decision = pred.try_schedule(period(2000))
        assert decision is Decision.WAIT
        assert pred.resources.state(ResourceKind.LLC).usage_bytes == 9000

    def test_exact_fit_admitted(self):
        pred = setup()
        assert pred.try_schedule(period(CAP)) is Decision.RUN

    def test_admission_sequence_strict(self):
        """remaining = capacity - usage; outcome = remaining - demand."""
        pred = setup()
        decisions = [pred.try_schedule(period(3000)) for _ in range(4)]
        assert decisions == [Decision.RUN] * 3 + [Decision.WAIT]

    def test_compromise_allows_double_booking(self):
        pred = setup(CompromisePolicy(oversubscription=2.0))
        decisions = [pred.try_schedule(period(5000)) for _ in range(5)]
        assert decisions == [Decision.RUN] * 4 + [Decision.WAIT]

    def test_evaluate_is_pure(self):
        pred = setup()
        pred.evaluate(period(4000))
        assert pred.resources.state(ResourceKind.LLC).usage_bytes == 0

    def test_stats_count_decisions(self):
        pred = setup()
        pred.try_schedule(period(9000))
        pred.try_schedule(period(9000))
        assert pred.stats.admitted == 1
        assert pred.stats.denied == 1
        assert pred.stats.evaluated == 2


class TestSharedDemands:
    def test_held_shared_set_adds_nothing(self):
        pred = setup()
        assert pred.try_schedule(period(9000, key="p")) is Decision.RUN
        # A sibling with the same key is free even though the cache is full.
        assert pred.try_schedule(period(9000, key="p")) is Decision.RUN
        assert pred.resources.state(ResourceKind.LLC).usage_bytes == 9000

    def test_unheld_shared_set_counts(self):
        pred = setup()
        pred.try_schedule(period(9000, key="p"))
        assert pred.try_schedule(period(9000, key="q")) is Decision.WAIT


class TestInvariantProperty:
    @given(st.lists(st.integers(min_value=1, max_value=CAP), min_size=1, max_size=40))
    def test_strict_never_exceeds_capacity(self, demands):
        pred = setup(StrictPolicy())
        for d in demands:
            pred.try_schedule(period(d))
        assert pred.resources.state(ResourceKind.LLC).usage_bytes <= CAP

    @given(st.lists(st.integers(min_value=1, max_value=CAP), min_size=1, max_size=40))
    def test_compromise_never_exceeds_twice_capacity(self, demands):
        pred = setup(CompromisePolicy(oversubscription=2.0))
        for d in demands:
            pred.try_schedule(period(d))
        assert pred.resources.state(ResourceKind.LLC).usage_bytes <= 2 * CAP

    @given(st.lists(st.integers(min_value=1, max_value=2 * CAP), min_size=1, max_size=40))
    def test_decision_matches_policy_exactly(self, demands):
        pred = setup(StrictPolicy())
        for d in demands:
            state = pred.resources.state(ResourceKind.LLC)
            expected = state.usage_bytes + d <= CAP
            assert (pred.try_schedule(period(d)) is Decision.RUN) == expected
