"""Progress-period registry tests (§3.1)."""

import pytest

from repro.core.progress_period import (
    PeriodRequest,
    PeriodState,
    ProgressPeriod,
    ResourceKind,
    ReuseLevel,
)
from repro.core.registry import PeriodRegistry
from repro.errors import ProgressPeriodError, UnknownProgressPeriodError


def period(owner=None, state=PeriodState.REQUESTED):
    pp = ProgressPeriod(
        request=PeriodRequest(ResourceKind.LLC, 100, ReuseLevel.LOW),
        owner=owner or object(),
    )
    pp.state = state
    return pp


class TestRegistry:
    def test_add_get_remove(self):
        reg = PeriodRegistry()
        pp = period()
        reg.add(pp)
        assert reg.get(pp.pp_id) is pp
        assert pp.pp_id in reg
        removed = reg.remove(pp.pp_id)
        assert removed is pp
        assert pp.pp_id not in reg

    def test_get_unknown_raises_with_id(self):
        with pytest.raises(UnknownProgressPeriodError) as exc:
            PeriodRegistry().get(12345)
        assert exc.value.pp_id == 12345

    def test_remove_unknown_raises(self):
        with pytest.raises(UnknownProgressPeriodError):
            PeriodRegistry().remove(999)

    def test_find_returns_none(self):
        assert PeriodRegistry().find(1) is None

    def test_duplicate_add_rejected(self):
        reg = PeriodRegistry()
        pp = period()
        reg.add(pp)
        with pytest.raises(ProgressPeriodError):
            reg.add(pp)

    def test_completed_period_not_registrable(self):
        with pytest.raises(ProgressPeriodError):
            PeriodRegistry().add(period(state=PeriodState.COMPLETED))

    def test_state_partitions(self):
        reg = PeriodRegistry()
        running = period(state=PeriodState.RUNNING)
        waiting = period(state=PeriodState.WAITING)
        reg.add(running)
        reg.add(waiting)
        assert reg.running() == [running]
        assert reg.waiting() == [waiting]
        assert len(reg) == 2

    def test_of_owner(self):
        reg = PeriodRegistry()
        me, other = object(), object()
        mine = [period(owner=me), period(owner=me)]
        for p in mine:
            reg.add(p)
        reg.add(period(owner=other))
        assert set(reg.of_owner(me)) == set(mine)

    def test_iteration_is_safe_against_mutation(self):
        reg = PeriodRegistry()
        pps = [period() for _ in range(5)]
        for p in pps:
            reg.add(p)
        for p in reg:
            reg.remove(p.pp_id)
        assert len(reg) == 0
