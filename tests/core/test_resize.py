"""Elastic reservation resize: resource accounting and period workflows.

``ResourceState.resize`` / ``ResourceMonitor.resize_load`` /
``ProgressMonitor.resize`` back the prediction subsystem's elastic
re-admission (:mod:`repro.predict`): a running period's charge moves to
the learned demand without a release/re-admit cycle, observers see the
delta so conservation ledgers stay balanced, and a shrink immediately
re-tries the waitlist.
"""

import pytest

from repro.core.policy import StrictPolicy
from repro.core.predicate import SchedulingPredicate
from repro.core.progress_monitor import ProgressMonitor
from repro.core.progress_period import (
    PeriodRequest,
    PeriodState,
    ResourceKind,
    ReuseLevel,
)
from repro.core.resource_monitor import ResourceMonitor
from repro.errors import ProgressPeriodError, ResourceError

CAP = 10_000


def req(demand, key=None):
    return PeriodRequest(ResourceKind.LLC, demand, ReuseLevel.HIGH, sharing_key=key)


def monitor():
    m = ResourceMonitor()
    m.register(ResourceKind.LLC, CAP)
    return m


class LedgerObserver:
    """Mimics the sanitizer's conservation ledger."""

    def __init__(self):
        self.balance = 0

    def on_charge(self, request, added):
        assert added > 0
        self.balance += added

    def on_release(self, request, removed):
        assert removed > 0
        self.balance -= removed


class TestResourceResize:
    def test_private_shrink_and_grow(self):
        m = monitor()
        r = req(4000)
        m.increment_load(r)
        assert m.resize_load(r, 1000) == -3000
        assert m.state(ResourceKind.LLC).usage_bytes == 1000
        # the caller rewrites the request after a resize; model that here
        assert m.resize_load(req(1000), 6000) == 5000
        assert m.state(ResourceKind.LLC).usage_bytes == 6000

    def test_noop_resize_returns_zero_delta(self):
        m = monitor()
        m.increment_load(req(4000))
        assert m.resize_load(req(4000), 4000) == 0

    def test_negative_target_rejected(self):
        m = monitor()
        m.increment_load(req(4000))
        with pytest.raises(ResourceError):
            m.resize_load(req(4000), -1)

    def test_shared_key_resize_rewrites_the_stored_charge(self):
        m = monitor()
        m.increment_load(req(3000, key="p1"))
        m.increment_load(req(3000, key="p1"))  # second holder: charged once
        assert m.resize_load(req(3000, key="p1"), 1200) == -1800
        assert m.state(ResourceKind.LLC).usage_bytes == 1200
        # last holder's release frees the *resized* charge exactly
        assert m.release_load(req(1200, key="p1")) == 0
        assert m.release_load(req(1200, key="p1")) == 1200
        assert m.state(ResourceKind.LLC).usage_bytes == 0

    def test_unheld_shared_key_rejected(self):
        m = monitor()
        with pytest.raises(ResourceError):
            m.resize_load(req(3000, key="nope"), 1000)

    def test_observers_see_the_delta(self):
        m = monitor()
        ledger = LedgerObserver()
        m.observers.append(ledger)
        m.increment_load(req(5000))
        assert ledger.balance == 5000
        m.resize_load(req(5000), 2000)
        assert ledger.balance == 2000
        m.resize_load(req(2000), 3000)
        assert ledger.balance == 3000
        m.release_load(req(3000))
        assert ledger.balance == 0

    def test_observers_silent_on_noop(self):
        m = monitor()
        m.increment_load(req(5000))
        ledger = LedgerObserver()
        m.observers.append(ledger)
        m.resize_load(req(5000), 5000)
        assert ledger.balance == 0


class TestProgressResize:
    def make(self):
        resources = monitor()
        return ProgressMonitor(
            resources=resources,
            predicate=SchedulingPredicate(resources, StrictPolicy()),
            clock=lambda: 0.0,
        )

    def test_resize_updates_charge_and_request(self):
        pm = self.make()
        pp = pm.begin("t1", req(8000))
        period, admitted = pm.resize(pp.pp_id, 2000)
        assert period is pp
        assert admitted == []
        assert pp.request.demand_bytes == 2000
        assert pm.resources.state(ResourceKind.LLC).usage_bytes == 2000

    def test_end_after_resize_releases_the_new_charge(self):
        pm = self.make()
        pp = pm.begin("t1", req(8000))
        pm.resize(pp.pp_id, 2000)
        pm.end(pp.pp_id)
        assert pm.resources.state(ResourceKind.LLC).usage_bytes == 0

    def test_shrink_admits_waiters(self):
        pm = self.make()
        first = pm.begin("t1", req(9000))
        waiting = pm.begin("t2", req(5000))
        assert waiting.state is PeriodState.WAITING
        _, admitted = pm.resize(first.pp_id, 3000)
        assert admitted == [waiting]
        assert waiting.state is PeriodState.RUNNING

    def test_grow_admits_nobody(self):
        pm = self.make()
        first = pm.begin("t1", req(2000))
        pm.begin("t2", req(9000))
        _, admitted = pm.resize(first.pp_id, 4000)
        assert admitted == []

    def test_waiting_period_cannot_be_resized(self):
        pm = self.make()
        pm.begin("t1", req(9000))
        waiting = pm.begin("t2", req(5000))
        with pytest.raises(ProgressPeriodError):
            pm.resize(waiting.pp_id, 1000)

    def test_unknown_period_raises(self):
        with pytest.raises(ProgressPeriodError):
            self.make().resize(999, 1000)

    def test_negative_demand_rejected(self):
        pm = self.make()
        pp = pm.begin("t1", req(1000))
        with pytest.raises(ProgressPeriodError):
            pm.resize(pp.pp_id, -1)
