"""Resource waitlist tests (§3.1)."""

import pytest

from repro.core.progress_period import (
    PeriodRequest,
    ProgressPeriod,
    ResourceKind,
    ReuseLevel,
)
from repro.core.waitlist import Waitlist


from repro.errors import ProgressPeriodError


def period(demand=100, key=None):
    return ProgressPeriod(
        request=PeriodRequest(
            ResourceKind.LLC, demand, ReuseLevel.LOW, sharing_key=key
        ),
        owner=object(),
    )


class TestFifoOrder:
    def test_park_and_peek(self):
        wl = Waitlist()
        a, b = period(), period()
        wl.park(a)
        wl.park(b)
        assert wl.peek(ResourceKind.LLC) is a
        assert len(wl) == 2
        assert wl.waiting_on(ResourceKind.LLC) == 2

    def test_drain_admits_in_fifo_order(self):
        wl = Waitlist()
        parked = [period() for _ in range(4)]
        for p in parked:
            wl.park(p)
        admitted = wl.drain_admissible(ResourceKind.LLC, lambda p: True)
        assert admitted == parked
        assert len(wl) == 0

    def test_drain_skips_inadmissible_but_keeps_order(self):
        """A small period may slip past a large head waiter."""
        wl = Waitlist()
        big, small1, small2 = period(10_000), period(10), period(20)
        for p in (big, small1, small2):
            wl.park(p)
        admitted = wl.drain_admissible(
            ResourceKind.LLC, lambda p: p.demand_bytes < 1000
        )
        assert admitted == [small1, small2]
        assert wl.peek(ResourceKind.LLC) is big

    def test_drain_empty_returns_nothing(self):
        assert Waitlist().drain_admissible(ResourceKind.LLC, lambda p: True) == []

    def test_budgeted_drain(self):
        """Admission predicate with a running budget (models Algorithm 1)."""
        wl = Waitlist()
        for d in (500, 400, 300):
            wl.park(period(d))
        budget = {"left": 800}

        def admit(p):
            if p.demand_bytes <= budget["left"]:
                budget["left"] -= p.demand_bytes
                return True
            return False

        admitted = wl.drain_admissible(ResourceKind.LLC, admit)
        assert [p.demand_bytes for p in admitted] == [500, 300]
        assert wl.waiting_on(ResourceKind.LLC) == 1


class TestStrictFifo:
    def test_head_blocks_everyone_behind(self):
        wl = Waitlist(strict_fifo=True)
        big, small = period(10_000), period(10)
        wl.park(big)
        wl.park(small)
        admitted = wl.drain_admissible(
            ResourceKind.LLC, lambda p: p.demand_bytes < 1000
        )
        assert admitted == []  # the small one cannot slip past
        assert wl.waiting_on(ResourceKind.LLC) == 2
        assert wl.peek(ResourceKind.LLC) is big

    def test_admits_prefix_in_order(self):
        wl = Waitlist(strict_fifo=True)
        parked = [period(10), period(20), period(10_000), period(30)]
        for p in parked:
            wl.park(p)
        admitted = wl.drain_admissible(
            ResourceKind.LLC, lambda p: p.demand_bytes < 1000
        )
        assert admitted == parked[:2]
        assert list(wl.all_waiting()) == parked[2:]


class TestRescanRegression:
    """drain_admissible (non-FIFO) re-scans from the head after each
    admission: admitting a period can make an *earlier* waiter admissible."""

    def test_admission_order_pinned(self):
        """Regression: exact order for a budgeted drain is part of the API."""
        wl = Waitlist()
        for d in (700, 500, 300, 200):
            wl.park(period(d))
        budget = {"left": 1000}

        def admit(p):
            if p.demand_bytes <= budget["left"]:
                budget["left"] -= p.demand_bytes
                return True
            return False

        admitted = wl.drain_admissible(ResourceKind.LLC, admit)
        assert [p.demand_bytes for p in admitted] == [700, 300]
        assert [p.demand_bytes for p in wl.all_waiting()] == [500, 200]

    def test_rescan_unlocks_earlier_shared_waiter(self):
        """Admitting a later waiter charges its sharing key, which drops an
        earlier same-key waiter's marginal demand to zero.  A single forward
        pass would strand the earlier waiter until the next completion."""
        wl = Waitlist()
        early = period(900, key="ws")  # too big for the budget on its own
        late = period(50, key="ws")  # fits, and charges the shared set
        wl.park(early)
        wl.park(late)
        budget = {"left": 100}
        charged: set = set()

        def admit(p):
            marginal = 0 if p.request.sharing_key in charged else p.demand_bytes
            if marginal <= budget["left"]:
                budget["left"] -= marginal
                if p.request.sharing_key is not None:
                    charged.add(p.request.sharing_key)
                return True
            return False

        admitted = wl.drain_admissible(ResourceKind.LLC, admit)
        assert admitted == [late, early]
        assert len(wl) == 0

    def test_no_double_admission_in_one_drain(self):
        wl = Waitlist()
        parked = [period(d) for d in (10, 20, 30, 40, 50)]
        for p in parked:
            wl.park(p)
        admitted = wl.drain_admissible(ResourceKind.LLC, lambda p: True)
        assert admitted == parked  # each exactly once, arrival order
        assert len(set(map(id, admitted))) == len(parked)
        assert len(wl) == 0

    def test_rejected_waiter_not_reexamined_forever(self):
        """The rescan loop terminates even when the predicate keeps saying
        no — each restart must be caused by an actual admission."""
        wl = Waitlist()
        for d in (900, 800):
            wl.park(period(d))
        calls = {"n": 0}

        def admit(p):
            calls["n"] += 1
            return False

        assert wl.drain_admissible(ResourceKind.LLC, admit) == []
        assert calls["n"] == 2  # one look at each waiter, then stop

    def test_duplicate_park_raises(self):
        wl = Waitlist()
        p = period()
        wl.park(p)
        with pytest.raises(ProgressPeriodError, match="already on the waitlist"):
            wl.park(p)


class TestRemoval:
    def test_remove_present(self):
        wl = Waitlist()
        p = period()
        wl.park(p)
        assert wl.remove(p) is True
        assert len(wl) == 0

    def test_remove_absent(self):
        assert Waitlist().remove(period()) is False

    def test_all_waiting_iterates_everything(self):
        wl = Waitlist()
        parked = [period() for _ in range(3)]
        for p in parked:
            wl.park(p)
        assert list(wl.all_waiting()) == parked
