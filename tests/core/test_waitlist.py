"""Resource waitlist tests (§3.1)."""

import pytest

from repro.core.progress_period import (
    PeriodRequest,
    ProgressPeriod,
    ResourceKind,
    ReuseLevel,
)
from repro.core.waitlist import Waitlist


def period(demand=100):
    return ProgressPeriod(
        request=PeriodRequest(ResourceKind.LLC, demand, ReuseLevel.LOW),
        owner=object(),
    )


class TestFifoOrder:
    def test_park_and_peek(self):
        wl = Waitlist()
        a, b = period(), period()
        wl.park(a)
        wl.park(b)
        assert wl.peek(ResourceKind.LLC) is a
        assert len(wl) == 2
        assert wl.waiting_on(ResourceKind.LLC) == 2

    def test_drain_admits_in_fifo_order(self):
        wl = Waitlist()
        parked = [period() for _ in range(4)]
        for p in parked:
            wl.park(p)
        admitted = wl.drain_admissible(ResourceKind.LLC, lambda p: True)
        assert admitted == parked
        assert len(wl) == 0

    def test_drain_skips_inadmissible_but_keeps_order(self):
        """A small period may slip past a large head waiter."""
        wl = Waitlist()
        big, small1, small2 = period(10_000), period(10), period(20)
        for p in (big, small1, small2):
            wl.park(p)
        admitted = wl.drain_admissible(
            ResourceKind.LLC, lambda p: p.demand_bytes < 1000
        )
        assert admitted == [small1, small2]
        assert wl.peek(ResourceKind.LLC) is big

    def test_drain_empty_returns_nothing(self):
        assert Waitlist().drain_admissible(ResourceKind.LLC, lambda p: True) == []

    def test_budgeted_drain(self):
        """Admission predicate with a running budget (models Algorithm 1)."""
        wl = Waitlist()
        for d in (500, 400, 300):
            wl.park(period(d))
        budget = {"left": 800}

        def admit(p):
            if p.demand_bytes <= budget["left"]:
                budget["left"] -= p.demand_bytes
                return True
            return False

        admitted = wl.drain_admissible(ResourceKind.LLC, admit)
        assert [p.demand_bytes for p in admitted] == [500, 300]
        assert wl.waiting_on(ResourceKind.LLC) == 1


class TestStrictFifo:
    def test_head_blocks_everyone_behind(self):
        wl = Waitlist(strict_fifo=True)
        big, small = period(10_000), period(10)
        wl.park(big)
        wl.park(small)
        admitted = wl.drain_admissible(
            ResourceKind.LLC, lambda p: p.demand_bytes < 1000
        )
        assert admitted == []  # the small one cannot slip past
        assert wl.waiting_on(ResourceKind.LLC) == 2
        assert wl.peek(ResourceKind.LLC) is big

    def test_admits_prefix_in_order(self):
        wl = Waitlist(strict_fifo=True)
        parked = [period(10), period(20), period(10_000), period(30)]
        for p in parked:
            wl.park(p)
        admitted = wl.drain_admissible(
            ResourceKind.LLC, lambda p: p.demand_bytes < 1000
        )
        assert admitted == parked[:2]
        assert list(wl.all_waiting()) == parked[2:]


class TestRemoval:
    def test_remove_present(self):
        wl = Waitlist()
        p = period()
        wl.park(p)
        assert wl.remove(p) is True
        assert len(wl) == 0

    def test_remove_absent(self):
        assert Waitlist().remove(period()) is False

    def test_all_waiting_iterates_everything(self):
        wl = Waitlist()
        parked = [period() for _ in range(3)]
        for p in parked:
            wl.park(p)
        assert list(wl.all_waiting()) == parked
