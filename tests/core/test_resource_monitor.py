"""Resource monitor tests (§3.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.progress_period import PeriodRequest, ResourceKind, ReuseLevel
from repro.core.resource_monitor import ResourceMonitor, ResourceState
from repro.errors import ResourceError


def req(demand=1000, key=None):
    return PeriodRequest(ResourceKind.LLC, demand, ReuseLevel.HIGH, sharing_key=key)


class TestRegistration:
    def test_register_and_lookup(self):
        m = ResourceMonitor()
        s = m.register(ResourceKind.LLC, 1000)
        assert m.state(ResourceKind.LLC) is s
        assert m.known(ResourceKind.LLC)

    def test_double_register_rejected(self):
        m = ResourceMonitor()
        m.register(ResourceKind.LLC, 1000)
        with pytest.raises(ResourceError):
            m.register(ResourceKind.LLC, 1000)

    def test_unknown_resource_raises(self):
        with pytest.raises(ResourceError):
            ResourceMonitor().state(ResourceKind.LLC)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ResourceError):
            ResourceMonitor().register(ResourceKind.LLC, 0)


class TestLoadTracking:
    def monitor(self):
        m = ResourceMonitor()
        m.register(ResourceKind.LLC, 10_000)
        return m

    def test_increment_and_release(self):
        m = self.monitor()
        m.increment_load(req(4000))
        assert m.state(ResourceKind.LLC).usage_bytes == 4000
        m.release_load(req(4000))
        assert m.state(ResourceKind.LLC).usage_bytes == 0

    def test_remaining_bytes(self):
        m = self.monitor()
        m.increment_load(req(4000))
        assert m.state(ResourceKind.LLC).remaining_bytes == 6000

    def test_usage_can_exceed_capacity(self):
        """Oversubscription is a policy matter, not an accounting one."""
        m = self.monitor()
        m.increment_load(req(8000))
        m.increment_load(req(8000))
        assert m.state(ResourceKind.LLC).usage_bytes == 16_000
        assert m.state(ResourceKind.LLC).remaining_bytes == -6000

    def test_release_below_zero_rejected(self):
        m = self.monitor()
        with pytest.raises(ResourceError):
            m.release_load(req(1))

    def test_utilization(self):
        m = self.monitor()
        m.increment_load(req(2500))
        assert m.state(ResourceKind.LLC).utilization == pytest.approx(0.25)

    def test_snapshot(self):
        m = self.monitor()
        m.increment_load(req(100))
        assert m.snapshot() == {ResourceKind.LLC: (100, 10_000)}


class TestSharedWorkingSets:
    def monitor(self):
        m = ResourceMonitor()
        m.register(ResourceKind.LLC, 10_000)
        return m

    def test_shared_key_charged_once(self):
        m = self.monitor()
        assert m.increment_load(req(3000, key="p1")) == 3000
        assert m.increment_load(req(3000, key="p1")) == 0
        assert m.state(ResourceKind.LLC).usage_bytes == 3000

    def test_shared_key_released_by_last_holder(self):
        m = self.monitor()
        m.increment_load(req(3000, key="p1"))
        m.increment_load(req(3000, key="p1"))
        assert m.release_load(req(3000, key="p1")) == 0
        assert m.state(ResourceKind.LLC).usage_bytes == 3000
        assert m.release_load(req(3000, key="p1")) == 3000
        assert m.state(ResourceKind.LLC).usage_bytes == 0

    def test_release_unheld_shared_key_rejected(self):
        m = self.monitor()
        with pytest.raises(ResourceError):
            m.release_load(req(3000, key="nope"))

    def test_would_add_reflects_sharing(self):
        m = self.monitor()
        s = m.state(ResourceKind.LLC)
        assert s.would_add(req(3000, key="p1")) == 3000
        m.increment_load(req(3000, key="p1"))
        assert s.would_add(req(3000, key="p1")) == 0
        assert s.would_add(req(3000, key="p2")) == 3000

    def test_distinct_keys_independent(self):
        m = self.monitor()
        m.increment_load(req(3000, key="p1"))
        m.increment_load(req(4000, key="p2"))
        assert m.state(ResourceKind.LLC).usage_bytes == 7000

    @given(st.lists(st.sampled_from(["a", "b", "c", None]), min_size=1, max_size=30))
    def test_charge_release_roundtrip_is_zero(self, keys):
        m = self.monitor()
        for k in keys:
            m.increment_load(req(500, key=k))
        for k in reversed(keys):
            m.release_load(req(500, key=k))
        assert m.state(ResourceKind.LLC).usage_bytes == 0
