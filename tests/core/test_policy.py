"""Scheduling policy tests (§3.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.policy import AlwaysAdmitPolicy, CompromisePolicy, StrictPolicy
from repro.core.progress_period import ResourceKind
from repro.core.resource_monitor import ResourceState
from repro.errors import ConfigError

CAP = 15_728_640


def state(usage=0):
    return ResourceState(kind=ResourceKind.LLC, capacity_bytes=CAP, usage_bytes=usage)


class TestStrict:
    def test_admits_exactly_fitting(self):
        assert StrictPolicy().allows(0, state())

    def test_denies_any_oversubscription(self):
        assert not StrictPolicy().allows(-1, state())

    def test_admits_with_room(self):
        assert StrictPolicy().allows(CAP // 2, state())

    def test_name_for_figures(self):
        assert StrictPolicy().name == "RDA: Strict"


class TestCompromise:
    def test_default_factor_is_two(self):
        assert CompromisePolicy().oversubscription == 2.0

    def test_allows_up_to_factor(self):
        p = CompromisePolicy(oversubscription=2.0)
        # usage + demand = 2 * capacity <=> outcome = -(capacity)
        assert p.allows(-CAP, state())
        assert not p.allows(-CAP - 1, state())

    def test_factor_one_equals_strict(self):
        p = CompromisePolicy(oversubscription=1.0)
        s = StrictPolicy()
        for outcome in (-1, 0, 100):
            assert p.allows(outcome, state()) == s.allows(outcome, state())

    def test_rejects_factor_below_one(self):
        with pytest.raises(ConfigError):
            CompromisePolicy(oversubscription=0.5)

    @given(st.floats(min_value=-4 * CAP, max_value=CAP))
    def test_compromise_admits_superset_of_strict(self, outcome):
        if StrictPolicy().allows(outcome, state()):
            assert CompromisePolicy().allows(outcome, state())


class TestAlwaysAdmit:
    @given(st.floats(min_value=-1e12, max_value=1e12))
    def test_admits_everything(self, outcome):
        assert AlwaysAdmitPolicy().allows(outcome, state())
