"""Partition-aware RDA scheduler tests (§6 extension)."""

import pytest

from repro.core.partitioning import PartitioningRdaScheduler, partitioned_kernel
from repro.core.policy import StrictPolicy
from repro.core.progress_period import ReuseLevel
from repro.mem.partition import PartitionedLlcModel
from repro.workloads.base import Phase, PpSpec, ProcessSpec, Workload

from ..conftest import make_phase, make_workload

MB = 1_000_000


def streaming_phase(wss_mb=20.0):
    wss = int(wss_mb * MB)
    return Phase(
        name="scan",
        instructions=300_000,
        flops_per_instr=0.1,
        mem_refs_per_instr=0.5,
        llc_refs_per_memref=0.125,
        wss_bytes=wss,
        reuse=0.05,
        pp=PpSpec(demand_bytes=wss, reuse=ReuseLevel.LOW),
    )


class TestScheduler:
    def test_manages_only_main_partition(self):
        sched = PartitioningRdaScheduler(policy=StrictPolicy())
        total = sched.config.llc_capacity
        assert sched.llc.capacity_bytes == total - total // 8

    def test_streams_bypass_admission(self):
        kernel = partitioned_kernel(policy=StrictPolicy())
        wl = Workload(
            name="scans",
            processes=[ProcessSpec(name="s", program=[streaming_phase()])] * 4,
        )
        kernel.launch(wl)
        kernel.run(max_events=500_000)
        assert kernel.all_exited
        sched = kernel.extension
        assert sched.bypassed == 4
        assert sched.predicate.stats.evaluated == 0

    def test_protected_periods_still_gated(self):
        kernel = partitioned_kernel(policy=StrictPolicy())
        wl = make_workload(n_processes=10, phases=[make_phase(wss_mb=5.0)])
        kernel.launch(wl)
        kernel.run(max_events=500_000)
        sched = kernel.extension
        assert kernel.all_exited
        assert sched.predicate.stats.denied > 0
        assert sched.bypassed == 0

    def test_mixed_workload_completes(self):
        kernel = partitioned_kernel(policy=StrictPolicy())
        wl = Workload(
            name="mix",
            processes=[
                ProcessSpec(name="s", program=[streaming_phase()]),
                ProcessSpec(name="h", program=[make_phase(wss_mb=6.0)]),
                ProcessSpec(name="h2", program=[make_phase(wss_mb=6.0)]),
            ],
        )
        kernel.launch(wl)
        kernel.run(max_events=500_000)
        assert kernel.all_exited
        assert kernel.extension.llc.usage_bytes == 0

    def test_kernel_uses_partitioned_model(self):
        kernel = partitioned_kernel()
        assert isinstance(kernel.machine.llc_model, PartitionedLlcModel)

    def test_pen_size_configurable(self):
        kernel = partitioned_kernel(streaming_partition_bytes=4 * MB)
        assert kernel.machine.llc_model.streaming_partition_bytes == 4 * MB
        assert kernel.extension.streaming_partition_bytes == 4 * MB
