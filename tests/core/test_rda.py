"""RdaScheduler tests against the simulated kernel (§3 integration)."""

import pytest

from repro.core.policy import CompromisePolicy, StrictPolicy
from repro.core.rda import RdaScheduler
from repro.core.progress_period import PeriodState
from repro.sim.kernel import AdmissionDecision, Kernel
from repro.sim.process import ThreadState

from ..conftest import make_phase, make_workload


def run_kernel(workload, policy=StrictPolicy(), config=None):
    scheduler = RdaScheduler(policy=policy, config=config)
    kernel = Kernel(config=config, extension=scheduler)
    kernel.launch(workload)
    kernel.run(max_events=2_000_000)
    return kernel, scheduler


class TestAdmissionThroughKernel:
    def test_small_workload_completes(self):
        kernel, sched = run_kernel(make_workload(n_processes=3))
        assert kernel.all_exited
        assert len(sched.registry) == 0
        assert len(sched.waitlist) == 0

    def test_strict_never_oversubscribes(self, paper_machine):
        # 20 processes x 4 MB against a 15.7 MB LLC: at most 3 at a time.
        wl = make_workload(n_processes=20, phases=[make_phase(wss_mb=4.0)])
        scheduler = RdaScheduler(policy=StrictPolicy(), config=paper_machine)
        kernel = Kernel(config=paper_machine, extension=scheduler)
        kernel.launch(wl)
        cap = paper_machine.llc_capacity
        max_seen = 0
        while not kernel.all_exited:
            kernel.engine.step()
            max_seen = max(max_seen, scheduler.llc.usage_bytes)
        assert max_seen <= cap

    def test_compromise_bounded_by_factor(self, paper_machine):
        wl = make_workload(n_processes=20, phases=[make_phase(wss_mb=4.0)])
        scheduler = RdaScheduler(
            policy=CompromisePolicy(oversubscription=2.0), config=paper_machine
        )
        kernel = Kernel(config=paper_machine, extension=scheduler)
        kernel.launch(wl)
        max_seen = 0
        while not kernel.all_exited:
            kernel.engine.step()
            max_seen = max(max_seen, scheduler.llc.usage_bytes)
        assert max_seen <= 2 * paper_machine.llc_capacity
        assert max_seen > paper_machine.llc_capacity  # it did oversubscribe

    def test_all_waiters_eventually_admitted(self):
        kernel, sched = run_kernel(
            make_workload(n_processes=30, phases=[make_phase(wss_mb=5.0)])
        )
        assert kernel.all_exited
        # every period completed exactly once
        assert len(sched.monitor.history) == 30
        assert all(p.state is PeriodState.COMPLETED for p in sched.monitor.history)

    def test_denials_recorded_in_waits(self):
        kernel, sched = run_kernel(
            make_workload(n_processes=10, phases=[make_phase(wss_mb=8.0)])
        )
        waited = [p for p in sched.monitor.history if p.waited_s > 0]
        assert len(waited) >= 8  # only one runs at a time; the rest waited


class TestStarvationGuard:
    def test_oversized_demand_forced_through(self, paper_machine):
        """A period larger than the LLC must not deadlock the system."""
        huge = make_phase(wss_mb=100.0)  # 100 MB > 15.7 MB LLC
        kernel, sched = run_kernel(
            make_workload(n_processes=2, phases=[huge]), config=paper_machine
        )
        assert kernel.all_exited
        assert sched.forced_admissions >= 1

    def test_guard_disabled_raises_diagnostic(self, paper_machine):
        from repro.errors import SimulationError

        huge = make_phase(wss_mb=100.0)
        scheduler = RdaScheduler(
            policy=StrictPolicy(), config=paper_machine, starvation_guard=False
        )
        kernel = Kernel(config=paper_machine, extension=scheduler)
        kernel.launch(make_workload(n_processes=2, phases=[huge]))
        with pytest.raises(SimulationError, match="stalled"):
            kernel.run(max_events=1_000_000)

    def test_forced_periods_carry_the_forced_flag(self, paper_machine):
        """Guard admissions are marked so the sanitizer can exempt them."""
        huge = make_phase(wss_mb=100.0)
        kernel, sched = run_kernel(
            make_workload(n_processes=2, phases=[huge]), config=paper_machine
        )
        forced = [p for p in sched.monitor.history if p.forced]
        assert len(forced) == sched.forced_admissions >= 1
        assert all(p.state is PeriodState.COMPLETED for p in forced)

    def test_mis_annotated_period_runs_under_sanitizer(self, paper_machine):
        """A demand larger than the LLC must run (not deadlock) and the
        forced admission must not count against the demand-bound invariant."""
        huge = make_phase(wss_mb=100.0)  # declared demand > whole LLC
        scheduler = RdaScheduler(policy=StrictPolicy(), config=paper_machine)
        kernel = Kernel(config=paper_machine, extension=scheduler, sanitize=True)
        kernel.launch(make_workload(n_processes=3, phases=[huge]))
        kernel.run(max_events=2_000_000)  # strict sanitizer: raises if dirty
        assert kernel.all_exited
        assert scheduler.forced_admissions >= 1
        assert kernel.sanitizer.ok

    def test_rescue_after_release_forces_waiting_head(self, paper_machine):
        """A fitting period runs first; once it completes and the resource
        drains to idle, _rescue_starved force-admits the oversized waiter."""
        from repro.workloads.base import ProcessSpec, Workload

        wl = Workload(
            name="rescue",
            processes=[
                ProcessSpec(name="fits", program=[make_phase(wss_mb=4.0)]),
                ProcessSpec(name="huge", program=[make_phase(wss_mb=100.0)]),
            ],
        )
        kernel, sched = run_kernel(wl, config=paper_machine)
        assert kernel.all_exited
        assert sched.forced_admissions >= 1
        huge = next(p for p in sched.monitor.history if p.demand_bytes > 50e6)
        assert huge.forced and huge.waited_s > 0  # denied first, rescued later


class TestUninstrumentedProcesses:
    def test_plain_processes_ignore_extension(self):
        plain = make_phase(declare_pp=False)
        kernel, sched = run_kernel(make_workload(n_processes=4, phases=[plain]))
        assert kernel.all_exited
        assert sched.predicate.stats.evaluated == 0

    def test_mixed_instrumented_and_plain(self):
        from repro.workloads.base import ProcessSpec, Workload

        wl = Workload(
            name="mixed",
            processes=[
                ProcessSpec(name="inst", program=[make_phase(wss_mb=5.0)]),
                ProcessSpec(name="plain", program=[make_phase(declare_pp=False)]),
            ],
        )
        kernel, sched = run_kernel(wl)
        assert kernel.all_exited
        assert len(sched.monitor.history) == 1


class TestDescribe:
    def test_describe_mentions_policy(self):
        sched = RdaScheduler(policy=StrictPolicy())
        assert "Strict" in sched.describe()
        assert sched.name == "RDA: Strict"
