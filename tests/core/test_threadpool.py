"""Task-pool guard tests (§3.4)."""

import pytest

from repro.core.policy import StrictPolicy
from repro.core.predicate import SchedulingPredicate
from repro.core.progress_period import PeriodRequest, ResourceKind, ReuseLevel
from repro.core.resource_monitor import ResourceMonitor
from repro.core.threadpool import ThreadPoolGuard
from repro.errors import ProgressPeriodError

CAP = 10_000


@pytest.fixture
def predicate():
    resources = ResourceMonitor()
    resources.register(ResourceKind.LLC, CAP)
    return SchedulingPredicate(resources, StrictPolicy())


def charge(predicate, demand):
    predicate.resources.increment_load(
        PeriodRequest(ResourceKind.LLC, demand, ReuseLevel.HIGH)
    )


class TestGuard:
    def test_pool_starts_enabled(self, predicate):
        guard = ThreadPoolGuard(predicate)
        assert not guard.disabled

    def test_denial_disables_whole_pool(self, predicate):
        guard = ThreadPoolGuard(predicate)
        assert guard.on_member_denied() is True  # transitioned
        assert guard.disabled
        assert guard.on_member_denied() is False  # already disabled

    def test_reenable_requires_aggregate_fit(self, predicate):
        guard = ThreadPoolGuard(predicate)
        for m in range(4):
            guard.register_member(m, 2000)
        assert guard.aggregate_demand == 8000
        guard.on_member_denied()
        charge(predicate, 5000)  # only 5000 free < 8000
        assert guard.try_enable() is False
        assert guard.disabled

    def test_reenable_when_resources_free(self, predicate):
        guard = ThreadPoolGuard(predicate)
        for m in range(4):
            guard.register_member(m, 2000)
        guard.on_member_denied()
        assert guard.try_enable() is True  # empty cache fits all 8000
        assert not guard.disabled

    def test_try_enable_noop_when_enabled(self, predicate):
        guard = ThreadPoolGuard(predicate)
        assert guard.try_enable() is True

    def test_unregister_shrinks_demand(self, predicate):
        guard = ThreadPoolGuard(predicate)
        guard.register_member("a", 9000)
        guard.register_member("b", 9000)
        guard.on_member_denied()
        assert guard.try_enable() is False
        guard.unregister_member("b")
        assert guard.try_enable() is True

    def test_negative_demand_rejected(self, predicate):
        with pytest.raises(ProgressPeriodError):
            ThreadPoolGuard(predicate).register_member("a", -1)
