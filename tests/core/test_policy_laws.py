"""Algebraic laws relating the scheduling policies (hypothesis)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.policy import AlwaysAdmitPolicy, CompromisePolicy, StrictPolicy
from repro.core.progress_period import ResourceKind
from repro.core.resource_monitor import ResourceState

CAP = 15_728_640

outcome_st = st.floats(min_value=-8 * CAP, max_value=2 * CAP)
usage_st = st.integers(min_value=0, max_value=4 * CAP)
factor_st = st.floats(min_value=1.0, max_value=8.0)


def state(usage=0):
    return ResourceState(kind=ResourceKind.LLC, capacity_bytes=CAP, usage_bytes=usage)


class TestPolicyLattice:
    @given(outcome_st, usage_st)
    def test_strict_admits_subset_of_compromise(self, outcome, usage):
        s = state(usage)
        if StrictPolicy().allows(outcome, s):
            assert CompromisePolicy().allows(outcome, s)

    @given(outcome_st, usage_st, factor_st, factor_st)
    def test_compromise_monotone_in_factor(self, outcome, usage, f1, f2):
        lo, hi = sorted((f1, f2))
        s = state(usage)
        if CompromisePolicy(oversubscription=lo).allows(outcome, s):
            assert CompromisePolicy(oversubscription=hi).allows(outcome, s)

    @given(outcome_st, usage_st)
    def test_always_admit_is_the_top(self, outcome, usage):
        s = state(usage)
        for policy in (StrictPolicy(), CompromisePolicy()):
            if policy.allows(outcome, s):
                assert AlwaysAdmitPolicy().allows(outcome, s)

    @given(usage_st)
    def test_zero_demand_always_admitted_when_capacity_free(self, usage):
        """outcome = remaining - 0 = capacity - usage."""
        s = state(usage)
        outcome = s.remaining_bytes
        if usage <= CAP:
            assert StrictPolicy().allows(outcome, s)
        if usage <= 2 * CAP:
            assert CompromisePolicy().allows(outcome, s)

    @given(outcome_st, usage_st)
    def test_decisions_are_deterministic(self, outcome, usage):
        s = state(usage)
        for policy in (StrictPolicy(), CompromisePolicy(), AlwaysAdmitPolicy()):
            assert policy.allows(outcome, s) == policy.allows(outcome, s)
