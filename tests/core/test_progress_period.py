"""Progress-period data model tests (§2)."""

import pytest

from repro.core.progress_period import (
    PeriodRequest,
    PeriodState,
    ProgressPeriod,
    ResourceKind,
    ReuseLevel,
)
from repro.errors import ProgressPeriodError


class TestReuseLevel:
    def test_three_levels_as_in_table2(self):
        assert {l.value for l in ReuseLevel} == {"low", "med", "high"}

    def test_fractions_are_ordered(self):
        assert (
            ReuseLevel.LOW.fraction
            < ReuseLevel.MEDIUM.fraction
            < ReuseLevel.HIGH.fraction
        )

    @pytest.mark.parametrize(
        "fraction,expected",
        [(0.0, ReuseLevel.LOW), (0.5, ReuseLevel.MEDIUM), (0.95, ReuseLevel.HIGH)],
    )
    def test_from_fraction_nearest(self, fraction, expected):
        assert ReuseLevel.from_fraction(fraction) is expected

    def test_from_fraction_validates(self):
        with pytest.raises(ProgressPeriodError):
            ReuseLevel.from_fraction(1.5)

    def test_roundtrip(self):
        for level in ReuseLevel:
            assert ReuseLevel.from_fraction(level.fraction) is level


class TestPeriodRequest:
    def test_figure4_request(self):
        req = PeriodRequest(
            resource=ResourceKind.LLC,
            demand_bytes=int(6.3 * 2**20),
            reuse=ReuseLevel.HIGH,
            label="DGEMM",
        )
        assert req.resource is ResourceKind.LLC
        assert req.demand_bytes == 6606028

    def test_rejects_negative_demand(self):
        with pytest.raises(ProgressPeriodError):
            PeriodRequest(ResourceKind.LLC, -1, ReuseLevel.LOW)

    def test_zero_demand_allowed(self):
        PeriodRequest(ResourceKind.LLC, 0, ReuseLevel.LOW)


class TestProgressPeriod:
    def make(self):
        req = PeriodRequest(ResourceKind.LLC, 1000, ReuseLevel.HIGH)
        return ProgressPeriod(request=req, owner=object(), begin_time=5.0)

    def test_unique_ids(self):
        ids = {self.make().pp_id for _ in range(100)}
        assert len(ids) == 100

    def test_initial_state(self):
        pp = self.make()
        assert pp.state is PeriodState.REQUESTED
        assert pp.admit_time is None and pp.end_time is None

    def test_waited_time(self):
        pp = self.make()
        assert pp.waited_s == 0.0
        pp.admit_time = 9.0
        assert pp.waited_s == pytest.approx(4.0)

    def test_shortcuts(self):
        pp = self.make()
        assert pp.demand_bytes == 1000
        assert pp.resource is ResourceKind.LLC
