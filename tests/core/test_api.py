"""User-level API tests (§2.3, figure 4)."""

import pytest

from repro.core.api import (
    KB,
    MB,
    RESOURCE_LLC,
    REUSE_HIGH,
    REUSE_LOW,
    REUSE_MED,
    ProgressPeriodApi,
)
from repro.core.policy import StrictPolicy
from repro.core.predicate import SchedulingPredicate
from repro.core.progress_monitor import ProgressMonitor
from repro.core.progress_period import ResourceKind, ReuseLevel
from repro.core.resource_monitor import ResourceMonitor
from repro.errors import BlockingSyncInPeriodError, ProgressPeriodError

CAP = 16 * 1024 * 1024


@pytest.fixture
def api():
    resources = ResourceMonitor()
    resources.register(ResourceKind.LLC, CAP)
    monitor = ProgressMonitor(
        resources, SchedulingPredicate(resources, StrictPolicy()), clock=lambda: 0.0
    )
    return ProgressPeriodApi(monitor)


class TestConstants:
    def test_mb_macro_matches_figure4(self):
        assert MB(6.3) == int(6.3 * 1024 * 1024)
        assert KB(32) == 32768

    def test_reuse_constants(self):
        assert REUSE_LOW is ReuseLevel.LOW
        assert REUSE_MED is ReuseLevel.MEDIUM
        assert REUSE_HIGH is ReuseLevel.HIGH
        assert RESOURCE_LLC is ResourceKind.LLC


class TestFigure4Flow:
    def test_begin_run_end(self, api):
        pp_id = api.pp_begin(RESOURCE_LLC, MB(6.3), REUSE_HIGH, label="DGEMM")
        assert api.is_admitted(pp_id)
        assert api.open_count == 1
        api.pp_end(pp_id)
        assert api.open_count == 0

    def test_denied_period_reports_not_admitted(self, api):
        api.pp_begin(RESOURCE_LLC, MB(10), REUSE_HIGH)
        second = api.pp_begin(RESOURCE_LLC, MB(10), REUSE_HIGH)
        assert not api.is_admitted(second)

    def test_end_twice_raises(self, api):
        pp_id = api.pp_begin(RESOURCE_LLC, MB(1), REUSE_LOW)
        api.pp_end(pp_id)
        with pytest.raises(ProgressPeriodError):
            api.pp_end(pp_id)

    def test_end_foreign_id_raises(self, api):
        with pytest.raises(ProgressPeriodError):
            api.pp_end(999)

    def test_is_admitted_unknown_raises(self, api):
        with pytest.raises(ProgressPeriodError):
            api.is_admitted(1)

    def test_period_accessor(self, api):
        pp_id = api.pp_begin(RESOURCE_LLC, MB(2), REUSE_MED, label="x")
        assert api.period(pp_id).request.label == "x"


class TestBlockingSyncRestriction:
    def test_sync_outside_periods_allowed(self, api):
        api.blocking_sync()  # no open periods: fine

    def test_sync_inside_period_raises(self, api):
        api.pp_begin(RESOURCE_LLC, MB(1), REUSE_HIGH)
        with pytest.raises(BlockingSyncInPeriodError):
            api.blocking_sync()

    def test_sync_allowed_again_after_end(self, api):
        pp_id = api.pp_begin(RESOURCE_LLC, MB(1), REUSE_HIGH)
        api.pp_end(pp_id)
        api.blocking_sync()

    def test_error_names_the_open_periods(self, api):
        pp_id = api.pp_begin(RESOURCE_LLC, MB(1), REUSE_HIGH)
        with pytest.raises(BlockingSyncInPeriodError, match=str(pp_id)):
            api.blocking_sync()
