"""Progress monitor tests (figures 5 and 6 workflows)."""

import pytest

from repro.core.policy import StrictPolicy
from repro.core.predicate import SchedulingPredicate
from repro.core.progress_monitor import ProgressMonitor
from repro.core.progress_period import (
    PeriodRequest,
    PeriodState,
    ResourceKind,
    ReuseLevel,
)
from repro.core.resource_monitor import ResourceMonitor

CAP = 10_000


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def monitor():
    resources = ResourceMonitor()
    resources.register(ResourceKind.LLC, CAP)
    clock = FakeClock()
    m = ProgressMonitor(
        resources=resources,
        predicate=SchedulingPredicate(resources, StrictPolicy()),
        clock=clock,
    )
    m.fake_clock = clock  # type: ignore[attr-defined]
    return m


def req(demand, key=None):
    return PeriodRequest(ResourceKind.LLC, demand, ReuseLevel.HIGH, sharing_key=key)


class TestBegin:
    def test_admitted_period_runs(self, monitor):
        pp = monitor.begin("t1", req(4000))
        assert pp.state is PeriodState.RUNNING
        assert pp.admit_time == 0.0
        assert monitor.active_count == 1
        assert monitor.waiting_count == 0

    def test_denied_period_waits(self, monitor):
        monitor.begin("t1", req(9000))
        pp = monitor.begin("t2", req(5000))
        assert pp.state is PeriodState.WAITING
        assert monitor.waiting_count == 1
        assert pp.admit_time is None

    def test_begin_returns_unique_ids(self, monitor):
        a = monitor.begin("t1", req(100))
        b = monitor.begin("t2", req(100))
        assert a.pp_id != b.pp_id


class TestEnd:
    def test_end_releases_demand(self, monitor):
        pp = monitor.begin("t1", req(4000))
        monitor.end(pp.pp_id)
        assert monitor.resources.state(ResourceKind.LLC).usage_bytes == 0
        assert pp.state is PeriodState.COMPLETED
        assert monitor.active_count == 0

    def test_end_admits_waiters(self, monitor):
        first = monitor.begin("t1", req(9000))
        waiting = monitor.begin("t2", req(5000))
        _, admitted = monitor.end(first.pp_id)
        assert admitted == [waiting]
        assert waiting.state is PeriodState.RUNNING

    def test_end_admits_multiple_waiters(self, monitor):
        first = monitor.begin("t1", req(10_000))
        w1 = monitor.begin("t2", req(4000))
        w2 = monitor.begin("t3", req(4000))
        w3 = monitor.begin("t4", req(4000))
        _, admitted = monitor.end(first.pp_id)
        assert admitted == [w1, w2]
        assert w3.state is PeriodState.WAITING

    def test_waited_time_recorded(self, monitor):
        first = monitor.begin("t1", req(9000))
        waiting = monitor.begin("t2", req(5000))
        monitor.fake_clock.t = 7.5
        monitor.end(first.pp_id)
        assert waiting.waited_s == pytest.approx(7.5)

    def test_end_unknown_id_raises(self, monitor):
        from repro.errors import UnknownProgressPeriodError

        with pytest.raises(UnknownProgressPeriodError):
            monitor.end(424242)

    def test_history_records_completions(self, monitor):
        pp = monitor.begin("t1", req(100))
        monitor.end(pp.pp_id)
        assert monitor.history == [pp]


class TestAbandon:
    def test_abandon_releases_running(self, monitor):
        monitor.begin("t1", req(9000))
        waiting = monitor.begin("t2", req(5000))
        admitted = monitor.abandon_owner("t1")
        assert monitor.resources.state(ResourceKind.LLC).usage_bytes == 5000
        assert admitted == [waiting]

    def test_abandon_unparks_waiting(self, monitor):
        monitor.begin("t1", req(9000))
        monitor.begin("t2", req(5000))
        monitor.abandon_owner("t2")
        assert monitor.waiting_count == 0
        assert monitor.active_count == 1

    def test_abandon_handles_multiple_periods(self, monitor):
        monitor.begin("t1", req(3000))
        monitor.begin("t1", req(3000))
        monitor.abandon_owner("t1")
        assert monitor.resources.state(ResourceKind.LLC).usage_bytes == 0

    def test_abandon_without_periods_is_noop(self, monitor):
        assert monitor.abandon_owner("ghost") == []


class TestSharedGroups:
    def test_sibling_periods_share_one_charge(self, monitor):
        a = monitor.begin("t1", req(9000, key="proc"))
        b = monitor.begin("t2", req(9000, key="proc"))
        assert a.state is PeriodState.RUNNING
        assert b.state is PeriodState.RUNNING
        assert monitor.resources.state(ResourceKind.LLC).usage_bytes == 9000
        monitor.end(a.pp_id)
        assert monitor.resources.state(ResourceKind.LLC).usage_bytes == 9000
        monitor.end(b.pp_id)
        assert monitor.resources.state(ResourceKind.LLC).usage_bytes == 0

    def test_waitlisted_group_admitted_together(self, monitor):
        blocker = monitor.begin("t0", req(8000))
        a = monitor.begin("t1", req(5000, key="proc"))
        b = monitor.begin("t2", req(5000, key="proc"))
        assert a.state is PeriodState.WAITING and b.state is PeriodState.WAITING
        _, admitted = monitor.end(blocker.pp_id)
        assert set(admitted) == {a, b}
        assert monitor.resources.state(ResourceKind.LLC).usage_bytes == 5000
