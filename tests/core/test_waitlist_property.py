"""Property-based tests for ``Waitlist.drain_admissible``.

An independent brute-force oracle re-specifies the drain semantics from
the docstring alone — repeatedly scan from the head, admit the first
acceptable waiter, remove it, restart — against a stateful capacity
predicate with shared-working-set accounting (the shape the real
Algorithm-1 predicate has).  Hypothesis then searches queue/capacity/
sharing configurations for any divergence, plus the structural laws the
server relies on: fixpoint on exit, relative-order preservation, no
duplicate admissions, and strict-FIFO being exactly the admissible
prefix.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.progress_period import (
    PeriodRequest,
    ProgressPeriod,
    ResourceKind,
    ReuseLevel,
)
from repro.core.waitlist import Waitlist

KIND = ResourceKind.LLC

#: one queue entry: (demand, sharing_key or None)
entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10),
        st.one_of(st.none(), st.sampled_from(["a", "b", "c"])),
    ),
    max_size=12,
)


def make_periods(spec):
    return [
        ProgressPeriod(
            request=PeriodRequest(
                resource=KIND,
                demand_bytes=demand,
                reuse=ReuseLevel.LOW,
                sharing_key=key,
            ),
            owner=object(),
        )
        for demand, key in spec
    ]


class CapacityPredicate:
    """Stateful admit(): fits-in-remaining-capacity, shared keys charged once.

    The same marginal-demand shape as the real SchedulingPredicate: a
    period whose sharing key is already charged adds zero marginal demand,
    so admitting one waiter can make an *earlier* waiter admissible.
    """

    def __init__(self, capacity, usage=0, charged=()):
        self.capacity = capacity
        self.usage = usage
        self.charged = set(charged)

    def marginal(self, period):
        key = period.request.sharing_key
        if key is not None and key in self.charged:
            return 0
        return period.demand_bytes

    def __call__(self, period):
        if self.usage + self.marginal(period) > self.capacity:
            return False
        self.usage += self.marginal(period)
        key = period.request.sharing_key
        if key is not None:
            self.charged.add(key)
        return True


def oracle_drain(periods, predicate):
    """Brute-force restart-from-head drain, reimplemented from scratch."""
    queue = list(periods)
    admitted = []
    progressed = True
    while progressed:
        progressed = False
        for period in queue:
            if predicate(period):
                queue.remove(period)
                admitted.append(period)
                progressed = True
                break
    return admitted, queue


def drained_waitlist(periods, predicate, strict_fifo=False):
    waitlist = Waitlist(strict_fifo=strict_fifo)
    for period in periods:
        waitlist.park(period)
    admitted = waitlist.drain_admissible(KIND, predicate)
    remaining = list(waitlist.all_waiting())
    return admitted, remaining


@settings(max_examples=300, deadline=None)
@given(spec=entries, capacity=st.integers(0, 15), usage=st.integers(0, 15))
def test_drain_matches_brute_force_oracle(spec, capacity, usage):
    periods = make_periods(spec)
    admitted, remaining = drained_waitlist(
        periods, CapacityPredicate(capacity, usage)
    )
    oracle_admitted, oracle_remaining = oracle_drain(
        periods, CapacityPredicate(capacity, usage)
    )
    assert [p.pp_id for p in admitted] == [p.pp_id for p in oracle_admitted]
    assert [p.pp_id for p in remaining] == [p.pp_id for p in oracle_remaining]


@settings(max_examples=300, deadline=None)
@given(spec=entries, capacity=st.integers(0, 15), usage=st.integers(0, 15))
def test_drain_laws(spec, capacity, usage):
    periods = make_periods(spec)
    predicate = CapacityPredicate(capacity, usage)
    admitted, remaining = drained_waitlist(periods, predicate)

    # partition: every period is admitted or remaining, never both
    admitted_ids = [p.pp_id for p in admitted]
    remaining_ids = [p.pp_id for p in remaining]
    assert sorted(admitted_ids + remaining_ids) == sorted(
        p.pp_id for p in periods
    )
    assert len(set(admitted_ids)) == len(admitted_ids)

    # relative order of the non-admitted is preserved
    original_order = [p.pp_id for p in periods if p.pp_id in remaining_ids]
    assert remaining_ids == original_order

    # fixpoint: no remaining waiter is admissible in the final state
    # (probe with copies so the predicate state is not disturbed)
    for period in remaining:
        probe = CapacityPredicate(
            predicate.capacity, predicate.usage, predicate.charged
        )
        assert not probe(period)


@settings(max_examples=300, deadline=None)
@given(spec=entries, capacity=st.integers(0, 15), usage=st.integers(0, 15))
def test_strict_fifo_is_the_admissible_prefix(spec, capacity, usage):
    periods = make_periods(spec)
    admitted, remaining = drained_waitlist(
        periods, CapacityPredicate(capacity, usage), strict_fifo=True
    )

    # strict mode admits exactly the longest admissible prefix
    probe = CapacityPredicate(capacity, usage)
    expected = []
    for period in periods:
        if not probe(period):
            break
        expected.append(period.pp_id)
    assert [p.pp_id for p in admitted] == expected
    assert [p.pp_id for p in remaining] == [
        p.pp_id for p in periods[len(expected):]
    ]


@settings(max_examples=200, deadline=None)
@given(spec=entries, capacity=st.integers(0, 15))
def test_non_fifo_admits_at_least_as_many_as_strict(spec, capacity):
    periods_a = make_periods(spec)
    periods_b = make_periods(spec)
    relaxed, _ = drained_waitlist(periods_a, CapacityPredicate(capacity))
    strict, _ = drained_waitlist(
        periods_b, CapacityPredicate(capacity), strict_fifo=True
    )
    assert len(relaxed) >= len(strict)
