"""ITKO static-profile baseline tests."""

import pytest

from repro.core.itko import ItkoScheduler, profile_workload
from repro.sim.kernel import AdmissionDecision, Kernel
from repro.workloads.base import ProcessSpec, Workload
from repro.workloads.splash2 import water_nsquared_workload

from ..conftest import make_phase, make_workload

MB = 1_000_000


class TestProfiling:
    def test_profile_records_phase_wss(self):
        wl = make_workload(n_processes=2, phases=[make_phase("hot", wss_mb=4.0)])
        profile = profile_workload(wl)
        assert profile == {"hot": 4 * MB}

    def test_profile_covers_water(self):
        profile = profile_workload(water_nsquared_workload())
        assert set(profile) == {"predic+intraf", "interf", "correc+kineti"}

    def test_profile_ignores_barriers(self):
        profile = profile_workload(water_nsquared_workload())
        assert not any("b0" in name for name in profile)


class TestHotClassification:
    def test_threshold_default_is_core_share(self):
        sched = ItkoScheduler({"a": 1}, hot_threshold_bytes=None)
        assert sched.hot_threshold_bytes == sched.config.llc_capacity // 12

    def test_slots_sized_by_mean_hot_set(self):
        sched = ItkoScheduler(
            {"hot": 4 * MB, "cold": 1000}, hot_threshold_bytes=1 * MB
        )
        assert sched.hot_slots == sched.config.llc_capacity // (4 * MB)

    def test_all_cold_profile_never_gates(self):
        sched = ItkoScheduler({"cold": 1000}, hot_threshold_bytes=1 * MB)
        assert sched.hot_slots > 10**6

    def test_unprofiled_phase_counts_staleness(self):
        wl = make_workload(n_processes=2, phases=[make_phase("new-code", wss_mb=4.0)])
        sched = ItkoScheduler({"other": 4 * MB})
        kernel = Kernel(extension=sched)
        kernel.launch(wl)
        kernel.run(max_events=100_000)
        assert kernel.all_exited
        assert sched.unprofiled >= 2  # never gated, but noticed


class TestGating:
    def run(self, workload, profile=None, threshold=1 * MB):
        profile = profile if profile is not None else profile_workload(workload)
        sched = ItkoScheduler(profile, hot_threshold_bytes=threshold)
        kernel = Kernel(extension=sched)
        kernel.launch(workload)
        kernel.run(max_events=2_000_000)
        return kernel, sched

    def test_hot_phases_limited_to_slots(self):
        wl = make_workload(n_processes=10, phases=[make_phase("hot", wss_mb=5.0)])
        kernel, sched = self.run(wl)
        assert kernel.all_exited
        assert sched.hot_slots == 3  # 15.7 MB / 5 MB
        assert sched._hot_running == 0  # all released

    def test_cold_phases_unlimited(self):
        wl = make_workload(n_processes=10, phases=[make_phase("cold", wss_mb=0.5)])
        kernel, sched = self.run(wl)
        assert kernel.all_exited
        report = kernel.machine.counters
        from repro.perf.counters import HwCounter

        assert report.read(HwCounter.PP_DENIALS) == 0

    def test_siblings_share_one_slot(self):
        wl = make_workload(
            n_processes=4, n_threads=2,
            phases=[make_phase("hot", wss_mb=5.0, shared=True)],
        )
        kernel, sched = self.run(wl)
        assert kernel.all_exited

    def test_stale_profile_underestimates(self):
        """Gating with 1x-profiled sizes over a 2x-sized reality."""
        profile = profile_workload(water_nsquared_workload(input_scale=1.0))
        wl = water_nsquared_workload(input_scale=2.0)
        sched = ItkoScheduler(profile)
        kernel = Kernel(extension=sched)
        kernel.launch(wl)
        kernel.run(max_events=5_000_000)
        assert kernel.all_exited
        # slots were computed from 1x sizes: 15.7 / 3.63 -> 4 co-running
        # processes whose *actual* sets are ~2x bigger: oversubscribed
        actual_wss = wl.processes[0].program[0].wss_bytes
        assert sched.hot_slots * actual_wss > sched.config.llc_capacity

    def test_input_scale_validation(self):
        with pytest.raises(ValueError):
            water_nsquared_workload(input_scale=0.0)
