"""Multi-resource management tests (§6: "configurable to allow multiple
hardware resources to be targeted")."""

import pytest

from repro.core.policy import StrictPolicy
from repro.core.progress_period import PeriodRequest, ResourceKind, ReuseLevel
from repro.core.rda import RdaScheduler
from repro.sim.kernel import AdmissionDecision, Kernel
from repro.workloads.base import Phase, PpSpec, ProcessSpec, Workload

from ..conftest import make_phase


class TestExtraResources:
    def test_registering_a_second_resource(self):
        sched = RdaScheduler(
            policy=StrictPolicy(),
            extra_resources={ResourceKind.MEMORY_BANDWIDTH: 19_000_000_000},
        )
        assert sched.resources.known(ResourceKind.MEMORY_BANDWIDTH)
        assert ResourceKind.MEMORY_BANDWIDTH in sched.managed_kinds

    def test_admission_gates_on_the_declared_resource(self):
        sched = RdaScheduler(
            policy=StrictPolicy(),
            extra_resources={ResourceKind.MEMORY_BANDWIDTH: 1000},
        )
        kernel = Kernel(extension=sched)

        bw_request = PeriodRequest(
            ResourceKind.MEMORY_BANDWIDTH, 800, ReuseLevel.LOW
        )
        # fabricate two thread-like owners via a tiny workload
        wl = Workload(
            name="w",
            processes=[ProcessSpec(name="p", program=[make_phase()])] * 2,
        )
        procs = [kernel.spawn(s) for s in wl.processes]
        t1, t2 = procs[0].threads[0], procs[1].threads[0]

        _, d1 = sched.on_pp_begin(t1, bw_request)
        _, d2 = sched.on_pp_begin(t2, bw_request)
        assert d1 is AdmissionDecision.RUN
        assert d2 is AdmissionDecision.WAIT  # 1600 > 1000
        state = sched.resources.state(ResourceKind.MEMORY_BANDWIDTH)
        assert state.usage_bytes == 800

    def test_llc_admission_unaffected_by_extra_resource(self):
        sched = RdaScheduler(
            policy=StrictPolicy(),
            extra_resources={ResourceKind.MEMORY_BANDWIDTH: 1000},
        )
        kernel = Kernel(extension=sched)
        wl = Workload(
            name="w",
            processes=[ProcessSpec(name="p", program=[make_phase(wss_mb=2.0)])] * 3,
        )
        kernel.launch(wl)
        kernel.run(max_events=200_000)
        assert kernel.all_exited
        assert sched.llc.usage_bytes == 0
        assert sched.resources.state(ResourceKind.MEMORY_BANDWIDTH).usage_bytes == 0
