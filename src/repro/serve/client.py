"""Asyncio client for the admission-control service.

A thin, explicit wrapper over the NDJSON protocol: one request per call,
one reply per call (a ``pp_begin`` call blocks while the server parks the
connection — the figure-4 contract, where the kernel blocks the calling
thread).  Used by the load generator, the tests and
``examples/serve_quickstart.py``; application code would embed the same
dozen lines in any language.

:class:`~repro.serve.resilient.ResilientServeClient` layers reconnects,
retries and idempotent re-issue on top of this class — prefer it for any
client that must survive server restarts or flaky transports.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, Optional

from ..errors import ProtocolError, ServeError
from . import protocol

__all__ = ["ServeClient", "ServeReplyError"]


class ServeReplyError(ServeError):
    """The server answered with a typed error reply."""

    def __init__(self, reply: Dict[str, Any]) -> None:
        error = reply.get("error") or {}
        self.code = error.get("code", protocol.ErrorCode.INTERNAL)
        self.detail = error.get("message", "")
        self.reply = reply
        super().__init__(f"{self.code}: {self.detail}")

    @property
    def retry_after_s(self) -> Optional[float]:
        return (self.reply.get("error") or {}).get("retry_after_s")


class ServeClient:
    """One connection to an admission server."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self._ids = itertools.count(1)
        self._closed = False
        #: length-prefixed binary framing; flips on after a successful
        #: ``hello(binary=True)`` handshake (the switch is one-way)
        self.binary = False

    @classmethod
    async def connect(
        cls,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        limit: int = protocol.MAX_FRAME_BYTES,
        timeout: Optional[float] = None,
    ) -> "ServeClient":
        """Open a connection; ``timeout`` bounds the connect itself."""
        if unix_path is not None:
            opening = asyncio.open_unix_connection(unix_path, limit=limit)
        elif host is not None and port is not None:
            opening = asyncio.open_connection(host, port, limit=limit)
        else:
            raise ServeError("need a unix socket path or a TCP host+port")
        if timeout is not None:
            reader, writer = await asyncio.wait_for(opening, timeout=timeout)
        else:
            reader, writer = await opening
        return cls(reader, writer)

    @property
    def closed(self) -> bool:
        return self._closed

    async def close(self) -> None:
        """Close the connection.  Idempotent — safe to call twice, safe to
        call on a connection whose transport (or loop) is already gone."""
        if self._closed:
            return
        self._closed = True
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (OSError, RuntimeError):
            # OSError covers ConnectionError plus the EINVAL a transport
            # aborted mid-close can surface from wait_closed();
            # RuntimeError covers "Event loop is closed" during teardown.
            pass
        # Unblock any pending readline cleanly: feeding EOF makes a racing
        # reader see b"" instead of hanging on a dead transport.
        try:
            self.reader.feed_eof()
        except (AssertionError, RuntimeError):
            pass

    # ------------------------------------------------------------------
    async def call_raw(
        self, op: str, timeout: Optional[float] = None, **fields: Any
    ) -> Dict[str, Any]:
        """Send one request and return the raw reply frame (ok or error).

        ``timeout`` bounds the whole round trip; on expiry the call raises
        :class:`asyncio.TimeoutError` and the connection must be considered
        desynchronized (the reply may still arrive later) — close it.
        """
        if self._closed:
            raise ServeError("client is closed")
        request_id = next(self._ids)
        frame: Dict[str, Any] = {
            "v": protocol.PROTOCOL_VERSION, "id": request_id, "op": op,
        }
        frame.update(fields)

        async def round_trip() -> Dict[str, Any]:
            if self.binary:
                self.writer.write(protocol.encode_binary_frame(frame))
            else:
                self.writer.write(protocol.encode_frame(frame))
            await self.writer.drain()
            return await self._read_reply()

        if timeout is None:
            return await round_trip()
        return await asyncio.wait_for(round_trip(), timeout=timeout)

    async def _read_reply(self) -> Dict[str, Any]:
        """Read one reply frame in the connection's current encoding."""
        if not self.binary:
            line = await self.reader.readline()
            if not line:
                raise ProtocolError(
                    protocol.ErrorCode.INTERNAL, "server closed the connection"
                )
            return protocol.decode_frame(line)
        try:
            header = await self.reader.readexactly(protocol.BINARY_HEADER_BYTES)
            length = protocol.parse_binary_header(header)
            payload = await self.reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError(
                protocol.ErrorCode.INTERNAL, "server closed the connection"
            ) from None
        return protocol.decode_binary_frame(header + payload)

    async def call(
        self, op: str, timeout: Optional[float] = None, **fields: Any
    ) -> Dict[str, Any]:
        """Like :meth:`call_raw`, raising :class:`ServeReplyError` on errors."""
        reply = await self.call_raw(op, timeout=timeout, **fields)
        if not reply.get("ok"):
            raise ServeReplyError(reply)
        return reply

    # ------------------------------------------------------------------
    async def hello(self, client: str, binary: bool = False) -> Dict[str, Any]:
        """Bind this connection to a durable, lease-holding identity.

        With ``binary=True`` the hello also negotiates the length-prefixed
        binary framing: the handshake itself runs in the current encoding,
        and every frame after the server's acknowledging reply switches.
        """
        if binary:
            reply = await self.call("hello", client=client, binary=True)
            if reply.get("binary"):
                self.binary = True
            return reply
        return await self.call("hello", client=client)

    async def heartbeat(self) -> Dict[str, Any]:
        """Renew the client lease (requires a prior :meth:`hello`)."""
        return await self.call("heartbeat")

    async def pp_begin(
        self,
        demand_bytes: int,
        reuse: str = "low",
        resource: str = "llc",
        label: str = "",
        sharing_key: Optional[str] = None,
        token: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Figure 4's ``pp_begin`` over the wire; blocks while parked.

        ``token`` is an optional idempotency token: re-issuing the same
        begin after a lost reply returns the already-admitted period
        instead of charging twice (see ``docs/SERVE.md``).
        """
        fields: Dict[str, Any] = {
            "resource": resource,
            "demand_bytes": demand_bytes,
            "reuse": reuse,
            "label": label,
        }
        if sharing_key is not None:
            fields["sharing_key"] = sharing_key
        if token is not None:
            fields["token"] = token
        return await self.call("pp_begin", timeout=timeout, **fields)

    async def pp_end(
        self,
        pp_id: int,
        timeout: Optional[float] = None,
        observed_bytes: Optional[int] = None,
    ) -> Dict[str, Any]:
        """End a period.  ``observed_bytes`` optionally reports the working
        set actually touched, feeding the server's demand estimator when
        it runs with ``--predict``."""
        fields: Dict[str, Any] = {"pp_id": pp_id}
        if observed_bytes is not None:
            fields["observed_bytes"] = observed_bytes
        return await self.call("pp_end", timeout=timeout, **fields)

    async def query(
        self, pp_id: Optional[int] = None, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        if pp_id is None:
            return await self.call("query", timeout=timeout)
        return await self.call("query", timeout=timeout, pp_id=pp_id)

    async def stats(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        return (await self.call("stats", timeout=timeout))["stats"]

    async def drain(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        return await self.call("drain", timeout=timeout)
