"""Asyncio client for the admission-control service.

A thin, explicit wrapper over the NDJSON protocol: one request per call,
one reply per call (a ``pp_begin`` call blocks while the server parks the
connection — the figure-4 contract, where the kernel blocks the calling
thread).  Used by the load generator, the tests and
``examples/serve_quickstart.py``; application code would embed the same
dozen lines in any language.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, Optional

from ..errors import ProtocolError, ServeError
from . import protocol

__all__ = ["ServeClient", "ServeReplyError"]


class ServeReplyError(ServeError):
    """The server answered with a typed error reply."""

    def __init__(self, reply: Dict[str, Any]) -> None:
        error = reply.get("error") or {}
        self.code = error.get("code", protocol.ErrorCode.INTERNAL)
        self.detail = error.get("message", "")
        self.reply = reply
        super().__init__(f"{self.code}: {self.detail}")

    @property
    def retry_after_s(self) -> Optional[float]:
        return (self.reply.get("error") or {}).get("retry_after_s")


class ServeClient:
    """One connection to an admission server."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self._ids = itertools.count(1)

    @classmethod
    async def connect(
        cls,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        limit: int = protocol.MAX_FRAME_BYTES,
    ) -> "ServeClient":
        if unix_path is not None:
            reader, writer = await asyncio.open_unix_connection(
                unix_path, limit=limit
            )
        elif host is not None and port is not None:
            reader, writer = await asyncio.open_connection(host, port, limit=limit)
        else:
            raise ServeError("need a unix socket path or a TCP host+port")
        return cls(reader, writer)

    async def close(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass

    # ------------------------------------------------------------------
    async def call_raw(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and return the raw reply frame (ok or error)."""
        request_id = next(self._ids)
        frame: Dict[str, Any] = {
            "v": protocol.PROTOCOL_VERSION, "id": request_id, "op": op,
        }
        frame.update(fields)
        self.writer.write(protocol.encode_frame(frame))
        await self.writer.drain()
        line = await self.reader.readline()
        if not line:
            raise ProtocolError(
                protocol.ErrorCode.INTERNAL, "server closed the connection"
            )
        return protocol.decode_frame(line)

    async def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Like :meth:`call_raw`, raising :class:`ServeReplyError` on errors."""
        reply = await self.call_raw(op, **fields)
        if not reply.get("ok"):
            raise ServeReplyError(reply)
        return reply

    # ------------------------------------------------------------------
    async def pp_begin(
        self,
        demand_bytes: int,
        reuse: str = "low",
        resource: str = "llc",
        label: str = "",
        sharing_key: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Figure 4's ``pp_begin`` over the wire; blocks while parked."""
        fields: Dict[str, Any] = {
            "resource": resource,
            "demand_bytes": demand_bytes,
            "reuse": reuse,
            "label": label,
        }
        if sharing_key is not None:
            fields["sharing_key"] = sharing_key
        return await self.call("pp_begin", **fields)

    async def pp_end(self, pp_id: int) -> Dict[str, Any]:
        return await self.call("pp_end", pp_id=pp_id)

    async def query(self, pp_id: Optional[int] = None) -> Dict[str, Any]:
        if pp_id is None:
            return await self.call("query")
        return await self.call("query", pp_id=pp_id)

    async def stats(self) -> Dict[str, Any]:
        return (await self.call("stats"))["stats"]

    async def drain(self) -> Dict[str, Any]:
        return await self.call("drain")
