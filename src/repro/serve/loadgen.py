"""Load generator for the online admission-control service.

Replays workload-suite progress-period sequences (see
:mod:`repro.workloads.export`) against a running server in either of the
two canonical load models:

* **closed loop** — N concurrent clients, each running session after
  session over a persistent connection; offered load self-regulates to
  service capacity (the paper's co-run experiments, where a fixed set of
  processes compete).
* **open loop** — sessions arrive by a Poisson process at a configured
  rate, one connection per session; offered load is independent of service
  speed, so queueing (parking) grows when demand outstrips capacity.

Each client measures admission latency from its own side of the wire
(request sent → reply received), which includes park time; the server's
``waited_s`` field separates queueing delay from protocol overhead.  A
sampler connection polls ``query`` to time-series the aggregate-demand
utilization — the quantity figure 5/6 of the paper plot offline.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.api import MB
from ..errors import ProtocolError, ServeError
from ..experiments.metrics import LatencySummary, summarize_samples
from ..workloads.export import PpCall, SessionScript
from . import protocol
from .client import ServeClient, ServeReplyError
from .protocol import ErrorCode
from .resilient import ResilientServeClient, backoff_sleep_s

__all__ = [
    "LoadgenConfig",
    "LoadgenReport",
    "fig4_scripts",
    "run_loadgen",
    "run_loadgen_sync",
]


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation run."""

    #: "closed" (N persistent clients) or "open" (Poisson arrivals)
    mode: str = "closed"
    #: closed loop: number of concurrent clients
    clients: int = 4
    #: open loop: mean session arrivals per second
    rate: float = 20.0
    #: total sessions to run (None = bounded by duration only)
    sessions: Optional[int] = None
    #: wall-clock budget; arrivals/new sessions stop after this (None = no cap)
    duration_s: Optional[float] = None
    #: multiply every scripted hold time (simulated phase durations are
    #: minutes long; 1e-4 turns them into sub-second holds)
    time_scale: float = 1e-4
    #: clamp one call's hold to this many seconds
    max_hold_s: float = 0.25
    #: give up a call after this many RETRY_AFTER rounds
    max_retries: int = 200
    #: first RETRY_AFTER backoff step (doubles per attempt, jittered)
    backoff_base_s: float = 0.02
    #: RETRY_AFTER backoff ceiling
    backoff_cap_s: float = 0.5
    #: use :class:`~repro.serve.resilient.ResilientServeClient` — clients
    #: survive server restarts and flaky transports (lease + token re-issue)
    resilient: bool = False
    #: resilient clients: per-attempt bound on non-begin calls (silence
    #: past it means a lost frame → reconnect and re-issue)
    call_timeout_s: Optional[float] = 5.0
    #: resilient clients: per-attempt bound on ``pp_begin``; None waits for
    #: the server's park timeout — set one under lossy transports, where
    #: silence can mean a dropped frame rather than a parked period
    begin_timeout_s: Optional[float] = None
    #: send ``drain`` once the run finishes (lets a CI server exit cleanly)
    drain: bool = False
    #: negotiate the length-prefixed binary framing in each client's hello
    #: (resilient clients re-negotiate it on every reconnect)
    binary: bool = False
    #: target is a cluster front-end: clients are resilient and follow
    #: REDIRECT replies to their assigned shard
    cluster: bool = False
    #: resilient clients: override the transport-retry backoff ceiling
    #: (None keeps the client's own default)
    client_backoff_cap_s: Optional[float] = None
    #: resilient clients: open the circuit breaker after this many
    #: consecutive connect/hello failures (None = breaker disabled)
    breaker_threshold: Optional[int] = None
    #: resilient clients: breaker reset window (half-open probe after)
    breaker_reset_s: float = 1.0
    #: declare each call's demand at this multiple of the scripted (true)
    #: working set — models annotation error; 1.0 = honest clients
    overdeclare: float = 1.0
    #: report the scripted demand as ``observed_bytes`` on every pp_end,
    #: feeding a ``serve --predict`` server's online estimator
    report_observed: bool = False
    #: RNG seed (arrival gaps, script order)
    seed: int = 0


@dataclass
class _Tally:
    """Mutable counters shared by all client tasks (single event loop)."""

    sessions_started: int = 0
    sessions_completed: int = 0
    sessions_failed: int = 0
    calls: int = 0
    admitted: int = 0
    parked: int = 0
    forced: int = 0
    retries: int = 0
    dropped_calls: int = 0
    park_timeouts: int = 0
    draining_rejects: int = 0
    protocol_errors: int = 0
    overload_sheds: int = 0
    shed_calls: int = 0
    sheds_without_hint: int = 0
    reconnects: int = 0
    lost_periods: int = 0
    deduped: int = 0
    redirects: int = 0
    redirect_latency_s: List[float] = field(default_factory=list)
    latency_s: List[float] = field(default_factory=list)
    waited_s: List[float] = field(default_factory=list)
    utilization_samples: List[float] = field(default_factory=list)


@dataclass(frozen=True)
class LoadgenReport:
    """What one load-generation run observed."""

    mode: str
    wall_s: float
    sessions_started: int
    sessions_completed: int
    sessions_failed: int
    calls: int
    admitted: int
    parked: int
    forced: int
    retries: int
    dropped_calls: int
    park_timeouts: int
    draining_rejects: int
    protocol_errors: int
    #: terminal OVERLOAD sheds (cluster brownout), anywhere in a session
    overload_sheds: int
    #: calls that terminally ended shed — RETRY_AFTER exhausted/dropped,
    #: TIMEOUT/PARK_TIMEOUT, or OVERLOAD — as opposed to admitted/errored
    shed_calls: int
    #: shed replies missing the mandated retry hint (should stay 0)
    sheds_without_hint: int
    reconnects: int
    lost_periods: int
    deduped: int
    redirects: int
    throughput_pps: float
    admission_latency: LatencySummary
    park_time: LatencySummary
    utilization_mean: float
    utilization_peak: float
    #: client-observed REDIRECT → shard-hello completion time (cluster
    #: runs only; empty against a bare server)
    redirect_latency: LatencySummary = field(
        default_factory=lambda: summarize_samples([])
    )
    server_stats: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "mode": self.mode,
            "wall_s": self.wall_s,
            "sessions_started": self.sessions_started,
            "sessions_completed": self.sessions_completed,
            "sessions_failed": self.sessions_failed,
            "calls": self.calls,
            "admitted": self.admitted,
            "parked": self.parked,
            "forced": self.forced,
            "retries": self.retries,
            "dropped_calls": self.dropped_calls,
            "park_timeouts": self.park_timeouts,
            "draining_rejects": self.draining_rejects,
            "protocol_errors": self.protocol_errors,
            "overload_sheds": self.overload_sheds,
            "shed_calls": self.shed_calls,
            "sheds_without_hint": self.sheds_without_hint,
            "reconnects": self.reconnects,
            "lost_periods": self.lost_periods,
            "deduped": self.deduped,
            "redirects": self.redirects,
            "throughput_pps": self.throughput_pps,
            "admission_latency_s": self.admission_latency.to_dict(),
            "park_time_s": self.park_time.to_dict(),
            "redirect_latency_s": self.redirect_latency.to_dict(),
            "utilization_mean": self.utilization_mean,
            "utilization_peak": self.utilization_peak,
        }
        if self.server_stats is not None:
            payload["server_stats"] = self.server_stats
        return payload

    def describe(self) -> str:
        lines = [
            f"loadgen ({self.mode} loop): {self.wall_s:.2f} s wall, "
            f"{self.sessions_completed}/{self.sessions_started} sessions "
            f"({self.sessions_failed} failed)",
            f"  periods: {self.admitted}/{self.calls} admitted "
            f"({self.parked} parked, {self.forced} forced, "
            f"{self.dropped_calls} dropped), "
            f"{self.throughput_pps:.1f} periods/s",
            f"  backpressure: {self.retries} RETRY_AFTER, "
            f"{self.park_timeouts} park timeout(s), "
            f"{self.draining_rejects} draining reject(s), "
            f"{self.protocol_errors} protocol error(s)",
            f"  outcomes: {self.admitted} admitted, "
            f"{self.shed_calls} shed ({self.overload_sheds} OVERLOAD), "
            f"{self.protocol_errors} errored — shed rate "
            f"{self.shed_calls / self.calls if self.calls else 0.0:.1%}"
            + (
                f", {self.sheds_without_hint} shed reply(ies) MISSING a "
                "retry hint"
                if self.sheds_without_hint
                else ""
            ),
            f"  resilience: {self.reconnects} reconnect(s), "
            f"{self.deduped} deduped begin(s), "
            f"{self.redirects} redirect(s), "
            f"{self.lost_periods} period(s) lost to the lease reaper",
            "  admission latency "
            + self.admission_latency.describe(unit="ms", scale=1e3),
            "  park time         "
            + self.park_time.describe(unit="ms", scale=1e3),
            "  redirect latency  "
            + self.redirect_latency.describe(unit="ms", scale=1e3),
            f"  utilization: mean {self.utilization_mean:.1%}, "
            f"peak {self.utilization_peak:.1%}",
        ]
        return "\n".join(lines)


def fig4_scripts(
    n: int = 8, demand_mb: float = 6.3, hold_s: float = 0.02
) -> List[SessionScript]:
    """Synthetic figure-4 sessions: one DGEMM-style period per session."""
    call = PpCall(
        demand_bytes=MB(demand_mb), reuse="high", hold_s=hold_s, label="fig4/dgemm"
    )
    return [
        SessionScript(name=f"fig4#{i}", calls=(call,)) for i in range(n)
    ]


# ----------------------------------------------------------------------
class _Runner:
    def __init__(
        self,
        scripts: Sequence[SessionScript],
        cfg: LoadgenConfig,
        unix_path: Optional[str],
        host: Optional[str],
        port: Optional[int],
    ) -> None:
        if not scripts:
            raise ServeError("loadgen needs at least one session script")
        if cfg.mode not in ("closed", "open"):
            raise ServeError(f"unknown loadgen mode {cfg.mode!r}")
        if cfg.sessions is None and cfg.duration_s is None:
            raise ServeError("bound the run: set sessions and/or duration_s")
        self.scripts = list(scripts)
        self.cfg = cfg
        #: cluster mode needs clients that follow REDIRECT replies and
        #: fall back to the front-end when their shard dies — which is
        #: exactly what the resilient client does
        self.resilient = cfg.resilient or cfg.cluster
        self.connect_kwargs = {"unix_path": unix_path, "host": host, "port": port}
        self.tally = _Tally()
        self.rng = random.Random(cfg.seed)
        self._next_script = 0
        self._next_client = 0
        self._deadline: Optional[float] = None
        self._stop = False
        self._sampler_stop = False

    # ------------------------------------------------------------------
    def _take_script(self) -> SessionScript:
        script = self.scripts[self._next_script % len(self.scripts)]
        self._next_script += 1
        return script

    def _budget_left(self) -> bool:
        if self._stop:
            return False
        if (
            self.cfg.sessions is not None
            and self.tally.sessions_started >= self.cfg.sessions
        ):
            return False
        if self._deadline is not None and time.monotonic() >= self._deadline:
            return False
        return True

    def _hold_s(self, call: PpCall) -> float:
        return min(call.hold_s * self.cfg.time_scale, self.cfg.max_hold_s)

    def _retry_sleep_s(self, attempt: int, hint_s: Optional[float]) -> float:
        """Exponential backoff with jitter, floored at the server's hint.

        The server's ``retry_after_s`` is a minimum, not a schedule: a
        client that re-knocks at exactly that cadence forever keeps the
        pending queue saturated, so each rejection doubles the wait (up to
        the cap) and jitter decorrelates the herd.  The hint is a hard
        floor even past the cap — see :func:`backoff_sleep_s`.
        """
        return backoff_sleep_s(
            attempt,
            self.cfg.backoff_base_s,
            self.cfg.backoff_cap_s,
            self.rng,
            floor_s=hint_s or 0.0,
            max_exp=6,
        )

    async def _make_client(self):
        """One connection: thin by default, resilient when configured."""
        if not self.resilient:
            client = await ServeClient.connect(**self.connect_kwargs)
            if self.cfg.binary:
                # binary framing is negotiated in hello, so binary-mode
                # clients carry a (lease-bound) identity
                self._next_client += 1
                await client.hello(
                    f"loadgen-{self.cfg.seed}-{self._next_client}", binary=True
                )
            return client
        self._next_client += 1
        extra: Dict[str, Any] = {}
        if self.cfg.client_backoff_cap_s is not None:
            extra["backoff_cap_s"] = self.cfg.client_backoff_cap_s
        client = ResilientServeClient(
            **self.connect_kwargs,
            client_id=f"loadgen-{self.cfg.seed}-{self._next_client}",
            call_timeout_s=self.cfg.call_timeout_s,
            begin_timeout_s=self.cfg.begin_timeout_s,
            # loadgen counts RETRY_AFTER itself (its backoff loop is the
            # experiment); the resilient layer handles transport faults only
            retry_admission=False,
            binary=self.cfg.binary,
            follow_redirects=self.cfg.cluster,
            breaker_threshold=self.cfg.breaker_threshold,
            breaker_reset_s=self.cfg.breaker_reset_s,
            rng=random.Random(self.rng.randrange(1 << 30)),
            **extra,
        )
        await client.connect()
        return client

    def _absorb_counters(self, client: Any) -> None:
        if isinstance(client, ResilientServeClient):
            self.tally.reconnects += client.reconnects
            self.tally.lost_periods += client.lost_periods
            self.tally.deduped += client.deduped
            self.tally.redirects += client.redirects
            self.tally.redirect_latency_s.extend(client.redirect_latency_s)
            client.redirect_latency_s = []

    # ------------------------------------------------------------------
    async def _run_call(self, client: Any, call: PpCall) -> bool:
        """One begin/hold/end round-trip.  Returns False to end the session."""
        tally = self.tally
        tally.calls += 1
        declared = call.demand_bytes
        if self.cfg.overdeclare != 1.0:
            declared = max(1, int(call.demand_bytes * self.cfg.overdeclare))
        for attempt in range(self.cfg.max_retries + 1):
            t0 = time.monotonic()
            try:
                reply = await client.pp_begin(
                    demand_bytes=declared,
                    reuse=call.reuse,
                    label=call.label,
                    sharing_key=call.sharing_key,
                )
            except ServeReplyError as exc:
                if exc.code in (
                    ErrorCode.RETRY_AFTER,
                    ErrorCode.PARK_TIMEOUT,
                    ErrorCode.OVERLOAD,
                ) and exc.retry_after_s is None:
                    # every shed reply must carry a retry hint
                    tally.sheds_without_hint += 1
                if exc.code == ErrorCode.RETRY_AFTER:
                    tally.retries += 1
                    if not self._budget_left():
                        # the run is over; don't keep knocking past the
                        # deadline just because the server is saturated
                        tally.dropped_calls += 1
                        tally.shed_calls += 1
                        return False
                    await asyncio.sleep(
                        self._retry_sleep_s(attempt, exc.retry_after_s)
                    )
                    continue
                if exc.code in (ErrorCode.TIMEOUT, ErrorCode.PARK_TIMEOUT):
                    tally.park_timeouts += 1
                    tally.shed_calls += 1
                    return True  # period cancelled server-side; move on
                if exc.code == ErrorCode.OVERLOAD:
                    # cluster brownout: this client was shed outright
                    tally.overload_sheds += 1
                    tally.shed_calls += 1
                    return False
                if exc.code == ErrorCode.DRAINING:
                    tally.draining_rejects += 1
                    # Against a bare server a drain means the run is over;
                    # in a cluster it is one shard's planned (rolling)
                    # restart — end this session, let the next one be
                    # re-placed on a live shard.
                    if not self.cfg.cluster:
                        self._stop = True
                    return False
                tally.protocol_errors += 1
                return False
            tally.latency_s.append(time.monotonic() - t0)
            tally.admitted += 1
            waited = float(reply.get("waited_s", 0.0))
            tally.waited_s.append(waited)
            if waited > 0.0:
                tally.parked += 1
            if reply.get("forced"):
                tally.forced += 1
            hold = self._hold_s(call)
            if hold > 0:
                await asyncio.sleep(hold)
            if self.cfg.report_observed:
                await client.pp_end(
                    reply["pp_id"], observed_bytes=call.demand_bytes
                )
            else:
                await client.pp_end(reply["pp_id"])
            return True
        # max_retries exhausted: the call ends shed, not errored
        tally.dropped_calls += 1
        tally.shed_calls += 1
        return True

    async def _run_session(self, client: Any, script: SessionScript) -> None:
        self.tally.sessions_started += 1
        try:
            for call in script.calls:
                if not await self._run_call(client, call):
                    self.tally.sessions_failed += 1
                    return
            self.tally.sessions_completed += 1
        except (ProtocolError, ServeError, ConnectionError,
                asyncio.IncompleteReadError):
            self.tally.sessions_failed += 1

    # ------------------------------------------------------------------
    async def _closed_worker(self) -> None:
        client = await self._make_client()
        try:
            while self._budget_left():
                await self._run_session(client, self._take_script())
        finally:
            self._absorb_counters(client)
            await client.close()

    async def _open_session(self, script: SessionScript) -> None:
        try:
            client = await self._make_client()
        except ServeReplyError as exc:
            # a cluster front-end in brownout sheds new clients at hello
            if exc.code == ErrorCode.OVERLOAD:
                self.tally.overload_sheds += 1
                self.tally.shed_calls += 1
                if exc.retry_after_s is None:
                    self.tally.sheds_without_hint += 1
            self.tally.sessions_started += 1
            self.tally.sessions_failed += 1
            return
        except (OSError, ServeError):
            self.tally.sessions_started += 1
            self.tally.sessions_failed += 1
            return
        try:
            await self._run_session(client, script)
        finally:
            self._absorb_counters(client)
            await client.close()

    async def _open_loop(self) -> None:
        spawned: List[asyncio.Task] = []
        while self._budget_left():
            spawned.append(
                asyncio.ensure_future(self._open_session(self._take_script()))
            )
            gap = self.rng.expovariate(self.cfg.rate) if self.cfg.rate > 0 else 0.0
            await asyncio.sleep(gap)
        if spawned:
            await asyncio.gather(*spawned, return_exceptions=True)

    async def _sampler(self) -> None:
        """Poll ``query`` to time-series the demand utilization."""
        try:
            client = await ServeClient.connect(**self.connect_kwargs)
        except OSError:
            return
        try:
            # The stop flag backs up cancellation: the query round trip
            # runs under asyncio.wait_for, and on 3.11 a cancel landing
            # just as the inner future completes is swallowed (the task
            # keeps running in "cancelling" state).  The flag turns that
            # race into a normal exit one iteration later.
            while not self._sampler_stop:
                await asyncio.sleep(0.02)
                reply = await client.call("query", timeout=5.0)
                for state in reply.get("resources", {}).values():
                    self.tally.utilization_samples.append(
                        float(state.get("utilization", 0.0))
                    )
        except (ProtocolError, ServeReplyError, ConnectionError, OSError,
                asyncio.TimeoutError):
            return
        finally:
            await client.close()

    # ------------------------------------------------------------------
    async def run(self) -> LoadgenReport:
        if self.cfg.duration_s is not None:
            self._deadline = time.monotonic() + self.cfg.duration_s
        sampler = asyncio.ensure_future(self._sampler())
        t_start = time.monotonic()
        if self.cfg.mode == "closed":
            workers = [
                asyncio.ensure_future(self._closed_worker())
                for _ in range(max(1, self.cfg.clients))
            ]
            await asyncio.gather(*workers)
        else:
            await self._open_loop()
        wall_s = time.monotonic() - t_start
        self._sampler_stop = True
        sampler.cancel()
        with_suppress = asyncio.gather(sampler, return_exceptions=True)
        await with_suppress

        server_stats = await self._final_stats()
        tally = self.tally
        samples = tally.utilization_samples
        return LoadgenReport(
            mode=self.cfg.mode,
            wall_s=wall_s,
            sessions_started=tally.sessions_started,
            sessions_completed=tally.sessions_completed,
            sessions_failed=tally.sessions_failed,
            calls=tally.calls,
            admitted=tally.admitted,
            parked=tally.parked,
            forced=tally.forced,
            retries=tally.retries,
            dropped_calls=tally.dropped_calls,
            park_timeouts=tally.park_timeouts,
            draining_rejects=tally.draining_rejects,
            protocol_errors=tally.protocol_errors,
            overload_sheds=tally.overload_sheds,
            shed_calls=tally.shed_calls,
            sheds_without_hint=tally.sheds_without_hint,
            reconnects=tally.reconnects,
            lost_periods=tally.lost_periods,
            deduped=tally.deduped,
            redirects=tally.redirects,
            throughput_pps=tally.admitted / wall_s if wall_s > 0 else 0.0,
            admission_latency=summarize_samples(tally.latency_s),
            park_time=summarize_samples(
                [w for w in tally.waited_s if w > 0.0]
            ),
            redirect_latency=summarize_samples(tally.redirect_latency_s),
            utilization_mean=(
                sum(samples) / len(samples) if samples else 0.0
            ),
            utilization_peak=max(samples, default=0.0),
            server_stats=server_stats,
        )

    async def _final_stats(self) -> Optional[Dict[str, Any]]:
        """Fetch the server's own metrics; optionally request drain."""
        try:
            client = await ServeClient.connect(**self.connect_kwargs)
        except OSError:
            return None
        try:
            # Bounded: over a faulty transport (the chaos proxy) a lost
            # reply must not hang the whole run for a statistics frame.
            stats = (await client.call("stats", timeout=5.0))["stats"]
            if self.cfg.drain:
                await client.call("drain", timeout=5.0)
            return stats
        except (ProtocolError, ServeReplyError, ConnectionError, OSError,
                asyncio.TimeoutError):
            return None
        finally:
            await client.close()


async def run_loadgen(
    scripts: Sequence[SessionScript],
    cfg: LoadgenConfig,
    unix_path: Optional[str] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
) -> LoadgenReport:
    """Drive a running admission server with the given session scripts."""
    runner = _Runner(scripts, cfg, unix_path, host, port)
    return await runner.run()


def run_loadgen_sync(
    scripts: Sequence[SessionScript],
    cfg: LoadgenConfig,
    unix_path: Optional[str] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
) -> LoadgenReport:
    """Blocking wrapper around :func:`run_loadgen` (CLI entry point)."""
    return asyncio.run(
        run_loadgen(scripts, cfg, unix_path=unix_path, host=host, port=port)
    )
