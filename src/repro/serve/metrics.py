"""Live metrics for the admission-control service.

A small, dependency-free registry of the three classic instrument shapes:

* :class:`Counter` — monotonically increasing event counts,
* :class:`Gauge` — a point-in-time value, optionally backed by a callable
  so the registry samples live server state at snapshot time,
* :class:`Histogram` — log-bucketed latency/size distribution with
  *bounded* memory regardless of the number of observations (the server is
  long-running; storing raw samples would grow without bound).

The server dumps a snapshot through the ``stats`` verb and, when
``--metrics-json`` is given, to a flat file for scraping.  Percentiles are
interpolated inside the matching log bucket; the bucket growth factor of
1.25 bounds the relative error of any quantile to ~12 %, which is plenty
for the tail-latency comparisons the load generator reports (client-side
summaries use exact samples via
:func:`repro.experiments.metrics.summarize_samples`).
"""

from __future__ import annotations

import json
import math
import os
import time
from typing import Any, Callable, Dict, Optional

from ..errors import ServeError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ServeError(f"counter {self.name}: cannot increase by {n}")
        self.value += n


class Gauge:
    """A point-in-time value; ``fn`` makes it live-sampled at snapshot."""

    def __init__(
        self, name: str, help: str = "", fn: Optional[Callable[[], float]] = None
    ) -> None:
        self.name = name
        self.help = help
        self.fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def max(self, value: float) -> None:
        """Retain the high-water mark (peak gauges)."""
        if value > self._value:
            self._value = value

    @property
    def value(self) -> float:
        return float(self.fn()) if self.fn is not None else self._value


class Histogram:
    """Log-bucketed distribution with bounded memory.

    Bucket ``i`` covers ``[floor * growth**i, floor * growth**(i+1))``;
    values below ``floor`` (including exact zeros) land in a dedicated
    underflow bucket.  ``percentile`` interpolates linearly inside the
    winning bucket.
    """

    def __init__(
        self,
        name: str,
        help: str = "",
        floor: float = 1e-6,
        growth: float = 1.25,
        n_buckets: int = 128,
    ) -> None:
        if floor <= 0 or growth <= 1.0 or n_buckets < 1:
            raise ServeError(f"histogram {name}: invalid bucket geometry")
        self.name = name
        self.help = help
        self.floor = floor
        self.growth = growth
        self._log_growth = math.log(growth)
        self.buckets = [0] * (n_buckets + 1)  # +1: underflow bucket at index 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _index(self, value: float) -> int:
        if value < self.floor:
            return 0
        i = 1 + int(math.log(value / self.floor) / self._log_growth)
        return min(i, len(self.buckets) - 1)

    def _lower_bound(self, index: int) -> float:
        return 0.0 if index == 0 else self.floor * self.growth ** (index - 1)

    def _upper_bound(self, index: int) -> float:
        return self.floor * self.growth ** index

    def observe(self, value: float) -> None:
        if value < 0:
            raise ServeError(f"histogram {self.name}: negative observation {value}")
        self.buckets[self._index(value)] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (0–100); ``nan`` when empty."""
        if not 0.0 <= q <= 100.0:
            raise ServeError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return math.nan
        rank = (q / 100.0) * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            if seen + n >= rank:
                frac = (rank - seen) / n
                lo = max(self._lower_bound(i), self.min)
                hi = min(self._upper_bound(i), self.max)
                return lo + (hi - lo) * frac
            seen += n
        return self.max  # pragma: no cover — numeric edge

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": None if self.count == 0 else self.mean,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "p50": None if self.count == 0 else self.percentile(50.0),
            "p90": None if self.count == 0 else self.percentile(90.0),
            "p99": None if self.count == 0 else self.percentile(99.0),
        }


class MetricsRegistry:
    """Named instruments plus JSON snapshot/dump for the ``stats`` verb."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.created_at = time.time()

    def _register(self, table: Dict[str, Any], instrument: Any) -> Any:
        if instrument.name in table:
            raise ServeError(f"metric {instrument.name!r} already registered")
        table[instrument.name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(self._counters, Counter(name, help))

    def gauge(
        self, name: str, help: str = "", fn: Optional[Callable[[], float]] = None
    ) -> Gauge:
        return self._register(self._gauges, Gauge(name, help, fn))

    def histogram(self, name: str, help: str = "", **kwargs: Any) -> Histogram:
        return self._register(self._histograms, Histogram(name, help, **kwargs))

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-serializable snapshot of every instrument."""
        return {
            "uptime_s": time.time() - self.created_at,
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            },
        }

    def dump_json(self, path: str) -> None:
        """Atomically write the current snapshot to a flat file."""
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
