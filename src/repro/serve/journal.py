"""Crash-safe admission journal: a write-ahead log for the serve ledger.

The kernel's RDA layer never outlives its charges — a dead process is
reaped and its LLC demand implicitly released.  The admission *service* is
a user-space daemon, so a crash would otherwise lose the entire charge
ledger and strand every running application.  This module gives the
service durability:

* **Append-only NDJSON log.**  Every admitted progress period of a
  lease-bound client is recorded (``admit``) the moment its demand is
  charged, and closed (``close``) when the demand is released — by
  ``pp_end``, ``pp_cancel`` or the lease reaper.  One JSON object per
  line, written before the reply leaves the server, so a reply the client
  observed is always recoverable.
* **fsync batching.**  Each record is written+flushed immediately;
  ``fsync`` either follows synchronously (``fsync_interval_s <= 0``, the
  durable default) or is batched on a timer so a busy server pays one disk
  sync per interval instead of one per admission.  A crash inside the
  batching window loses at most ``fsync_interval_s`` of events — clients
  re-issue those begins with their idempotency tokens.
* **Snapshot + truncate compaction.**  The live state is tiny (open
  admitted periods); every ``compact_every`` events the log is atomically
  rewritten as a single ``snap`` record so it never grows with traffic.
* **Tolerant replay.**  ``replay_journal`` rebuilds the open set.  A torn
  final line (the classic power-cut artifact) is ignored; corruption
  anywhere else raises :class:`~repro.errors.JournalError` rather than
  silently reviving a wrong ledger.  A torn *snapshot* record is never
  tolerated: snapshots only ever reach the log through an fsync-then-
  atomic-rename, so a partial one cannot be a benign crash artifact — it
  is real corruption, and dropping it would silently lose the whole open
  set.
* **Crash-safe compaction.**  ``_rewrite_snapshot`` writes the snapshot
  to a pid-suffixed temp file, fsyncs it, atomically renames it over the
  log, then fsyncs the directory so the rename itself is durable.  A
  crash at any point leaves either the old log or the new one — never a
  partial snapshot — and ``recover`` sweeps up temp files the crash
  stranded.

The journal stores *admitted* periods only.  Parked (WAITING) periods
hold no capacity and their owners are blocked on a reply that died with
the old process — after a restart those clients reconnect and re-issue
``pp_begin``, deduplicated by token against the replayed open set.
"""

from __future__ import annotations

import asyncio
import json
import os
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..errors import JournalError

__all__ = [
    "JOURNAL_VERSION",
    "AdmitRecord",
    "JournalState",
    "replay_journal",
    "AdmissionJournal",
]

#: bump on incompatible record-shape changes
JOURNAL_VERSION = 1


@dataclass(frozen=True)
class AdmitRecord:
    """One admitted progress period, as persisted in the journal."""

    pp_id: int
    client: str
    resource: str
    demand_bytes: int
    reuse: str
    sharing_key: Optional[str]
    label: str
    forced: bool
    token: Optional[str]

    def to_frame(self) -> Dict[str, Any]:
        return {
            "k": "admit",
            "pp": self.pp_id,
            "client": self.client,
            "res": self.resource,
            "demand": self.demand_bytes,
            "reuse": self.reuse,
            "share": self.sharing_key,
            "label": self.label,
            "forced": self.forced,
            "token": self.token,
        }

    @classmethod
    def from_frame(cls, frame: Dict[str, Any]) -> "AdmitRecord":
        try:
            return cls(
                pp_id=int(frame["pp"]),
                client=str(frame["client"]),
                resource=str(frame["res"]),
                demand_bytes=int(frame["demand"]),
                reuse=str(frame["reuse"]),
                sharing_key=frame.get("share"),
                label=str(frame.get("label", "")),
                forced=bool(frame.get("forced", False)),
                token=frame.get("token"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(f"malformed admit record: {exc}") from None


#: one learned demand sample: (client, sharing-key-or-label, declared, observed)
ObsSample = Tuple[str, str, int, int]


@dataclass
class JournalState:
    """What replay recovered: the open admitted set and id high-water."""

    open: Dict[int, AdmitRecord]
    max_pp_id: int
    events_replayed: int
    #: demand-estimator samples, in append order (oldest first) — re-fed
    #: to the prediction subsystem so learned state survives restarts
    obs: List[ObsSample] = field(default_factory=list)


def _parse_obs(frame_or_entry: Any, where: str) -> ObsSample:
    try:
        client, skey, declared, observed = (
            frame_or_entry["client"],
            frame_or_entry["key"],
            frame_or_entry["x"],
            frame_or_entry["y"],
        )
        return (str(client), str(skey), int(declared), int(observed))
    except (KeyError, TypeError, ValueError) as exc:
        raise JournalError(f"malformed obs record in {where}: {exc}") from None


def _parse_line(line: bytes) -> Optional[Dict[str, Any]]:
    """Decode one journal line; ``None`` for an undecodable (torn) line."""
    try:
        obj = json.loads(line)
    except ValueError:
        return None
    return obj if isinstance(obj, dict) else None


#: a snapshot record as serialized by ``_rewrite_snapshot`` always starts
#: with these bytes; used to tell a torn snapshot from a torn append
_SNAP_PREFIX = b'{"k":"snap"'


def replay_journal(path: str) -> JournalState:
    """Rebuild the open admitted set from a journal file.

    Missing file → empty state (first boot).  A torn *final* line is
    dropped; an undecodable line anywhere else is corruption and raises
    :class:`JournalError`.  A torn final line that is a snapshot record
    also raises: snapshots reach the log only through fsync + atomic
    rename (never through an interruptible append), so a partial one
    means the file itself was damaged, and tolerating it would silently
    drop every open period the snapshot carried.
    """
    state = JournalState(open={}, max_pp_id=0, events_replayed=0)
    if not os.path.exists(path):
        return state
    with open(path, "rb") as fh:
        lines = fh.read().split(b"\n")
    # split() leaves one trailing empty element when the file ends in \n
    if lines and lines[-1] == b"":
        lines.pop()
    for i, line in enumerate(lines):
        frame = _parse_line(line)
        if frame is None:
            if line.startswith(_SNAP_PREFIX):
                raise JournalError(
                    f"{path}: partial snapshot record at line {i + 1} "
                    "(snapshots are written atomically; this is corruption, "
                    "not a torn append)"
                )
            if i == len(lines) - 1:
                break  # torn tail from a crash mid-append: tolerated
            raise JournalError(
                f"{path}: undecodable record at line {i + 1} "
                "(corruption before the final line)"
            )
        kind = frame.get("k")
        state.events_replayed += 1
        if kind == "snap":
            if frame.get("v") not in (None, JOURNAL_VERSION):
                raise JournalError(
                    f"{path}: snapshot version {frame.get('v')!r} "
                    f"unsupported (this build speaks v{JOURNAL_VERSION})"
                )
            state.open = {}
            for entry in frame.get("open", ()):
                record = AdmitRecord.from_frame(entry)
                state.open[record.pp_id] = record
                state.max_pp_id = max(state.max_pp_id, record.pp_id)
            state.obs = [_parse_obs(entry, path) for entry in frame.get("obs", ())]
        elif kind == "admit":
            record = AdmitRecord.from_frame(frame)
            state.open[record.pp_id] = record
            state.max_pp_id = max(state.max_pp_id, record.pp_id)
        elif kind == "close":
            pp_id = frame.get("pp")
            if not isinstance(pp_id, int):
                raise JournalError(f"{path}: close record without 'pp'")
            # A close for an unknown pp is possible when its admit sat in
            # a torn tail of the *previous* incarnation; ignore it.
            state.open.pop(pp_id, None)
            state.max_pp_id = max(state.max_pp_id, pp_id)
        elif kind == "resize":
            pp_id = frame.get("pp")
            demand = frame.get("demand")
            if not isinstance(pp_id, int) or not isinstance(demand, int):
                raise JournalError(f"{path}: malformed resize record")
            # Like close: the admit may have died in a prior torn tail.
            record = state.open.get(pp_id)
            if record is not None:
                state.open[pp_id] = replace(record, demand_bytes=demand)
        elif kind == "obs":
            state.obs.append(_parse_obs(frame, path))
        else:
            raise JournalError(f"{path}: unknown record kind {kind!r}")
    return state


class AdmissionJournal:
    """The append side of the write-ahead log (single event loop writer)."""

    def __init__(
        self,
        path: str,
        fsync_interval_s: float = 0.0,
        compact_every: int = 1000,
        obs_history: int = 32,
    ) -> None:
        if compact_every < 1:
            raise JournalError("compact_every must be >= 1")
        self.path = path
        self.fsync_interval_s = fsync_interval_s
        self.compact_every = compact_every
        #: live admitted entries — mirrors the server's RUNNING journaled set
        self.open: Dict[int, AdmitRecord] = {}
        #: newest demand samples per (client, key), carried across
        #: compactions so the estimator's learned state survives restarts
        self.obs_history = obs_history
        self.obs: Dict[Tuple[str, str], Deque[Tuple[int, int]]] = {}
        self.events_total = 0
        self.syncs_total = 0
        self.compactions_total = 0
        self._fh = None
        self._events_since_compact = 0
        self._sync_handle: Optional[asyncio.TimerHandle] = None
        self._dirty = False
        self._dead = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def recover(self) -> JournalState:
        """Replay the existing log, then compact it and open for append."""
        self._sweep_stale_tmp()
        state = replay_journal(self.path)
        self.open = dict(state.open)
        self.obs = {}
        for client, skey, declared, observed in state.obs:
            self._store_obs(client, skey, declared, observed)
        self._rewrite_snapshot()
        return state

    def _store_obs(
        self, client: str, skey: str, declared: int, observed: int
    ) -> None:
        ring = self.obs.get((client, skey))
        if ring is None:
            ring = self.obs[(client, skey)] = deque(maxlen=self.obs_history)
        ring.append((declared, observed))

    def _sweep_stale_tmp(self) -> None:
        """Remove temp snapshots a crash left behind mid-compaction.

        A crash between writing ``<path>.tmp.<pid>`` and renaming it
        strands the temp file; the log itself is still the previous
        (valid) incarnation.  The stale temp is garbage — a *different*
        process's pid may even collide with ours later — so sweep all of
        them before replaying.
        """
        directory = os.path.dirname(self.path) or "."
        prefix = os.path.basename(self.path) + ".tmp."
        try:
            names = os.listdir(directory)
        except OSError:
            return
        for name in names:
            if name.startswith(prefix):
                with_dir = os.path.join(directory, name)
                try:
                    os.unlink(with_dir)
                except OSError:
                    pass

    def close(self) -> None:
        """Clean shutdown: flush, sync, close.  The open set is *kept* on
        disk — a drained server that still held running periods restores
        them on the next boot."""
        self._dead = True
        if self._fh is None:
            return
        self._cancel_scheduled_sync()
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._fh = None

    def abandon(self) -> None:
        """Crash-simulation shutdown: drop the handle without syncing.

        Also poisons the append path — any state mutation the dying
        process still performs (e.g. cleanup of parked handlers) must not
        reach a log that a real SIGKILL would have left untouched.
        """
        self._dead = True
        self._cancel_scheduled_sync()
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------
    # records
    # ------------------------------------------------------------------
    def record_admit(self, record: AdmitRecord) -> None:
        """Persist one admission.  Idempotent per ``pp_id``."""
        if record.pp_id in self.open:
            return
        self.open[record.pp_id] = record
        self._append(record.to_frame())

    def record_close(self, pp_id: int) -> bool:
        """Persist the release of a journaled period.

        Returns ``False`` (and writes nothing) when the period was never
        journaled — anonymous clients and parked periods have no admit
        record to balance.
        """
        if pp_id not in self.open:
            return False
        del self.open[pp_id]
        self._append({"k": "close", "pp": pp_id})
        return True

    def record_resize(self, pp_id: int, new_demand_bytes: int) -> bool:
        """Persist an elastic resize of a journaled open period.

        Replay rewrites the open admit record's demand so a post-crash
        restore charges what was actually reserved at the time of death.
        Returns ``False`` for periods that were never journaled.
        """
        record = self.open.get(pp_id)
        if record is None:
            return False
        self.open[pp_id] = replace(record, demand_bytes=new_demand_bytes)
        self._append({"k": "resize", "pp": pp_id, "demand": new_demand_bytes})
        return True

    def record_obs(
        self, client: str, skey: str, declared_bytes: int, observed_bytes: int
    ) -> None:
        """Persist one demand-estimator sample (learned state)."""
        self._store_obs(client, skey, declared_bytes, observed_bytes)
        self._append(
            {
                "k": "obs",
                "client": client,
                "key": skey,
                "x": int(declared_bytes),
                "y": int(observed_bytes),
            }
        )

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def _ensure_fh(self):
        if self._fh is None:
            self._fh = open(self.path, "ab")
            self._lock_fh(self._fh)
        return self._fh

    def _lock_fh(self, fh) -> None:
        """Advisory single-writer lock on the append handle.

        A supervised restart hands the journal from the dying shard
        incarnation to its replacement; the handoff is sequenced, but a
        bug (or an operator starting a second shard on the same journal)
        would interleave two incarnations' appends and corrupt the log.
        ``flock`` conflicts per open file description, so it also
        catches a double incarnation inside one process.  The kernel
        drops the lock when the fd closes — including on SIGKILL — so a
        crashed incarnation never wedges its successor.
        """
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-unix
            return
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            fh.close()
            raise JournalError(
                f"{self.path}: journal is locked by another live shard "
                f"incarnation"
            ) from None

    def _append(self, frame: Dict[str, Any]) -> None:
        if self._dead:
            return
        fh = self._ensure_fh()
        fh.write(json.dumps(frame, separators=(",", ":")).encode() + b"\n")
        fh.flush()
        self.events_total += 1
        self._events_since_compact += 1
        if self.fsync_interval_s <= 0:
            os.fsync(fh.fileno())
            self.syncs_total += 1
        else:
            self._dirty = True
            self._schedule_sync()
        if self._events_since_compact >= self.compact_every:
            self._rewrite_snapshot()

    def sync(self) -> None:
        """Force any batched records to disk now."""
        self._cancel_scheduled_sync()
        if self._fh is not None and self._dirty:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self.syncs_total += 1
            self._dirty = False

    def _schedule_sync(self) -> None:
        if self._sync_handle is not None:
            return
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            # no loop (unit tests, replay-time writes): sync immediately
            self.sync()
            return
        self._sync_handle = loop.call_later(self.fsync_interval_s, self._on_timer)

    def _on_timer(self) -> None:
        self._sync_handle = None
        self.sync()

    def _cancel_scheduled_sync(self) -> None:
        if self._sync_handle is not None:
            self._sync_handle.cancel()
            self._sync_handle = None

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def _rewrite_snapshot(self) -> None:
        """Atomically replace the log with one snapshot of the open set."""
        self._cancel_scheduled_sync()
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        snap: Dict[str, Any] = {
            "k": "snap",
            "v": JOURNAL_VERSION,
            "open": [r.to_frame() for r in self.open.values()],
        }
        if self.obs:
            snap["obs"] = [
                {"client": client, "key": skey, "x": x, "y": y}
                for (client, skey), ring in self.obs.items()
                for x, y in ring
            ]
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(json.dumps(snap, separators=(",", ":")).encode() + b"\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        # The rename is atomic but not yet durable: fsync the directory so
        # a power cut cannot resurrect the pre-compaction log *and* the
        # temp file.  Either the old log or the new one survives — never a
        # partial snapshot (replay_journal enforces the same contract).
        self._fsync_dir()
        self._events_since_compact = 0
        self._dirty = False
        self.compactions_total += 1

    def _fsync_dir(self) -> None:
        directory = os.path.dirname(self.path) or "."
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return  # platform without directory fds: rename-only durability
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)

    def compact(self) -> None:
        """Public compaction hook (tests, admin tooling)."""
        self._rewrite_snapshot()
