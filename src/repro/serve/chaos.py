"""Chaos harness for the admission service: prove the fault layer works.

The fault-tolerance claims of :mod:`repro.serve` — crash-safe journal,
client leases, idempotent re-issue — are only as good as their worst
recovery path, so this module attacks all of them at once:

* **Fault-injecting proxy.**  :class:`ChaosProxy` sits between clients and
  the server and mangles the NDJSON stream line by line with a seeded RNG:
  frames are dropped, delayed, duplicated, truncated mid-line (with the
  connection severed, the classic torn write) or the connection is severed
  outright.
* **Kill-and-restart campaign.**  :func:`run_chaos` starts a real server
  subprocess (``python -m repro serve --journal ... --sanitize``), drives
  it with the resilient load generator *through* the proxy, SIGKILLs the
  server on a timer, restarts it from the journal, and repeats.
* **Verdict.**  After the load completes, the campaign waits for the
  system to settle (the lease reaper reclaims what dead clients left
  behind), then asserts the recovery contract: zero open periods, zero
  admitted demand, a clean online sanitizer, and a zero exit code from the
  drained server.  Any leaked byte of capacity fails the campaign.

Entry point: ``python -m repro chaos``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import random
import signal
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError, ServeError
from .client import ServeClient
from .loadgen import LoadgenConfig, LoadgenReport, fig4_scripts, run_loadgen

__all__ = [
    "FAULT_KINDS",
    "ChaosConfig",
    "ChaosProxy",
    "ChaosReport",
    "ServerProcess",
    "run_chaos",
    "run_chaos_sync",
    "run_cluster_chaos",
    "run_cluster_chaos_sync",
    "run_overload_chaos",
    "run_overload_chaos_sync",
    "run_rolling_chaos",
    "run_rolling_chaos_sync",
]

#: fault kinds the proxy can inject, in threshold order
FAULT_KINDS = ("drop", "delay", "duplicate", "truncate", "sever")


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos campaign."""

    #: RNG seed for the proxy's fault schedule and the load
    seed: int = 0
    #: wall-clock budget for the load phase
    duration_s: float = 6.0
    #: concurrent resilient clients
    clients: int = 4
    #: total sessions (None = bounded by duration only)
    sessions: Optional[int] = None
    #: SIGKILL/restart cycles to inflict during the load
    kills: int = 2
    #: gap between kills (first kill fires this long after start)
    kill_interval_s: float = 1.5
    #: per-line fault probabilities (applied in both directions)
    drop_rate: float = 0.01
    delay_rate: float = 0.05
    delay_max_s: float = 0.01
    duplicate_rate: float = 0.01
    truncate_rate: float = 0.003
    sever_rate: float = 0.002
    #: synthetic session shape (figure-4 single-period sessions)
    demand_mb: float = 2.0
    hold_s: float = 0.01
    #: server shape
    policy: str = "strict"
    capacity_mb: float = 8.0
    lease_ttl_s: float = 1.5
    lease_check_s: float = 0.1
    park_timeout_s: float = 2.0
    journal_fsync_s: float = 0.0
    #: how long recovery may take to reach quiescence after the load
    settle_timeout_s: float = 15.0
    #: how long one server (re)start may take
    server_start_timeout_s: float = 15.0
    #: cluster campaign: admission shards behind a placer front-end
    #: (0 = classic single-server campaign)
    shards: int = 0
    #: cluster campaign: let the front-end's shard supervisor restart
    #: killed shards (the campaign itself stops restarting them)
    supervise: bool = False
    #: rolling campaign: per-shard grace for running periods
    rolling_grace_s: float = 3.0
    #: overload campaign: server-side overload knobs, passed to ``serve``
    #: only when set — the classic campaigns add no extra flags, and
    #: :func:`run_overload_chaos` fills in tight defaults for unset ones
    max_pending: Optional[int] = None
    retry_hint_floor_s: Optional[float] = None
    retry_hint_cap_s: Optional[float] = None
    park_deadline_s: Optional[float] = None
    max_pending_per_client: Optional[int] = None
    write_timeout_s: Optional[float] = None
    #: overload campaign: open-loop storm arrivals per second
    storm_rate: float = 150.0
    #: overload campaign: concurrent slow consumers that never read replies
    slowloris: int = 2
    #: overload campaign: admitted calls must keep p99 latency under this
    p99_bound_s: float = 5.0
    #: overload campaign: storm clients' transport backoff ceiling
    #: (None keeps the resilient client's own default)
    backoff_cap_s: Optional[float] = None
    #: overload campaign: storm clients' circuit-breaker threshold/reset
    breaker_threshold: Optional[int] = None
    breaker_reset_s: float = 0.2


class ChaosProxy:
    """Line-oriented fault-injecting proxy over unix sockets.

    Forwards newline-delimited frames between each client connection and a
    fresh backend connection, injecting faults per line from a seeded RNG,
    so a campaign's entire fault schedule replays from its seed.
    """

    def __init__(
        self,
        listen_path: str,
        backend_path: str,
        cfg: ChaosConfig,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.listen_path = listen_path
        self.backend_path = backend_path
        self.cfg = cfg
        self.rng = rng if rng is not None else random.Random(cfg.seed)
        self.faults: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self.connections = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._pairs: set = set()

    @property
    def faults_total(self) -> int:
        return sum(self.faults.values())

    # ------------------------------------------------------------------
    async def start(self) -> None:
        if os.path.exists(self.listen_path):
            os.unlink(self.listen_path)
        self._server = await asyncio.start_unix_server(
            self._handle, path=self.listen_path, limit=256 * 1024
        )

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
            self._server = None
        self.sever_all()
        if os.path.exists(self.listen_path):
            os.unlink(self.listen_path)

    def sever_all(self) -> None:
        """Hard-drop every proxied connection (used at server kill time)."""
        for pair in list(self._pairs):
            self._abort_pair(pair)

    def _abort_pair(self, pair: Tuple[asyncio.StreamWriter, ...]) -> None:
        for writer in pair:
            with contextlib.suppress(Exception):
                writer.transport.abort()

    # ------------------------------------------------------------------
    async def _handle(
        self, creader: asyncio.StreamReader, cwriter: asyncio.StreamWriter
    ) -> None:
        try:
            breader, bwriter = await asyncio.open_unix_connection(
                self.backend_path, limit=256 * 1024
            )
        except OSError:
            # Backend down (mid-restart): the client sees a hard reset and
            # its resilient layer backs off and retries.
            with contextlib.suppress(Exception):
                cwriter.transport.abort()
            return
        self.connections += 1
        pair = (cwriter, bwriter)
        self._pairs.add(pair)
        try:
            await asyncio.gather(
                self._pump(creader, bwriter, pair),
                self._pump(breader, cwriter, pair),
                return_exceptions=True,
            )
        finally:
            self._pairs.discard(pair)
            for writer in pair:
                with contextlib.suppress(Exception):
                    writer.close()

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        pair: Tuple[asyncio.StreamWriter, ...],
    ) -> None:
        cfg = self.cfg
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                r = self.rng.random()
                threshold = cfg.drop_rate
                if r < threshold:
                    self.faults["drop"] += 1
                    continue
                threshold += cfg.delay_rate
                if r < threshold:
                    self.faults["delay"] += 1
                    await asyncio.sleep(self.rng.random() * cfg.delay_max_s)
                    writer.write(line)
                    await writer.drain()
                    continue
                threshold += cfg.duplicate_rate
                if r < threshold:
                    # Requests dedupe by idempotency token; replies dedupe
                    # by request id — a doubled frame must be harmless.
                    self.faults["duplicate"] += 1
                    writer.write(line + line)
                    await writer.drain()
                    continue
                threshold += cfg.truncate_rate
                if r < threshold:
                    # The torn write: half a frame, then a dead socket.
                    self.faults["truncate"] += 1
                    writer.write(line[: max(1, len(line) // 2)])
                    with contextlib.suppress(Exception):
                        await writer.drain()
                    self._abort_pair(pair)
                    return
                threshold += cfg.sever_rate
                if r < threshold:
                    self.faults["sever"] += 1
                    self._abort_pair(pair)
                    return
                writer.write(line)
                await writer.drain()
        except (ConnectionError, OSError, ValueError, asyncio.CancelledError):
            pass
        finally:
            # Propagate EOF so the peer's read loop terminates cleanly.
            with contextlib.suppress(Exception):
                writer.close()


class ServerProcess:
    """One ``python -m repro serve`` subprocess bound to a journal.

    Restartable: after :meth:`kill`, :meth:`start` boots a fresh process
    that replays the same journal — the unit the chaos campaign cycles.
    """

    def __init__(
        self, socket_path: str, journal_path: str, cfg: ChaosConfig
    ) -> None:
        self.socket_path = socket_path
        self.journal_path = journal_path
        self.cfg = cfg
        self.proc: Optional[asyncio.subprocess.Process] = None
        self.output: List[str] = []
        self._drain_task: Optional[asyncio.Task] = None

    def _argv(self) -> List[str]:
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--socket", self.socket_path,
            "--policy", self.cfg.policy,
            "--capacity-mb", str(self.cfg.capacity_mb),
            "--journal", self.journal_path,
            "--journal-fsync", str(self.cfg.journal_fsync_s),
            "--lease-ttl", str(self.cfg.lease_ttl_s),
            "--lease-check", str(self.cfg.lease_check_s),
            "--park-timeout", str(self.cfg.park_timeout_s),
            "--drain-grace", "3.0",
            "--sanitize",
        ]
        # Overload knobs ride along only when a campaign sets them, so the
        # classic campaigns keep their exact historical command line.
        optional = (
            ("--max-pending", self.cfg.max_pending),
            ("--retry-hint-floor", self.cfg.retry_hint_floor_s),
            ("--retry-hint-cap", self.cfg.retry_hint_cap_s),
            ("--park-deadline", self.cfg.park_deadline_s),
            ("--max-pending-per-client", self.cfg.max_pending_per_client),
            ("--write-timeout", self.cfg.write_timeout_s),
        )
        for flag, value in optional:
            if value is not None:
                argv += [flag, str(value)]
        return argv

    async def start(self) -> None:
        env = dict(os.environ)
        # Make ``-m repro`` resolve to *this* tree no matter how the
        # parent was launched (pytest from a checkout, an installed CLI…).
        src_dir = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = await asyncio.create_subprocess_exec(
            *self._argv(),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
            env=env,
        )
        self._drain_task = asyncio.ensure_future(self._drain_output())
        await self._wait_ready()

    async def _drain_output(self) -> None:
        assert self.proc is not None and self.proc.stdout is not None
        try:
            while True:
                line = await self.proc.stdout.readline()
                if not line:
                    break
                self.output.append(line.decode(errors="replace").rstrip())
        except (ConnectionError, ValueError, asyncio.CancelledError):
            pass

    async def _wait_ready(self) -> None:
        assert self.proc is not None
        deadline = time.monotonic() + self.cfg.server_start_timeout_s
        while time.monotonic() < deadline:
            if self.proc.returncode is not None:
                raise ServeError(
                    f"server exited {self.proc.returncode} during startup:\n"
                    + "\n".join(self.output[-10:])
                )
            if os.path.exists(self.socket_path):
                try:
                    probe = await ServeClient.connect(
                        unix_path=self.socket_path, timeout=1.0
                    )
                    try:
                        await probe.query(timeout=1.0)
                    finally:
                        await probe.close()
                    return
                except (ReproError, OSError, asyncio.TimeoutError):
                    pass
            await asyncio.sleep(0.05)
        raise ServeError(
            f"server not ready within {self.cfg.server_start_timeout_s} s"
        )

    def kill(self) -> None:
        """SIGKILL — no drain, no journal flush, no goodbye."""
        assert self.proc is not None
        with contextlib.suppress(ProcessLookupError):
            self.proc.send_signal(signal.SIGKILL)

    async def wait(self, timeout_s: Optional[float] = None) -> int:
        assert self.proc is not None
        if timeout_s is None:
            code = await self.proc.wait()
        else:
            code = await asyncio.wait_for(self.proc.wait(), timeout=timeout_s)
        if self._drain_task is not None:
            with contextlib.suppress(Exception):
                await self._drain_task
            self._drain_task = None
        return code


@dataclass
class ChaosReport:
    """What one chaos campaign inflicted and observed."""

    seed: int
    wall_s: float
    kills: int
    faults: Dict[str, int]
    faults_total: int
    proxy_connections: int
    load: LoadgenReport
    replayed_periods_last_boot: int
    settled: bool
    settle_s: float
    final_open_periods: int
    final_usage_bytes: int
    final_waiting: int
    sanitizer_ok: Optional[bool]
    server_exit_code: Optional[int]
    server_output: List[str] = field(default_factory=list)
    #: cluster campaigns: shard count and front-end counters (else 0/empty)
    shards: int = 0
    cluster_counters: Dict[str, int] = field(default_factory=dict)
    #: supervised campaigns: restarts performed by the shard supervisor
    supervised: bool = False
    shard_restarts: int = 0
    shards_alive_final: int = 0
    shards_quarantined: int = 0
    #: rolling campaigns: shards that completed a drain+restart cycle
    rolling: bool = False
    rolled_shards: int = 0
    #: overload campaigns: extra verdict inputs (inert for the others)
    overload: bool = False
    p99_bound_s: Optional[float] = None
    p99_observed_s: Optional[float] = None
    slowloris_clients: int = 0
    slowloris_disconnects: int = 0
    final_clients: int = 0

    @property
    def ok(self) -> bool:
        """The recovery contract: quiescent, conserved, clean exit."""
        verdict = (
            self.settled
            and self.final_open_periods == 0
            and self.final_usage_bytes == 0
            and self.final_waiting == 0
            and self.sanitizer_ok is not False
            and self.server_exit_code == 0
        )
        if self.supervised:
            # Self-healing contract: every kill was healed by the
            # supervisor (capacity recovered to N shards alive) and
            # nothing got stuck in quarantine.
            verdict = (
                verdict
                and self.shard_restarts > 0
                and self.shards_alive_final == self.shards
                and self.shards_quarantined == 0
            )
        if self.rolling:
            # Rolling-restart contract: every shard completed its
            # drain+restart cycle and no admitted period was lost.
            verdict = (
                verdict
                and self.rolled_shards == self.shards
                and self.shards_alive_final == self.shards
                and self.load.lost_periods == 0
            )
        if self.overload:
            # Degradation contract: admitted calls stay fast, every shed
            # reply carries a retry hint, and dead slow consumers' leases
            # are reclaimed (no leaked clients).
            verdict = (
                verdict
                and self.load.sheds_without_hint == 0
                and self.final_clients == 0
                and self.load.admission_latency.count > 0
                and self.p99_bound_s is not None
                and self.p99_observed_s is not None
                and self.p99_observed_s <= self.p99_bound_s
            )
        return verdict

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "wall_s": self.wall_s,
            "kills": self.kills,
            "faults": dict(self.faults),
            "faults_total": self.faults_total,
            "proxy_connections": self.proxy_connections,
            "load": self.load.to_dict(),
            "replayed_periods_last_boot": self.replayed_periods_last_boot,
            "settled": self.settled,
            "settle_s": self.settle_s,
            "final_open_periods": self.final_open_periods,
            "final_usage_bytes": self.final_usage_bytes,
            "final_waiting": self.final_waiting,
            "sanitizer_ok": self.sanitizer_ok,
            "server_exit_code": self.server_exit_code,
            "shards": self.shards,
            "cluster_counters": dict(self.cluster_counters),
            "supervised": self.supervised,
            "shard_restarts": self.shard_restarts,
            "shards_alive_final": self.shards_alive_final,
            "shards_quarantined": self.shards_quarantined,
            "rolling": self.rolling,
            "rolled_shards": self.rolled_shards,
            "overload": self.overload,
            "p99_bound_s": self.p99_bound_s,
            "p99_observed_s": self.p99_observed_s,
            "slowloris_clients": self.slowloris_clients,
            "slowloris_disconnects": self.slowloris_disconnects,
            "final_clients": self.final_clients,
            "ok": self.ok,
        }

    def describe(self) -> str:
        fault_bits = ", ".join(
            f"{self.faults[k]} {k}" for k in FAULT_KINDS if self.faults[k]
        )
        shape = (
            f"rolling restart campaign ({self.shards} shard(s), "
            if self.rolling
            else f"supervised cluster campaign ({self.shards} shard(s), "
            if self.supervised
            else f"cluster chaos campaign ({self.shards} shard(s), "
            if self.shards
            else "overload campaign ("
            if self.overload
            else "chaos campaign ("
        )
        lines = [
            f"{shape}seed {self.seed}): {self.wall_s:.2f} s wall, "
            f"{self.kills} kill(s), {self.faults_total} fault(s) injected"
            + (f" ({fault_bits})" if fault_bits else ""),
            f"  load: {self.load.admitted}/{self.load.calls} admitted, "
            f"{self.load.reconnects} reconnect(s), "
            f"{self.load.deduped} deduped begin(s), "
            f"{self.load.lost_periods} lost period(s)",
            f"  recovery: {self.replayed_periods_last_boot} period(s) "
            f"replayed at last boot, settled in {self.settle_s:.2f} s "
            f"({'yes' if self.settled else 'NO'})",
            f"  final: {self.final_open_periods} open period(s), "
            f"{self.final_usage_bytes} B charged, "
            f"{self.final_waiting} waiting, sanitizer "
            + (
                "ok" if self.sanitizer_ok
                else "VIOLATED" if self.sanitizer_ok is False
                else "n/a"
            )
            + f", server exit {self.server_exit_code}",
        ]
        if self.cluster_counters:
            lines.append(
                "  placer: "
                + ", ".join(
                    f"{v} {k}" for k, v in sorted(self.cluster_counters.items())
                )
            )
        if self.supervised or self.rolling:
            bits = [
                f"{self.shard_restarts} supervised restart(s)",
                f"{self.shards_alive_final}/{self.shards} shard(s) alive",
                f"{self.shards_quarantined} quarantined",
            ]
            if self.rolling:
                bits.append(
                    f"{self.rolled_shards}/{self.shards} rolled"
                )
            lines.append("  lifecycle: " + ", ".join(bits))
        if self.overload:
            p99 = (
                f"{self.p99_observed_s * 1e3:.1f} ms"
                if self.p99_observed_s is not None
                and self.p99_observed_s == self.p99_observed_s
                else "n/a"
            )
            bound = (
                f"{self.p99_bound_s * 1e3:.0f} ms"
                if self.p99_bound_s is not None else "n/a"
            )
            lines.append(
                f"  overload: admitted p99 {p99} (bound {bound}), "
                f"{self.load.shed_calls} call(s) shed "
                f"({self.load.sheds_without_hint} missing a retry hint), "
                f"{self.slowloris_disconnects}/{self.slowloris_clients} "
                f"slow consumer(s) disconnected, "
                f"{self.final_clients} client lease(s) left"
            )
        lines.append(f"  verdict: {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
async def run_chaos(cfg: ChaosConfig, workdir: str) -> ChaosReport:
    """One full campaign: serve, mangle, kill, restart, settle, judge."""
    os.makedirs(workdir, exist_ok=True)
    backend_path = os.path.join(workdir, "chaos-server.sock")
    front_path = os.path.join(workdir, "chaos-proxy.sock")
    journal_path = os.path.join(workdir, "chaos-journal.ndjson")

    t_start = time.monotonic()
    server = ServerProcess(backend_path, journal_path, cfg)
    await server.start()
    proxy = ChaosProxy(
        front_path, backend_path, cfg, rng=random.Random(cfg.seed ^ 0x5EED)
    )
    await proxy.start()

    load_cfg = LoadgenConfig(
        mode="closed",
        clients=cfg.clients,
        sessions=cfg.sessions,
        duration_s=cfg.duration_s,
        time_scale=1.0,
        max_hold_s=max(cfg.hold_s, 0.25),
        max_retries=100_000,
        resilient=True,
        call_timeout_s=2.0,
        # past the server's park timeout, silence on pp_begin means a
        # dropped frame, not a parked period — reconnect and re-issue
        begin_timeout_s=cfg.park_timeout_s + 2.0,
        seed=cfg.seed,
    )
    scripts = fig4_scripts(
        n=max(8, cfg.clients * 2), demand_mb=cfg.demand_mb, hold_s=cfg.hold_s
    )
    load_task = asyncio.ensure_future(
        run_loadgen(scripts, load_cfg, unix_path=front_path)
    )

    kills = 0
    try:
        for _ in range(cfg.kills):
            await asyncio.sleep(cfg.kill_interval_s)
            if load_task.done():
                break
            server.kill()
            await server.wait()
            kills += 1
            # Connections through the proxy are stranded on a dead
            # backend; hard-drop them so clients reconnect promptly.
            proxy.sever_all()
            await server.start()
        load = await load_task
    except BaseException:
        load_task.cancel()
        with contextlib.suppress(BaseException):
            await load_task
        with contextlib.suppress(Exception):
            await proxy.close()
        raise

    # ------------------------------------------------------------------
    # settle: the lease reaper reclaims what dead clients left behind
    # ------------------------------------------------------------------
    settled = False
    settle_t0 = time.monotonic()
    final_open = final_usage = final_waiting = -1
    sanitizer_ok: Optional[bool] = None
    replayed = 0
    probe = await ServeClient.connect(unix_path=backend_path, timeout=5.0)
    try:
        deadline = settle_t0 + cfg.settle_timeout_s
        while time.monotonic() < deadline:
            try:
                q = await probe.query(timeout=10.0)
            except asyncio.TimeoutError:
                # a timed-out round trip leaves the connection
                # desynchronized — reconnect and keep settling
                await probe.close()
                probe = await ServeClient.connect(
                    unix_path=backend_path, timeout=5.0
                )
                continue
            final_open = int(q.get("open_periods", -1))
            final_waiting = int(q.get("waiting", -1))
            final_usage = sum(
                int(state.get("usage_bytes", 0))
                for state in q.get("resources", {}).values()
            )
            replayed = int((q.get("journal") or {}).get("replayed_periods", 0))
            if final_open == 0 and final_usage == 0 and final_waiting == 0:
                settled = True
                break
            await asyncio.sleep(0.1)
        with contextlib.suppress(asyncio.TimeoutError):
            stats = await probe.stats(timeout=10.0)
            sanitizer = stats.get("sanitizer")
            if sanitizer is not None:
                sanitizer_ok = bool(sanitizer.get("ok"))
            await probe.drain(timeout=10.0)
    finally:
        await probe.close()
    settle_s = time.monotonic() - settle_t0

    exit_code: Optional[int] = None
    with contextlib.suppress(asyncio.TimeoutError):
        exit_code = await server.wait(timeout_s=10.0)
    if exit_code is None:
        server.kill()
        with contextlib.suppress(asyncio.TimeoutError):
            await server.wait(timeout_s=5.0)
    await proxy.close()

    return ChaosReport(
        seed=cfg.seed,
        wall_s=time.monotonic() - t_start,
        kills=kills,
        faults=dict(proxy.faults),
        faults_total=proxy.faults_total,
        proxy_connections=proxy.connections,
        load=load,
        replayed_periods_last_boot=replayed,
        settled=settled,
        settle_s=settle_s,
        final_open_periods=final_open,
        final_usage_bytes=final_usage,
        final_waiting=final_waiting,
        sanitizer_ok=sanitizer_ok,
        server_exit_code=exit_code,
        server_output=list(server.output),
    )


def run_chaos_sync(cfg: ChaosConfig, workdir: str) -> ChaosReport:
    """Blocking wrapper around :func:`run_chaos` (CLI entry point)."""
    return asyncio.run(run_chaos(cfg, workdir))


# ----------------------------------------------------------------------
# cluster campaign
# ----------------------------------------------------------------------
def _subprocess_restarter(shard: ServerProcess):
    """Restart hook handed to the front-end's shard supervisor: reap the
    killed subprocess, then boot a fresh one on the same journal."""

    async def restart() -> None:
        try:
            await shard.wait(timeout_s=15.0)
        except asyncio.TimeoutError:
            # The process never exited: the "death" was a probe flap
            # under load.  Booting a second incarnation next to a live
            # one would fight it for the socket and the journal lock, so
            # leave it alone — the supervisor's ready-probe re-registers
            # the survivor.
            return
        await shard.start()

    return restart


async def run_cluster_chaos(cfg: ChaosConfig, workdir: str) -> ChaosReport:
    """Kill individual shards behind a placer front-end, then judge.

    The fault model differs from the single-server campaign: instead of a
    frame-mangling proxy, the injected fault is *shard death* — each cycle
    SIGKILLs one shard (round robin), which strands that shard's clients
    mid-protocol.  The contract under test is the cluster fault path: the
    front-end's health loop marks the shard dead, stranded clients fall
    back to the front-end and are re-placed on live shards, and the killed
    shard restarts from its own journal.  Settling requires *every* shard
    to quiesce to zero open periods, zero charged bytes and zero waiters.
    """
    from .cluster import ClusterConfig, ClusterFrontend
    from .placer import ShardAddress

    n_shards = max(1, cfg.shards or 3)
    os.makedirs(workdir, exist_ok=True)
    placer_path = os.path.join(workdir, "placer.sock")

    t_start = time.monotonic()
    shards: List[ServerProcess] = []
    addresses: List[ShardAddress] = []
    for i in range(n_shards):
        socket_path = os.path.join(workdir, f"shard{i}.sock")
        journal_path = os.path.join(workdir, f"shard{i}-journal.ndjson")
        shard = ServerProcess(socket_path, journal_path, cfg)
        await shard.start()
        shards.append(shard)
        addresses.append(ShardAddress(name=f"shard{i}", unix_path=socket_path))

    frontend = ClusterFrontend(ClusterConfig(
        shards=tuple(addresses),
        seed=cfg.seed,
        health_interval_s=0.1,
        probe_timeout_s=2.0,
        # deliberate SIGKILLs are not crash loops: never quarantine a
        # shard for dying on schedule
        crash_loop_window_s=0.0,
        restart_backoff_s=0.1,
        restart_ready_timeout_s=cfg.server_start_timeout_s,
    ))
    await frontend.start(unix_path=placer_path)
    if cfg.supervise:
        for shard, address in zip(shards, addresses):
            frontend.register_restarter(
                address.name, _subprocess_restarter(shard)
            )
    frontend_task = asyncio.ensure_future(frontend.run_until_drained())

    load_cfg = LoadgenConfig(
        mode="closed",
        clients=cfg.clients,
        sessions=cfg.sessions,
        duration_s=cfg.duration_s,
        time_scale=1.0,
        max_hold_s=max(cfg.hold_s, 0.25),
        max_retries=100_000,
        cluster=True,
        call_timeout_s=2.0,
        begin_timeout_s=cfg.park_timeout_s + 2.0,
        seed=cfg.seed,
    )
    scripts = fig4_scripts(
        n=max(8, cfg.clients * 2), demand_mb=cfg.demand_mb, hold_s=cfg.hold_s
    )
    load_task = asyncio.ensure_future(
        run_loadgen(scripts, load_cfg, unix_path=placer_path)
    )

    kills = 0
    try:
        for cycle in range(cfg.kills):
            await asyncio.sleep(cfg.kill_interval_s)
            if load_task.done():
                break
            victim_idx = cycle % n_shards
            if cfg.supervise:
                # Pick a victim the supervisor has already healed — a
                # still-dead shard yields no new kill to supervise.
                for offset in range(n_shards):
                    idx = (cycle + offset) % n_shards
                    if frontend.placer.shards[f"shard{idx}"].alive:
                        victim_idx = idx
                        break
                else:
                    continue
            victim = shards[victim_idx]
            victim.kill()
            await victim.wait()
            kills += 1
            if not cfg.supervise:
                await victim.start()
        load = await load_task
    except BaseException:
        load_task.cancel()
        with contextlib.suppress(BaseException):
            await load_task
        frontend.request_drain()
        with contextlib.suppress(BaseException):
            await frontend_task
        for shard in shards:
            shard.kill()
            with contextlib.suppress(Exception):
                await shard.wait(timeout_s=5.0)
        raise

    # ------------------------------------------------------------------
    # settle: every shard must quiesce once the load's leases expire
    # ------------------------------------------------------------------
    settled = False
    settle_t0 = time.monotonic()
    final_open = final_usage = final_waiting = -1
    sanitizer_ok: Optional[bool] = None
    replayed = 0
    deadline = settle_t0 + cfg.settle_timeout_s

    async def probe_shard(shard: ServerProcess) -> Dict[str, Any]:
        probe = await ServeClient.connect(
            unix_path=shard.socket_path, timeout=5.0
        )
        try:
            return await probe.query(timeout=10.0)
        finally:
            await probe.close()

    while time.monotonic() < deadline:
        final_open = final_usage = final_waiting = 0
        replayed = 0
        try:
            for shard in shards:
                q = await probe_shard(shard)
                final_open += int(q.get("open_periods", 0))
                final_waiting += int(q.get("waiting", 0))
                final_usage += sum(
                    int(state.get("usage_bytes", 0))
                    for state in q.get("resources", {}).values()
                )
                replayed += int(
                    (q.get("journal") or {}).get("replayed_periods", 0)
                )
        except (ReproError, OSError, asyncio.TimeoutError):
            await asyncio.sleep(0.1)
            continue
        if final_open == 0 and final_usage == 0 and final_waiting == 0:
            settled = True
            break
        await asyncio.sleep(0.1)
    settle_s = time.monotonic() - settle_t0

    # capacity-recovery verdict inputs, read *before* the shutdown drain
    # below tears the shards down
    await frontend._health_sweep()
    shards_alive_final = len(frontend.placer.alive_shards())
    shards_quarantined = len(frontend.quarantined)

    # from here on every shard death is deliberate: stop the supervisor
    # before it resurrects what the teardown drains
    await frontend.disarm_supervision()

    # drain every shard, then the front-end, and collect verdicts
    exit_worst: Optional[int] = 0
    for shard in shards:
        try:
            probe = await ServeClient.connect(
                unix_path=shard.socket_path, timeout=5.0
            )
            try:
                stats = await probe.stats(timeout=10.0)
                sanitizer = stats.get("sanitizer")
                if sanitizer is not None:
                    shard_ok = bool(sanitizer.get("ok"))
                    sanitizer_ok = (
                        shard_ok if sanitizer_ok is None
                        else sanitizer_ok and shard_ok
                    )
                await probe.drain(timeout=10.0)
            finally:
                await probe.close()
        except (ReproError, OSError, asyncio.TimeoutError):
            exit_worst = 1
    for shard in shards:
        code: Optional[int] = None
        with contextlib.suppress(asyncio.TimeoutError):
            code = await shard.wait(timeout_s=10.0)
        if code is None:
            shard.kill()
            with contextlib.suppress(asyncio.TimeoutError):
                await shard.wait(timeout_s=5.0)
        if code != 0 and exit_worst == 0:
            exit_worst = code if code is not None else 1
    cluster_counters = {
        name: counter.value
        for name, counter in (
            ("placements", frontend.c_placements),
            ("redirects", frontend.c_redirects),
            ("forwards", frontend.c_forwards),
            ("migrations", frontend.c_migrations),
            ("migration_failures", frontend.c_migration_failures),
            ("shard_restarts", frontend.c_shard_restarts),
            ("rebalance_migrations", frontend.c_rebalances),
        )
    }
    shard_restarts = frontend.c_shard_restarts.value
    frontend.request_drain()
    with contextlib.suppress(BaseException):
        await frontend_task

    output: List[str] = []
    for i, shard in enumerate(shards):
        output.extend(f"[shard{i}] {line}" for line in shard.output)

    return ChaosReport(
        seed=cfg.seed,
        wall_s=time.monotonic() - t_start,
        kills=kills,
        faults={kind: 0 for kind in FAULT_KINDS},
        faults_total=0,
        proxy_connections=0,
        load=load,
        replayed_periods_last_boot=replayed,
        settled=settled,
        settle_s=settle_s,
        final_open_periods=final_open,
        final_usage_bytes=final_usage,
        final_waiting=final_waiting,
        sanitizer_ok=sanitizer_ok,
        server_exit_code=exit_worst,
        server_output=output,
        shards=n_shards,
        cluster_counters=cluster_counters,
        supervised=cfg.supervise,
        shard_restarts=shard_restarts,
        shards_alive_final=shards_alive_final,
        shards_quarantined=shards_quarantined,
    )


def run_cluster_chaos_sync(cfg: ChaosConfig, workdir: str) -> ChaosReport:
    """Blocking wrapper around :func:`run_cluster_chaos` (CLI entry)."""
    return asyncio.run(run_cluster_chaos(cfg, workdir))


# ----------------------------------------------------------------------
# rolling restart campaign
# ----------------------------------------------------------------------
async def run_rolling_chaos(cfg: ChaosConfig, workdir: str) -> ChaosReport:
    """A full rolling restart under live load, losing nothing.

    N subprocess shards behind a placer front-end, resilient clients
    driving load throughout; after a warm-up the front-end drains,
    restarts and rejoins every shard one at a time.  The verdict demands
    every shard completed its cycle, capacity recovered to N shards
    alive, zero admitted periods were lost, and the settled cluster is
    as quiescent as after any other campaign.
    """
    from .cluster import ClusterConfig, ClusterFrontend
    from .placer import ShardAddress

    n_shards = max(1, cfg.shards or 3)
    os.makedirs(workdir, exist_ok=True)
    placer_path = os.path.join(workdir, "placer.sock")

    t_start = time.monotonic()
    shards: List[ServerProcess] = []
    addresses: List[ShardAddress] = []
    for i in range(n_shards):
        socket_path = os.path.join(workdir, f"shard{i}.sock")
        journal_path = os.path.join(workdir, f"shard{i}-journal.ndjson")
        shard = ServerProcess(socket_path, journal_path, cfg)
        await shard.start()
        shards.append(shard)
        addresses.append(ShardAddress(name=f"shard{i}", unix_path=socket_path))

    frontend = ClusterFrontend(ClusterConfig(
        shards=tuple(addresses),
        seed=cfg.seed,
        health_interval_s=0.1,
        probe_timeout_s=2.0,
        crash_loop_window_s=0.0,
        restart_backoff_s=0.1,
        restart_ready_timeout_s=cfg.server_start_timeout_s,
        shard_drain_grace_s=cfg.rolling_grace_s,
    ))
    await frontend.start(unix_path=placer_path)
    for shard, address in zip(shards, addresses):
        frontend.register_restarter(address.name, _subprocess_restarter(shard))
    frontend_task = asyncio.ensure_future(frontend.run_until_drained())

    load_cfg = LoadgenConfig(
        mode="closed",
        clients=cfg.clients,
        sessions=cfg.sessions,
        duration_s=cfg.duration_s,
        time_scale=1.0,
        max_hold_s=max(cfg.hold_s, 0.25),
        max_retries=100_000,
        cluster=True,
        call_timeout_s=2.0,
        begin_timeout_s=cfg.park_timeout_s + 2.0,
        seed=cfg.seed,
    )
    scripts = fig4_scripts(
        n=max(8, cfg.clients * 2), demand_mb=cfg.demand_mb, hold_s=cfg.hold_s
    )
    load_task = asyncio.ensure_future(
        run_loadgen(scripts, load_cfg, unix_path=placer_path)
    )

    rolled = 0
    try:
        # warm up: let the load establish leases and admitted periods
        await asyncio.sleep(min(cfg.kill_interval_s, cfg.duration_s / 4))
        results = await frontend.rolling_restart(grace_s=cfg.rolling_grace_s)
        rolled = sum(1 for ok in results.values() if ok)
        load = await load_task
    except BaseException:
        load_task.cancel()
        with contextlib.suppress(BaseException):
            await load_task
        frontend.request_drain()
        with contextlib.suppress(BaseException):
            await frontend_task
        for shard in shards:
            shard.kill()
            with contextlib.suppress(Exception):
                await shard.wait(timeout_s=5.0)
        raise

    # ------------------------------------------------------------------
    # settle: every shard must quiesce once the load's leases expire
    # ------------------------------------------------------------------
    settled = False
    settle_t0 = time.monotonic()
    final_open = final_usage = final_waiting = -1
    sanitizer_ok: Optional[bool] = None
    replayed = 0
    deadline = settle_t0 + cfg.settle_timeout_s

    async def probe_shard(shard: ServerProcess) -> Dict[str, Any]:
        probe = await ServeClient.connect(
            unix_path=shard.socket_path, timeout=5.0
        )
        try:
            return await probe.query(timeout=10.0)
        finally:
            await probe.close()

    while time.monotonic() < deadline:
        final_open = final_usage = final_waiting = 0
        replayed = 0
        try:
            for shard in shards:
                q = await probe_shard(shard)
                final_open += int(q.get("open_periods", 0))
                final_waiting += int(q.get("waiting", 0))
                final_usage += sum(
                    int(state.get("usage_bytes", 0))
                    for state in q.get("resources", {}).values()
                )
                replayed += int(
                    (q.get("journal") or {}).get("replayed_periods", 0)
                )
        except (ReproError, OSError, asyncio.TimeoutError):
            await asyncio.sleep(0.1)
            continue
        if final_open == 0 and final_usage == 0 and final_waiting == 0:
            settled = True
            break
        await asyncio.sleep(0.1)
    settle_s = time.monotonic() - settle_t0

    await frontend._health_sweep()
    shards_alive_final = len(frontend.placer.alive_shards())
    shards_quarantined = len(frontend.quarantined)

    # planned teardown from here: the supervisor must not resurrect the
    # shards the shutdown drain takes down
    await frontend.disarm_supervision()

    exit_worst: Optional[int] = 0
    for shard in shards:
        try:
            probe = await ServeClient.connect(
                unix_path=shard.socket_path, timeout=5.0
            )
            try:
                stats = await probe.stats(timeout=10.0)
                sanitizer = stats.get("sanitizer")
                if sanitizer is not None:
                    shard_ok = bool(sanitizer.get("ok"))
                    sanitizer_ok = (
                        shard_ok if sanitizer_ok is None
                        else sanitizer_ok and shard_ok
                    )
                await probe.drain(timeout=10.0)
            finally:
                await probe.close()
        except (ReproError, OSError, asyncio.TimeoutError):
            exit_worst = 1
    for shard in shards:
        code: Optional[int] = None
        with contextlib.suppress(asyncio.TimeoutError):
            code = await shard.wait(timeout_s=10.0)
        if code is None:
            shard.kill()
            with contextlib.suppress(asyncio.TimeoutError):
                await shard.wait(timeout_s=5.0)
        if code != 0 and exit_worst == 0:
            exit_worst = code if code is not None else 1
    cluster_counters = {
        name: counter.value
        for name, counter in (
            ("placements", frontend.c_placements),
            ("redirects", frontend.c_redirects),
            ("forwards", frontend.c_forwards),
            ("migrations", frontend.c_migrations),
            ("migration_failures", frontend.c_migration_failures),
            ("shard_restarts", frontend.c_shard_restarts),
            ("shard_drains", frontend.c_shard_drains),
        )
    }
    shard_restarts = frontend.c_shard_restarts.value
    frontend.request_drain()
    with contextlib.suppress(BaseException):
        await frontend_task

    output: List[str] = []
    for i, shard in enumerate(shards):
        output.extend(f"[shard{i}] {line}" for line in shard.output)

    return ChaosReport(
        seed=cfg.seed,
        wall_s=time.monotonic() - t_start,
        kills=0,
        faults={kind: 0 for kind in FAULT_KINDS},
        faults_total=0,
        proxy_connections=0,
        load=load,
        replayed_periods_last_boot=replayed,
        settled=settled,
        settle_s=settle_s,
        final_open_periods=final_open,
        final_usage_bytes=final_usage,
        final_waiting=final_waiting,
        sanitizer_ok=sanitizer_ok,
        server_exit_code=exit_worst,
        server_output=output,
        shards=n_shards,
        cluster_counters=cluster_counters,
        shard_restarts=shard_restarts,
        shards_alive_final=shards_alive_final,
        shards_quarantined=shards_quarantined,
        rolling=True,
        rolled_shards=rolled,
    )


def run_rolling_chaos_sync(cfg: ChaosConfig, workdir: str) -> ChaosReport:
    """Blocking wrapper around :func:`run_rolling_chaos` (CLI entry)."""
    return asyncio.run(run_rolling_chaos(cfg, workdir))


# ----------------------------------------------------------------------
# overload campaign
# ----------------------------------------------------------------------
async def _slowloris(
    socket_path: str, index: int, stop: asyncio.Event
) -> int:
    """One slow consumer: hello, then flood requests while never reading.

    The server's replies pile up in the socket it can't flush, its
    bounded ``drain()`` trips the write budget, and it aborts the
    connection — at which point this task reconnects and floods again.
    Returns how many times the connection was severed under it.

    Shutdown is via ``stop`` (checked every iteration), not cancellation
    alone: on 3.11 a ``wait_for`` whose inner future completed just as
    the cancel landed swallows the CancelledError, and this loop runs
    hot enough to hit that race almost surely.
    """
    disconnects = 0
    seq = 0
    while not stop.is_set():
        try:
            reader, writer = await asyncio.open_unix_connection(
                socket_path, limit=256 * 1024
            )
        except OSError:
            # Server mid-restart: try again shortly.
            try:
                await asyncio.sleep(0.1)
                continue
            except asyncio.CancelledError:
                return disconnects
        try:
            hello = {
                "id": seq, "op": "hello", "client": f"slowloris-{index}",
            }
            seq += 1
            writer.write((json.dumps(hello) + "\n").encode("utf-8"))
            await writer.drain()
            while not stop.is_set():
                frame = {"id": seq, "op": "stats"}
                seq += 1
                writer.write((json.dumps(frame) + "\n").encode("utf-8"))
                # Bound our own drain: once the server aborts us the
                # write surfaces as a ConnectionError and we reconnect.
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(writer.drain(), timeout=0.2)
                # Pace the flood: the attack is the unread reply backlog,
                # not request volume — unpaced, this loop monopolizes the
                # driver's event loop and drowns the storm it rides with.
                await asyncio.sleep(0.002)
        except (ConnectionError, OSError):
            disconnects += 1
        except asyncio.CancelledError:
            return disconnects
        finally:
            with contextlib.suppress(Exception):
                writer.transport.abort()
    return disconnects


async def run_overload_chaos(cfg: ChaosConfig, workdir: str) -> ChaosReport:
    """Overload campaign: storm the server, starve it, kill it, judge it.

    Three attacks run at once against one journal-backed server with the
    overload defenses armed (any knob the caller left unset gets a tight
    default):

    * an **open-loop arrival storm** — Poisson arrivals at
      ``storm_rate``/s that do not slow down when the server does, so the
      pending queue saturates and the shedding paths (adaptive
      RETRY_AFTER, per-client quotas, park deadlines) all fire;
    * **slow consumers** — connections that write requests but never read
      replies, exercising the bounded write budget and lease reclaim;
    * the usual **SIGKILL/restart** cycles mid-storm.

    The verdict extends the recovery contract: admitted calls must keep
    p99 admission latency under ``p99_bound_s``, every shed reply must
    carry a retry hint, and no client lease may survive the settle.
    """
    # Arm every unset overload knob with a deliberately tight default so
    # the storm actually trips each defense within a short campaign.
    cfg = replace(
        cfg,
        max_pending=16 if cfg.max_pending is None else cfg.max_pending,
        retry_hint_floor_s=(
            0.05 if cfg.retry_hint_floor_s is None else cfg.retry_hint_floor_s
        ),
        retry_hint_cap_s=(
            2.0 if cfg.retry_hint_cap_s is None else cfg.retry_hint_cap_s
        ),
        park_deadline_s=(
            1.0 if cfg.park_deadline_s is None else cfg.park_deadline_s
        ),
        max_pending_per_client=(
            2 if cfg.max_pending_per_client is None
            else cfg.max_pending_per_client
        ),
        write_timeout_s=(
            1.0 if cfg.write_timeout_s is None else cfg.write_timeout_s
        ),
        # The storm must oversubscribe capacity or nothing sheds: at the
        # classic campaign's 10 ms holds, 150 arrivals/s of 2 MB fits in
        # an 8 MB machine with room to spare.  150 ms holds put offered
        # load at ~5-6x capacity.
        hold_s=max(cfg.hold_s, 0.15),
    )
    os.makedirs(workdir, exist_ok=True)
    socket_path = os.path.join(workdir, "overload-server.sock")
    journal_path = os.path.join(workdir, "overload-journal.ndjson")

    t_start = time.monotonic()
    server = ServerProcess(socket_path, journal_path, cfg)
    await server.start()

    slow_stop = asyncio.Event()
    slow_tasks = [
        asyncio.ensure_future(_slowloris(socket_path, i, slow_stop))
        for i in range(cfg.slowloris)
    ]

    assert cfg.park_deadline_s is not None  # armed above
    load_cfg = LoadgenConfig(
        mode="open",
        rate=cfg.storm_rate,
        sessions=cfg.sessions,
        duration_s=cfg.duration_s,
        time_scale=1.0,
        max_hold_s=max(cfg.hold_s, 0.05),
        # A storm client that keeps being shed gives up quickly — the
        # point is terminal shed accounting, not eventual admission.
        max_retries=6,
        resilient=True,
        call_timeout_s=2.0,
        begin_timeout_s=min(cfg.park_deadline_s, cfg.park_timeout_s) + 2.0,
        client_backoff_cap_s=cfg.backoff_cap_s,
        breaker_threshold=cfg.breaker_threshold,
        breaker_reset_s=cfg.breaker_reset_s,
        seed=cfg.seed,
    )
    scripts = fig4_scripts(
        n=max(8, cfg.clients * 2), demand_mb=cfg.demand_mb, hold_s=cfg.hold_s
    )
    load_task = asyncio.ensure_future(
        run_loadgen(scripts, load_cfg, unix_path=socket_path)
    )

    kills = 0
    try:
        for _ in range(cfg.kills):
            await asyncio.sleep(cfg.kill_interval_s)
            if load_task.done():
                break
            server.kill()
            await server.wait()
            kills += 1
            await server.start()
        load = await load_task
    except BaseException:
        load_task.cancel()
        slow_stop.set()
        for task in slow_tasks:
            task.cancel()
        with contextlib.suppress(BaseException):
            await load_task
        for task in slow_tasks:
            with contextlib.suppress(BaseException):
                await task
        raise

    # Storm is over: call off the slow consumers, then let the lease
    # reaper reclaim everything they and the storm clients left behind.
    slow_stop.set()
    for task in slow_tasks:
        task.cancel()
    slow_results = await asyncio.gather(*slow_tasks, return_exceptions=True)
    slow_disconnects = sum(r for r in slow_results if isinstance(r, int))

    settled = False
    settle_t0 = time.monotonic()
    final_open = final_usage = final_waiting = final_clients = -1
    sanitizer_ok: Optional[bool] = None
    replayed = 0
    probe = await ServeClient.connect(unix_path=socket_path, timeout=5.0)
    try:
        deadline = settle_t0 + cfg.settle_timeout_s
        while time.monotonic() < deadline:
            try:
                q = await probe.query(timeout=10.0)
            except asyncio.TimeoutError:
                # a timed-out round trip leaves the connection
                # desynchronized — reconnect and keep settling
                await probe.close()
                probe = await ServeClient.connect(
                    unix_path=socket_path, timeout=5.0
                )
                continue
            final_open = int(q.get("open_periods", -1))
            final_waiting = int(q.get("waiting", -1))
            final_clients = int(q.get("clients", -1))
            final_usage = sum(
                int(state.get("usage_bytes", 0))
                for state in q.get("resources", {}).values()
            )
            replayed = int((q.get("journal") or {}).get("replayed_periods", 0))
            if (
                final_open == 0
                and final_usage == 0
                and final_waiting == 0
                and final_clients == 0
            ):
                settled = True
                break
            await asyncio.sleep(0.1)
        with contextlib.suppress(asyncio.TimeoutError):
            stats = await probe.stats(timeout=10.0)
            sanitizer = stats.get("sanitizer")
            if sanitizer is not None:
                sanitizer_ok = bool(sanitizer.get("ok"))
            await probe.drain(timeout=10.0)
    finally:
        await probe.close()
    settle_s = time.monotonic() - settle_t0

    exit_code: Optional[int] = None
    with contextlib.suppress(asyncio.TimeoutError):
        exit_code = await server.wait(timeout_s=10.0)
    if exit_code is None:
        server.kill()
        with contextlib.suppress(asyncio.TimeoutError):
            await server.wait(timeout_s=5.0)

    return ChaosReport(
        seed=cfg.seed,
        wall_s=time.monotonic() - t_start,
        kills=kills,
        faults={kind: 0 for kind in FAULT_KINDS},
        faults_total=0,
        proxy_connections=0,
        load=load,
        replayed_periods_last_boot=replayed,
        settled=settled,
        settle_s=settle_s,
        final_open_periods=final_open,
        final_usage_bytes=final_usage,
        final_waiting=final_waiting,
        sanitizer_ok=sanitizer_ok,
        server_exit_code=exit_code,
        server_output=list(server.output),
        overload=True,
        p99_bound_s=cfg.p99_bound_s,
        p99_observed_s=load.admission_latency.p99,
        slowloris_clients=cfg.slowloris,
        slowloris_disconnects=slow_disconnects,
        final_clients=final_clients,
    )


def run_overload_chaos_sync(cfg: ChaosConfig, workdir: str) -> ChaosReport:
    """Blocking wrapper around :func:`run_overload_chaos` (CLI entry)."""
    return asyncio.run(run_overload_chaos(cfg, workdir))
