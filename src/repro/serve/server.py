"""The online demand-aware admission-control service.

The paper's RDA layer is an *online* kernel service: ``pp_begin`` /
``pp_end`` calls arrive from live processes, and the kernel admits, parks,
or wakes them in real time.  This module runs the same admission machinery
— :class:`~repro.core.progress_monitor.ProgressMonitor`, the Algorithm-1
predicate, the resource waitlist and the Strict/Compromise policies — as a
long-running asyncio daemon speaking the newline-delimited-JSON protocol
of :mod:`repro.serve.protocol` over TCP or a Unix socket.

Design points:

* **Single writer.**  Every mutation of the admission state happens on the
  event loop, and no handler holds an ``await`` point inside a mutation
  sequence, so the core stack needs no locks — the asyncio loop plays the
  role of the kernel's run-queue lock.
* **Denied periods park the connection.**  A ``pp_begin`` the policy
  rejects does not get an immediate "no": the reply is deferred until a
  completing period frees capacity (the waitlist admits it), the per-client
  park timeout lapses, or the server drains — exactly how the kernel parks
  a process on the resource wait queue.
* **Bounded overload.**  The pending-admission queue is capped
  (``max_pending``); beyond it, new ``pp_begin`` requests receive a typed
  ``RETRY_AFTER`` reply instead of growing server memory without bound.
* **Starvation guard.**  As in :class:`~repro.core.rda.RdaScheduler`, a
  waiting period is force-admitted whenever its resource is completely
  idle, both inline after every release and from a periodic sweep, so a
  mis-annotated client is slow instead of deadlocked.
* **Graceful drain.**  SIGTERM (or the ``drain`` verb) stops admissions,
  wakes parked clients with a ``DRAINING`` error, waits up to the grace
  budget for running periods to end, then closes.
* **Fault tolerance.**  Clients that introduce themselves with ``hello``
  hold a lease (:mod:`repro.serve.leases`) renewed by every frame and the
  ``heartbeat`` verb; a reaper reclaims the admitted demand of clients
  whose lease lapses, so a crashed client cannot leak capacity.  With
  ``--journal``, every admission of a lease-bound client is written ahead
  to a crash-safe NDJSON log (:mod:`repro.serve.journal`) and replayed on
  startup, so a SIGKILLed server restarts with its charge ledger, lease
  table and idempotency-token index intact.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..config import MachineConfig, default_machine_config
from ..core.policy import AlwaysAdmitPolicy, SchedulingPolicy
from ..core.predicate import SchedulingPredicate
from ..core.progress_monitor import ProgressMonitor
from ..core.progress_period import (
    PeriodRequest,
    PeriodState,
    ProgressPeriod,
    ResourceKind,
    ReuseLevel,
    ensure_pp_ids_above,
)
from ..core.resource_monitor import ResourceMonitor
from ..core.waitlist import Waitlist
from ..errors import ProgressPeriodError, ProtocolError, ServeError
from ..predict import ElasticController, MispredictDetector, OnlineWssEstimator
from ..predict.estimator import EstimatorKey
from . import protocol
from .journal import AdmissionJournal, AdmitRecord
from .leases import ClientRecord, LeaseTable
from .metrics import MetricsRegistry
from .protocol import ErrorCode

__all__ = [
    "ServeConfig",
    "ServiceSanitizer",
    "AdmissionService",
    "AdmissionServer",
    "adaptive_retry_hint_s",
    "quota_admits",
    "serve_until_drained",
]


def adaptive_retry_hint_s(
    occupancy: float,
    latency_p50_s: float,
    floor_s: float,
    cap_s: float,
) -> float:
    """The adaptive RETRY_AFTER hint for one shed request.

    ``occupancy`` is the pending-queue fill fraction (clamped to [0, 1])
    and ``latency_p50_s`` the median observed admission latency.  The hint
    is the median latency (floored at ``floor_s``) scaled up to 4x as the
    queue fills::

        hint = clamp(max(floor, p50) * (1 + 3 * occupancy), floor, cap)

    Monotone non-decreasing in occupancy and always within
    ``[floor_s, cap_s]`` (the cap is raised to the floor if inverted) —
    both properties are pinned by hypothesis tests.
    """
    if cap_s < floor_s:
        cap_s = floor_s
    occupancy = min(1.0, max(0.0, occupancy))
    base = max(floor_s, latency_p50_s)
    return min(cap_s, max(floor_s, base * (1.0 + 3.0 * occupancy)))


def quota_admits(
    waiting_by_client: Dict[str, int],
    client: str,
    max_pending: int,
    max_pending_per_client: Optional[int],
) -> bool:
    """Would one more parked admission from ``client`` be within quota?

    True iff the aggregate pending queue stays within ``max_pending`` AND
    the client stays within ``max_pending_per_client`` (None = unbounded).
    Pure so the fairness math is property-testable apart from the server.
    """
    total = sum(waiting_by_client.values())
    if total >= max_pending:
        return False
    if max_pending_per_client is None:
        return True
    return waiting_by_client.get(client, 0) < max_pending_per_client


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one admission-control server instance."""

    #: admission policy; ``None`` = Always Admit (the Linux-default analogue)
    policy: Optional[SchedulingPolicy] = None
    #: machine description — the managed LLC capacity comes from here
    machine: MachineConfig = field(default_factory=default_machine_config)
    #: strict arrival-order waitlist draining (head-of-line blocking)
    strict_fifo: bool = False
    #: bound on parked admissions; beyond it pp_begin gets RETRY_AFTER
    max_pending: int = 1024
    #: hint returned with RETRY_AFTER replies
    retry_after_s: float = 0.05
    #: floor of the adaptive retry hint; with ``retry_hint_cap_s`` set,
    #: RETRY_AFTER hints scale with queue occupancy and observed admission
    #: latency instead of the constant ``retry_after_s`` (None = constant)
    retry_hint_floor_s: Optional[float] = None
    #: cap of the adaptive retry hint (None = constant ``retry_after_s``)
    retry_hint_cap_s: Optional[float] = None
    #: how long one client may stay parked before a TIMEOUT reply
    park_timeout_s: Optional[float] = 30.0
    #: CoDel-style sojourn bound on parked pp_begins: past it the period
    #: is cancelled with a typed PARK_TIMEOUT error carrying a retry hint
    #: (None = only the legacy park_timeout_s applies)
    park_deadline_s: Optional[float] = None
    #: per-client bound on parked admissions, so one storm client cannot
    #: occupy the whole pending queue (None = no per-client bound)
    max_pending_per_client: Optional[int] = None
    #: slow-consumer defense: disconnect a session whose writer.drain()
    #: stalls past this deadline (None = wait forever, legacy behavior)
    write_timeout_s: Optional[float] = None
    #: per-connection read idle timeout (None = wait forever)
    idle_timeout_s: Optional[float] = None
    #: period of the background starvation-guard sweep
    starvation_check_s: float = 0.25
    #: how long drain waits for running periods before force-closing
    drain_grace_s: float = 5.0
    #: largest accepted request frame
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    #: attach the online invariant checker (the serve analogue of --sanitize)
    sanitize: bool = False
    #: flat file the metrics snapshot is dumped to (None = stats verb only)
    metrics_json: Optional[str] = None
    #: dump interval for ``metrics_json``
    metrics_interval_s: float = 2.0
    #: how long after its last frame a hello-bound client's admitted
    #: periods survive before the lease reaper reclaims them
    lease_ttl_s: float = 10.0
    #: period of the lease-reaper sweep
    lease_check_s: float = 0.25
    #: crash-safe admission journal path (None = in-memory ledger only)
    journal_path: Optional[str] = None
    #: journal fsync batching window (0 = fsync every record)
    journal_fsync_s: float = 0.0
    #: journal events between snapshot+truncate compactions
    journal_compact_every: int = 1000
    #: cluster shard label surfaced in query snapshots (None = standalone)
    shard_name: Optional[str] = None
    #: online demand prediction + elastic re-admission (repro.predict);
    #: default-off — admission behavior is byte-identical when False
    predict: bool = False
    #: relative-error band beyond which a closed period counts as a
    #: misprediction (|charged − observed| / observed)
    predict_error_band: float = 0.25
    #: observations per (client, key) before the estimator may override
    #: the declared demand
    predict_min_samples: int = 3
    #: ring-buffer length of retained demand samples per key
    predict_history: int = 32
    #: consecutive same-direction mispredictions before an elastic resize
    predict_hysteresis: int = 2
    #: predicted admissions are floored at this fraction of the declared
    #: demand, bounding how far a confident model can undercut a declaration
    predict_floor_frac: float = 0.25


class ServiceSanitizer:
    """Online invariant checking for the admission service.

    The kernel sanitizer observes a simulated kernel; this is its
    ``repro.serve`` analogue, subscribing to the resource monitor's
    charge/release ledger and asserting, after every mutation:

    * **conservation** — the resource table's usage equals the sum of this
      ledger's charges minus releases (nothing leaks, nothing double-frees),
    * **demand bound** — aggregate admitted demand never exceeds
      ``policy.demand_bound(capacity)`` unless a starvation-guard forced
      admission is live,
    * **final quiescence** — at drain with no open periods, usage is zero
      and the waitlist is empty.
    """

    def __init__(self, service: "AdmissionService") -> None:
        self.service = service
        self.ledger: Dict[ResourceKind, int] = {}
        self.violations: List[str] = []

    # resource-monitor observer interface ------------------------------
    def on_charge(self, request: PeriodRequest, added_bytes: int) -> None:
        kind = request.resource
        self.ledger[kind] = self.ledger.get(kind, 0) + added_bytes
        self._check(kind)

    def on_release(self, request: PeriodRequest, removed_bytes: int) -> None:
        kind = request.resource
        self.ledger[kind] = self.ledger.get(kind, 0) - removed_bytes
        if self.ledger[kind] < 0:
            self._report(f"{kind}: ledger went negative ({self.ledger[kind]} B)")
        self._check(kind)

    # ------------------------------------------------------------------
    def _check(self, kind: ResourceKind) -> None:
        state = self.service.resources.state(kind)
        if state.usage_bytes != self.ledger.get(kind, 0):
            self._report(
                f"{kind}: conservation broken — table says {state.usage_bytes} B, "
                f"ledger says {self.ledger.get(kind, 0)} B"
            )
        bound = self.service.policy.demand_bound(state.capacity_bytes)
        if state.usage_bytes > bound and not self.service.forced_running(kind):
            self._report(
                f"{kind}: usage {state.usage_bytes} B exceeds the policy bound "
                f"{bound:.0f} B with no forced admission live"
            )

    def finalize(self) -> None:
        """End-of-drain check: an idle service must hold zero demand."""
        if len(self.service.monitor.registry) == 0:
            for kind, state_usage in self.service.resources.snapshot().items():
                usage, _ = state_usage
                if usage != 0:
                    self._report(f"{kind}: {usage} B still charged after drain")
            if len(self.service.waitlist) != 0:
                self._report(
                    f"waitlist holds {len(self.service.waitlist)} period(s) "
                    "after drain"
                )

    def _report(self, message: str) -> None:
        self.violations.append(f"t={time.monotonic():.6f} {message}")

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return "sanitizer: 0 violations"
        lines = [f"sanitizer: {len(self.violations)} invariant violation(s)"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)


class AdmissionService:
    """The admission state machine, independent of any transport.

    All methods must be called from a single thread/event loop (the
    single-writer discipline); they never block.
    """

    def __init__(self, cfg: ServeConfig) -> None:
        self.cfg = cfg
        self.policy = cfg.policy if cfg.policy is not None else AlwaysAdmitPolicy()
        self.resources = ResourceMonitor()
        self.resources.register(ResourceKind.LLC, cfg.machine.llc_capacity)
        self.managed_kinds = [ResourceKind.LLC]
        self.predicate = SchedulingPredicate(self.resources, self.policy)
        self.waitlist = Waitlist(strict_fifo=cfg.strict_fifo)
        self.monitor = ProgressMonitor(
            resources=self.resources,
            predicate=self.predicate,
            clock=time.monotonic,
            waitlist=self.waitlist,
        )
        self.forced_admissions = 0
        self.sanitizer: Optional[ServiceSanitizer] = None
        if cfg.sanitize:
            self.sanitizer = ServiceSanitizer(self)
            self.resources.observers.append(self.sanitizer)
        self.leases = LeaseTable(cfg.lease_ttl_s)
        self.journal: Optional[AdmissionJournal] = None
        self.replayed_periods = 0
        self.estimator: Optional[OnlineWssEstimator] = None
        self.detector: Optional[MispredictDetector] = None
        self.elastic: Optional[ElasticController] = None
        #: open tracked periods: pp_id -> (key, declared, charged bytes)
        self._predictions: Dict[int, Tuple[EstimatorKey, int, int]] = {}
        if cfg.predict:
            self.estimator = OnlineWssEstimator(
                history=cfg.predict_history,
                min_samples=cfg.predict_min_samples,
                error_band=cfg.predict_error_band,
            )
            self.detector = MispredictDetector(cfg.predict_error_band)
            self.elastic = ElasticController(cfg.predict_hysteresis)
        self._build_metrics()
        if cfg.journal_path:
            self.journal = AdmissionJournal(
                cfg.journal_path,
                fsync_interval_s=cfg.journal_fsync_s,
                compact_every=cfg.journal_compact_every,
                obs_history=cfg.predict_history,
            )
            self._recover()

    # ------------------------------------------------------------------
    def _build_metrics(self) -> None:
        m = MetricsRegistry()
        self.metrics = m
        self.c_requests = m.counter("requests_total", "frames received")
        self.c_begin = m.counter("pp_begin_total", "pp_begin requests")
        self.c_end = m.counter("pp_end_total", "successful pp_end calls")
        self.c_immediate = m.counter(
            "admitted_immediate_total", "periods admitted without parking"
        )
        self.c_after_park = m.counter(
            "admitted_after_park_total", "periods admitted after waiting"
        )
        self.c_forced = m.counter(
            "forced_admissions_total", "starvation-guard admissions"
        )
        self.c_retry_after = m.counter(
            "retry_after_total", "pp_begin rejected by the pending-queue bound"
        )
        self.c_park_timeout = m.counter(
            "park_timeouts_total", "parked periods that hit the park timeout"
        )
        self.c_park_deadline = m.counter(
            "park_deadline_timeouts_total",
            "parked periods shed by the CoDel-style sojourn deadline",
        )
        self.c_quota_rejects = m.counter(
            "quota_rejects_total",
            "pp_begin rejected by the per-client pending quota",
        )
        self.c_slow_disconnects = m.counter(
            "slow_consumer_disconnects_total",
            "sessions disconnected because writer.drain() stalled past "
            "the write timeout",
        )
        self.c_disconnect_cancel = m.counter(
            "cancelled_on_disconnect_total",
            "periods cancelled because their client vanished",
        )
        self.c_protocol_errors = m.counter(
            "protocol_errors_total", "malformed / invalid request frames"
        )
        self.c_draining_rejects = m.counter(
            "draining_rejects_total", "pp_begin rejected because draining"
        )
        llc = self.resources.state(ResourceKind.LLC)
        m.gauge("open_periods", fn=lambda: len(self.monitor.registry))
        m.gauge("waiting", fn=lambda: len(self.waitlist))
        m.gauge("usage_bytes", fn=lambda: llc.usage_bytes)
        m.gauge("capacity_bytes", fn=lambda: llc.capacity_bytes)
        m.gauge("utilization", fn=lambda: llc.utilization)
        self.g_usage_peak = m.gauge(
            "usage_peak_bytes", "high-water mark of admitted demand"
        )
        self.g_waiting_peak = m.gauge(
            "waiting_peak", "high-water mark of the pending-admission queue"
        )
        self.h_park = m.histogram(
            "park_time_s", "time parked before admission (parked periods only)"
        )
        self.h_service = m.histogram(
            "service_time_s", "pp_begin-admission to pp_end duration"
        )
        self.h_admission = m.histogram(
            "admission_latency_s",
            "pp_begin receipt to admitted reply (park time included)",
        )
        self.h_sojourn = m.histogram(
            "queue_sojourn_s",
            "time spent parked on the pending queue, however the park ended",
        )
        self.c_hello = m.counter("hello_total", "hello handshakes")
        self.c_heartbeats = m.counter("heartbeats_total", "lease heartbeats")
        self.c_idempotent = m.counter(
            "idempotent_replays_total",
            "pp_begin calls deduplicated by idempotency token",
        )
        self.c_leases_reclaimed = m.counter(
            "leases_reclaimed_total",
            "expired client leases the reaper reclaimed periods from",
        )
        self.c_lease_periods = m.counter(
            "lease_reclaimed_periods_total",
            "running periods cancelled by the lease reaper",
        )
        if self.cfg.predict:
            self.c_predicted_admits = m.counter(
                "predicted_admits_total",
                "pp_begin admissions charged on a learned demand estimate "
                "instead of the declared demand",
            )
            self.c_mispredicts_over = m.counter(
                "mispredicts_over_total",
                "closed periods whose charge exceeded the observed demand "
                "beyond the error band",
            )
            self.c_mispredicts_under = m.counter(
                "mispredicts_under_total",
                "closed periods whose charge fell short of the observed "
                "demand beyond the error band",
            )
            self.c_elastic_shrinks = m.counter(
                "elastic_shrinks_total",
                "running reservations shrunk by the elastic controller",
            )
            self.c_elastic_grows = m.counter(
                "elastic_grows_total",
                "running reservations grown by the elastic controller",
            )
            self.h_rel_error = m.histogram(
                "prediction_rel_error",
                "|charged − observed| / observed at period close",
            )
        m.gauge("clients", fn=lambda: len(self.leases))
        self.g_replayed = m.gauge(
            "journal_replayed_periods", "periods restored from the journal at boot"
        )
        m.gauge(
            "journal_events",
            fn=lambda: self.journal.events_total if self.journal else 0,
        )

    # ------------------------------------------------------------------
    # leases and the journal
    # ------------------------------------------------------------------
    def make_record(self, client_id: Optional[str] = None) -> ClientRecord:
        """A fresh per-client record (anonymous unless ``client_id``)."""
        return ClientRecord(self, client_id)

    def journal_admit(self, period: ProgressPeriod) -> None:
        """Write-ahead one admission (lease-bound owners only)."""
        if self.journal is None:
            return
        record = period.owner
        client_id = getattr(record, "client_id", None)
        if client_id is None:
            return  # anonymous periods die with their connection anyway
        key = period.request.sharing_key
        client_key = (
            key[1]
            if isinstance(key, tuple) and len(key) == 2 and key[0] == "serve"
            else None
        )
        self.journal.record_admit(AdmitRecord(
            pp_id=period.pp_id,
            client=client_id,
            resource=period.resource.value,
            demand_bytes=period.demand_bytes,
            reuse=period.request.reuse.value,
            sharing_key=client_key,
            label=period.request.label,
            forced=period.forced,
            token=record.token_of(period.pp_id),
        ))

    def journal_close(self, pp_id: int) -> None:
        """Balance a journaled admission (no-op for unjournaled periods)."""
        if self.journal is not None:
            self.journal.record_close(pp_id)

    def _recover(self) -> None:
        """Rebuild ledger, lease table and token index from the journal."""
        assert self.journal is not None
        state = self.journal.recover()
        for rec in sorted(state.open.values(), key=lambda r: r.pp_id):
            record, _ = self.leases.get_or_create(rec.client, self.make_record)
            request = PeriodRequest(
                resource=ResourceKind(rec.resource),
                demand_bytes=rec.demand_bytes,
                reuse=ReuseLevel(rec.reuse),
                sharing_key=(
                    ("serve", rec.sharing_key)
                    if rec.sharing_key is not None
                    else None
                ),
                label=rec.label,
            )
            period = ProgressPeriod(
                request=request,
                owner=record,
                pp_id=rec.pp_id,
                begin_time=time.monotonic(),
            )
            # forced must be set before restore() so the sanitizer's
            # demand-bound check sees the exemption on the replay charge
            period.forced = rec.forced
            self.monitor.restore(period)
            record.api.adopt(period)
            record.bind_token(rec.token, rec.pp_id)
            self.leases.renew(record)  # a fresh TTL of grace to reconnect
            self.replayed_periods += 1
            if self.estimator is not None:
                # the journaled demand is what is charged *now* (resizes
                # included); it doubles as the declared value for the
                # eventual close's estimator sample
                self._predictions[rec.pp_id] = (
                    (rec.client, rec.sharing_key or rec.label or ""),
                    rec.demand_bytes,
                    rec.demand_bytes,
                )
        if self.estimator is not None:
            for client, skey, declared, observed in state.obs:
                self.estimator.observe((client, skey), declared, observed)
        ensure_pp_ids_above(state.max_pp_id)
        self.g_replayed.set(self.replayed_periods)
        if self.replayed_periods:
            self.note_usage()

    # ------------------------------------------------------------------
    # demand prediction and elastic re-admission (repro.predict)
    # ------------------------------------------------------------------
    def predict_key(
        self, record: ClientRecord, request: protocol.Request
    ) -> EstimatorKey:
        """Estimator key for a begin: (client, sharing-key-or-label).

        A working set is a property of the code phase, not of one
        connection, so anonymous sessions share the ``""`` client bucket
        and periods without a sharing key fall back to their label.
        """
        client = getattr(record, "client_id", None) or ""
        return (client, request.sharing_key or request.label or "")

    def predicted_demand(
        self, record: ClientRecord, request: protocol.Request
    ) -> Tuple[int, bool]:
        """Bytes to admit a pp_begin on: (demand, used_prediction).

        With prediction off — or while the estimator is below its sample
        or confidence gates — this is exactly the declared demand.  A
        confident estimate replaces it, floored at
        ``predict_floor_frac × declared`` so a confident-but-wrong model
        cannot collapse a reservation to nothing.
        """
        if self.estimator is None:
            return request.demand_bytes, False
        key = self.predict_key(record, request)
        predicted = self.estimator.predict(key, request.demand_bytes)
        if predicted is None:
            return request.demand_bytes, False
        floor = int(request.demand_bytes * self.cfg.predict_floor_frac)
        return max(predicted, floor, 1), True

    def track_open(
        self,
        pp_id: int,
        record: ClientRecord,
        request: protocol.Request,
        admit_bytes: int,
    ) -> None:
        """Remember an open period's declared/charged demand (predict on)."""
        if self.estimator is None:
            return
        key = self.predict_key(record, request)
        self._predictions[pp_id] = (key, request.demand_bytes, admit_bytes)

    def forget_prediction(self, pp_id: int) -> None:
        self._predictions.pop(pp_id, None)

    def observe_close(
        self, pp_id: int, charged_bytes: int, observed_bytes: Optional[int]
    ) -> List[ProgressPeriod]:
        """Ingest a closed period's observed demand; maybe resize peers.

        Feeds the estimator (journaling the sample), classifies the
        charge-vs-observation error, updates the elastic controller and —
        past its hysteresis — shrinks or grows the key's still-running
        reservations.  Returns waiters admitted by any elastic shrink.
        """
        info = self._predictions.pop(pp_id, None)
        if (
            self.estimator is None
            or self.detector is None
            or self.elastic is None
            or info is None
            or observed_bytes is None
            or observed_bytes <= 0
        ):
            return []
        key, declared, _ = info
        if declared <= 0:
            return []
        self.estimator.observe(key, declared, observed_bytes)
        if self.journal is not None:
            self.journal.record_obs(key[0], key[1], declared, observed_bytes)
        sample = self.detector.classify(charged_bytes, observed_bytes)
        self.h_rel_error.observe(abs(sample.rel_error))
        if sample.direction == "over":
            self.c_mispredicts_over.inc()
        elif sample.direction == "under":
            self.c_mispredicts_under.inc()
        decision = self.elastic.update(key, sample)
        if decision is None:
            return []
        return self._apply_elastic(key, decision.action, observed_bytes)

    def _apply_elastic(
        self, key: EstimatorKey, action: str, observed_bytes: int
    ) -> List[ProgressPeriod]:
        """Resize the key's RUNNING reservations toward the learned demand.

        Growth is bounded by the policy's demand bound (the sanitizer
        enforces it): when there is no headroom the larger learned demand
        simply parks the key's *next* period via the admission predicate.
        """
        assert self.estimator is not None
        admitted: List[ProgressPeriod] = []
        llc = self.resources.state(ResourceKind.LLC)
        bound = self.policy.demand_bound(llc.capacity_bytes)
        for pp_id, (peer_key, declared, _) in list(self._predictions.items()):
            if peer_key != key:
                continue
            period = self.monitor.registry.find(pp_id)
            if period is None or period.state is not PeriodState.RUNNING:
                continue
            current = period.request.demand_bytes
            target = self.estimator.predict(key, declared)
            if target is None:
                target = observed_bytes
            target = max(
                target, max(1, int(declared * self.cfg.predict_floor_frac))
            )
            if action == "shrink":
                if target >= current:
                    continue
                _, woken = self.monitor.resize(pp_id, target)
                self.c_elastic_shrinks.inc()
                admitted.extend(woken)
            else:  # grow
                if target <= current:
                    continue
                headroom = bound - llc.usage_bytes
                grow_to = min(target, current + int(headroom))
                if grow_to <= current:
                    continue
                self.monitor.resize(pp_id, grow_to)
                self.c_elastic_grows.inc()
            if self.journal is not None:
                self.journal.record_resize(pp_id, period.request.demand_bytes)
            self._predictions[pp_id] = (
                peer_key, declared, period.request.demand_bytes,
            )
        if admitted:
            self.note_usage()
        return admitted

    def predicted_for_client(self, client_id: Optional[str]) -> Optional[int]:
        """Confident peak-demand estimate for a client (placement hints)."""
        if self.estimator is None or not client_id:
            return None
        return self.estimator.predicted_for_client(client_id)

    # ------------------------------------------------------------------
    def knows(self, kind: ResourceKind) -> bool:
        return self.resources.known(kind)

    def forced_running(self, kind: Optional[ResourceKind] = None) -> bool:
        """Is any starvation-guard-forced period currently admitted?"""
        return any(
            p.forced
            and p.state is PeriodState.RUNNING
            and (kind is None or p.resource is kind)
            for p in self.monitor.registry
        )

    def note_usage(self) -> None:
        """Refresh the usage/waiting high-water marks."""
        llc = self.resources.state(ResourceKind.LLC)
        self.g_usage_peak.max(llc.usage_bytes)
        self.g_waiting_peak.max(len(self.waitlist))

    def rescue_starved(self) -> List[ProgressPeriod]:
        """Force-admit head waiters whose resource is completely idle."""
        rescued: List[ProgressPeriod] = []
        for kind in self.managed_kinds:
            state = self.resources.state(kind)
            head = self.waitlist.peek(kind)
            if state.usage_bytes == 0 and head is not None:
                self.monitor.force_admit(head)
                self.forced_admissions += 1
                self.c_forced.inc()
                rescued.append(head)
        if rescued:
            self.note_usage()
        return rescued

    def snapshot(self) -> Dict[str, Any]:
        """The ``query`` verb's service-level view."""
        resources = {
            str(kind): {
                "usage_bytes": usage,
                "capacity_bytes": capacity,
                "utilization": usage / capacity if capacity else 0.0,
                "waiting": self.waitlist.waiting_on(kind),
            }
            for kind, (usage, capacity) in self.resources.snapshot().items()
        }
        snap: Dict[str, Any] = {
            "policy": self.policy.name,
            **({"shard": self.cfg.shard_name} if self.cfg.shard_name else {}),
            "demand_bound_bytes": self.policy.demand_bound(
                self.resources.state(ResourceKind.LLC).capacity_bytes
            ),
            "open_periods": len(self.monitor.registry),
            "waiting": len(self.waitlist),
            "forced_admissions": self.forced_admissions,
            "clients": len(self.leases),
            "lease_ttl_s": self.leases.ttl_s,
            "resources": resources,
        }
        if self.journal is not None:
            snap["journal"] = {
                "path": self.journal.path,
                "events_total": self.journal.events_total,
                "open": len(self.journal.open),
                "replayed_periods": self.replayed_periods,
            }
        if self.estimator is not None:
            snap["predict"] = {
                "error_band": self.cfg.predict_error_band,
                "min_samples": self.cfg.predict_min_samples,
                "tracked_periods": len(self._predictions),
            }
        return snap


class _Session:
    """Per-connection state: transport plus the client record speaking.

    A fresh connection starts with an **anonymous** record whose periods
    die with the socket.  ``hello`` swaps in a named, lease-bound
    :class:`~repro.serve.leases.ClientRecord` that outlives connections.
    """

    _ids = iter(range(1, 1 << 62))

    def __init__(self, service: AdmissionService, writer: asyncio.StreamWriter) -> None:
        self.id = next(self._ids)
        self.service = service
        self.record = service.make_record()
        self.record.session = self
        self.writer = writer
        self.closed = False
        #: frames that arrived while the connection was parked; processed
        #: in order once the deferred pp_begin reply has been sent
        self.pushback: List[bytes] = []
        #: length-prefixed binary framing, negotiated in "hello"; the
        #: switch takes effect after the hello reply (which is still sent
        #: in the encoding the request arrived in)
        self.binary = False
        self.binary_pending = False

    async def send(self, frame: Dict[str, Any]) -> None:
        if self.closed:
            return
        encode = (
            protocol.encode_binary_frame if self.binary else protocol.encode_frame
        )
        timeout = self.service.cfg.write_timeout_s
        try:
            self.writer.write(encode(frame))
            if timeout is None:
                await self.writer.drain()
            else:
                await asyncio.wait_for(self.writer.drain(), timeout)
        except asyncio.TimeoutError:
            # Slow-consumer defense: a peer that stops reading (slowloris)
            # must not pin this session's write buffer forever.  Abort the
            # transport; the read side raises and the normal cleanup path
            # reclaims the session (and, via the reaper, its lease).
            self.closed = True
            self.service.c_slow_disconnects.inc()
            with contextlib.suppress(Exception):
                self.writer.transport.abort()
        except (ConnectionError, RuntimeError):
            self.closed = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<session #{self.id}>"


class AdmissionServer:
    """Asyncio front-end: transports, parking, timeouts, drain."""

    def __init__(self, cfg: ServeConfig) -> None:
        self.cfg = cfg
        self.service = AdmissionService(cfg)
        self.sessions: set[_Session] = set()
        #: pp_id -> future resolved with "admitted" | "drained"
        self._parked: Dict[int, asyncio.Future] = {}
        self._servers: List[asyncio.AbstractServer] = []
        self._unix_path: Optional[str] = None
        self.draining = False
        #: True once abort() ran — a supervisor restarting this shard
        #: must skip the graceful drain (the journal handle is already
        #: abandoned and the transports are gone)
        self.aborted = False
        self._drain_requested = asyncio.Event()
        self._background: List[asyncio.Task] = []
        self.service.metrics.gauge("connections", fn=lambda: len(self.sessions))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(
        self,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
    ) -> None:
        """Bind the requested transports and start background tasks."""
        if unix_path is None and host is None:
            raise ServeError("need a unix socket path and/or a TCP host/port")
        if unix_path is not None:
            if os.path.exists(unix_path):
                os.unlink(unix_path)  # stale socket from a previous run
            self._servers.append(
                await asyncio.start_unix_server(
                    self._handle_client, path=unix_path,
                    limit=self.cfg.max_frame_bytes,
                )
            )
            self._unix_path = unix_path
        if host is not None:
            if port is None:
                raise ServeError("TCP transport needs a port")
            self._servers.append(
                await asyncio.start_server(
                    self._handle_client, host=host, port=port,
                    limit=self.cfg.max_frame_bytes,
                )
            )
        self._background.append(asyncio.ensure_future(self._guard_loop()))
        self._background.append(asyncio.ensure_future(self._lease_loop()))
        if self.cfg.metrics_json:
            self._background.append(asyncio.ensure_future(self._metrics_loop()))

    @property
    def tcp_port(self) -> Optional[int]:
        """The bound TCP port (for ``--port 0`` ephemeral binds)."""
        for server in self._servers:
            for sock in server.sockets or ():
                if sock.family.name.startswith("AF_INET"):
                    return sock.getsockname()[1]
        return None

    def request_drain(self) -> None:
        """Begin graceful shutdown (idempotent; SIGTERM lands here)."""
        self._drain_requested.set()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix platforms

    async def run_until_drained(self) -> None:
        """Serve until a drain is requested, then shut down gracefully."""
        await self._drain_requested.wait()
        self.draining = True
        # Stop accepting new connections.
        for server in self._servers:
            server.close()
        # Wake every parked client with a DRAINING reply.
        for future in list(self._parked.values()):
            if not future.done():
                future.set_result("drained")
        # Give running periods the grace budget to pp_end naturally.
        deadline = time.monotonic() + self.cfg.drain_grace_s
        while (
            len(self.service.monitor.registry) > 0
            and time.monotonic() < deadline
        ):
            await asyncio.sleep(0.02)
        for session in list(self.sessions):
            session.closed = True
            with contextlib.suppress(Exception):
                session.writer.close()
        for server in self._servers:
            await server.wait_closed()
        for task in self._background:
            task.cancel()
        await asyncio.gather(*self._background, return_exceptions=True)
        if self._unix_path and os.path.exists(self._unix_path):
            os.unlink(self._unix_path)
        if self.service.sanitizer is not None:
            self.service.sanitizer.finalize()
        if self.cfg.metrics_json:
            self.service.metrics.dump_json(self.cfg.metrics_json)
        if self.service.journal is not None:
            self.service.journal.close()

    async def abort(self) -> None:
        """Crash simulation: the in-process analogue of ``kill -9``.

        No drain, no client notification, no journal flush — transports
        are hard-dropped and the journal handle abandoned, leaving the log
        exactly as a power cut would.  Used by the crash-recovery tests
        and the chaos harness's in-process mode.
        """
        self.aborted = True
        if self.service.journal is not None:
            self.service.journal.abandon()  # poison appends *first*
        for server in self._servers:
            server.close()
        for task in self._background:
            task.cancel()
        await asyncio.gather(*self._background, return_exceptions=True)
        for future in list(self._parked.values()):
            if not future.done():
                future.cancel()
        for session in list(self.sessions):
            session.closed = True
            with contextlib.suppress(Exception):
                session.writer.transport.abort()
        for server in self._servers:
            with contextlib.suppress(Exception):
                await server.wait_closed()
        if self._unix_path and os.path.exists(self._unix_path):
            os.unlink(self._unix_path)

    # ------------------------------------------------------------------
    # background tasks
    # ------------------------------------------------------------------
    async def _guard_loop(self) -> None:
        """Periodic starvation-guard sweep (safety net for the inline one)."""
        while True:
            await asyncio.sleep(self.cfg.starvation_check_s)
            self._wake(self.service.rescue_starved())

    async def _metrics_loop(self) -> None:
        while True:
            await asyncio.sleep(self.cfg.metrics_interval_s)
            self.service.metrics.dump_json(self.cfg.metrics_json)

    async def _lease_loop(self) -> None:
        """Reap the admitted demand of clients whose lease lapsed."""
        while True:
            await asyncio.sleep(self.cfg.lease_check_s)
            self._reap_expired()

    def _reap_expired(self) -> None:
        """One reaper sweep over every expired lease.

        A dead client (no live connection) is fully reclaimed: all of its
        periods are cancelled and the record forgotten.  A *live* but
        silent client — a wedged proxy can hold a TCP session open long
        after the process died — loses its RUNNING periods (parked ones
        are already bounded by the park timeout) but keeps its record, so
        a late frame still speaks for a known identity.
        """
        service = self.service
        admitted: List[ProgressPeriod] = []
        reclaimed_any = False
        for record in service.leases.expired():
            dead = record.session is None or record.session.closed
            reclaimed = 0
            for pp_id in list(record.api.open_ids()):
                period = record.api.period(pp_id)
                if dead or period.state is PeriodState.RUNNING:
                    self._parked.pop(pp_id, None)
                    admitted.extend(self._cancel_period(record, pp_id))
                    reclaimed += 1
            if reclaimed:
                service.c_leases_reclaimed.inc()
                service.c_lease_periods.inc(reclaimed)
                reclaimed_any = True
            if dead:
                service.leases.forget(record)
            else:
                service.leases.renew(record)  # one reclaim per lapse, not per sweep
        if reclaimed_any:
            admitted.extend(service.rescue_starved())
        self._wake(admitted)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = _Session(self.service, writer)
        self.sessions.add(session)
        try:
            await self._serve_session(session, reader)
        finally:
            self.sessions.discard(session)
            self._cleanup_session(session)
            session.closed = True
            with contextlib.suppress(Exception):
                writer.close()

    async def _read_frame(
        self, session: _Session, reader: asyncio.StreamReader
    ) -> bytes:
        """Read one raw frame in the session's current encoding.

        Returns ``b""`` on clean EOF.  Raises :class:`ProtocolError` for a
        truncated or oversized binary frame (the stream cannot be
        re-synchronized, so the caller replies with the typed error and
        hangs up).
        """
        if not session.binary:
            return await reader.readline()
        return await protocol.read_raw_frame(
            reader, True, self.cfg.max_frame_bytes
        )

    async def _serve_session(
        self, session: _Session, reader: asyncio.StreamReader
    ) -> None:
        while not session.closed:
            if session.pushback:
                line = session.pushback.pop(0)
            else:
                try:
                    if self.cfg.idle_timeout_s is not None:
                        line = await asyncio.wait_for(
                            self._read_frame(session, reader),
                            timeout=self.cfg.idle_timeout_s,
                        )
                    else:
                        line = await self._read_frame(session, reader)
                except asyncio.TimeoutError:
                    return  # idle client: hang up
                except (ConnectionError, asyncio.IncompleteReadError):
                    return
                except ValueError:
                    # StreamReader overran its limit: the frame is oversized
                    # and the byte stream can no longer be re-synchronized —
                    # reply with the typed error, then hang up.
                    self.service.c_protocol_errors.inc()
                    await session.send(protocol.error_reply(
                        None, ErrorCode.FRAME_TOO_LARGE,
                        f"request frame exceeds {self.cfg.max_frame_bytes} bytes",
                    ))
                    return
                except ProtocolError as exc:
                    # Truncated or oversized binary frame: typed error, then
                    # hang up (the length-prefixed stream is unrecoverable).
                    self.service.c_protocol_errors.inc()
                    await session.send(
                        protocol.error_reply(None, exc.code, exc.message)
                    )
                    return
                if not line:
                    return  # EOF
            self.service.c_requests.inc()
            try:
                request = protocol.parse_request(
                    protocol.decode_any_frame(line, self.cfg.max_frame_bytes)
                )
            except ProtocolError as exc:
                self.service.c_protocol_errors.inc()
                await session.send(
                    protocol.error_reply(None, exc.code, exc.message)
                )
                continue
            # Any well-formed frame proves the client is alive.
            self.service.leases.renew(session.record)
            reply = await self._dispatch(session, reader, request)
            if reply is not None:
                await session.send(reply)
            if session.binary_pending:
                # hello negotiated binary framing; it applies to every
                # frame after the (just-sent) hello reply.
                session.binary_pending = False
                session.binary = True
            if request.op == "drain":
                self.request_drain()

    async def _dispatch(
        self,
        session: _Session,
        reader: asyncio.StreamReader,
        request: protocol.Request,
    ) -> Optional[Dict[str, Any]]:
        try:
            if request.op == "pp_begin":
                return await self._op_pp_begin(session, reader, request)
            if request.op == "pp_end":
                return self._op_pp_end(session, request)
            if request.op == "hello":
                return self._op_hello(session, request)
            if request.op == "heartbeat":
                return self._op_heartbeat(session, request)
            if request.op == "query":
                return self._op_query(session, request)
            if request.op == "stats":
                return self._op_stats(request)
            if request.op == "drain":
                return self._op_drain(request)
            raise ServeError(f"unroutable op {request.op!r}")  # pragma: no cover
        except Exception as exc:  # noqa: BLE001 — a reply beats a dead server
            return protocol.error_reply(
                request.id, ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}"
            )

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    async def _op_pp_begin(
        self,
        session: _Session,
        reader: asyncio.StreamReader,
        request: protocol.Request,
    ) -> Optional[Dict[str, Any]]:
        service = self.service
        service.c_begin.inc()
        record = session.record
        # Idempotent re-issue: a token that already names an open admitted
        # period returns that period instead of charging twice — the
        # resilient client re-sends pp_begin after a lost reply.
        if request.token is not None:
            known = record.tokens.get(request.token)
            if known is not None:
                try:
                    period = record.api.period(known)
                except ProgressPeriodError:
                    record.drop_token(known)
                    period = None
                if period is not None and period.state is PeriodState.RUNNING:
                    service.c_idempotent.inc()
                    return self._admitted_reply(request.id, period, deduped=True)
                if period is not None and period.state is PeriodState.WAITING:
                    # A stale parked period from a taken-over connection:
                    # supersede it rather than park the same token twice.
                    self._parked.pop(known, None)
                    self._wake(self._cancel_period(record, known))
        if self.draining:
            service.c_draining_rejects.inc()
            return protocol.error_reply(
                request.id, ErrorCode.DRAINING, "server is draining"
            )
        if not service.knows(request.resource):
            service.c_protocol_errors.inc()
            return protocol.error_reply(
                request.id, ErrorCode.BAD_REQUEST,
                f"resource {request.resource} is not managed by this server",
            )
        # Overload backpressure: the pending-admission queue is bounded.
        if len(service.waitlist) >= self.cfg.max_pending:
            service.c_retry_after.inc()
            return protocol.error_reply(
                request.id, ErrorCode.RETRY_AFTER,
                f"pending-admission queue is full "
                f"({self.cfg.max_pending} waiter(s))",
                retry_after_s=self._retry_hint_s(),
            )
        # Fairness: the bounded queue is also bounded *per client*, so one
        # storm client cannot occupy the whole waitlist.
        if self.cfg.max_pending_per_client is not None:
            waiting = sum(
                1
                for pp_id in record.api.open_ids()
                if record.api.period(pp_id).state is PeriodState.WAITING
            )
            if waiting >= self.cfg.max_pending_per_client:
                service.c_quota_rejects.inc()
                service.c_retry_after.inc()
                return protocol.error_reply(
                    request.id, ErrorCode.RETRY_AFTER,
                    f"client has {waiting} parked admission(s), at the "
                    f"per-client quota of {self.cfg.max_pending_per_client}",
                    retry_after_s=self._retry_hint_s(),
                )
        sharing_key = (
            ("serve", request.sharing_key) if request.sharing_key is not None else None
        )
        # With --predict, a confident learned estimate replaces the
        # declared demand: admit on max(predicted, floor).
        admit_bytes, used_prediction = service.predicted_demand(record, request)
        if used_prediction:
            service.c_predicted_admits.inc()
        pp_id = record.api.pp_begin(
            request.resource,
            admit_bytes,
            request.reuse,
            label=request.label,
            sharing_key=sharing_key,
        )
        service.track_open(pp_id, record, request, admit_bytes)
        period = record.api.period(pp_id)
        # Bind the token *before* any admission so _wake-time journaling
        # of after-park admissions can read it off the owner record.
        record.bind_token(request.token, pp_id)
        # Inline starvation guard: an empty resource must admit its lone
        # oversized period (mirrors RdaScheduler.on_pp_begin).
        if (
            period.state is PeriodState.WAITING
            and service.resources.state(period.resource).usage_bytes == 0
        ):
            service.monitor.force_admit(period)
            service.forced_admissions += 1
            service.c_forced.inc()
        if period.state is PeriodState.RUNNING:
            service.c_immediate.inc()
            service.note_usage()
            service.journal_admit(period)
            return self._admitted_reply(request.id, period)
        return await self._park(session, reader, request, period)

    def _retry_hint_s(self) -> float:
        """The retry hint carried by shed replies.

        With both adaptive bounds configured, the hint scales with live
        queue occupancy and the observed median admission latency
        (:func:`adaptive_retry_hint_s`); otherwise it is the constant
        ``cfg.retry_after_s``, byte-identical to the legacy behavior.
        """
        cfg = self.cfg
        if cfg.retry_hint_floor_s is None or cfg.retry_hint_cap_s is None:
            return cfg.retry_after_s
        service = self.service
        occupancy = (
            len(service.waitlist) / cfg.max_pending if cfg.max_pending else 1.0
        )
        p50 = (
            service.h_admission.percentile(50.0)
            if service.h_admission.count
            else 0.0
        )
        return adaptive_retry_hint_s(
            occupancy, p50, cfg.retry_hint_floor_s, cfg.retry_hint_cap_s
        )

    async def _park(
        self,
        session: _Session,
        reader: asyncio.StreamReader,
        request: protocol.Request,
        period: ProgressPeriod,
    ) -> Optional[Dict[str, Any]]:
        """Defer the reply until admission, timeout, drain, or disconnect.

        While parked we keep one ``readline`` in flight so a client that
        dies mid-park is noticed immediately (its period is cancelled and
        its demand released) instead of squatting on the waitlist until the
        park timeout.  Frames a client pipelines while parked are buffered
        and served after the deferred reply.
        """
        service = self.service
        service.note_usage()
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._parked[period.pp_id] = future
        parked_at = loop.time()
        deadline = (
            None
            if self.cfg.park_timeout_s is None
            else parked_at + self.cfg.park_timeout_s
        )
        # CoDel-style sojourn bound: a separate, typically much tighter
        # deadline that sheds the period with PARK_TIMEOUT + a retry hint
        # instead of the legacy terminal TIMEOUT.
        sojourn_deadline = (
            None
            if self.cfg.park_deadline_s is None
            else parked_at + self.cfg.park_deadline_s
        )
        if sojourn_deadline is not None and (
            deadline is None or sojourn_deadline < deadline
        ):
            deadline, shed_deadline = sojourn_deadline, True
        else:
            shed_deadline = False
        read_task: Optional[asyncio.Task] = None
        try:
            while True:
                if read_task is None:
                    read_task = asyncio.ensure_future(
                        self._read_frame(session, reader)
                    )
                timeout = (
                    None if deadline is None else max(0.0, deadline - loop.time())
                )
                done, _ = await asyncio.wait(
                    {future, read_task},
                    timeout=timeout,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                eof = False
                if read_task in done:
                    try:
                        line = read_task.result()
                    except (
                        ConnectionError,
                        ValueError,
                        asyncio.IncompleteReadError,
                        ProtocolError,
                    ):
                        # A malformed binary frame while parked is handled
                        # like a disconnect: the stream is unrecoverable.
                        line, eof = b"", True
                    read_task = None
                    if line:
                        session.pushback.append(line)
                        # A pipelined frame (heartbeat included) proves the
                        # parked client alive even before it is parsed.
                        service.leases.renew(session.record)
                    else:
                        eof = True
                if eof:
                    # Client vanished while parked.  Anonymous periods are
                    # cancelled outright; a lease-bound client may be
                    # reconnecting, so its parked period is cancelled (the
                    # reply target is gone) but re-issue by token is safe.
                    session.closed = True
                    service.c_disconnect_cancel.inc()
                    self._wake(self._cancel_period(session.record, period.pp_id))
                    self._wake(service.rescue_starved())
                    return None  # no one left to reply to
                if future.done():
                    break
                if not done and read_task is not None:
                    # Pure timeout: cancel the period and tell the client.
                    self._wake(self._cancel_period(session.record, period.pp_id))
                    self._wake(service.rescue_starved())
                    if shed_deadline:
                        # Sojourn bound: the wait is shed, not failed —
                        # the typed error carries a retry hint.
                        service.c_park_deadline.inc()
                        return protocol.error_reply(
                            request.id, ErrorCode.PARK_TIMEOUT,
                            f"parked past the {self.cfg.park_deadline_s} s "
                            "sojourn deadline; period cancelled",
                            waited_s=self.cfg.park_deadline_s,
                            retry_after_s=self._retry_hint_s(),
                        )
                    service.c_park_timeout.inc()
                    return protocol.error_reply(
                        request.id, ErrorCode.TIMEOUT,
                        f"parked longer than the {self.cfg.park_timeout_s} s "
                        "park timeout; period cancelled",
                        waited_s=self.cfg.park_timeout_s,
                    )
        finally:
            self._parked.pop(period.pp_id, None)
            service.h_sojourn.observe(max(0.0, loop.time() - parked_at))
            if read_task is not None:
                read_task.cancel()
                with contextlib.suppress(
                    asyncio.CancelledError,
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    ValueError,
                    ProtocolError,
                ):
                    await read_task
        if future.result() == "drained":
            self._wake(self._cancel_period(session.record, period.pp_id))
            return protocol.error_reply(
                request.id, ErrorCode.DRAINING,
                "server drained while the period was parked; period cancelled",
            )
        service.c_after_park.inc()
        service.h_park.observe(period.waited_s)
        service.note_usage()
        return self._admitted_reply(request.id, period)

    def _admitted_reply(
        self,
        request_id: Optional[int],
        period: ProgressPeriod,
        deduped: bool = False,
    ) -> Dict[str, Any]:
        if not deduped:
            self.service.h_admission.observe(
                max(0.0, time.monotonic() - period.begin_time)
            )
        reply = protocol.ok_reply(
            request_id,
            pp_id=period.pp_id,
            admitted=True,
            waited_s=period.waited_s,
            forced=period.forced,
        )
        if deduped:
            reply["deduped"] = True
        return reply

    def _op_hello(
        self, session: _Session, request: protocol.Request
    ) -> Dict[str, Any]:
        """Bind this connection to a durable, lease-holding client identity."""
        service = self.service
        record = session.record
        binary = request.raw.get("binary", False)
        if not isinstance(binary, bool):
            return protocol.error_reply(
                request.id, ErrorCode.BAD_REQUEST,
                "'binary' must be a boolean when present",
            )
        if not record.anonymous:
            if record.client_id == request.client:
                service.leases.renew(record)  # re-hello: plain renewal
                if binary and not session.binary:
                    session.binary_pending = True
                return self._hello_reply(
                    request.id, record, resumed=True, binary=binary
                )
            return protocol.error_reply(
                request.id, ErrorCode.BAD_REQUEST,
                f"connection is already bound to client "
                f"{record.client_id!r}; open a new connection to speak for "
                f"{request.client!r}",
            )
        if record.api.open_count:
            return protocol.error_reply(
                request.id, ErrorCode.BAD_REQUEST,
                "'hello' must precede pp_begin on a connection "
                "(anonymous periods cannot be adopted by an identity)",
            )
        named, resumed = service.leases.get_or_create(
            request.client, service.make_record
        )
        old = named.session
        if old is not None and old is not session and not old.closed:
            # Connection takeover: the newest socket speaks for the client
            # (the old one is typically a zombie behind a dead NAT/proxy).
            old.closed = True
            with contextlib.suppress(Exception):
                old.writer.close()
        named.session = session
        session.record = named
        service.leases.renew(named)
        service.c_hello.inc()
        if binary and not session.binary:
            session.binary_pending = True
        return self._hello_reply(request.id, named, resumed=resumed, binary=binary)

    def _hello_reply(
        self,
        request_id: Optional[int],
        record: ClientRecord,
        resumed: bool,
        binary: bool = False,
    ) -> Dict[str, Any]:
        open_periods = []
        for pp_id in record.api.open_ids():
            period = record.api.period(pp_id)
            if period.state is PeriodState.RUNNING:
                open_periods.append({
                    "pp_id": pp_id,
                    "token": record.token_of(pp_id),
                    "demand_bytes": period.demand_bytes,
                    "label": period.request.label,
                    "forced": period.forced,
                })
        reply = protocol.ok_reply(
            request_id,
            client=record.client_id,
            resumed=resumed,
            lease_ttl_s=self.service.leases.ttl_s,
            open=open_periods,
        )
        if binary:
            reply["binary"] = True
        # Learned peak demand doubles as a cluster placement hint: the
        # client forwards it as `hello demand_bytes` on its next connect.
        hint = self.service.predicted_for_client(record.client_id)
        if hint is not None:
            reply["predicted_demand_bytes"] = hint
        return reply

    def _op_heartbeat(
        self, session: _Session, request: protocol.Request
    ) -> Dict[str, Any]:
        record = session.record
        if record.anonymous:
            return protocol.error_reply(
                request.id, ErrorCode.NOT_BOUND,
                "heartbeat requires a client identity; send 'hello' first",
            )
        self.service.leases.renew(record)  # explicit on top of the per-frame renewal
        self.service.c_heartbeats.inc()
        return protocol.ok_reply(
            request.id,
            client=record.client_id,
            lease_remaining_s=self.service.leases.remaining_s(record),
            open_periods=record.api.open_count,
        )

    def _op_pp_end(
        self, session: _Session, request: protocol.Request
    ) -> Dict[str, Any]:
        service = self.service
        record = session.record
        try:
            period = record.api.period(request.pp_id)
        except ProgressPeriodError:
            service.c_protocol_errors.inc()
            return protocol.error_reply(
                request.id, ErrorCode.UNKNOWN_PERIOD,
                f"pp_id {request.pp_id} is not an open period of this "
                "connection (already ended, cancelled, or never begun)",
            )
        # WAL discipline: the release hits the log before the ledger, so a
        # crash in between replays a *closed* period as closed (the client
        # saw no reply and will retry pp_end, which is tolerated).
        record.drop_token(request.pp_id)
        charged = period.request.demand_bytes
        service.journal_close(request.pp_id)
        admitted = record.api.pp_end(request.pp_id)
        service.c_end.inc()
        if period.admit_time is not None and period.end_time is not None:
            service.h_service.observe(period.end_time - period.admit_time)
        self._wake(admitted)
        # Demand prediction: ingest the client's observed working set,
        # detect mispredictions and elastically resize the key's peers.
        self._wake(
            service.observe_close(request.pp_id, charged, request.observed_bytes)
        )
        self._wake(service.rescue_starved())
        return protocol.ok_reply(
            request.id, pp_id=request.pp_id, released=True,
            admitted_waiters=len(admitted),
        )

    def _op_query(
        self, session: _Session, request: protocol.Request
    ) -> Dict[str, Any]:
        snapshot = self.service.snapshot()
        snapshot["draining"] = self.draining
        if request.pp_id is not None:
            try:
                period = session.record.api.period(request.pp_id)
            except ProgressPeriodError:
                return protocol.error_reply(
                    request.id, ErrorCode.UNKNOWN_PERIOD,
                    f"pp_id {request.pp_id} is not an open period of this "
                    "connection",
                )
            snapshot["period"] = {
                "pp_id": period.pp_id,
                "state": period.state.value,
                "demand_bytes": period.demand_bytes,
                "queue_position": self.service.waitlist.position(period),
                "waited_s": (
                    period.waited_s
                    if period.admit_time is not None
                    else time.monotonic() - period.begin_time
                ),
                "forced": period.forced,
            }
        return protocol.ok_reply(request.id, **snapshot)

    def _op_stats(self, request: protocol.Request) -> Dict[str, Any]:
        stats = self.service.metrics.snapshot()
        sanitizer = self.service.sanitizer
        stats["sanitizer"] = (
            None
            if sanitizer is None
            else {"ok": sanitizer.ok, "violations": len(sanitizer.violations)}
        )
        return protocol.ok_reply(request.id, stats=stats)

    def _op_drain(self, request: protocol.Request) -> Dict[str, Any]:
        # The caller's reply is sent before request_drain() runs (the read
        # loop triggers it after the send), so the client always hears back.
        return protocol.ok_reply(
            request.id,
            draining=True,
            open_periods=len(self.service.monitor.registry),
            waiting=len(self.service.waitlist),
        )

    # ------------------------------------------------------------------
    # wakeups and cleanup
    # ------------------------------------------------------------------
    def _cancel_period(
        self, record: ClientRecord, pp_id: int
    ) -> List[ProgressPeriod]:
        """Cancel one period with full bookkeeping: token, journal, charge.

        Tolerates a period that is already gone (e.g. a takeover cancelled
        it just before the old connection's EOF path runs) — cancellation
        paths race by design and the loser must be a no-op.
        """
        record.drop_token(pp_id)
        self.service.forget_prediction(pp_id)
        try:
            record.api.period(pp_id)
        except ProgressPeriodError:
            return []
        self.service.journal_close(pp_id)
        return record.api.pp_cancel(pp_id)

    def _wake(self, admitted: List[ProgressPeriod]) -> None:
        """Resolve the parked futures of newly admitted periods.

        Every waitlist admission — after a release, a rescue, or a reaper
        reclaim — funnels through here, so this is also where after-park
        admissions hit the journal: the write-ahead record lands before
        the parked handler wakes to send its reply.
        """
        for period in admitted:
            self.service.journal_admit(period)
            future = self._parked.get(period.pp_id)
            if future is not None and not future.done():
                future.set_result("admitted")

    def _cleanup_session(self, session: _Session) -> None:
        """Connection gone: settle what dies with it, keep what is leased.

        Anonymous records keep the original semantics — every period is
        cancelled, demand released, waiters admitted (the kernel's
        thread-exit path, `abandon_owner`).  A lease-bound record keeps
        its RUNNING periods alive under the lease (the client may be
        reconnecting); only parked periods are cancelled, because their
        deferred reply has no destination any more.
        """
        record = session.record
        if record.session is session:
            record.session = None
        cancelled = False
        admitted: List[ProgressPeriod] = []
        for pp_id in record.api.open_ids():
            period = record.api.period(pp_id)
            if record.anonymous or period.state is PeriodState.WAITING:
                self._parked.pop(pp_id, None)  # its future dies with the task
                admitted.extend(self._cancel_period(record, pp_id))
                self.service.c_disconnect_cancel.inc()
                cancelled = True
        if cancelled:
            admitted.extend(self.service.rescue_starved())
            self._wake(admitted)


async def serve_until_drained(
    cfg: ServeConfig,
    unix_path: Optional[str] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    signals: bool = True,
    ready: Optional[asyncio.Event] = None,
) -> AdmissionServer:
    """Start a server, run until drained, and return it (for inspection)."""
    server = AdmissionServer(cfg)
    await server.start(unix_path=unix_path, host=host, port=port)
    if signals:
        server.install_signal_handlers()
    if ready is not None:
        ready.set()
    await server.run_until_drained()
    return server
