"""Demand-aware client placement across admission shards.

One :class:`~repro.serve.server.AdmissionServer` bounds aggregate
progress-period demand against a single LLC — the paper's single-socket
mechanism.  Scaling out means running N admission shards (one per
simulated socket) behind a front-end that decides *which* shard each
arriving client charges.  That decision is the scheduling problem
Elasecutor solves with dominant-remaining-resource packing and Affinity
Tailor argues must be fragmentation-aware: a placer that spreads demand
uniformly shatters the free capacity into slivers no large period fits
into, while a demand-aware one keeps whole-period-sized holes open.

This module is the pure decision layer — no sockets, no asyncio — so the
policy is unit-testable and deterministic:

* **Scoring.**  Each shard carries a capacity vector (today ``{llc}``,
  written vector-ready for membw).  A client arrives with a declared or
  predicted demand profile.  Feasible shards (every resource's remaining
  capacity covers the demand) are ranked by the *dominant remaining
  fraction after placement* — ``min_r (remaining_r - demand_r) /
  capacity_r`` — and the placer picks the **tightest fit** (smallest
  dominant remainder), which concentrates small periods and preserves the
  largest holes (best-fit packing).  When no shard fits, the *least*
  loaded shard wins instead (largest dominant remainder): the period will
  park, and it should park where the queue drains first.
* **Determinism.**  Ties are broken by a seeded, fixed permutation of the
  shards, so a placement sequence is a pure function of ``(seed, demand
  profiles, shard capacities)`` — property-tested in
  ``tests/serve/test_placer.py``.
* **Stickiness.**  A known client keeps its shard while that shard is
  alive (its lease, journal entries and idempotency tokens live there);
  a dead shard's clients are re-placed on their next hello.
* **Migration.**  When a shard saturates while another has headroom,
  :meth:`DemandAwarePlacer.migration_target` names the shard a parked
  client should move to; the transport layer (``repro.serve.cluster``)
  performs the move.
* **Fragmentation.**  :meth:`fragmentation` gauges how scattered the
  cluster's free capacity is: ``1 - largest_free / total_free``.  0 means
  every free byte is one contiguous per-shard hole; values near 1 mean
  the capacity exists but no single shard can host a large period.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ServeError

__all__ = ["ClusterError", "ShardAddress", "ShardState", "DemandAwarePlacer"]


class ClusterError(ServeError):
    """A cluster/placement layer failure (no live shard, bad spec...)."""


@dataclass(frozen=True)
class ShardAddress:
    """Where one admission shard listens (unix socket or TCP)."""

    name: str
    unix_path: Optional[str] = None
    host: Optional[str] = None
    port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.unix_path is None and (self.host is None or self.port is None):
            raise ClusterError(
                f"shard {self.name!r} needs a unix socket path or host+port"
            )

    def to_fields(self) -> Dict[str, Any]:
        """The address as REDIRECT reply fields."""
        fields: Dict[str, Any] = {"name": self.name}
        if self.unix_path is not None:
            fields["unix_path"] = self.unix_path
        if self.host is not None:
            fields["host"] = self.host
            fields["port"] = self.port
        return fields

    def describe(self) -> str:
        if self.unix_path is not None:
            return f"unix:{self.unix_path}"
        return f"tcp:{self.host}:{self.port}"


@dataclass
class ShardState:
    """The placer's live model of one shard."""

    address: ShardAddress
    #: capacity vector; updated from health observations when they arrive
    capacity: Dict[str, int] = field(default_factory=dict)
    #: last *observed* usage vector (health probe / forwarded replies)
    usage: Dict[str, int] = field(default_factory=dict)
    #: demand the placer has assigned here but may not be charged yet
    assigned: Dict[str, int] = field(default_factory=dict)
    #: clients currently placed on this shard -> their demand profile
    clients: Dict[str, Dict[str, int]] = field(default_factory=dict)
    alive: bool = True
    #: a deliberately draining shard stays alive (it is still serving its
    #: grace window) but must not receive new placements
    draining: bool = False
    waiting: int = 0
    open_periods: int = 0

    @property
    def name(self) -> str:
        return self.address.name

    @property
    def placeable(self) -> bool:
        """Eligible for new placements: alive and not draining."""
        return self.alive and not self.draining

    def charge_estimate(self, resource: str) -> int:
        """The conservative view: max of observed usage and assignment."""
        return max(self.usage.get(resource, 0), self.assigned.get(resource, 0))

    def remaining(self, resource: str) -> int:
        return self.capacity.get(resource, 0) - self.charge_estimate(resource)

    def dominant_remaining_fraction(
        self, demand: Optional[Dict[str, int]] = None
    ) -> float:
        """``min_r (remaining_r - demand_r) / capacity_r`` over resources.

        Negative values mean the shard is (or would be) oversubscribed on
        its bottleneck resource.  With no capacity known yet the shard
        scores worst (it cannot be ranked until a health probe lands).
        """
        if not self.capacity:
            return float("-inf")
        worst = float("inf")
        for resource, cap in self.capacity.items():
            if cap <= 0:
                continue
            d = (demand or {}).get(resource, 0)
            worst = min(worst, (self.remaining(resource) - d) / cap)
        return worst if worst != float("inf") else float("-inf")

    def fits(self, demand: Dict[str, int]) -> bool:
        return self.capacity and all(
            self.remaining(r) >= d for r, d in demand.items()
        )

    def fits_observed(self, demand: Dict[str, int]) -> bool:
        """Headroom by *observed* usage only, ignoring reservations.

        Placement scores conservatively (max of usage and assigned), but
        migration must not: a parked client's own demand sits in
        ``assigned``, so the reservation-based :meth:`fits` would judge
        its home shard full by construction, and standing reservations of
        long-gone clients would veto targets with real free capacity.
        The shard's own admission control is the final word anyway — a
        mis-predicted migration just parks again, it cannot oversubscribe.
        """
        return self.capacity and all(
            self.capacity.get(r, 0) - self.usage.get(r, 0) >= d
            for r, d in demand.items()
        )


class DemandAwarePlacer:
    """Dominant-remaining-resource client placement (Elasecutor-style)."""

    def __init__(self, shards: Sequence[ShardState], seed: int = 0) -> None:
        if not shards:
            raise ClusterError("a cluster needs at least one shard")
        names = [s.name for s in shards]
        if len(set(names)) != len(names):
            raise ClusterError(f"duplicate shard names in {names}")
        self.shards: Dict[str, ShardState] = {s.name: s for s in shards}
        self.seed = seed
        #: seeded fixed tie-break permutation — placement is a pure
        #: function of (seed, demand profiles, shard capacities)
        order = list(names)
        random.Random(seed).shuffle(order)
        self._tiebreak = {name: i for i, name in enumerate(order)}
        #: client -> shard name (sticky while the shard lives)
        self.assignments: Dict[str, str] = {}
        self.placements_total = 0
        self.replacements_total = 0
        self.revivals_total = 0

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------
    def observe(
        self,
        name: str,
        usage: Optional[Dict[str, int]] = None,
        capacity: Optional[Dict[str, int]] = None,
        waiting: Optional[int] = None,
        open_periods: Optional[int] = None,
        alive: bool = True,
    ) -> None:
        """Fold one health observation into the shard model."""
        shard = self.shards[name]
        shard.alive = alive
        if usage is not None:
            shard.usage = dict(usage)
        if capacity is not None:
            shard.capacity = dict(capacity)
        if waiting is not None:
            shard.waiting = waiting
        if open_periods is not None:
            shard.open_periods = open_periods

    def mark_dead(self, name: str) -> None:
        self.shards[name].alive = False

    def revive(self, name: str) -> None:
        """Re-register a shard that came back (the inverse of
        :meth:`mark_dead`): it is alive, done draining, and eligible for
        placements again.  Usage/capacity refresh on the next probe."""
        shard = self.shards[name]
        shard.alive = True
        shard.draining = False
        self.revivals_total += 1

    def mark_draining(self, name: str, draining: bool = True) -> None:
        """Flag a shard as deliberately draining: it keeps serving its
        grace window but stops receiving new placements, and sticky
        clients re-place away from it on their next hello."""
        self.shards[name].draining = draining

    def alive_shards(self) -> List[ShardState]:
        return [s for s in self.shards.values() if s.alive]

    def placeable_shards(self) -> List[ShardState]:
        return [s for s in self.shards.values() if s.placeable]

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _rank_key(self, shard: ShardState, demand: Dict[str, int]):
        """Sort key: feasible-and-tightest first, then least loaded.

        Feasible shards sort by *ascending* post-placement dominant
        remainder (best fit); infeasible ones come after, by *descending*
        remainder (least oversubscribed parks shortest).  The seeded
        permutation breaks exact ties deterministically.
        """
        frac = shard.dominant_remaining_fraction(demand)
        if shard.fits(demand):
            return (0, frac, self._tiebreak[shard.name])
        return (1, -frac, self._tiebreak[shard.name])

    def place(
        self, client_id: str, demand: Optional[Dict[str, int]] = None
    ) -> ShardState:
        """Assign (or re-confirm) the shard ``client_id`` should speak to.

        Sticky: a client keeps its shard while that shard is placeable
        (alive and not draining).  Raises :class:`ClusterError` when no
        shard is placeable.
        """
        demand = dict(demand or {})
        current = self.assignments.get(client_id)
        if current is not None:
            shard = self.shards[current]
            if shard.placeable:
                self._note_demand(shard, client_id, demand)
                return shard
            self._unassign(client_id)
            self.replacements_total += 1
        candidates = self.placeable_shards()
        if not candidates:
            raise ClusterError("no live admission shard to place on")
        shard = min(candidates, key=lambda s: self._rank_key(s, demand))
        self.assignments[client_id] = shard.name
        self._note_demand(shard, client_id, demand)
        self.placements_total += 1
        return shard

    def _note_demand(
        self, shard: ShardState, client_id: str, demand: Dict[str, int]
    ) -> None:
        """Track the client's demand profile as assigned capacity.

        The profile is the per-resource *maximum* demand this client has
        declared — a conservative standing reservation used for scoring
        until the shard's observed usage catches up.
        """
        profile = shard.clients.setdefault(client_id, {})
        for resource, d in demand.items():
            profile[resource] = max(profile.get(resource, 0), d)
        self._recompute_assigned(shard)

    def _recompute_assigned(self, shard: ShardState) -> None:
        assigned: Dict[str, int] = {}
        for profile in shard.clients.values():
            for resource, d in profile.items():
                assigned[resource] = assigned.get(resource, 0) + d
        shard.assigned = assigned

    def _unassign(self, client_id: str) -> None:
        name = self.assignments.pop(client_id, None)
        if name is None:
            return
        shard = self.shards[name]
        if shard.clients.pop(client_id, None) is not None:
            self._recompute_assigned(shard)

    def forget(self, client_id: str) -> None:
        """Drop a client (disconnected past its lease, or migrated away)."""
        self._unassign(client_id)

    def release(self, client_id: str) -> None:
        """Clear a disconnected client's standing demand reservation.

        The assignment itself stays (stickiness: its lease, journal
        entries and idempotency tokens live on that shard, and it may
        reconnect), but its demand profile stops counting against the
        shard's scored capacity — observed usage carries the truth from
        here, and a reconnect re-declares the profile.

        A *dead* shard's assignment is purged outright: stickiness to a
        corpse buys nothing (the reconnect re-places anyway) and the
        standing assignment would keep the fragmentation gauges counting
        ghost capacity.
        """
        name = self.assignments.get(client_id)
        if name is None:
            return
        shard = self.shards[name]
        if not shard.alive:
            self._unassign(client_id)
            return
        if shard.clients.pop(client_id, None) is not None:
            self._recompute_assigned(shard)

    def observe_demand(self, client_id: str, demand: Dict[str, int]) -> None:
        """Fold a demand observation into the client's *current* shard.

        Unlike :meth:`place` this never re-places: mid-flight demand from
        an established forwarding pump must land on the shard the bytes
        actually flow to, even if that shard is draining or newly dead.
        Unknown clients fall through to a normal placement.
        """
        shard = self.shard_of(client_id)
        if shard is not None:
            self._note_demand(shard, client_id, dict(demand))
        else:
            self.place(client_id, demand)

    def shard_of(self, client_id: str) -> Optional[ShardState]:
        name = self.assignments.get(client_id)
        return self.shards[name] if name is not None else None

    # ------------------------------------------------------------------
    # migration
    # ------------------------------------------------------------------
    def migration_target(
        self, client_id: str, demand: Dict[str, int]
    ) -> Optional[ShardState]:
        """Where a parked client should move, or ``None`` to stay put.

        A move is justified only when the current shard cannot fit the
        parked demand while another live shard can — the saturates-while-
        another-has-headroom condition.  Fit is judged on *observed*
        usage (see :meth:`ShardState.fits_observed`): reservation-based
        accounting would judge the home shard full by construction, since
        the parked demand itself is reserved there.
        """
        current = self.shard_of(client_id)
        if (
            current is not None and current.placeable
            and current.fits_observed(demand)
        ):
            return None  # the home shard will admit it; parking is transient
        options = [
            s
            for s in self.placeable_shards()
            if (current is None or s.name != current.name)
            and s.fits_observed(demand)
        ]
        if not options:
            return None
        return min(options, key=lambda s: self._rank_key(s, demand))

    def migrate(self, client_id: str, target: ShardState) -> None:
        """Commit a migration decision in the assignment table."""
        demand = {}
        current = self.shard_of(client_id)
        if current is not None:
            demand = dict(current.clients.get(client_id, {}))
        self._unassign(client_id)
        self.assignments[client_id] = target.name
        self._note_demand(target, client_id, demand)

    # ------------------------------------------------------------------
    # gauges
    # ------------------------------------------------------------------
    def fragmentation(self, resource: str = "llc") -> float:
        """``1 - largest_free/total_free`` over live shards (0 when idle)."""
        frees = [
            max(0, s.remaining(resource))
            for s in self.alive_shards()
            if s.capacity.get(resource, 0) > 0
        ]
        total = sum(frees)
        if total <= 0:
            return 0.0
        return 1.0 - max(frees) / total

    def snapshot(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "placements_total": self.placements_total,
            "replacements_total": self.replacements_total,
            "revivals_total": self.revivals_total,
            "fragmentation": self.fragmentation(),
            "shards": {
                name: {
                    "address": shard.address.describe(),
                    "alive": shard.alive,
                    "draining": shard.draining,
                    "capacity": dict(shard.capacity),
                    "usage": dict(shard.usage),
                    "assigned": dict(shard.assigned),
                    "clients": len(shard.clients),
                    "waiting": shard.waiting,
                    "open_periods": shard.open_periods,
                }
                for name, shard in sorted(self.shards.items())
            },
        }
