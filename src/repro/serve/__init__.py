"""Online demand-aware admission control (the paper's RDA layer, live).

The batch harness simulates a kernel; this package *runs* the admission
machinery as a long-lived service: an asyncio server speaking a small
newline-delimited-JSON protocol (``hello`` / ``heartbeat`` / ``pp_begin``
/ ``pp_end`` / ``query`` / ``stats`` / ``drain``), clients (thin and
fault-tolerant), an open/closed-loop load generator that replays
workload-suite progress-period sequences against it, plus the
fault-tolerance layer: client leases, a crash-safe admission journal, and
a chaos harness that proves the whole stack survives kills and flaky
transports without leaking a byte of capacity.

Scaling out, :mod:`repro.serve.cluster` runs N admission shards (one per
simulated socket) behind a demand-aware placer front-end that assigns
each client a shard by dominant-remaining-resource scoring, redirects or
forwards its frames, and migrates parked clients to shards with headroom.

Entry points: ``python -m repro serve``, ``python -m repro place``,
``python -m repro loadgen`` and ``python -m repro chaos``.
"""

from .chaos import (
    ChaosConfig,
    ChaosProxy,
    ChaosReport,
    run_chaos,
    run_chaos_sync,
    run_cluster_chaos,
    run_cluster_chaos_sync,
    run_overload_chaos,
    run_overload_chaos_sync,
)
from .client import ServeClient, ServeReplyError
from .cluster import (
    ClusterConfig,
    ClusterFrontend,
    LocalCluster,
    start_local_cluster,
)
from .journal import (
    AdmissionJournal,
    AdmitRecord,
    JournalState,
    replay_journal,
)
from .leases import ClientRecord, LeaseTable
from .loadgen import (
    LoadgenConfig,
    LoadgenReport,
    fig4_scripts,
    run_loadgen,
    run_loadgen_sync,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .placer import (
    ClusterError,
    DemandAwarePlacer,
    ShardAddress,
    ShardState,
)
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ErrorCode,
    Request,
    decode_frame,
    encode_frame,
    error_reply,
    ok_reply,
    parse_request,
)
from .resilient import ResilientServeClient, backoff_sleep_s
from .server import (
    AdmissionServer,
    AdmissionService,
    ServeConfig,
    ServiceSanitizer,
    adaptive_retry_hint_s,
    quota_admits,
    serve_until_drained,
)

__all__ = [
    "AdmissionJournal",
    "AdmissionServer",
    "AdmissionService",
    "AdmitRecord",
    "ChaosConfig",
    "ChaosProxy",
    "ChaosReport",
    "ClientRecord",
    "ClusterConfig",
    "ClusterError",
    "ClusterFrontend",
    "Counter",
    "DemandAwarePlacer",
    "ErrorCode",
    "Gauge",
    "Histogram",
    "JournalState",
    "LeaseTable",
    "LoadgenConfig",
    "LoadgenReport",
    "LocalCluster",
    "MAX_FRAME_BYTES",
    "MetricsRegistry",
    "PROTOCOL_VERSION",
    "Request",
    "ResilientServeClient",
    "ServeClient",
    "ServeConfig",
    "ServeReplyError",
    "ServiceSanitizer",
    "ShardAddress",
    "ShardState",
    "adaptive_retry_hint_s",
    "backoff_sleep_s",
    "decode_frame",
    "encode_frame",
    "error_reply",
    "fig4_scripts",
    "ok_reply",
    "parse_request",
    "quota_admits",
    "replay_journal",
    "run_chaos",
    "run_chaos_sync",
    "run_cluster_chaos",
    "run_cluster_chaos_sync",
    "run_loadgen",
    "run_loadgen_sync",
    "run_overload_chaos",
    "run_overload_chaos_sync",
    "serve_until_drained",
    "start_local_cluster",
]
