"""Online demand-aware admission control (the paper's RDA layer, live).

The batch harness simulates a kernel; this package *runs* the admission
machinery as a long-lived service: an asyncio server speaking a small
newline-delimited-JSON protocol (``pp_begin`` / ``pp_end`` / ``query`` /
``stats`` / ``drain``), a client, and an open/closed-loop load generator
that replays workload-suite progress-period sequences against it.

Entry points: ``python -m repro serve`` and ``python -m repro loadgen``.
"""

from .client import ServeClient, ServeReplyError
from .loadgen import (
    LoadgenConfig,
    LoadgenReport,
    fig4_scripts,
    run_loadgen,
    run_loadgen_sync,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ErrorCode,
    Request,
    decode_frame,
    encode_frame,
    error_reply,
    ok_reply,
    parse_request,
)
from .server import (
    AdmissionServer,
    AdmissionService,
    ServeConfig,
    ServiceSanitizer,
    serve_until_drained,
)

__all__ = [
    "AdmissionServer",
    "AdmissionService",
    "Counter",
    "ErrorCode",
    "Gauge",
    "Histogram",
    "LoadgenConfig",
    "LoadgenReport",
    "MAX_FRAME_BYTES",
    "MetricsRegistry",
    "PROTOCOL_VERSION",
    "Request",
    "ServeClient",
    "ServeConfig",
    "ServeReplyError",
    "ServiceSanitizer",
    "decode_frame",
    "encode_frame",
    "error_reply",
    "fig4_scripts",
    "ok_reply",
    "parse_request",
    "run_loadgen",
    "run_loadgen_sync",
    "serve_until_drained",
]
