"""The ``repro.serve`` wire protocol: newline-delimited JSON frames.

One request per line, one reply per line (a parked ``pp_begin`` defers its
reply until the period is admitted, times out, or the server drains — the
connection is parked exactly as the kernel parks a process).  Every frame
is a JSON object terminated by ``\\n``; the protocol is versioned through
the mandatory ``v`` field so incompatible servers reject old clients with
a typed error instead of undefined behaviour.

Request frames::

    {"v": 1, "id": 6, "op": "hello", "client": "app-7f3e"}
    {"v": 1, "id": 7, "op": "pp_begin", "resource": "llc",
     "demand_bytes": 6606028, "reuse": "high", "label": "DGEMM",
     "token": "b7c1..."}                        # optional idempotency token
    {"v": 1, "id": 8, "op": "pp_end", "pp_id": 42}
    {"v": 1, "id": 9, "op": "query"}            # optional "pp_id"
    {"v": 1, "id": 10, "op": "stats"}
    {"v": 1, "id": 11, "op": "drain"}
    {"v": 1, "id": 12, "op": "heartbeat"}       # renews the client lease

Replies carry the request's ``id`` back and either ``"ok": true`` plus
verb-specific fields, or ``"ok": false`` with a typed error::

    {"v": 1, "id": 7, "ok": true, "pp_id": 42, "admitted": true, ...}
    {"v": 1, "id": 7, "ok": false,
     "error": {"code": "RETRY_AFTER", "message": "...",
               "retry_after_s": 0.05}}

See ``docs/SERVE.md`` for the full specification.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.progress_period import ResourceKind, ReuseLevel
from ..errors import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "MAX_IDENT_CHARS",
    "VERBS",
    "BINARY_MAGIC",
    "BINARY_HEADER_BYTES",
    "ErrorCode",
    "Request",
    "parse_request",
    "encode_frame",
    "decode_frame",
    "encode_binary_frame",
    "parse_binary_header",
    "decode_binary_frame",
    "decode_any_frame",
    "read_raw_frame",
    "ok_reply",
    "error_reply",
]

#: current wire-protocol version; bump on incompatible frame changes
PROTOCOL_VERSION = 1

#: default upper bound on one frame (request or reply), newline included
MAX_FRAME_BYTES = 64 * 1024

#: the verbs a client may send
VERBS = ("hello", "heartbeat", "pp_begin", "pp_end", "query", "stats", "drain")

#: upper bound on client-supplied identity strings (client ids, tokens)
MAX_IDENT_CHARS = 128

#: first byte of a length-prefixed binary frame.  0xB5 can never start a
#: JSON text (it is not valid leading UTF-8), so NDJSON and binary frames
#: are distinguishable from their first byte on the same connection.
BINARY_MAGIC = 0xB5

#: magic byte + 4-byte big-endian payload length
BINARY_HEADER_BYTES = 5


class ErrorCode:
    """Typed error codes carried in ``error.code`` of a failure reply."""

    BAD_FRAME = "BAD_FRAME"  # not valid JSON / not an object
    FRAME_TOO_LARGE = "FRAME_TOO_LARGE"  # exceeded MAX_FRAME_BYTES
    BAD_VERSION = "BAD_VERSION"  # missing/unsupported "v"
    UNKNOWN_OP = "UNKNOWN_OP"  # "op" not in VERBS
    BAD_REQUEST = "BAD_REQUEST"  # verb fields missing or ill-typed
    UNKNOWN_PERIOD = "UNKNOWN_PERIOD"  # pp_id not open on this connection
    RETRY_AFTER = "RETRY_AFTER"  # pending-admission queue full
    TIMEOUT = "TIMEOUT"  # parked longer than the park timeout
    PARK_TIMEOUT = "PARK_TIMEOUT"  # parked past the sojourn deadline
    OVERLOAD = "OVERLOAD"  # cluster brownout: shedding new clients
    DRAINING = "DRAINING"  # server no longer admits new periods
    NOT_BOUND = "NOT_BOUND"  # heartbeat before hello (no client identity)
    REDIRECT = "REDIRECT"  # speak to the shard named in error.shard instead
    INTERNAL = "INTERNAL"  # unexpected server-side failure


_REUSE_BY_NAME = {level.value: level for level in ReuseLevel}
_RESOURCE_BY_NAME = {kind.value: kind for kind in ResourceKind}


@dataclass(frozen=True)
class Request:
    """A validated request frame."""

    op: str
    id: Optional[int] = None
    #: pp_begin fields
    resource: ResourceKind = ResourceKind.LLC
    demand_bytes: int = 0
    reuse: ReuseLevel = ReuseLevel.LOW
    sharing_key: Optional[str] = None
    label: str = ""
    #: pp_begin idempotency token (dedupes re-issued begins, §journal)
    token: Optional[str] = None
    #: hello field: durable client identity the lease is bound to
    client: Optional[str] = None
    #: pp_end / query field
    pp_id: Optional[int] = None
    #: pp_end field: working-set bytes the client actually observed over
    #: the period — feeds the online demand estimator when present
    observed_bytes: Optional[int] = None
    #: raw frame, for logging
    raw: Dict[str, Any] = field(default_factory=dict, repr=False)


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(obj: Dict[str, Any]) -> bytes:
    """Serialize one frame: compact JSON + newline terminator."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes, max_bytes: int = MAX_FRAME_BYTES) -> Dict[str, Any]:
    """Parse one raw line into a frame dict, enforcing the size bound."""
    if len(line) > max_bytes:
        raise ProtocolError(
            ErrorCode.FRAME_TOO_LARGE,
            f"frame of {len(line)} bytes exceeds the {max_bytes}-byte limit",
        )
    return _loads_object(line)


def _loads_object(data: bytes) -> Dict[str, Any]:
    try:
        obj = json.loads(data)
    except ValueError as exc:
        raise ProtocolError(ErrorCode.BAD_FRAME, f"invalid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            ErrorCode.BAD_FRAME, f"frame must be a JSON object, got {type(obj).__name__}"
        )
    return obj


# ----------------------------------------------------------------------
# binary framing (negotiated in "hello" with {"binary": true})
# ----------------------------------------------------------------------
def encode_binary_frame(obj: Dict[str, Any]) -> bytes:
    """Serialize one binary frame: magic, payload length, compact JSON.

    The payload is the same compact JSON as :func:`encode_frame` minus the
    newline; the length prefix removes per-byte newline scanning from the
    read path, which is what makes the binary codec faster under load.
    """
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return bytes((BINARY_MAGIC,)) + len(payload).to_bytes(4, "big") + payload


def parse_binary_header(
    header: bytes, max_bytes: int = MAX_FRAME_BYTES
) -> int:
    """Validate a binary frame header; returns the payload length.

    Raises :class:`~repro.errors.ProtocolError` with ``BAD_FRAME`` on a
    truncated header or wrong magic, ``FRAME_TOO_LARGE`` when the declared
    frame would exceed ``max_bytes``.
    """
    if len(header) < BINARY_HEADER_BYTES:
        raise ProtocolError(
            ErrorCode.BAD_FRAME,
            f"truncated binary frame header ({len(header)} of "
            f"{BINARY_HEADER_BYTES} bytes)",
        )
    if header[0] != BINARY_MAGIC:
        raise ProtocolError(
            ErrorCode.BAD_FRAME,
            f"bad binary frame magic 0x{header[0]:02x} "
            f"(expected 0x{BINARY_MAGIC:02x})",
        )
    length = int.from_bytes(header[1:BINARY_HEADER_BYTES], "big")
    if BINARY_HEADER_BYTES + length > max_bytes:
        raise ProtocolError(
            ErrorCode.FRAME_TOO_LARGE,
            f"binary frame of {BINARY_HEADER_BYTES + length} bytes exceeds "
            f"the {max_bytes}-byte limit",
        )
    return length


def decode_binary_frame(
    buf: bytes, max_bytes: int = MAX_FRAME_BYTES
) -> Dict[str, Any]:
    """Parse one complete binary frame (header + payload) into a dict."""
    length = parse_binary_header(buf[:BINARY_HEADER_BYTES], max_bytes)
    payload = buf[BINARY_HEADER_BYTES:]
    if len(payload) != length:
        raise ProtocolError(
            ErrorCode.BAD_FRAME,
            f"binary frame payload is {len(payload)} bytes but the header "
            f"declared {length}",
        )
    return _loads_object(payload)


def decode_any_frame(
    buf: bytes, max_bytes: int = MAX_FRAME_BYTES
) -> Dict[str, Any]:
    """Decode a frame of either encoding, keyed on the magic byte."""
    if buf[:1] == bytes((BINARY_MAGIC,)):
        return decode_binary_frame(buf, max_bytes)
    return decode_frame(buf, max_bytes)


async def read_raw_frame(
    reader: asyncio.StreamReader,
    binary: Optional[bool],
    max_bytes: int = MAX_FRAME_BYTES,
) -> bytes:
    """Read one raw frame in the connection's current encoding.

    ``binary=None`` sniffs the encoding per frame from the first byte
    (the binary magic never opens a JSON text) — used by the cluster
    forwarding pump, whose inbound leg may flip encodings between frames
    while the read is already parked.  Returns the complete frame bytes
    (header + payload for binary, the terminated line for NDJSON) or
    ``b""`` on a clean EOF at a frame boundary.  EOF *inside* a binary
    frame raises :class:`~repro.errors.ProtocolError` with ``BAD_FRAME``
    — there is no newline to resynchronize on, so a torn binary frame is
    fatal to the connection.  Shared by the server, the cluster
    forwarding pump and the resilient client's reader loop so all three
    agree on framing.
    """
    sniffed = b""
    if binary is None:
        try:
            sniffed = await reader.readexactly(1)
        except asyncio.IncompleteReadError:
            return b""  # clean EOF before any frame
        binary = sniffed == bytes((BINARY_MAGIC,))
    if not binary:
        line = sniffed + await reader.readline()
        if len(line) > max_bytes:
            raise ProtocolError(
                ErrorCode.FRAME_TOO_LARGE,
                f"frame of {len(line)} bytes exceeds the {max_bytes}-byte limit",
            )
        return line
    try:
        header = sniffed + await reader.readexactly(
            BINARY_HEADER_BYTES - len(sniffed)
        )
    except asyncio.IncompleteReadError as exc:
        if not exc.partial and not sniffed:
            return b""  # clean EOF between frames
        raise ProtocolError(
            ErrorCode.BAD_FRAME,
            f"connection closed inside a binary frame header "
            f"({len(sniffed) + len(exc.partial)} of {BINARY_HEADER_BYTES} "
            f"bytes)",
        ) from None
    length = parse_binary_header(header, max_bytes)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            ErrorCode.BAD_FRAME,
            f"connection closed inside a binary frame payload "
            f"({len(exc.partial)} of {length} bytes)",
        ) from None
    return header + payload


# ----------------------------------------------------------------------
# request validation
# ----------------------------------------------------------------------
def _require_int(frame: Dict[str, Any], key: str, minimum: int = 0) -> int:
    value = frame.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, f"{key!r} must be an integer, got {value!r}"
        )
    if value < minimum:
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, f"{key!r} must be >= {minimum}, got {value}"
        )
    return value


def _optional_ident(frame: Dict[str, Any], key: str) -> Optional[str]:
    """A short non-empty string field (client ids, idempotency tokens)."""
    value = frame.get(key)
    if value is None:
        return None
    if not isinstance(value, str) or not value:
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, f"{key!r} must be a non-empty string"
        )
    if len(value) > MAX_IDENT_CHARS:
        raise ProtocolError(
            ErrorCode.BAD_REQUEST,
            f"{key!r} exceeds {MAX_IDENT_CHARS} characters",
        )
    return value


def parse_request(frame: Dict[str, Any]) -> Request:
    """Validate a decoded frame into a typed :class:`Request`.

    Raises :class:`~repro.errors.ProtocolError` with the matching
    :class:`ErrorCode` on any violation.
    """
    version = frame.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            ErrorCode.BAD_VERSION,
            f"unsupported protocol version {version!r}; "
            f"this server speaks v{PROTOCOL_VERSION}",
        )
    request_id = frame.get("id")
    if request_id is not None and (
        isinstance(request_id, bool) or not isinstance(request_id, int)
    ):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, f"'id' must be an integer, got {request_id!r}"
        )
    op = frame.get("op")
    if op not in VERBS:
        raise ProtocolError(
            ErrorCode.UNKNOWN_OP, f"unknown op {op!r}; expected one of {list(VERBS)}"
        )

    if op == "pp_begin":
        resource_name = frame.get("resource", ResourceKind.LLC.value)
        resource = _RESOURCE_BY_NAME.get(resource_name)
        if resource is None:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"unknown resource {resource_name!r}; "
                f"expected one of {sorted(_RESOURCE_BY_NAME)}",
            )
        demand = _require_int(frame, "demand_bytes")
        reuse_name = frame.get("reuse", ReuseLevel.LOW.value)
        reuse = _REUSE_BY_NAME.get(reuse_name)
        if reuse is None:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"unknown reuse {reuse_name!r}; expected one of {sorted(_REUSE_BY_NAME)}",
            )
        sharing_key = frame.get("sharing_key")
        if sharing_key is not None and not isinstance(sharing_key, str):
            raise ProtocolError(
                ErrorCode.BAD_REQUEST, "'sharing_key' must be a string when present"
            )
        label = frame.get("label", "")
        if not isinstance(label, str):
            raise ProtocolError(ErrorCode.BAD_REQUEST, "'label' must be a string")
        return Request(
            op=op,
            id=request_id,
            resource=resource,
            demand_bytes=demand,
            reuse=reuse,
            sharing_key=sharing_key,
            label=label,
            token=_optional_ident(frame, "token"),
            raw=frame,
        )

    if op == "hello":
        client = _optional_ident(frame, "client")
        if client is None:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST, "'hello' requires a 'client' identity"
            )
        return Request(op=op, id=request_id, client=client, raw=frame)

    if op == "pp_end":
        observed = None
        if frame.get("observed_bytes") is not None:
            observed = _require_int(frame, "observed_bytes", minimum=0)
        return Request(
            op=op, id=request_id, pp_id=_require_int(frame, "pp_id", minimum=1),
            observed_bytes=observed, raw=frame,
        )

    # heartbeat / query / stats / drain: pp_id optional on query only
    pp_id = None
    if op == "query" and "pp_id" in frame:
        pp_id = _require_int(frame, "pp_id", minimum=1)
    return Request(op=op, id=request_id, pp_id=pp_id, raw=frame)


# ----------------------------------------------------------------------
# replies
# ----------------------------------------------------------------------
def ok_reply(request_id: Optional[int], **fields: Any) -> Dict[str, Any]:
    """A success reply frame echoing the request id."""
    reply: Dict[str, Any] = {"v": PROTOCOL_VERSION, "id": request_id, "ok": True}
    reply.update(fields)
    return reply


def error_reply(
    request_id: Optional[int], code: str, message: str, **fields: Any
) -> Dict[str, Any]:
    """A typed failure reply frame."""
    error: Dict[str, Any] = {"code": code, "message": message}
    error.update(fields)
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": False, "error": error}
