"""Client leases for the admission service.

In the paper's kernel, a process that dies is reaped by the OS and its
LLC charges are implicitly released.  The admission *service* only sees a
socket, so it needs an explicit liveness contract: every lease-bound
client holds a **lease** renewed implicitly by any frame it sends (parked
connections included) and explicitly by the ``heartbeat`` verb.  A
server-side reaper cancels the admitted periods of clients whose lease
expired — whether their connection died (crash) or silently wedged (a
proxy holding a dead TCP session open).

Identity is durable: a client introduces itself with ``hello`` + a client
id, and the same id presented on a *new* connection reattaches to any
periods that survived a disconnect or a server restart.  Idempotency
tokens on ``pp_begin`` make re-issue after a lost reply safe: a token
that already names an open admitted period returns that period instead of
charging twice.

Anonymous connections (no ``hello``) keep the original PR-3 semantics:
their periods live and die with the connection, and no lease applies.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from ..core.api import ProgressPeriodApi

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .server import AdmissionService

__all__ = ["ClientRecord", "LeaseTable"]


class ClientRecord:
    """Per-client admission state: the figure-4 API bound to an identity.

    ``client_id is None`` marks an anonymous, connection-scoped record.
    Named records outlive their connection: the lease deadline starts
    ticking from the last frame received, and the reaper reclaims the
    record's admitted periods once it lapses.
    """

    def __init__(self, service: "AdmissionService", client_id: Optional[str]) -> None:
        self.client_id = client_id
        self.api = ProgressPeriodApi(service.monitor, owner=self)
        #: idempotency token -> open pp_id (admitted or parked)
        self.tokens: Dict[str, int] = {}
        self._token_of: Dict[int, str] = {}
        #: monotonic deadline after which the reaper may reclaim (None for
        #: anonymous records — they are cleaned up on disconnect instead)
        self.lease_deadline: Optional[float] = None
        #: the live connection currently speaking for this client, if any
        self.session = None

    @property
    def anonymous(self) -> bool:
        return self.client_id is None

    # ------------------------------------------------------------------
    def bind_token(self, token: Optional[str], pp_id: int) -> None:
        if token is None:
            return
        self.tokens[token] = pp_id
        self._token_of[pp_id] = token

    def drop_token(self, pp_id: int) -> None:
        token = self._token_of.pop(pp_id, None)
        if token is not None and self.tokens.get(token) == pp_id:
            del self.tokens[token]

    def token_of(self, pp_id: int) -> Optional[str]:
        return self._token_of.get(pp_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        who = self.client_id or "anonymous"
        return f"<client {who}: {self.api.open_count} open>"


class LeaseTable:
    """Named client records keyed by identity, plus lease bookkeeping."""

    def __init__(
        self,
        ttl_s: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.ttl_s = ttl_s
        self.clock = clock
        self.records: Dict[str, ClientRecord] = {}

    def __len__(self) -> int:
        return len(self.records)

    def get(self, client_id: str) -> Optional[ClientRecord]:
        return self.records.get(client_id)

    def get_or_create(
        self,
        client_id: str,
        make: Callable[[str], ClientRecord],
    ) -> tuple[ClientRecord, bool]:
        """Return ``(record, resumed)`` — resumed when the id was known."""
        record = self.records.get(client_id)
        if record is not None:
            return record, True
        record = make(client_id)
        self.records[client_id] = record
        self.renew(record)
        return record, False

    def renew(self, record: ClientRecord) -> None:
        """Push the record's reclaim deadline a full TTL into the future."""
        if not record.anonymous:
            record.lease_deadline = self.clock() + self.ttl_s

    def remaining_s(self, record: ClientRecord) -> Optional[float]:
        if record.lease_deadline is None:
            return None
        return max(0.0, record.lease_deadline - self.clock())

    def expired(self, now: Optional[float] = None) -> List[ClientRecord]:
        """Named records whose lease deadline has lapsed."""
        now = self.clock() if now is None else now
        return [
            r
            for r in self.records.values()
            if r.lease_deadline is not None and r.lease_deadline <= now
        ]

    def forget(self, record: ClientRecord) -> None:
        if record.client_id is not None:
            self.records.pop(record.client_id, None)
