"""Cluster front-end: demand-aware placement across admission shards.

One :class:`~repro.serve.server.AdmissionServer` is one simulated socket
(one LLC, one journal, one lease table).  This module scales the service
out: N admission shards behind one placer front-end that owns *which*
shard each client charges, using the dominant-remaining-resource scoring
of :mod:`repro.serve.placer`.

The front-end speaks the same wire protocol as a shard, so every existing
client works unchanged.  Placement is delivered two ways:

* **Redirect.**  A ``hello`` carrying ``"redirect": true`` (sent by
  :class:`~repro.serve.resilient.ResilientServeClient` by default) is
  answered with a typed ``REDIRECT`` error whose ``error.shard`` field
  names the assigned shard's address.  The client re-dials the shard
  directly — after the handshake the front-end is out of the data path.
  When the shard later dies, the client falls back to the front-end and
  is re-placed.
* **Forward.**  Any other first frame starts a frame-aware bidirectional
  pump to the assigned shard: the front-end stays on the data path,
  tracking binary-framing negotiation (the codec switch applies to both
  legs), per-client demand, in-flight ``pp_begin`` requests and admitted
  periods.  Forward mode is what makes **migration** possible: when a
  forwarded client's only outstanding work is a *parked* ``pp_begin`` and
  its shard is saturated while another shard has headroom, the balance
  loop closes the old shard leg (the shard cancels the parked period on
  EOF — it holds no capacity), re-binds the client identity on the target
  shard with an injected ``hello`` (a negative request id the pump
  swallows), and re-issues the parked begin verbatim — same request id,
  same idempotency token — so the client simply sees its reply arrive
  from a shard with room.

``query`` and ``stats`` on a connection that has not picked a shard are
aggregated across every live shard, so one probe sees cluster-wide
utilization; ``drain`` fans out to all shards and then drains the
front-end itself.  A health loop probes each shard and feeds the placer's
liveness/usage model; per-shard gauges, ``placements_total``,
``redirects_total``, ``migrations_total`` and the ``fragmentation`` gauge
are exported through the standard metrics registry.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import itertools
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ProtocolError, ServeError
from . import protocol
from .client import ServeClient
from .metrics import MetricsRegistry
from .placer import ClusterError, DemandAwarePlacer, ShardAddress, ShardState
from .protocol import ErrorCode
from .server import AdmissionServer, ServeConfig

__all__ = [
    "ClusterConfig",
    "ClusterFrontend",
    "LocalCluster",
    "start_local_cluster",
]


def _connect_kwargs(address: ShardAddress) -> Dict[str, Any]:
    if address.unix_path is not None:
        return {"unix_path": address.unix_path}
    return {"host": address.host, "port": address.port}


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of one cluster front-end instance."""

    #: the admission shards this front-end places over
    shards: Tuple[ShardAddress, ...] = ()
    #: tie-break seed — placement is deterministic given (seed, demands,
    #: capacities); see repro.serve.placer
    seed: int = 0
    #: period of the shard health/usage probe loop
    health_interval_s: float = 0.25
    #: per-probe connect+query budget
    probe_timeout_s: float = 1.0
    #: period of the parked-client migration sweep
    balance_interval_s: float = 0.1
    #: a pp_begin must be parked this long before it may migrate
    migrate_after_s: float = 0.25
    #: master switch for parked-client migration
    migration: bool = True
    #: hint attached to RETRY_AFTER when no shard is alive
    retry_after_s: float = 0.25
    #: brownout mode: when no live shard can fit the observed peak demand
    #: AND the fragmentation gauge holds at/above this threshold for
    #: ``brownout_sweeps`` consecutive health sweeps, *new* clients are
    #: shed with a typed OVERLOAD error (None = brownout disabled)
    brownout_fragmentation: Optional[float] = None
    #: consecutive saturated health sweeps before brownout engages
    brownout_sweeps: int = 3
    #: cluster-wide retry hint carried by OVERLOAD sheds
    brownout_retry_s: float = 0.5
    #: proactive rebalance: when the fragmentation gauge sits at/above
    #: this threshold the ``migrate_after_s`` age gate is waived and
    #: parked clients may move immediately (None = age-gated only)
    rebalance_fragmentation: Optional[float] = 0.5
    #: supervisor poll period (only matters once restarters registered)
    supervise_interval_s: float = 0.1
    #: base restart backoff; doubles per crash-loop streak entry
    restart_backoff_s: float = 0.2
    #: ceiling on the exponential restart backoff
    restart_backoff_cap_s: float = 5.0
    #: a shard death within this window of its last supervised restart
    #: counts as a crash loop
    crash_loop_window_s: float = 10.0
    #: crash-loop streak length that quarantines the shard
    quarantine_after: int = 3
    #: budget for a restarted shard to answer its first probe
    restart_ready_timeout_s: float = 15.0
    #: rolling restart: grace for a draining shard's running periods
    shard_drain_grace_s: float = 5.0
    #: largest accepted request frame
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    #: flat file the cluster metrics snapshot is dumped to
    metrics_json: Optional[str] = None
    #: dump interval for ``metrics_json``
    metrics_interval_s: float = 2.0


class _ForwardPump:
    """One forwarded client: a frame-aware relay to its assigned shard.

    The pump re-encodes every frame rather than splicing bytes, because
    the two legs can transiently disagree on encoding: after a migration
    the new shard leg starts in NDJSON while the client leg may already
    be binary, and during binary negotiation the acknowledging reply
    itself still travels in the old encoding.  *Reads* sniff the
    encoding per frame (``read_raw_frame(binary=None)``) — a leg's read
    is usually already parked when the negotiating ack flips the
    encoding, so a mode flag checked at read *start* would strand the
    pump in ``readline()`` while binary frames arrive.  *Writes* carry
    explicit flags: ``client_binary`` flips when the ack is forwarded,
    and ``shard_write_binary`` must flip as soon as a ``hello {binary}``
    is sent upstream of it (the shard switches the moment it *sends* the
    ack, before the pump has read it).
    """

    def __init__(
        self,
        frontend: "ClusterFrontend",
        client_id: str,
        named: bool,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        shard: ShardState,
    ) -> None:
        self.frontend = frontend
        self.client_id = client_id
        #: True when the client introduced itself with hello (migratable)
        self.named = named
        self.client_reader = reader
        self.client_writer = writer
        self.shard = shard
        self.client_binary = False
        self.shard_write_binary = False
        self.backend: Optional[ServeClient] = None
        #: serializes client->shard writes against migration's leg swap
        self._backend_lock = asyncio.Lock()
        self._backend_changed = asyncio.Event()
        self._closed = False
        self._migrating = False
        #: hello frame as the client sent it, replayed on migration
        self._hello_frame: Optional[Dict[str, Any]] = None
        #: request id -> (pp_begin frame, sent-at) awaiting a reply
        self._inflight: Dict[int, Tuple[Dict[str, Any], float]] = {}
        #: pp_end request id -> pp_id, to retire admitted periods
        self._ending: Dict[int, int] = {}
        #: periods admitted (and still open) on the current shard
        self._admitted: set = set()
        #: negative ids for frames this pump injects; replies are swallowed
        self._inject_ids = itertools.count(-1, -1)
        self._swallow: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def run(self, first_frame: Dict[str, Any]) -> None:
        """Relay until either side closes; returns with both legs closed."""
        cfg = self.frontend.cfg
        try:
            backend = await ServeClient.connect(
                timeout=cfg.probe_timeout_s,
                **_connect_kwargs(self.shard.address),
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            # The assigned shard just became unreachable.  Push the client
            # back with RETRY_AFTER: its resilient layer re-dials the
            # front-end, by which time the health loop has re-placed it.
            self.frontend.shard_trouble(self.shard)
            await self._send_client(protocol.error_reply(
                first_frame.get("id"), ErrorCode.RETRY_AFTER,
                f"shard {self.shard.name} is unreachable; retry",
                retry_after_s=cfg.retry_after_s,
            ))
            return
        self.backend = backend
        self._track_outbound(first_frame)
        backend.writer.write(protocol.encode_frame(first_frame))
        await backend.writer.drain()
        c2s = asyncio.ensure_future(self._client_to_shard())
        s2c = asyncio.ensure_future(self._shard_to_client())
        try:
            await asyncio.wait(
                {c2s, s2c}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            await self.close()
            for task in (c2s, s2c):
                task.cancel()
            await asyncio.gather(c2s, s2c, return_exceptions=True)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._backend_changed.set()
        backend, self.backend = self.backend, None
        if backend is not None:
            with contextlib.suppress(Exception):
                await backend.close()
        with contextlib.suppress(Exception):
            self.client_writer.close()

    # ------------------------------------------------------------------
    # relay legs
    # ------------------------------------------------------------------
    async def _client_to_shard(self) -> None:
        cfg = self.frontend.cfg
        while not self._closed:
            try:
                buf = await protocol.read_raw_frame(
                    self.client_reader, None, cfg.max_frame_bytes
                )
            except (ProtocolError, ConnectionError, ValueError,
                    asyncio.IncompleteReadError):
                return
            if not buf:
                return  # client hung up
            try:
                frame = protocol.decode_any_frame(buf, cfg.max_frame_bytes)
            except ProtocolError as exc:
                # Undecodable but completely-read frame: answer in the
                # shard's stead so the legs never disagree about it.
                await self._send_client(
                    protocol.error_reply(None, exc.code, exc.message)
                )
                continue
            self._track_outbound(frame)
            async with self._backend_lock:
                backend = self.backend
                if backend is None or backend.closed:
                    return
                try:
                    backend.writer.write(self._encode_shard(frame))
                    await backend.writer.drain()
                except (ConnectionError, RuntimeError):
                    return

    async def _shard_to_client(self) -> None:
        cfg = self.frontend.cfg
        while not self._closed:
            backend = self.backend
            if backend is None:
                # between legs during a migration
                await self._backend_changed.wait()
                self._backend_changed.clear()
                continue
            try:
                buf = await protocol.read_raw_frame(
                    backend.reader, None, cfg.max_frame_bytes
                )
            except (ProtocolError, ConnectionError, ValueError,
                    asyncio.IncompleteReadError):
                buf = b""
            if not buf:
                if self._closed:
                    return
                if self._migrating or self.backend is not backend:
                    continue  # the old leg died as part of a migration
                # The shard died under a live client: drop the client so
                # its resilient layer re-dials the front-end and the
                # placer re-places it on a live shard.
                self.frontend.shard_trouble(self.shard)
                return
            try:
                reply = protocol.decode_any_frame(buf, cfg.max_frame_bytes)
            except ProtocolError:
                continue
            rid = reply.get("id")
            if isinstance(rid, int) and rid < 0:
                if not self._handle_injected(rid, reply):
                    return
                continue
            self._track_reply(reply)
            if not await self._send_client(reply):
                return
            if (
                reply.get("ok") and reply.get("binary")
                and not self.client_binary
            ):
                # hello ack forwarded: both legs switch to binary framing
                self.client_binary = True
                self.shard_write_binary = True

    async def _send_client(self, frame: Dict[str, Any]) -> bool:
        encode = (
            protocol.encode_binary_frame if self.client_binary
            else protocol.encode_frame
        )
        try:
            self.client_writer.write(encode(frame))
            await self.client_writer.drain()
            return True
        except (ConnectionError, RuntimeError):
            return False

    def _encode_shard(self, frame: Dict[str, Any]) -> bytes:
        if self.shard_write_binary:
            return protocol.encode_binary_frame(frame)
        return protocol.encode_frame(frame)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _track_outbound(self, frame: Dict[str, Any]) -> None:
        op = frame.get("op")
        rid = frame.get("id")
        if op == "hello":
            self._hello_frame = dict(frame)
        elif op == "pp_begin" and isinstance(rid, int):
            self._inflight[rid] = (dict(frame), time.monotonic())
            demand = frame.get("demand_bytes")
            resource = frame.get("resource", "llc")
            if isinstance(demand, int) and demand > 0:
                self.frontend.note_demand(
                    self.client_id, {str(resource): demand}
                )
        elif op == "pp_end" and isinstance(rid, int):
            pp_id = frame.get("pp_id")
            if isinstance(pp_id, int):
                self._ending[rid] = pp_id

    def _track_reply(self, reply: Dict[str, Any]) -> None:
        rid = reply.get("id")
        if rid in self._inflight:
            del self._inflight[rid]
            if reply.get("ok") and isinstance(reply.get("pp_id"), int):
                self._admitted.add(reply["pp_id"])
        elif rid in self._ending:
            pp_id = self._ending.pop(rid)
            error = (reply.get("error") or {}).get("code")
            if reply.get("ok") or error == ErrorCode.UNKNOWN_PERIOD:
                self._admitted.discard(pp_id)

    def _handle_injected(self, rid: int, reply: Dict[str, Any]) -> bool:
        """Process a reply to a pump-injected frame; False kills the pump."""
        kind = self._swallow.pop(rid, None)
        if kind != "hello":
            return True  # stale/unknown injected reply: ignore
        if not reply.get("ok"):
            return False  # migration hello rejected: drop the client
        return True

    # ------------------------------------------------------------------
    # migration
    # ------------------------------------------------------------------
    def parked_demand(self, min_age_s: float) -> Optional[Dict[str, int]]:
        """The demand of this client's lone parked begin, if migratable.

        Migration is only sound when the client's *entire* footprint on
        its shard is one parked (uncharged) ``pp_begin``: admitted periods
        hold capacity that cannot move, and anonymous clients have no
        identity to re-bind on the target shard.
        """
        if (
            self._closed or self._migrating or not self.named
            or self._admitted or len(self._inflight) != 1
        ):
            return None
        frame, since = next(iter(self._inflight.values()))
        if time.monotonic() - since < min_age_s:
            return None
        demand = frame.get("demand_bytes")
        if not isinstance(demand, int) or demand <= 0:
            return None
        return {str(frame.get("resource", "llc")): demand}

    async def migrate_to(self, target: ShardState) -> bool:
        """Move this client's parked begin to ``target``.

        Closing the old leg makes the old shard cancel the parked period
        (it holds no capacity); the injected hello re-binds the client's
        identity on the target, and the parked begin is re-sent verbatim
        — original request id, original idempotency token — so the reply
        reaches the waiting client as if nothing happened.
        """
        if self._closed or self._migrating or self._hello_frame is None:
            return False
        self._migrating = True
        try:
            async with self._backend_lock:
                cfg = self.frontend.cfg
                old, self.backend = self.backend, None
                if old is not None:
                    with contextlib.suppress(Exception):
                        await old.close()
                try:
                    backend = await ServeClient.connect(
                        timeout=cfg.probe_timeout_s,
                        **_connect_kwargs(target.address),
                    )
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    await self.close()  # backendless: client must re-place
                    return False
                inject_id = next(self._inject_ids)
                self._swallow[inject_id] = "hello"
                hello = dict(self._hello_frame)
                hello["id"] = inject_id
                # The hello travels in NDJSON (fresh connection), but the
                # shard switches to binary the moment it sends the ack —
                # so every frame *after* the hello must already be in the
                # client's negotiated encoding.
                self.shard_write_binary = self.client_binary
                backend.writer.write(protocol.encode_frame(hello))
                for rid in sorted(self._inflight):
                    frame, _ = self._inflight[rid]
                    backend.writer.write(self._encode_shard(frame))
                    self._inflight[rid] = (frame, time.monotonic())
                await backend.writer.drain()
                self.shard = target
                self.backend = backend
                self._backend_changed.set()
            return True
        except (ConnectionError, RuntimeError):
            await self.close()
            return False
        finally:
            self._migrating = False


class ClusterFrontend:
    """The placer process: accepts clients, assigns shards, relays."""

    def __init__(self, cfg: ClusterConfig) -> None:
        if not cfg.shards:
            raise ClusterError("ClusterConfig needs at least one shard")
        self.cfg = cfg
        self.placer = DemandAwarePlacer(
            [ShardState(address=a) for a in cfg.shards], seed=cfg.seed
        )
        self.metrics = MetricsRegistry()
        self.c_placements = self.metrics.counter(
            "placements_total", "clients assigned to a shard"
        )
        self.c_redirects = self.metrics.counter(
            "redirects_total", "hello replies answered with REDIRECT"
        )
        self.c_forwards = self.metrics.counter(
            "forwards_total", "clients relayed through a forwarding pump"
        )
        self.c_migrations = self.metrics.counter(
            "migrations_total", "parked clients moved to a shard with room"
        )
        self.c_migration_failures = self.metrics.counter(
            "migration_failures_total", "migrations that lost the client"
        )
        self.c_requests = self.metrics.counter(
            "requests_total", "frames handled by the front-end itself"
        )
        self.c_brownout_shed = self.metrics.counter(
            "brownout_shed_total", "new clients shed with OVERLOAD"
        )
        self.c_shard_restarts = self.metrics.counter(
            "shard_restarts_total", "dead shards restarted by the supervisor"
        )
        self.c_shard_drains = self.metrics.counter(
            "shard_drains_total", "planned single-shard drains"
        )
        self.c_rebalances = self.metrics.counter(
            "rebalance_migrations_total",
            "migrations triggered by the fragmentation threshold",
        )
        #: brownout state: set/cleared by the health loop
        self._brownout = False
        self._brownout_streak = 0
        #: per-resource high-water mark of declared demand, the yardstick
        #: for "could any shard even fit a typical new client?"
        self._peak_demand: Dict[str, int] = {}
        #: supervision state: shard name -> async restart hook
        self._restarters: Dict[str, Any] = {}
        self._restarting: set = set()
        self._quarantined: set = set()
        self._restart_streak: Dict[str, int] = {}
        self._last_restart: Dict[str, float] = {}
        self._restart_tasks: set = set()
        self._frag_peak = 0.0
        self.metrics.gauge(
            "fragmentation", "1 - largest_free/total_free over live shards",
            fn=self.placer.fragmentation,
        )
        self.metrics.gauge(
            "fragmentation_peak", "high-water mark of the fragmentation gauge",
            fn=lambda: self._frag_peak,
        )
        self.metrics.gauge(
            "shards_quarantined", "crash-looping shards held out of service",
            fn=lambda: float(len(self._quarantined)),
        )
        self.metrics.gauge(
            "shards_draining", "shards in a planned drain/restart cycle",
            fn=lambda: float(
                sum(1 for s in self.placer.shards.values() if s.draining)
            ),
        )
        self.metrics.gauge(
            "brownout", "1 while the front-end is shedding new clients",
            fn=lambda: float(self._brownout),
        )
        self.metrics.gauge(
            "shards_alive", fn=lambda: float(len(self.placer.alive_shards()))
        )
        self.metrics.gauge("pumps", fn=lambda: float(len(self._pumps)))
        for address in cfg.shards:
            shard = self.placer.shards[address.name]
            self.metrics.gauge(
                f"shard_usage_bytes:{address.name}",
                fn=lambda s=shard: float(s.usage.get("llc", 0)),
            )
            self.metrics.gauge(
                f"shard_waiting:{address.name}",
                fn=lambda s=shard: float(s.waiting),
            )
            self.metrics.gauge(
                f"shard_alive:{address.name}",
                fn=lambda s=shard: float(s.alive),
            )
        self._pumps: set = set()
        self._servers: List[asyncio.AbstractServer] = []
        self._unix_path: Optional[str] = None
        self._background: List[asyncio.Task] = []
        self._anon_ids = itertools.count(1)
        self.draining = False
        self._drain_requested = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle (mirrors AdmissionServer)
    # ------------------------------------------------------------------
    async def start(
        self,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
    ) -> None:
        """Probe the shards once, then bind and start background loops."""
        if unix_path is None and host is None:
            raise ServeError("need a unix socket path and/or a TCP host/port")
        await self._health_sweep()
        if unix_path is not None:
            if os.path.exists(unix_path):
                os.unlink(unix_path)
            self._servers.append(
                await asyncio.start_unix_server(
                    self._handle_client, path=unix_path,
                    limit=self.cfg.max_frame_bytes,
                )
            )
            self._unix_path = unix_path
        if host is not None:
            if port is None:
                raise ServeError("TCP transport needs a port")
            self._servers.append(
                await asyncio.start_server(
                    self._handle_client, host=host, port=port,
                    limit=self.cfg.max_frame_bytes,
                )
            )
        self._background.append(asyncio.ensure_future(self._health_loop()))
        self._background.append(asyncio.ensure_future(self._balance_loop()))
        self._background.append(asyncio.ensure_future(self._supervise_loop()))
        if self.cfg.metrics_json:
            self._background.append(asyncio.ensure_future(self._metrics_loop()))

    @property
    def tcp_port(self) -> Optional[int]:
        for server in self._servers:
            for sock in server.sockets or ():
                if sock.family.name.startswith("AF_INET"):
                    return sock.getsockname()[1]
        return None

    def request_drain(self) -> None:
        self._drain_requested.set()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    async def run_until_drained(self) -> None:
        await self._drain_requested.wait()
        self.draining = True
        for server in self._servers:
            server.close()
        for pump in list(self._pumps):
            await pump.close()
        for server in self._servers:
            await server.wait_closed()
        stopping = list(self._background) + list(self._restart_tasks)
        for task in stopping:
            task.cancel()
        await asyncio.gather(*stopping, return_exceptions=True)
        if self._unix_path and os.path.exists(self._unix_path):
            os.unlink(self._unix_path)
        if self.cfg.metrics_json:
            self.metrics.dump_json(self.cfg.metrics_json)

    # ------------------------------------------------------------------
    # placement hooks
    # ------------------------------------------------------------------
    def note_demand(self, client_id: str, demand: Dict[str, int]) -> None:
        """Fold a declared pp_begin demand into the client's profile."""
        for resource, amount in demand.items():
            if amount > self._peak_demand.get(resource, 0):
                self._peak_demand[resource] = amount
        with contextlib.suppress(ClusterError):
            self.placer.observe_demand(client_id, demand)

    def shard_trouble(self, shard: ShardState) -> None:
        """A data-path failure implicating ``shard``: mark it dead now.

        Marking it dead immediately keeps the placer from routing new
        clients at a socket that just failed; the supervisor (or the
        next successful probe) resurrects it.  A *draining* shard is
        exempt — its connections are expected to drop during a planned
        restart, and only the drain/restart cycle decides its liveness.
        """
        if shard.draining:
            return
        self.placer.mark_dead(shard.name)

    # ------------------------------------------------------------------
    # background loops
    # ------------------------------------------------------------------
    async def _probe(self, shard: ShardState) -> Optional[Dict[str, Any]]:
        """One connect+query round trip to a shard; None when unreachable."""
        try:
            client = await ServeClient.connect(
                timeout=self.cfg.probe_timeout_s,
                **_connect_kwargs(shard.address),
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            return None
        try:
            reply = await client.call(
                "query", timeout=self.cfg.probe_timeout_s
            )
        except Exception:
            return None
        finally:
            with contextlib.suppress(Exception):
                await client.close()
        return reply

    async def _health_sweep(self) -> None:
        # Draining and mid-restart shards are skipped entirely: a planned
        # restart must not be mistaken for a death (that would skew
        # shards_alive and could flip brownout on), and only the
        # drain/restart cycle decides their liveness transitions.
        shards = [
            s for s in self.placer.shards.values()
            if not s.draining and s.name not in self._restarting
        ]
        replies = await asyncio.gather(
            *(self._probe(s) for s in shards), return_exceptions=True
        )
        for shard, reply in zip(shards, replies):
            if not isinstance(reply, dict):
                self.placer.observe(shard.name, alive=False)
                continue
            self._fold_probe(shard, reply)
            # a shard that answers probes is serving: a stale quarantine
            # (operator intervention, external restart) lifts itself
            self._quarantined.discard(shard.name)
        self._frag_peak = max(self._frag_peak, self.placer.fragmentation())
        self._update_brownout()

    def _fold_probe(self, shard: ShardState, reply: Dict[str, Any]) -> None:
        """Fold one successful query reply into the placer's shard model."""
        resources = reply.get("resources") or {}
        usage = {
            kind: entry.get("usage_bytes", 0)
            for kind, entry in resources.items()
        }
        capacity = {
            kind: entry.get("capacity_bytes", 0)
            for kind, entry in resources.items()
        }
        self.placer.observe(
            shard.name,
            usage=usage,
            capacity=capacity,
            waiting=reply.get("waiting"),
            open_periods=reply.get("open_periods"),
            alive=True,
        )

    def _update_brownout(self) -> None:
        """Hysteretic brownout decision, one call per health sweep.

        Saturated = every live shard is infeasible for the observed peak
        demand AND fragmentation holds at/above the threshold.  Brownout
        engages only after ``brownout_sweeps`` consecutive saturated
        sweeps (so one transient spike doesn't shed clients) and releases
        the moment any headroom returns.
        """
        threshold = self.cfg.brownout_fragmentation
        if threshold is None:
            return
        if self._restarting or any(
            s.draining for s in self.placer.shards.values()
        ):
            # planned topology change: capacity is transiently reduced by
            # design, so neither advance nor reset the saturation streak
            return
        live = self.placer.alive_shards()
        saturated = (
            bool(live)
            and bool(self._peak_demand)
            and not any(s.fits_observed(self._peak_demand) for s in live)
            and self.placer.fragmentation() >= threshold
        )
        if saturated:
            self._brownout_streak += 1
            if self._brownout_streak >= self.cfg.brownout_sweeps:
                self._brownout = True
        else:
            self._brownout_streak = 0
            self._brownout = False

    def _shed_new_client(self, client_id: str) -> bool:
        """Should this client be shed right now?  Known (already-assigned)
        clients ride out the brownout; only new arrivals are shed."""
        return self._brownout and client_id not in self.placer.assignments

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.cfg.health_interval_s)
            await self._health_sweep()

    async def _balance_loop(self) -> None:
        while True:
            await asyncio.sleep(self.cfg.balance_interval_s)
            if not self.cfg.migration:
                continue
            threshold = self.cfg.rebalance_fragmentation
            fragmented = (
                threshold is not None
                and self.placer.fragmentation() >= threshold
            )
            # fragmented capacity: don't wait for parked begins to age —
            # move them now, before the slivers deadlock each other
            min_age = 0.0 if fragmented else self.cfg.migrate_after_s
            await self._migrate_parked(min_age, rebalance=fragmented)

    async def _migrate_parked(
        self,
        min_age_s: float,
        only_shard: Optional[str] = None,
        rebalance: bool = False,
    ) -> int:
        """One migration sweep over the forwarding pumps; returns moves."""
        moved = 0
        for pump in list(self._pumps):
            if only_shard is not None and pump.shard.name != only_shard:
                continue
            demand = pump.parked_demand(min_age_s)
            if demand is None:
                continue
            target = self.placer.migration_target(pump.client_id, demand)
            if target is None:
                continue
            if await pump.migrate_to(target):
                self.placer.migrate(pump.client_id, target)
                self.c_migrations.inc()
                if rebalance:
                    self.c_rebalances.inc()
                moved += 1
            else:
                self.c_migration_failures.inc()
        return moved

    async def _metrics_loop(self) -> None:
        while True:
            await asyncio.sleep(self.cfg.metrics_interval_s)
            self.metrics.dump_json(self.cfg.metrics_json)

    # ------------------------------------------------------------------
    # shard supervision
    # ------------------------------------------------------------------
    def register_restarter(self, name: str, restarter) -> None:
        """Arm the supervisor for shard ``name``.

        ``restarter`` is an async callable that brings the (dead or
        drained) shard process back up on its original address, where it
        recovers by replaying its own journal.  Once at least one
        restarter is registered the supervise loop restarts dead shards
        automatically; :meth:`drain_shard`/:meth:`rolling_restart` use
        the same hooks for planned cycles.
        """
        if name not in self.placer.shards:
            raise ClusterError(f"unknown shard {name!r}")
        self._restarters[name] = restarter

    @property
    def quarantined(self) -> set:
        """Names of crash-looping shards held out of service."""
        return set(self._quarantined)

    async def disarm_supervision(self) -> None:
        """Stop auto-restarting shards and wait out in-flight restarts.

        Call before a planned whole-cluster teardown: otherwise the
        supervisor resurrects every shard the shutdown just drained.
        """
        self._restarters.clear()
        if self._restart_tasks:
            await asyncio.gather(
                *list(self._restart_tasks), return_exceptions=True
            )

    async def _supervise_loop(self) -> None:
        while True:
            await asyncio.sleep(self.cfg.supervise_interval_s)
            for shard in self.placer.shards.values():
                name = shard.name
                if (
                    shard.alive or shard.draining
                    or name in self._restarting
                    or name in self._quarantined
                    or name not in self._restarters
                ):
                    continue
                self._restarting.add(name)
                task = asyncio.ensure_future(self._supervised_restart(shard))
                self._restart_tasks.add(task)
                task.add_done_callback(self._restart_tasks.discard)

    async def _supervised_restart(self, shard: ShardState) -> bool:
        """One supervised restart of a dead shard: backoff, flap guard,
        restarter, probe-until-ready, revive.  Crash-looping shards (a
        re-death inside ``crash_loop_window_s`` of the last restart)
        escalate the backoff and are quarantined after
        ``quarantine_after`` strikes instead of flapping forever."""
        name = shard.name
        try:
            now = time.monotonic()
            last = self._last_restart.get(name)
            if last is not None and now - last < self.cfg.crash_loop_window_s:
                self._restart_streak[name] = (
                    self._restart_streak.get(name, 0) + 1
                )
            else:
                self._restart_streak[name] = 0
            streak = self._restart_streak[name]
            if streak >= self.cfg.quarantine_after:
                self._quarantined.add(name)
                return False
            await asyncio.sleep(min(
                self.cfg.restart_backoff_s * (2 ** streak),
                self.cfg.restart_backoff_cap_s,
            ))
            # flap guard: a probe that answers means the "death" was a
            # transient (connection hiccup, mid-compaction stall) — the
            # process never left, so re-register it instead of restarting
            reply = await self._probe(shard)
            if reply is not None:
                self._fold_probe(shard, reply)
                self.placer.revive(name)
                return True
            self._last_restart[name] = time.monotonic()
            restarter = self._restarters.get(name)
            if restarter is None:
                return False  # disarmed while we backed off
            try:
                await restarter()
            except Exception:
                return False
            if not await self._await_ready(shard):
                return False
            self.placer.revive(name)
            self.c_shard_restarts.inc()
            return True
        finally:
            self._restarting.discard(name)

    async def _await_ready(self, shard: ShardState) -> bool:
        """Probe a restarting shard until it answers (bounded)."""
        deadline = time.monotonic() + self.cfg.restart_ready_timeout_s
        while time.monotonic() < deadline:
            reply = await self._probe(shard)
            if reply is not None:
                self._fold_probe(shard, reply)
                return True
            await asyncio.sleep(0.05)
        return False

    # ------------------------------------------------------------------
    # planned drain / rolling restart
    # ------------------------------------------------------------------
    async def drain_shard(
        self, name: str, *, grace_s: Optional[float] = None
    ) -> bool:
        """Planned drain of one shard.

        The placer stops placing onto it immediately (sticky clients
        re-place on their next hello), parked forwarded clients migrate
        away via the normal ``migrate_to`` path, running periods get a
        bounded grace window, and only then is the shard asked to drain.
        Returns True when the shard acknowledged the drain (or was
        already down).
        """
        shard = self.placer.shards.get(name)
        if shard is None:
            raise ClusterError(f"unknown shard {name!r}")
        grace = self.cfg.shard_drain_grace_s if grace_s is None else grace_s
        self.placer.mark_draining(name)
        self.c_shard_drains.inc()
        deadline = time.monotonic() + grace
        acknowledged = False
        while time.monotonic() < deadline:
            await self._migrate_parked(0.0, only_shard=name)
            reply = await self._probe(shard)
            if reply is None:
                break  # already down (crashed mid-drain)
            if (
                int(reply.get("open_periods") or 0) == 0
                and not any(
                    p.shard.name == name for p in self._pumps
                    if not p._closed
                )
            ):
                break
            await asyncio.sleep(0.05)
        try:
            client = await ServeClient.connect(
                timeout=self.cfg.probe_timeout_s,
                **_connect_kwargs(shard.address),
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            acknowledged = True  # nothing left to drain
        else:
            try:
                await client.drain()
                acknowledged = True
            except Exception:
                acknowledged = False
            finally:
                with contextlib.suppress(Exception):
                    await client.close()
        # the shard is going down now; ``draining`` stays set so the
        # health sweep keeps its hands off until the restart revives it
        self.placer.mark_dead(name)
        return acknowledged

    async def restart_shard(self, name: str) -> bool:
        """Restart a drained/dead shard via its registered restarter and
        re-register it with the placer once it answers probes."""
        restarter = self._restarters.get(name)
        if restarter is None:
            raise ClusterError(f"no restarter registered for shard {name!r}")
        shard = self.placer.shards[name]
        try:
            await restarter()
        except Exception:
            self.placer.mark_draining(name, False)  # unplanned now
            return False
        if not await self._await_ready(shard):
            self.placer.mark_draining(name, False)
            return False
        self.placer.revive(name)
        self.c_shard_restarts.inc()
        return True

    async def rolling_restart(
        self, *, grace_s: Optional[float] = None
    ) -> Dict[str, bool]:
        """Drain, restart and rejoin every shard, one at a time.

        Returns shard name -> True when that shard completed its cycle.
        Shards without a registered restarter are skipped (False).
        """
        results: Dict[str, bool] = {}
        for name in sorted(self.placer.shards):
            if name in self._quarantined:
                results[name] = False
                continue
            if name not in self._restarters:
                results[name] = False
                continue
            await self.drain_shard(name, grace_s=grace_s)
            results[name] = await self.restart_shard(name)
        return results

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Dispatch one front-end connection.

        The front-end itself always speaks NDJSON: binary framing is a
        per-shard negotiation that rides through the pump.  The first
        shard-addressed frame (``hello``, ``pp_begin``, ``pp_end``)
        flips the connection into forward mode and hands it to a pump;
        ``query``/``stats``/``drain`` are answered here with aggregates.
        """
        async def send(frame: Dict[str, Any]) -> None:
            try:
                writer.write(protocol.encode_frame(frame))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass

        try:
            while not self.draining:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    return
                except ValueError:
                    await send(protocol.error_reply(
                        None, ErrorCode.FRAME_TOO_LARGE,
                        f"request frame exceeds "
                        f"{self.cfg.max_frame_bytes} bytes",
                    ))
                    return
                if not line:
                    return
                self.c_requests.inc()
                try:
                    frame = protocol.decode_frame(
                        line, self.cfg.max_frame_bytes
                    )
                    request = protocol.parse_request(frame)
                except ProtocolError as exc:
                    await send(protocol.error_reply(
                        None, exc.code, exc.message
                    ))
                    continue
                if request.op == "hello":
                    handed_off = await self._op_hello(
                        request, frame, reader, writer, send
                    )
                    if handed_off:
                        return
                elif request.op in ("pp_begin", "pp_end"):
                    # Anonymous fast path: place under a synthetic id and
                    # forward — exactly what a bare server does for
                    # clients that skip hello.
                    await self._forward(
                        f"anon-{next(self._anon_ids)}", named=False,
                        first_frame=frame, reader=reader, writer=writer,
                        send=send,
                    )
                    return
                elif request.op == "query":
                    await send(await self._op_query(request))
                elif request.op == "stats":
                    await send(protocol.ok_reply(
                        request.id, stats=await self._op_stats()
                    ))
                elif request.op == "drain":
                    await send(await self._op_drain(request))
                else:  # heartbeat before hello
                    await send(protocol.error_reply(
                        request.id, ErrorCode.NOT_BOUND,
                        "say hello before heartbeat",
                    ))
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def _op_hello(
        self,
        request: protocol.Request,
        frame: Dict[str, Any],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        send,
    ) -> bool:
        """Place the client; returns True when the connection was handed
        to a pump (the caller must stop reading)."""
        demand_hint: Dict[str, int] = {}
        hint = frame.get("demand_bytes")
        if isinstance(hint, int) and not isinstance(hint, bool) and hint > 0:
            demand_hint["llc"] = hint
        if self._shed_new_client(request.client):
            self.c_brownout_shed.inc()
            await send(protocol.error_reply(
                request.id, ErrorCode.OVERLOAD,
                "cluster is in brownout: shedding new clients",
                retry_after_s=self.cfg.brownout_retry_s,
            ))
            return False
        try:
            shard = self.placer.place(request.client, demand_hint)
        except ClusterError:
            await send(protocol.error_reply(
                request.id, ErrorCode.RETRY_AFTER,
                "no live admission shard; retry",
                retry_after_s=self.cfg.retry_after_s,
            ))
            return False
        self.c_placements.inc()
        if frame.get("redirect") is True:
            self.c_redirects.inc()
            await send(protocol.error_reply(
                request.id, ErrorCode.REDIRECT,
                f"assigned to shard {shard.name}",
                shard=shard.address.to_fields(),
            ))
            return False  # the client hangs up and dials the shard
        await self._forward(
            request.client, named=True, first_frame=frame,
            reader=reader, writer=writer, send=send, shard=shard,
        )
        return True

    async def _forward(
        self,
        client_id: str,
        named: bool,
        first_frame: Dict[str, Any],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        send,
        shard: Optional[ShardState] = None,
    ) -> None:
        if shard is None:
            if self._shed_new_client(client_id):
                self.c_brownout_shed.inc()
                await send(protocol.error_reply(
                    first_frame.get("id"), ErrorCode.OVERLOAD,
                    "cluster is in brownout: shedding new clients",
                    retry_after_s=self.cfg.brownout_retry_s,
                ))
                return
            try:
                shard = self.placer.place(client_id)
            except ClusterError:
                await send(protocol.error_reply(
                    first_frame.get("id"), ErrorCode.RETRY_AFTER,
                    "no live admission shard; retry",
                    retry_after_s=self.cfg.retry_after_s,
                ))
                return
            self.c_placements.inc()
        self.c_forwards.inc()
        pump = _ForwardPump(self, client_id, named, reader, writer, shard)
        self._pumps.add(pump)
        try:
            await pump.run(first_frame)
        finally:
            self._pumps.discard(pump)
            if named:
                # keep the (sticky) assignment but stop reserving scored
                # capacity for a client that is no longer connected
                self.placer.release(client_id)
            else:
                # a synthetic identity never comes back
                self.placer.forget(client_id)

    # ------------------------------------------------------------------
    # aggregation verbs
    # ------------------------------------------------------------------
    async def _op_query(self, request: protocol.Request) -> Dict[str, Any]:
        if request.pp_id is not None:
            return protocol.error_reply(
                request.id, ErrorCode.BAD_REQUEST,
                "per-period query must go through the period's shard",
            )
        shards = list(self.placer.shards.values())
        replies = await asyncio.gather(
            *(self._probe(s) for s in shards), return_exceptions=True
        )
        resources: Dict[str, Dict[str, Any]] = {}
        totals = {
            "open_periods": 0, "waiting": 0,
            "forced_admissions": 0, "clients": 0,
        }
        per_shard: Dict[str, Any] = {}
        for shard, reply in zip(shards, replies):
            if not isinstance(reply, dict):
                per_shard[shard.name] = None
                continue
            for key in totals:
                value = reply.get(key)
                if isinstance(value, int):
                    totals[key] += value
            for kind, entry in (reply.get("resources") or {}).items():
                agg = resources.setdefault(
                    kind, {"usage_bytes": 0, "capacity_bytes": 0, "waiting": 0}
                )
                agg["usage_bytes"] += entry.get("usage_bytes", 0)
                agg["capacity_bytes"] += entry.get("capacity_bytes", 0)
                agg["waiting"] += entry.get("waiting", 0)
            per_shard[shard.name] = {
                "open_periods": reply.get("open_periods"),
                "waiting": reply.get("waiting"),
                "resources": reply.get("resources"),
            }
        for agg in resources.values():
            cap = agg["capacity_bytes"]
            agg["utilization"] = agg["usage_bytes"] / cap if cap else 0.0
        return protocol.ok_reply(
            request.id,
            cluster=True,
            resources=resources,
            shards=per_shard,
            placer=self.placer.snapshot(),
            **totals,
        )

    async def _op_stats(self) -> Dict[str, Any]:
        shards = list(self.placer.shards.values())

        async def shard_stats(shard: ShardState) -> Optional[Dict[str, Any]]:
            try:
                client = await ServeClient.connect(
                    timeout=self.cfg.probe_timeout_s,
                    **_connect_kwargs(shard.address),
                )
            except (ConnectionError, OSError, asyncio.TimeoutError):
                return None
            try:
                return await client.stats()
            except Exception:
                return None
            finally:
                with contextlib.suppress(Exception):
                    await client.close()

        replies = await asyncio.gather(
            *(shard_stats(s) for s in shards), return_exceptions=True
        )
        per_shard = {
            shard.name: (reply if isinstance(reply, dict) else None)
            for shard, reply in zip(shards, replies)
        }
        counters: Dict[str, int] = {}
        for reply in per_shard.values():
            for name, value in ((reply or {}).get("counters") or {}).items():
                counters[name] = counters.get(name, 0) + value
        stats = self.metrics.snapshot()
        return {
            **stats,
            "shard_counters": counters,
            "shards": per_shard,
        }

    async def _op_drain(self, request: protocol.Request) -> Dict[str, Any]:
        """Drain admin verb, three modes.

        * ``{"op": "drain"}`` — fan out to every shard, then drain the
          front-end itself (whole-cluster shutdown, the original verb).
        * ``{"op": "drain", "shard": "shard1"}`` — rolling-restart *one*
          shard: planned drain, restart via its registered restarter,
          rejoin.  The cluster keeps serving throughout.
        * ``{"op": "drain", "rolling": true}`` — a full rolling restart
          over every shard, one at a time.
        """
        raw = request.raw
        grace = raw.get("grace_s")
        grace_s = float(grace) if isinstance(grace, (int, float)) else None
        target = raw.get("shard")
        if isinstance(target, str):
            if target not in self.placer.shards:
                return protocol.error_reply(
                    request.id, ErrorCode.BAD_REQUEST,
                    f"unknown shard {target!r}",
                )
            drained = await self.drain_shard(target, grace_s=grace_s)
            restarted = False
            if target in self._restarters:
                restarted = await self.restart_shard(target)
            return protocol.ok_reply(
                request.id, shard=target,
                drained=drained, restarted=restarted,
            )
        if raw.get("rolling"):
            results = await self.rolling_restart(grace_s=grace_s)
            return protocol.ok_reply(
                request.id, rolling=True, shards=results,
                rolled=sum(1 for ok in results.values() if ok),
            )
        shards = list(self.placer.shards.values())

        async def drain_one(shard: ShardState) -> bool:
            try:
                client = await ServeClient.connect(
                    timeout=self.cfg.probe_timeout_s,
                    **_connect_kwargs(shard.address),
                )
            except (ConnectionError, OSError, asyncio.TimeoutError):
                return False
            try:
                await client.drain()
                return True
            except Exception:
                return False
            finally:
                with contextlib.suppress(Exception):
                    await client.close()

        results = await asyncio.gather(
            *(drain_one(s) for s in shards), return_exceptions=True
        )
        drained = {
            shard.name: result is True
            for shard, result in zip(shards, results)
        }
        self.request_drain()
        return protocol.ok_reply(request.id, draining=True, shards=drained)


@dataclass
class LocalCluster:
    """An in-process cluster: N admission shards plus their front-end."""

    frontend: ClusterFrontend
    servers: List[AdmissionServer] = field(default_factory=list)
    #: shards swapped out by a restart whose sanitizer was dirty
    faulted: int = 0

    def request_drain(self) -> None:
        self.frontend.request_drain()

    def install_signal_handlers(self) -> None:
        self.frontend.install_signal_handlers()

    async def rolling_restart(
        self, *, grace_s: Optional[float] = None
    ) -> Dict[str, bool]:
        """Drive a full rolling restart cycle over every shard."""
        return await self.frontend.rolling_restart(grace_s=grace_s)

    async def run_until_drained(self) -> int:
        """Serve until the front-end drains, then drain every shard.

        Returns the worst shard exit disposition: 0 when every shard
        (including any swapped out by a restart) drained with a clean
        sanitizer, 1 otherwise (mirrors the CLI contract of a
        standalone ``repro serve``).
        """
        await self.frontend.run_until_drained()
        worst = 1 if self.faulted else 0
        for server in self.servers:
            server.request_drain()
            await server.run_until_drained()
            sanitizer = server.service.sanitizer
            if sanitizer is not None and not sanitizer.ok:
                worst = 1
        return worst


def _local_restarter(cluster: LocalCluster, shard_cfg: ServeConfig, path: str):
    """Restart hook for one in-process shard of a LocalCluster.

    The journal handoff is sequenced, never concurrent: the old server
    instance is fully drained (or was already aborted/SIGKILL-simulated,
    in which case its journal handle is abandoned) before the fresh
    instance opens the same journal path and replays it.  The old
    instance is looked up by shard name, so tests that prune
    ``cluster.servers`` stay correct.
    """
    name = shard_cfg.shard_name

    async def restart() -> None:
        old = next(
            (s for s in cluster.servers if s.cfg.shard_name == name), None
        )
        if old is not None and not old.aborted:
            old.request_drain()
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    old.run_until_drained(),
                    old.cfg.drain_grace_s + 5.0,
                )
            sanitizer = old.service.sanitizer
            if sanitizer is not None and not sanitizer.ok:
                cluster.faulted += 1
        server = AdmissionServer(shard_cfg)
        await server.start(unix_path=path)
        if old is not None:
            cluster.servers[cluster.servers.index(old)] = server
        else:
            cluster.servers.append(server)

    return restart


async def start_local_cluster(
    cfg: ServeConfig,
    n_shards: int,
    socket_path: str,
    *,
    seed: int = 0,
    cluster_cfg: Optional[ClusterConfig] = None,
    cluster_overrides: Optional[Dict[str, Any]] = None,
    supervise: bool = True,
) -> LocalCluster:
    """Start N in-process shards plus a front-end on ``socket_path``.

    Shard ``i`` listens on ``<socket_path>.shard<i>`` with journal
    ``<journal>.shard<i>`` (when journaling is on).  ``cfg`` describes
    *one* shard — capacity is per shard, so a 3-shard cluster manages
    3x the capacity of a standalone server with the same config.

    With ``supervise`` (the default) every shard gets a restarter
    registered with the front-end: dead shards are restarted from their
    journal automatically and the cluster supports planned single-shard
    drains and rolling restarts.
    """
    if n_shards < 1:
        raise ClusterError(f"need at least 1 shard, got {n_shards}")
    servers: List[AdmissionServer] = []
    addresses: List[ShardAddress] = []
    shard_cfgs: List[ServeConfig] = []
    for i in range(n_shards):
        name = f"shard{i}"
        shard_cfg = dataclasses.replace(
            cfg,
            shard_name=name,
            journal_path=(
                f"{cfg.journal_path}.{name}" if cfg.journal_path else None
            ),
            metrics_json=None,  # the front-end owns the metrics file
        )
        server = AdmissionServer(shard_cfg)
        path = f"{socket_path}.{name}"
        await server.start(unix_path=path)
        servers.append(server)
        addresses.append(ShardAddress(name=name, unix_path=path))
        shard_cfgs.append(shard_cfg)
    if cluster_cfg is None:
        cluster_cfg = ClusterConfig(
            shards=tuple(addresses),
            seed=seed,
            metrics_json=cfg.metrics_json,
            **(cluster_overrides or {}),
        )
    frontend = ClusterFrontend(cluster_cfg)
    await frontend.start(unix_path=socket_path)
    cluster = LocalCluster(frontend=frontend, servers=servers)
    if supervise:
        for address, shard_cfg in zip(addresses, shard_cfgs):
            frontend.register_restarter(
                address.name,
                _local_restarter(cluster, shard_cfg, address.unix_path),
            )
    return cluster
