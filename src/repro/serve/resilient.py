"""A fault-tolerant client for the admission-control service.

:class:`~repro.serve.client.ServeClient` is deliberately thin: one
connection, strict request/reply order, no recovery.  This module layers
the client half of the service's fault-tolerance contract on top of it:

* **Reconnect + hello.**  Every (re)connection re-binds the same durable
  ``client_id`` with ``hello``, reattaching to periods that survived a
  disconnect or a server restart under the lease.  When the client was
  built with ``binary=True``, each re-``hello`` also renegotiates the
  length-prefixed binary framing, so the fast codec survives crashes and
  reconnects instead of silently degrading to NDJSON.
* **Redirect following.**  A cluster front-end (``repro.serve.cluster``)
  may answer ``hello`` with a typed ``REDIRECT`` carrying the address of
  the admission shard this client was placed on.  The client transparently
  re-connects there (bounded hops, counted in :attr:`redirects`); when a
  redirected-to shard later becomes unreachable the client falls back to
  the original front-end address so the placer can re-place it.
* **Idempotent pp_begin.**  Each admission carries a client-generated
  idempotency token.  A reply lost to a dropped connection or a server
  crash is re-issued with the *same* token; the server (and its journal)
  dedupe it, so the demand is charged at most once.
* **Exponential backoff with jitter.**  Transport failures and
  ``RETRY_AFTER`` pushback both back off exponentially (with jitter, so a
  thousand retrying clients do not stampede), floored at the server's
  ``retry_after_s`` hint when one is given.
* **Pipelined transport.**  Replies are matched to requests by ``id`` by a
  background reader task instead of by arrival order, so heartbeats keep
  flowing — and the lease keeps renewing — while a ``pp_begin`` is parked
  on the server.
* **Tolerant pp_end.**  A period the lease reaper already reclaimed (the
  client was silent past the TTL) yields a ``lost`` marker instead of an
  exception, and is counted in :attr:`lost_periods`.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import random
import time
import uuid
from typing import Any, Dict, List, Optional

from ..errors import ProtocolError, ServeError
from . import protocol
from .client import ServeClient, ServeReplyError
from .protocol import ErrorCode

__all__ = ["ResilientServeClient", "backoff_sleep_s"]


def backoff_sleep_s(
    attempt: int,
    base_s: float,
    cap_s: float,
    rng: random.Random,
    floor_s: float = 0.0,
    max_exp: int = 10,
) -> float:
    """Exponential backoff with 25% jitter, floored at ``floor_s``.

    ``floor_s`` carries the server's ``retry_after_s`` hint and is applied
    *after* the ``cap_s`` clamp: the hint is the server's stated minimum
    and must hold as a hard floor even when it exceeds the client's own
    backoff cap (regression-tested in ``tests/serve/test_resilient.py``).
    """
    base = min(base_s * (2 ** min(attempt, max_exp)), cap_s)
    base = max(base, floor_s)
    return base * (1.0 + 0.25 * rng.random())


class ResilientServeClient:
    """Reconnecting, retrying, lease-renewing admission client."""

    def __init__(
        self,
        unix_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        *,
        client_id: Optional[str] = None,
        connect_timeout_s: float = 5.0,
        call_timeout_s: Optional[float] = None,
        begin_timeout_s: Optional[float] = None,
        heartbeat_interval_s: Optional[float] = None,
        max_attempts: int = 8,
        backoff_base_s: float = 0.02,
        backoff_cap_s: float = 1.0,
        retry_admission: bool = True,
        binary: bool = False,
        follow_redirects: bool = True,
        max_redirects: int = 8,
        breaker_threshold: Optional[int] = None,
        breaker_reset_s: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if unix_path is None and (host is None or port is None):
            raise ServeError("need a unix socket path or a TCP host+port")
        self.unix_path = unix_path
        self.host = host
        self.port = port
        #: the address the caller gave us (a shard, or a cluster front-end)
        self._home: Dict[str, Any] = {
            "unix_path": unix_path, "host": host, "port": port,
        }
        #: where we currently connect — diverges from home after a REDIRECT
        self._target: Dict[str, Any] = dict(self._home)
        self.binary = binary
        self.follow_redirects = follow_redirects
        self.max_redirects = max_redirects
        self.client_id = client_id or f"client-{uuid.uuid4().hex[:12]}"
        self.connect_timeout_s = connect_timeout_s
        self.call_timeout_s = call_timeout_s
        self.begin_timeout_s = begin_timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.retry_admission = retry_admission
        self.lease_ttl_s: Optional[float] = None
        #: circuit breaker: after ``breaker_threshold`` consecutive
        #: connect/hello failures, further connection attempts fail fast
        #: for a jittered ``breaker_reset_s``; then one half-open probe
        #: either closes the breaker or re-opens it.  None = disabled.
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_s = breaker_reset_s
        self._breaker_failures = 0
        self._breaker_open_until: Optional[float] = None
        #: fault counters, exposed for reports and tests
        self.reconnects = 0
        self.retries = 0
        self.lost_periods = 0
        self.deduped = 0
        self.redirects = 0
        self.breaker_opens = 0
        self.breaker_fast_fails = 0
        #: client-observed redirect latency: seconds from receiving a
        #: REDIRECT to completing the hello on the shard it named — the
        #: placement-quality number the loadgen report summarizes
        self.redirect_latency_s: List[float] = []
        #: learned peak-demand estimate from the last hello reply; echoed
        #: back as the `hello demand_bytes` cluster placement hint
        self.predicted_demand_bytes: Optional[int] = None
        self._rng = rng if rng is not None else random.Random()
        self._ids = itertools.count(1)
        self._conn: Optional[ServeClient] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._reader_task: Optional[asyncio.Task] = None
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._hb_interval_s: Optional[float] = heartbeat_interval_s
        self._send_lock: Optional[asyncio.Lock] = None
        self._conn_lock: Optional[asyncio.Lock] = None
        self._connected_once = False
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _locks(self) -> None:
        # Locks are created lazily so the constructor needs no event loop.
        if self._send_lock is None:
            self._send_lock = asyncio.Lock()
            self._conn_lock = asyncio.Lock()

    async def connect(self) -> "ResilientServeClient":
        """Establish the first connection (and lease).  Optional — every
        call connects on demand — but useful to fail fast."""
        await self._ensure_connected()
        return self

    async def close(self) -> None:
        """Idempotent shutdown: stops the heartbeat, closes the transport."""
        self._closed = True
        for task in (self._heartbeat_task, self._reader_task):
            if task is not None:
                task.cancel()
        for task in (self._heartbeat_task, self._reader_task):
            if task is not None:
                with contextlib.suppress(asyncio.CancelledError, Exception):
                    await task
        self._heartbeat_task = None
        self._reader_task = None
        conn, self._conn = self._conn, None
        if conn is not None:
            await conn.close()
        self._fail_pending(ServeError("client closed"))

    @property
    def counters(self) -> Dict[str, int]:
        return {
            "reconnects": self.reconnects,
            "retries": self.retries,
            "lost_periods": self.lost_periods,
            "deduped": self.deduped,
            "redirects": self.redirects,
            "breaker_opens": self.breaker_opens,
            "breaker_fast_fails": self.breaker_fast_fails,
        }

    # ------------------------------------------------------------------
    # circuit breaker
    # ------------------------------------------------------------------
    def _breaker_check(self) -> None:
        """Fail fast while the breaker is open; past the reset deadline the
        caller proceeds as the single half-open probe (serialized by the
        connection lock, so exactly one probe is in flight)."""
        if self._breaker_open_until is None:
            return
        if time.monotonic() < self._breaker_open_until:
            self.breaker_fast_fails += 1
            raise ServeError(
                f"circuit breaker open after {self._breaker_failures} "
                f"consecutive connection failures; retry later"
            )
        # Half-open: allow this one attempt through.  Success closes the
        # breaker (_breaker_success); failure re-opens it immediately.
        self._breaker_open_until = None

    def _breaker_failure(self) -> None:
        if self.breaker_threshold is None:
            return
        self._breaker_failures += 1
        if self._breaker_failures >= self.breaker_threshold:
            self.breaker_opens += 1
            # Jittered so a fleet sharing a seed doesn't re-probe in sync.
            self._breaker_open_until = time.monotonic() + (
                self.breaker_reset_s * (1.0 + 0.25 * self._rng.random())
            )

    def _breaker_success(self) -> None:
        self._breaker_failures = 0
        self._breaker_open_until = None

    # ------------------------------------------------------------------
    # connection machinery
    # ------------------------------------------------------------------
    async def _ensure_connected(self) -> ServeClient:
        self._locks()
        async with self._conn_lock:  # type: ignore[union-attr]
            if self._closed:
                raise ServeError("client is closed")
            if self._conn is not None and not self._conn.closed:
                return self._conn
            last_exc: Optional[BaseException] = None
            redirects_left = self.max_redirects
            redirect_t0: Optional[float] = None
            attempt = 0
            while attempt < self.max_attempts:
                self._breaker_check()
                try:
                    conn = await ServeClient.connect(
                        timeout=self.connect_timeout_s, **self._target
                    )
                except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                    self._breaker_failure()
                    last_exc = exc
                    attempt += 1
                    if self._target != self._home:
                        # The shard we were redirected to is unreachable:
                        # fall back to the front-end so the placer can
                        # re-place us on a live shard.
                        self._target = dict(self._home)
                        redirects_left = self.max_redirects
                        redirect_t0 = None
                    await asyncio.sleep(self._backoff(attempt))
                    continue
                if self._connected_once:
                    self.reconnects += 1
                self._connected_once = True
                self._conn = conn
                self._reader_task = asyncio.ensure_future(
                    self._reader_loop(conn)
                )
                # Re-bind the durable identity on every (re)connection, so
                # the lease transfers to this socket and replayed periods
                # reattach.  Binary framing is renegotiated here too — the
                # codec choice is per-connection, so every re-hello must
                # re-request it or a reconnect would silently fall back to
                # NDJSON.
                hello_fields: Dict[str, Any] = {"client": self.client_id}
                if self.binary:
                    hello_fields["binary"] = True
                if self.follow_redirects:
                    hello_fields["redirect"] = True
                if self.predicted_demand_bytes is not None:
                    # placement hint: a demand-aware frontend scores shards
                    # against the learned footprint, not the declared one
                    hello_fields["demand_bytes"] = self.predicted_demand_bytes
                try:
                    hello = await self._roundtrip(
                        conn, "hello", timeout=self.connect_timeout_s,
                        **hello_fields,
                    )
                except (ConnectionError, asyncio.TimeoutError) as exc:
                    await conn.close()
                    self._conn = None
                    self._breaker_failure()
                    last_exc = exc
                    attempt += 1
                    if self._target != self._home:
                        # The redirected-to shard died mid-handshake: fall
                        # back to the front-end for a re-placement, and
                        # give that legitimate re-placement a fresh
                        # redirect budget — without the reset, a client
                        # riding out several shard deaths would exhaust
                        # max_redirects and give up on a healthy cluster.
                        self._target = dict(self._home)
                        redirects_left = self.max_redirects
                        redirect_t0 = None
                    await asyncio.sleep(self._backoff(attempt))
                    continue
                if hello.get("ok"):
                    if redirect_t0 is not None:
                        self.redirect_latency_s.append(
                            time.monotonic() - redirect_t0
                        )
                        redirect_t0 = None
                    self._breaker_success()
                    self.lease_ttl_s = hello.get("lease_ttl_s")
                    hint = hello.get("predicted_demand_bytes")
                    if isinstance(hint, int) and hint > 0:
                        self.predicted_demand_bytes = hint
                    # Keep the lease warm by default: a third of the TTL
                    # unless the caller picked a cadence.
                    interval = self.heartbeat_interval_s
                    if interval is None and self.lease_ttl_s:
                        interval = self.lease_ttl_s / 3.0
                    if interval and self._heartbeat_task is None:
                        self._hb_interval_s = interval
                        self._heartbeat_task = asyncio.ensure_future(
                            self._heartbeat_loop()
                        )
                    return conn
                error = hello.get("error") or {}
                await conn.close()
                self._conn = None
                if (
                    error.get("code") == ErrorCode.REDIRECT
                    and self.follow_redirects
                    and redirects_left > 0
                ):
                    shard = error.get("shard") or {}
                    target = {
                        "unix_path": shard.get("unix_path"),
                        "host": shard.get("host"),
                        "port": shard.get("port"),
                    }
                    if target["unix_path"] is None and (
                        target["host"] is None or target["port"] is None
                    ):
                        raise ServeReplyError(hello)  # unusable redirect
                    redirects_left -= 1
                    self.redirects += 1
                    self._target = target
                    if redirect_t0 is None:
                        redirect_t0 = time.monotonic()
                    continue  # a redirect is progress, not a failed attempt
                raise ServeReplyError(hello)
            raise ServeError(
                f"could not reach the admission server after "
                f"{self.max_attempts} attempts: {last_exc}"
            ) from last_exc

    async def _reader_loop(self, conn: ServeClient) -> None:
        """Dispatch reply frames to their callers by request id.

        The loop owns the connection's encoding state: when the server
        acknowledges a ``hello {binary}``, the very next frame it sends is
        length-prefixed, so the switch must happen here — between two
        reads — not in the caller that sent the hello (which only learns
        of the ack after this loop has already gone back to reading).
        """
        try:
            while True:
                try:
                    buf = await protocol.read_raw_frame(
                        conn.reader, conn.binary
                    )
                except ProtocolError:
                    break  # torn binary frame: the stream is desynchronized
                if not buf:
                    break
                try:
                    reply = protocol.decode_any_frame(buf)
                except ProtocolError:
                    continue  # undecodable reply: skip, id-matching resyncs
                if reply.get("ok") and reply.get("binary") and not conn.binary:
                    conn.binary = True  # hello ack: switch both directions
                future = self._pending.pop(reply.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(reply)
        except (ConnectionError, ValueError, asyncio.CancelledError):
            pass
        finally:
            if self._conn is conn:
                self._conn = None
            with contextlib.suppress(Exception):
                await conn.close()
            self._fail_pending(
                ConnectionResetError("connection to the admission server lost")
            )

    def _fail_pending(self, exc: BaseException) -> None:
        pending, self._pending = dict(self._pending), {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def _roundtrip(
        self,
        conn: ServeClient,
        op: str,
        timeout: Optional[float] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        request_id = next(self._ids)
        frame: Dict[str, Any] = {
            "v": protocol.PROTOCOL_VERSION, "id": request_id, "op": op,
        }
        frame.update(fields)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            async with self._send_lock:  # type: ignore[union-attr]
                if conn.binary:
                    conn.writer.write(protocol.encode_binary_frame(frame))
                else:
                    conn.writer.write(protocol.encode_frame(frame))
                await conn.writer.drain()
            if timeout is not None:
                return await asyncio.wait_for(future, timeout=timeout)
            return await future
        finally:
            self._pending.pop(request_id, None)

    async def _heartbeat_loop(self) -> None:
        """Keep the lease warm, even across reconnects and parked begins.

        Failures are swallowed: a heartbeat that cannot be delivered now
        will be superseded by the next one, and a server push-back frame
        received while parked renews the lease server-side regardless of
        whether this reply ever arrives.
        """
        while not self._closed:
            await asyncio.sleep(self._hb_interval_s)
            with contextlib.suppress(Exception):
                await self.call("heartbeat", timeout=self._hb_interval_s)

    def _backoff(self, attempt: int, floor_s: float = 0.0) -> float:
        """Exponential backoff with 25% jitter, floored at ``floor_s``."""
        return backoff_sleep_s(
            attempt, self.backoff_base_s, self.backoff_cap_s, self._rng,
            floor_s=floor_s,
        )

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    async def call(
        self, op: str, timeout: Optional[float] = None, **fields: Any
    ) -> Dict[str, Any]:
        """One verb with transparent reconnect-and-retry on transport loss.

        Connection failures *and per-attempt timeouts* are retried — the
        frame (token included) is re-sent verbatim, which is safe for every
        verb this client issues.  Silence past the timeout on a live socket
        means the request or its reply was lost (a dropped frame, a
        half-open peer): the connection is desynchronized either way, so it
        is dropped and the call re-issued on a fresh one.  Typed error
        replies raise :class:`~repro.serve.client.ServeReplyError`
        unchanged.
        """
        if timeout is None:
            # pp_begin legitimately parks for long stretches (the park
            # timeout is the server's to enforce), so it gets its own —
            # normally much larger — per-attempt bound.
            timeout = (
                self.begin_timeout_s if op == "pp_begin"
                else self.call_timeout_s
            )
        attempt = 0
        while True:
            conn: Optional[ServeClient] = None
            try:
                conn = await self._ensure_connected()
                reply = await self._roundtrip(conn, op, timeout=timeout, **fields)
            except (
                ConnectionError, asyncio.IncompleteReadError,
                asyncio.TimeoutError,
            ) as exc:
                if isinstance(exc, asyncio.TimeoutError) and conn is not None:
                    if self._conn is conn:
                        self._conn = None
                    with contextlib.suppress(Exception):
                        await conn.close()
                attempt += 1
                self.retries += 1
                if attempt >= self.max_attempts:
                    raise ServeError(
                        f"{op} failed after {attempt} transport retries"
                    ) from exc
                await asyncio.sleep(self._backoff(attempt))
                continue
            if not reply.get("ok"):
                raise ServeReplyError(reply)
            return reply

    async def heartbeat(self) -> Dict[str, Any]:
        return await self.call("heartbeat")

    async def pp_begin(
        self,
        demand_bytes: int,
        reuse: str = "low",
        resource: str = "llc",
        label: str = "",
        sharing_key: Optional[str] = None,
        token: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Idempotent admission: at most one charge per call, ever.

        The generated token makes crash-time re-issue safe; with
        ``retry_admission`` (the default) ``RETRY_AFTER`` pushback is also
        absorbed with exponential backoff floored at the server's hint.
        """
        token = token or uuid.uuid4().hex
        fields: Dict[str, Any] = {
            "resource": resource,
            "demand_bytes": demand_bytes,
            "reuse": reuse,
            "label": label,
            "token": token,
        }
        if sharing_key is not None:
            fields["sharing_key"] = sharing_key
        attempt = 0
        while True:
            try:
                reply = await self.call("pp_begin", timeout=timeout, **fields)
            except ServeReplyError as exc:
                if exc.code == ErrorCode.RETRY_AFTER and self.retry_admission:
                    attempt += 1
                    self.retries += 1
                    await asyncio.sleep(
                        self._backoff(attempt, floor_s=exc.retry_after_s or 0.0)
                    )
                    continue
                raise
            if reply.get("deduped"):
                self.deduped += 1
            return reply

    async def pp_end(
        self,
        pp_id: int,
        timeout: Optional[float] = None,
        observed_bytes: Optional[int] = None,
    ) -> Dict[str, Any]:
        """End a period; tolerate one the lease reaper already reclaimed."""
        fields: Dict[str, Any] = {"pp_id": pp_id}
        if observed_bytes is not None:
            fields["observed_bytes"] = observed_bytes
        try:
            return await self.call("pp_end", timeout=timeout, **fields)
        except ServeReplyError as exc:
            if exc.code == ErrorCode.UNKNOWN_PERIOD:
                # The reaper (or a crash) released it first.  The demand is
                # not charged any more, which is what pp_end is for — note
                # it and move on.
                self.lost_periods += 1
                return {
                    "ok": False,
                    "pp_id": pp_id,
                    "lost": True,
                    "error": exc.reply.get("error"),
                }
            raise

    async def query(self, pp_id: Optional[int] = None) -> Dict[str, Any]:
        if pp_id is None:
            return await self.call("query")
        return await self.call("query", pp_id=pp_id)

    async def stats(self) -> Dict[str, Any]:
        return (await self.call("stats"))["stats"]

    async def drain(self) -> Dict[str, Any]:
        return await self.call("drain")
