"""Energy substrate: component power model and RAPL-style accounting.

The paper measures energy with Intel's Running Average Power Limit (RAPL)
interface, reading the package (CPU + caches) and DRAM domains.  This
package reproduces those observables for the simulated machine: the power
model integrates component power over simulated time and exposes the same
two domains.
"""

from .power import PowerModel, PowerBreakdown
from .rapl import RaplDomain, RaplMeter, RaplSample
from .dvfs import (
    Governor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)

__all__ = [
    "PowerModel",
    "PowerBreakdown",
    "RaplDomain",
    "RaplMeter",
    "RaplSample",
    "Governor",
    "OndemandGovernor",
    "PerformanceGovernor",
    "PowersaveGovernor",
]
