"""RAPL-style energy accounting.

Intel's Running Average Power Limit interface exposes monotonically
increasing energy counters per *domain*.  The paper reads two of them:

* ``package`` — CPU cores + caches + uncore, and
* ``dram`` — the memory DIMMs,

and reports "system" energy as their sum (CPU + cache + DRAM).  This module
reproduces that interface for the simulated machine: the kernel's execution
model calls :meth:`RaplMeter.accrue` as simulated time advances, and
experiment code takes before/after :class:`RaplSample` snapshots exactly
like reading ``/sys/class/powercap`` around a run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..config import PowerConfig
from ..errors import SimulationError
from .power import PowerModel

__all__ = ["RaplDomain", "RaplSample", "RaplMeter"]


class RaplDomain(enum.Enum):
    PACKAGE = "package-0"
    DRAM = "dram"


@dataclass(frozen=True)
class RaplSample:
    """Snapshot of the energy counters at one instant."""

    time_s: float
    package_j: float
    dram_j: float

    @property
    def system_j(self) -> float:
        """CPU + cache + DRAM, the paper's "system" energy."""
        return self.package_j + self.dram_j

    def __sub__(self, earlier: "RaplSample") -> "RaplSample":
        """Energy consumed between two snapshots."""
        return RaplSample(
            time_s=self.time_s - earlier.time_s,
            package_j=self.package_j - earlier.package_j,
            dram_j=self.dram_j - earlier.dram_j,
        )


class RaplMeter:
    """Monotonic per-domain energy counters for the simulated machine."""

    def __init__(self, power: PowerConfig, n_cores: int) -> None:
        self.model = PowerModel(power, n_cores)
        self._package_j = 0.0
        self._dram_j = 0.0
        self._last_time = 0.0

    # ------------------------------------------------------------------
    def accrue(
        self,
        now_s: float,
        n_active_cores: int,
        dram_accesses: float = 0.0,
        context_switches: int = 0,
        freq_scale: float = 1.0,
    ) -> None:
        """Integrate power over the interval since the previous call."""
        dt = now_s - self._last_time
        if dt < -1e-15:
            raise SimulationError(
                f"RAPL accrual moved backwards ({now_s} < {self._last_time})"
            )
        dt = max(0.0, dt)
        self._package_j += self.model.package_energy(dt, n_active_cores, freq_scale)
        self._package_j += self.model.context_switch_energy(context_switches)
        self._dram_j += self.model.dram_energy(dt, dram_accesses)
        self._last_time = now_s

    def add_dram_accesses(self, accesses: float) -> None:
        """Charge access energy outside a time interval (e.g. cache reload)."""
        if accesses < 0:
            raise SimulationError("negative DRAM access count")
        self._dram_j += self.model.config.dram_energy_per_access_j * accesses

    # ------------------------------------------------------------------
    def read(self, domain: RaplDomain) -> float:
        """Read one domain's counter, like ``perf stat -e power/energy-.../``."""
        if domain is RaplDomain.PACKAGE:
            return self._package_j
        if domain is RaplDomain.DRAM:
            return self._dram_j
        raise SimulationError(f"unknown RAPL domain {domain}")

    def sample(self) -> RaplSample:
        return RaplSample(
            time_s=self._last_time,
            package_j=self._package_j,
            dram_j=self._dram_j,
        )
