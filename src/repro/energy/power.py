"""Component power model of the simulated machine.

Package power = static uncore + LLC + per-core active/idle power.
DRAM energy = background power over time + a fixed energy per access.

The absolute figures are calibrated against the Xeon E5-2420's public TDP
(95 W) and typical registered-DDR3 DIMM power; the paper's evaluation only
compares *ratios* between scheduling policies, which this model preserves:
a policy that shortens runtime, idles cores, or cuts DRAM traffic saves
energy in exactly the proportions the physics dictates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PowerConfig
from ..errors import ConfigError

__all__ = ["PowerBreakdown", "PowerModel"]


@dataclass(frozen=True)
class PowerBreakdown:
    """Instantaneous power draw by component, in watts."""

    pkg_static_w: float
    cores_w: float
    llc_w: float
    dram_static_w: float

    @property
    def package_w(self) -> float:
        return self.pkg_static_w + self.cores_w + self.llc_w

    @property
    def total_w(self) -> float:
        return self.package_w + self.dram_static_w


class PowerModel:
    """Maps machine activity to instantaneous power and per-event energy."""

    def __init__(self, config: PowerConfig, n_cores: int) -> None:
        if n_cores <= 0:
            raise ConfigError("n_cores must be positive")
        self.config = config
        self.n_cores = n_cores

    def breakdown(
        self, n_active_cores: int, freq_scale: float = 1.0
    ) -> PowerBreakdown:
        """Power draw with ``n_active_cores`` executing and the rest idle.

        ``freq_scale`` models package DVFS: dynamic core power follows the
        classic ``V²f ∝ f³`` law; static and idle power are unaffected.
        """
        if not 0 <= n_active_cores <= self.n_cores:
            raise ConfigError(
                f"active cores {n_active_cores} out of range 0..{self.n_cores}"
            )
        if not 0.0 < freq_scale <= 1.0:
            raise ConfigError(f"freq_scale must be in (0, 1], got {freq_scale}")
        cfg = self.config
        cores_w = (
            n_active_cores * cfg.core_active_w * freq_scale**3
            + (self.n_cores - n_active_cores) * cfg.core_idle_w
        )
        return PowerBreakdown(
            pkg_static_w=cfg.pkg_static_w,
            cores_w=cores_w,
            llc_w=cfg.llc_w,
            dram_static_w=cfg.dram_static_w,
        )

    def package_energy(
        self, dt_s: float, n_active_cores: int, freq_scale: float = 1.0
    ) -> float:
        """Package-domain energy over an interval (joules)."""
        return self.breakdown(n_active_cores, freq_scale).package_w * dt_s

    def dram_energy(self, dt_s: float, dram_accesses: float) -> float:
        """DRAM-domain energy over an interval (joules)."""
        cfg = self.config
        return cfg.dram_static_w * dt_s + cfg.dram_energy_per_access_j * dram_accesses

    def context_switch_energy(self, n_switches: int) -> float:
        """Package energy spent on ``n_switches`` context switches."""
        return self.config.context_switch_energy_j * n_switches
