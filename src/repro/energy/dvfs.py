"""DVFS frequency governors.

The paper's introduction cites Kambadur & Kim's finding that "effective
parallelization can lead to better energy savings compared to Linux's
frequency tuning algorithms".  To let the reproduction test that claim
directly, this module models package-level dynamic voltage/frequency
scaling: a governor observes core utilization over fixed intervals and
picks a frequency scale; dynamic core power follows the classic ``V²f ∝
f³`` law while memory latency stays fixed (so scaling down hurts
compute-bound code more than memory-bound code).

Governors mirror the classic cpufreq policies:

* :class:`PerformanceGovernor` — pin the maximum frequency,
* :class:`PowersaveGovernor` — pin the minimum,
* :class:`OndemandGovernor` — jump to maximum above a utilization
  threshold, decay proportionally below it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import ConfigError

__all__ = [
    "Governor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "OndemandGovernor",
]


class Governor(ABC):
    """Maps observed utilization to a frequency scale in (0, 1]."""

    name: str = "governor"
    #: governor evaluation period (seconds) — cpufreq's sampling rate
    interval_s: float = 0.010

    @abstractmethod
    def target_scale(self, utilization: float) -> float:
        """Frequency scale for the next interval given the last one's
        utilization (busy core-time / total core-time, in [0, 1])."""

    def _check(self, utilization: float) -> float:
        if not 0.0 <= utilization <= 1.0 + 1e-9:
            raise ConfigError(f"utilization out of range: {utilization}")
        return min(1.0, utilization)


@dataclass
class PerformanceGovernor(Governor):
    """Always run at maximum frequency."""

    name: str = "performance"

    def target_scale(self, utilization: float) -> float:
        self._check(utilization)
        return 1.0


@dataclass
class PowersaveGovernor(Governor):
    """Always run at minimum frequency."""

    min_scale: float = 0.5
    name: str = "powersave"

    def __post_init__(self) -> None:
        if not 0.0 < self.min_scale <= 1.0:
            raise ConfigError("min_scale must be in (0, 1]")

    def target_scale(self, utilization: float) -> float:
        self._check(utilization)
        return self.min_scale


@dataclass
class OndemandGovernor(Governor):
    """cpufreq-ondemand: max frequency when busy, scale down when idle.

    Above ``up_threshold`` utilization the governor requests the maximum
    frequency; below it the frequency tracks utilization down to
    ``min_scale``.
    """

    up_threshold: float = 0.80
    min_scale: float = 0.5
    name: str = "ondemand"

    def __post_init__(self) -> None:
        if not 0.0 < self.min_scale <= 1.0:
            raise ConfigError("min_scale must be in (0, 1]")
        if not 0.0 < self.up_threshold <= 1.0:
            raise ConfigError("up_threshold must be in (0, 1]")

    def target_scale(self, utilization: float) -> float:
        u = self._check(utilization)
        if u >= self.up_threshold:
            return 1.0
        return max(self.min_scale, self.min_scale + (1.0 - self.min_scale) * u / self.up_threshold)
