"""Machine configuration.

The default configuration reproduces Table 1 of the paper:

========================  =========================================
CPU                       Intel(R) Xeon(R) E5-2420, 1.90 GHz, 12 cores
L1 data / instruction     32 KB / 32 KB (private)
L2                        256 KB (private)
L3 (LLC)                  15360 KB (shared)
Main memory               16 GiB
OS                        CentOS 6.6, Linux 4.6.0
========================  =========================================

The power figures are not in the paper; they are calibrated from the public
Xeon E5-2420 TDP (95 W) and typical DDR3 DIMM power so that the energy
*ratios* between scheduling policies — which is what the paper evaluates —
are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigError
from .units import GHZ, gib, kib, ns, us

__all__ = [
    "CacheConfig",
    "MemoryConfig",
    "CpuConfig",
    "PowerConfig",
    "SchedulerConfig",
    "MachineConfig",
    "E5_2420",
    "default_machine_config",
]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    capacity_bytes: int
    line_bytes: int = 64
    associativity: int = 8
    latency_s: float = ns(2.0)
    shared: bool = False

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError(f"{self.name}: capacity must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ConfigError(f"{self.name}: line size must be a power of two")
        if self.capacity_bytes % self.line_bytes:
            raise ConfigError(f"{self.name}: capacity not a multiple of line size")
        n_lines = self.capacity_bytes // self.line_bytes
        if self.associativity <= 0 or n_lines % self.associativity:
            raise ConfigError(f"{self.name}: invalid associativity {self.associativity}")

    @property
    def n_lines(self) -> int:
        return self.capacity_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.associativity


@dataclass(frozen=True)
class MemoryConfig:
    """Main-memory capacity and timing."""

    capacity_bytes: int = gib(16)
    latency_s: float = ns(80.0)
    #: sustained bandwidth — 3-channel DDR3-1333 at ~60 % of peak
    bandwidth_bytes_per_s: float = 19.0e9

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError("memory capacity must be positive")
        if self.latency_s <= 0 or self.bandwidth_bytes_per_s <= 0:
            raise ConfigError("memory timing must be positive")


@dataclass(frozen=True)
class CpuConfig:
    """CPU core count and pipeline parameters."""

    model: str = "Intel(R) Xeon(R) CPU E5-2420"
    n_cores: int = 12
    frequency_hz: float = 1.90 * GHZ
    base_ipc: float = 2.0
    #: fraction of a DRAM miss's latency hidden by out-of-order overlap
    memory_overlap: float = 0.6
    #: double-precision FLOPs retireable per cycle (SSE2/AVX datapath)
    flops_per_cycle: float = 8.0

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ConfigError("core count must be positive")
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        if not 0.0 <= self.memory_overlap < 1.0:
            raise ConfigError("memory_overlap must be in [0, 1)")
        if self.base_ipc <= 0:
            raise ConfigError("base_ipc must be positive")

    @property
    def cycle_s(self) -> float:
        return 1.0 / self.frequency_hz


@dataclass(frozen=True)
class PowerConfig:
    """Component power model (watts / joules-per-event).

    ``package`` power = ``pkg_static_w`` + per-active-core dynamic power +
    LLC power.  DRAM energy = static background power over time plus a fixed
    energy per DRAM access (row activate + burst).
    """

    pkg_static_w: float = 28.0
    core_active_w: float = 5.2
    core_idle_w: float = 0.6
    llc_w: float = 4.0
    dram_static_w: float = 6.0
    dram_energy_per_access_j: float = 42e-9  # ~42 nJ per 64-byte access
    context_switch_energy_j: float = 2.2e-6

    def __post_init__(self) -> None:
        for name in (
            "pkg_static_w",
            "core_active_w",
            "core_idle_w",
            "llc_w",
            "dram_static_w",
            "dram_energy_per_access_j",
            "context_switch_energy_j",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"power parameter {name} must be non-negative")


@dataclass(frozen=True)
class SchedulerConfig:
    """Parameters of the default (CFS-like) OS scheduler substrate."""

    timeslice_s: float = us(6000.0)  # CFS default granularity ballpark
    context_switch_s: float = us(3.0)
    #: direct cost of one pp_begin/pp_end call: trap + predicate + resource
    #: bookkeeping + possible wait-queue round-trip (research prototype; the
    #: paper's own figure 11 implies ~10 us per begin/end pair)
    pp_call_overhead_s: float = us(10.5)
    min_granularity_s: float = us(750.0)
    #: model the figure-1 cold-cache reload after context switches
    #: (disable only for ablation studies)
    model_cache_reload: bool = True

    def __post_init__(self) -> None:
        if self.timeslice_s <= 0:
            raise ConfigError("timeslice must be positive")
        if self.context_switch_s < 0 or self.pp_call_overhead_s < 0:
            raise ConfigError("overheads must be non-negative")


@dataclass(frozen=True)
class MachineConfig:
    """Complete machine description (Table 1 by default)."""

    cpu: CpuConfig = field(default_factory=CpuConfig)
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1-Data", kib(32), latency_s=ns(1.5))
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1-Instruction", kib(32), latency_s=ns(1.5))
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2-Private", kib(256), latency_s=ns(5.5))
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            "L3-Shared", kib(15360), associativity=20, latency_s=ns(16.0), shared=True
        )
    )
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    power: PowerConfig = field(default_factory=PowerConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    os_name: str = "CentOS 6.6, Linux 4.6.0"

    def __post_init__(self) -> None:
        if not self.llc.shared:
            raise ConfigError("the last-level cache must be shared")

    @property
    def llc_capacity(self) -> int:
        """Shared LLC capacity in bytes — the resource RDA manages."""
        return self.llc.capacity_bytes

    @property
    def dram_miss_penalty_s(self) -> float:
        """Additional latency of an LLC miss serviced by DRAM."""
        return self.memory.latency_s

    def describe(self) -> str:
        """Render the configuration as a Table-1-style block."""
        rows = [
            ("CPU", f"{self.cpu.model} {self.cpu.frequency_hz / GHZ:.2f} GHz, "
                    f"{self.cpu.n_cores} Cores"),
            ("L1-Data", f"{self.l1d.capacity_bytes // 1024} KBytes"),
            ("L1-Instruction", f"{self.l1i.capacity_bytes // 1024} KBytes"),
            ("L2-Private", f"{self.l2.capacity_bytes // 1024} KBytes"),
            ("L3-Shared", f"{self.llc.capacity_bytes // 1024} KBytes"),
            ("Main Memory", f"{self.memory.capacity_bytes // (1024 ** 3)} GiB"),
            ("Operating System", self.os_name),
        ]
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)


#: The paper's evaluation machine (Table 1).
E5_2420 = MachineConfig()


def default_machine_config() -> MachineConfig:
    """Return the default machine configuration (the paper's Table 1)."""
    return E5_2420
