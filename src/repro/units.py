"""Unit helpers used throughout the simulator.

All internal quantities use base SI-ish units:

* time      — seconds (float)
* energy    — joules (float)
* capacity  — bytes (int)
* frequency — hertz (float)

These helpers exist so that configuration code reads like the paper
("15360 KBytes", "1.9 GHz") rather than as raw magic numbers.
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "KHZ",
    "MHZ",
    "GHZ",
    "NS",
    "US",
    "MS",
    "kib",
    "mib",
    "gib",
    "khz",
    "mhz",
    "ghz",
    "ns",
    "us",
    "ms",
    "fmt_bytes",
    "fmt_time",
    "fmt_energy",
]

# Multiplicative constants.  Cache and memory sizes in the paper are given in
# binary units (KBytes/MBytes as used by Intel datasheets), so KB/MB/GB here
# are binary (1024-based).
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

NS = 1e-9
US = 1e-6
MS = 1e-3


def kib(n: float) -> int:
    """``n`` kibibytes as an integer byte count."""
    return int(n * KB)


def mib(n: float) -> int:
    """``n`` mebibytes as an integer byte count."""
    return int(n * MB)


def gib(n: float) -> int:
    """``n`` gibibytes as an integer byte count."""
    return int(n * GB)


def khz(n: float) -> float:
    """``n`` kilohertz in hertz."""
    return n * KHZ


def mhz(n: float) -> float:
    """``n`` megahertz in hertz."""
    return n * MHZ


def ghz(n: float) -> float:
    """``n`` gigahertz in hertz."""
    return n * GHZ


def ns(n: float) -> float:
    """``n`` nanoseconds in seconds."""
    return n * NS


def us(n: float) -> float:
    """``n`` microseconds in seconds."""
    return n * US


def ms(n: float) -> float:
    """``n`` milliseconds in seconds."""
    return n * MS


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (binary units)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.4g} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Human-readable duration."""
    if seconds == 0:
        return "0 s"
    if abs(seconds) < US:
        return f"{seconds / NS:.4g} ns"
    if abs(seconds) < MS:
        return f"{seconds / US:.4g} us"
    if abs(seconds) < 1.0:
        return f"{seconds / MS:.4g} ms"
    return f"{seconds:.4g} s"


def fmt_energy(joules: float) -> str:
    """Human-readable energy."""
    if abs(joules) >= 1.0 or joules == 0:
        return f"{joules:.4g} J"
    if abs(joules) >= MS:
        return f"{joules * 1e3:.4g} mJ"
    return f"{joules * 1e6:.4g} uJ"
