"""Data series for every table and figure of the paper's evaluation.

Each ``figure*`` function runs the relevant experiment on the simulated
machine and returns plain data structures (dictionaries keyed like the
paper's figure legends); :mod:`repro.experiments.report` renders them as
text tables.  The benchmarks under ``benchmarks/`` call these functions and
assert the paper's qualitative shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..config import MachineConfig, default_machine_config
from ..core.policy import StrictPolicy
from ..perf.stat import PerfReport
from ..profiler.detect import DetectorConfig, detect_periods
from ..profiler.regression import fit_log_regression, prediction_accuracy
from ..profiler.sampling import sample_windows
from ..sim.kernel import Kernel
from ..workloads.base import Workload
from ..workloads.blas import dgemm_process
from ..workloads.splash2.water_nsquared import interference_workload
from ..workloads.suite import WORKLOAD_NAMES, workload_by_name
from ..workloads import tracegen
from .runner import POLICIES, run_policies

__all__ = [
    "table1_machine",
    "table2_rows",
    "figure1_timeline",
    "figures7to10",
    "figure11_overhead",
    "figure12_wss_prediction",
    "figure13_interference",
    "POLICY_NAMES",
]

POLICY_NAMES = tuple(POLICIES.keys())


# ----------------------------------------------------------------------
# Table 1 / Table 2
# ----------------------------------------------------------------------
def table1_machine(config: Optional[MachineConfig] = None) -> str:
    """Table 1: the machine configuration block."""
    return (config or default_machine_config()).describe()


def table2_rows() -> list[dict]:
    """Table 2: workload inventory (processes, threads, WSS, reuse)."""
    rows = []
    for name in WORKLOAD_NAMES:
        wl = workload_by_name(name)
        pps: dict[str, tuple[float, str]] = {}
        for spec in wl.processes:
            for t in range(spec.n_threads):
                for phase in spec.program_for(t):
                    if phase.pp is not None and phase.name not in pps:
                        pps[phase.name] = (
                            phase.declared_demand() / 1e6,
                            str(phase.declared_reuse()),
                        )
        rows.append(
            {
                "workload": name,
                "n_processes": wl.n_processes,
                "threads_per_proc": wl.processes[0].n_threads,
                "wss_mb": [round(v, 2) for v, _ in pps.values()],
                "reuses": [r for _, r in pps.values()],
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 1: motivating timeline (round robin vs demand aware)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TimelinePoint:
    policy: str
    wall_s: float
    llc_misses: float
    context_switches: float


def figure1_timeline(
    config: Optional[MachineConfig] = None,
    jobs: int = 1,
    cache=None,
) -> Dict[str, TimelinePoint]:
    """The paper's motivating scenario: two cache-hungry processes, one CPU.

    Under round-robin the processes continually reload each other's data
    from memory ("the processes spend extra time and energy by having to
    reload their data from memory into cache"); the demand-aware scheduler
    runs their conflicting durations one after another.  Reported: wall
    time, LLC misses, context switches.
    """
    from dataclasses import replace

    from ..workloads.base import Phase, PpSpec, ProcessSpec
    from ..core.progress_period import ReuseLevel

    base = config or default_machine_config()
    one_core = replace(base, cpu=replace(base.cpu, n_cores=1))
    # Each process wants ~2/3 of the LLC with high reuse; together they
    # thrash it, alone each fits comfortably.
    wss = int(base.llc_capacity * 0.66)
    phase = Phase(
        name="hot-loop",
        instructions=30_000_000,
        flops_per_instr=1.0,
        mem_refs_per_instr=0.4,
        llc_refs_per_memref=0.1,
        wss_bytes=wss,
        reuse=0.92,
        pp=PpSpec(demand_bytes=wss, reuse=ReuseLevel.HIGH),
    )
    proc = ProcessSpec(name="hungry", program=[phase] * 3)
    workload = Workload(name="fig1", processes=[proc] * 2)
    reports = run_policies(workload, config=one_core, jobs=jobs, cache=cache)
    return {
        name: TimelinePoint(
            policy=name,
            wall_s=report.wall_s,
            llc_misses=report.llc_misses,
            context_switches=report.context_switches,
        )
        for name, report in reports.items()
    }


# ----------------------------------------------------------------------
# Figures 7-10: energy / DRAM energy / GFLOPS / GFLOPS-per-watt
# ----------------------------------------------------------------------
def figures7to10(
    workload_names: Sequence[str] = WORKLOAD_NAMES,
    config: Optional[MachineConfig] = None,
    jobs: int = 1,
    cache=None,
    timeout_s: Optional[float] = None,
    progress=None,
) -> Dict[str, Dict[str, PerfReport]]:
    """The main evaluation sweep: every workload under every policy.

    Returns ``{workload: {policy: PerfReport}}``; figures 7, 8, 9 and 10
    are the ``system_j``, ``dram_j``, ``gflops`` and ``gflops_per_watt``
    views of the same data.  The whole (workload × policy) grid is
    scheduled as one batch so ``jobs`` workers stay busy across workload
    boundaries; results are key-for-key independent of ``jobs``.
    """
    from .parallel import RunRequest
    from .runner import _settle_grid

    requests = [
        RunRequest(workload=workload_by_name(name), policy=policy, config=config)
        for name in workload_names
        for policy in POLICIES.values()
    ]
    outcomes = _settle_grid(requests, jobs, cache, timeout_s, progress)
    out: Dict[str, Dict[str, PerfReport]] = {}
    it = iter(outcomes)
    for name in workload_names:
        out[name] = {policy: next(it).report for policy in POLICIES}
    return out


# ----------------------------------------------------------------------
# Figure 11: progress-tracking overhead vs granularity
# ----------------------------------------------------------------------
def figure11_overhead(
    config: Optional[MachineConfig] = None,
    jobs: int = 1,
    cache=None,
    timeout_s: Optional[float] = None,
    progress=None,
) -> Dict[str, PerfReport]:
    """dgemm tracked at the outer / middle / inner loop (1 / 512 / 512²).

    "a single instance of the kernel was the only active user process run
    on the host machine with the strict policy active."
    """
    from .parallel import RunRequest
    from .runner import _settle_grid

    labels = (("outer", 1), ("middle", 512), ("inner", 512 * 512))
    requests = [
        RunRequest(
            workload=Workload(
                name=f"dgemm-{label}", processes=[dgemm_process(subperiods)]
            ),
            policy=StrictPolicy(),
            config=config,
        )
        for label, subperiods in labels
    ]
    outcomes = _settle_grid(requests, jobs, cache, timeout_s, progress)
    return {label: o.report for (label, _), o in zip(labels, outcomes)}


# ----------------------------------------------------------------------
# Figure 12: WSS growth across input scales + log-regression prediction
# ----------------------------------------------------------------------
#: the paper's four input scales per application
WATER_INPUTS = (8000, 15625, 32768, 64000)
OCEAN_INPUTS = (514, 1026, 2050, 4098)

_FIG12_SUBJECTS = (
    ("Wnsq PP1", tracegen.water_pp1_trace, WATER_INPUTS),
    ("Wnsq PP2", tracegen.water_pp2_trace, WATER_INPUTS),
    ("Ocp PP1", tracegen.ocean_pp1_trace, OCEAN_INPUTS),
    ("Ocp PP2", tracegen.ocean_pp2_trace, OCEAN_INPUTS),
)


@dataclass(frozen=True)
class WssPrediction:
    """One curve of figure 12: measured WSS plus the fitted predictor."""

    name: str
    input_sizes: tuple[int, ...]
    measured_mb: tuple[float, ...]
    predicted_mb: tuple[float, ...]
    accuracy: float  # on the held-out fourth input


def figure12_wss_prediction(
    window_instructions: int = 1_000_000,
    n_accesses: int = 2_000_000,
) -> list[WssPrediction]:
    """Profile the top two PPs of water_nsquared and ocean_cp at 1x-8x.

    For each curve, fit ``wss = a + b·ln(input)`` on the first three
    scales and validate on the fourth (the paper's 92/80/95/94 % figures).
    """
    results = []
    for name, generator, inputs in _FIG12_SUBJECTS:
        measured = []
        for n in inputs:
            trace = generator(n, n_accesses=n_accesses)
            profile = sample_windows(trace, window_instructions)
            measured.append(profile.mean_wss_bytes / 1e6)
        reg = fit_log_regression(inputs[:3], measured[:3])
        predicted = tuple(float(reg.predict(n)) for n in inputs)
        accuracy = prediction_accuracy(predicted[3], measured[3])
        results.append(
            WssPrediction(
                name=name,
                input_sizes=tuple(inputs),
                measured_mb=tuple(round(m, 3) for m in measured),
                predicted_mb=tuple(round(p, 3) for p in predicted),
                accuracy=accuracy,
            )
        )
    return results


# ----------------------------------------------------------------------
# Figure 13: LLC interference vs concurrency
# ----------------------------------------------------------------------
FIG13_INPUTS = (512, 3375, 8000, 32768)
FIG13_INSTANCES = (1, 6, 12)


def figure13_interference(
    config: Optional[MachineConfig] = None,
    jobs: int = 1,
    cache=None,
    timeout_s: Optional[float] = None,
    progress=None,
) -> Dict[int, Dict[int, float]]:
    """GFLOPS of N concurrent instances of water_nsquared's largest PP.

    Run under the default policy (the experiment *measures* interference;
    gating it away would hide the effect being studied).
    Returns ``{input_size: {n_instances: gflops}}``.
    """
    from .parallel import RunRequest
    from .runner import _settle_grid

    cells = [(n_mol, n_inst) for n_mol in FIG13_INPUTS for n_inst in FIG13_INSTANCES]
    requests = [
        RunRequest(
            workload=interference_workload(n_mol, n_inst), policy=None, config=config
        )
        for n_mol, n_inst in cells
    ]
    outcomes = _settle_grid(requests, jobs, cache, timeout_s, progress)
    out: Dict[int, Dict[int, float]] = {n_mol: {} for n_mol in FIG13_INPUTS}
    for (n_mol, n_inst), o in zip(cells, outcomes):
        out[n_mol][n_inst] = o.report.gflops
    return out
