"""Text rendering of the paper's tables and figure series.

Keeps formatting out of the experiment logic so benchmarks and examples
print the same rows the paper reports.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..perf.stat import PerfReport
from .figures import WssPrediction
from .metrics import compare_all

__all__ = [
    "render_policy_table",
    "render_figure7",
    "render_figure8",
    "render_figure9",
    "render_figure10",
    "render_figure11",
    "render_figure12",
    "render_figure13",
    "render_comparison_summary",
]


def _metric_table(
    sweep: Mapping[str, Mapping[str, PerfReport]],
    metric: str,
    title: str,
    fmt: str = "{:10.2f}",
) -> str:
    policies = list(next(iter(sweep.values())).keys())
    header = f"{title}\n" + f"{'workload':<11}" + "".join(
        f"{p:>18}" for p in policies
    )
    lines = [header]
    for workload, reports in sweep.items():
        cells = "".join(
            f"{fmt.format(getattr(r, metric)):>18}" for r in reports.values()
        )
        lines.append(f"{workload:<11}" + cells)
    return "\n".join(lines)


def render_policy_table(sweep, metric: str, title: str) -> str:
    """Generic workload × policy table for any PerfReport metric."""
    return _metric_table(sweep, metric, title)


def render_figure7(sweep) -> str:
    """Figure 7: system (CPU + cache + DRAM) energy in joules."""
    return _metric_table(sweep, "system_j", "Figure 7: system energy (J)")


def render_figure8(sweep) -> str:
    """Figure 8: DRAM-only energy in joules."""
    return _metric_table(sweep, "dram_j", "Figure 8: DRAM energy (J)")


def render_figure9(sweep) -> str:
    """Figure 9: attained GFLOPS."""
    return _metric_table(sweep, "gflops", "Figure 9: performance (GFLOPS)")


def render_figure10(sweep) -> str:
    """Figure 10: GFLOPS per watt of system power."""
    return _metric_table(
        sweep, "gflops_per_watt", "Figure 10: GFLOPS per Watt",
    )


def render_figure11(reports: Mapping[str, PerfReport]) -> str:
    """Figure 11: dgemm GFLOPS at each tracking granularity."""
    base = reports["outer"].wall_s
    lines = ["Figure 11: dgemm progress-tracking overhead"]
    for label, r in reports.items():
        overhead = r.wall_s / base - 1.0
        lines.append(
            f"  {label:<7} {r.gflops:7.2f} GFLOPS   wall {r.wall_s * 1e3:8.1f} ms"
            f"   overhead {overhead:+7.1%}"
        )
    return "\n".join(lines)


def render_figure12(curves: Sequence[WssPrediction]) -> str:
    """Figure 12: measured vs predicted WSS across input scales."""
    lines = ["Figure 12: working-set size vs input scale (MB)"]
    for c in curves:
        lines.append(f"  {c.name}")
        lines.append(
            "    input:     " + "".join(f"{n:>10}" for n in c.input_sizes)
        )
        lines.append(
            "    measured:  " + "".join(f"{m:>10.2f}" for m in c.measured_mb)
        )
        lines.append(
            "    predicted: " + "".join(f"{p:>10.2f}" for p in c.predicted_mb)
        )
        lines.append(f"    accuracy on held-out input: {c.accuracy:.0%}")
    return "\n".join(lines)


def render_figure13(grid: Mapping[int, Mapping[int, float]]) -> str:
    """Figure 13: GFLOPS vs concurrent instances per input size."""
    instances = sorted(next(iter(grid.values())).keys())
    lines = [
        "Figure 13: LLC interference (GFLOPS of N concurrent instances)",
        f"{'input':>8}" + "".join(f"{i:>10}" for i in instances),
    ]
    for n_mol, row in grid.items():
        lines.append(
            f"{n_mol:>8}" + "".join(f"{row[i]:>10.2f}" for i in instances)
        )
    return "\n".join(lines)


def render_comparison_summary(sweep) -> str:
    """The §4.2 headline numbers: per-workload policy comparisons."""
    lines = ["Policy comparison vs Linux default"]
    for workload, reports in sweep.items():
        for cmp in compare_all(workload, reports).values():
            lines.append("  " + cmp.describe())
    return "\n".join(lines)
