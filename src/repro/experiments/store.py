"""Persisting experiment results as JSON.

Lets the benchmark harness (or a CI job) record each figure's measured
series and diff later runs against a stored reference — catching model
regressions the way the paper's shape assertions catch gross breakage, but
with full-precision history.

Format: one JSON document per result set::

    {
      "name": "figures7to10",
      "created_unix": 1234.5,          # caller-supplied
      "meta": {...},                   # free-form provenance
      "results": {...}                 # nested dicts/lists of numbers
    }
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Mapping, Optional

from ..errors import ReproError
from ..perf.stat import PerfReport

__all__ = [
    "ResultStore",
    "report_to_dict",
    "report_to_full_dict",
    "report_from_dict",
    "diff_results",
]

#: PerfReport fields persisted for each run
_REPORT_FIELDS = (
    "wall_s",
    "instructions",
    "flops",
    "llc_refs",
    "llc_misses",
    "context_switches",
    "package_j",
    "dram_j",
)


def report_to_dict(report: PerfReport) -> dict[str, float]:
    """Serializable view of a perf report (raw fields + derived metrics)."""
    out = {k: getattr(report, k) for k in _REPORT_FIELDS}
    out["system_j"] = report.system_j
    out["gflops"] = report.gflops
    out["gflops_per_watt"] = report.gflops_per_watt
    return out


def report_to_full_dict(report: PerfReport) -> dict[str, float]:
    """Lossless view of a perf report: every dataclass field, no derived
    metrics.  The exact inverse of :func:`report_from_dict` — this is the
    representation the parallel runner's result cache persists, so the
    round-trip must preserve full float precision (JSON's shortest-repr
    float encoding does)."""
    return {f.name: getattr(report, f.name) for f in fields(PerfReport)}


def report_from_dict(data: Mapping[str, float]) -> PerfReport:
    """Rebuild a :class:`PerfReport` from :func:`report_to_full_dict` output."""
    expected = {f.name for f in fields(PerfReport)}
    got = set(data)
    if got != expected:
        missing, extra = sorted(expected - got), sorted(got - expected)
        raise ReproError(
            f"cannot rebuild PerfReport: missing fields {missing}, "
            f"unexpected fields {extra}"
        )
    return PerfReport(**{k: float(v) for k, v in data.items()})


class ResultStore:
    """A directory of named JSON result documents."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise ReproError(f"invalid result name {name!r}")
        return self.root / f"{name}.json"

    def save(
        self,
        name: str,
        results: Any,
        meta: Optional[Mapping[str, Any]] = None,
        created_unix: float = 0.0,
    ) -> Path:
        """Write a result document; returns the file path."""
        doc = {
            "name": name,
            "created_unix": created_unix,
            "meta": dict(meta or {}),
            "results": results,
        }
        path = self._path(name)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True))
        return path

    def load(self, name: str) -> dict:
        path = self._path(name)
        if not path.exists():
            raise ReproError(f"no stored result named {name!r} in {self.root}")
        return json.loads(path.read_text())

    def exists(self, name: str) -> bool:
        return self._path(name).exists()

    def names(self) -> list[str]:
        return sorted(p.stem for p in self.root.glob("*.json"))


def diff_results(
    reference: Any, candidate: Any, rel_tolerance: float = 0.05, _path: str = ""
) -> list[str]:
    """Recursively compare two result trees; returns human-readable drifts.

    Numbers differing by more than ``rel_tolerance`` (relative to the
    reference, absolute floor 1e-12), missing keys and shape mismatches are
    reported; an empty list means the candidate matches the reference.
    """
    drifts: list[str] = []
    where = _path or "<root>"
    if isinstance(reference, Mapping) and isinstance(candidate, Mapping):
        for key in reference:
            if key not in candidate:
                drifts.append(f"{where}: missing key {key!r}")
            else:
                drifts.extend(
                    diff_results(
                        reference[key], candidate[key], rel_tolerance,
                        f"{where}.{key}",
                    )
                )
        for key in candidate:
            if key not in reference:
                drifts.append(f"{where}: unexpected key {key!r}")
    elif isinstance(reference, (list, tuple)) and isinstance(candidate, (list, tuple)):
        if len(reference) != len(candidate):
            drifts.append(
                f"{where}: length {len(candidate)} != {len(reference)}"
            )
        else:
            for i, (r, c) in enumerate(zip(reference, candidate)):
                drifts.extend(diff_results(r, c, rel_tolerance, f"{where}[{i}]"))
    elif isinstance(reference, (int, float)) and isinstance(candidate, (int, float)):
        scale = max(abs(float(reference)), 1e-12)
        if not math.isclose(
            float(reference), float(candidate), rel_tol=rel_tolerance, abs_tol=1e-12
        ):
            drift = (float(candidate) - float(reference)) / scale
            drifts.append(f"{where}: {candidate!r} vs {reference!r} ({drift:+.1%})")
    elif reference != candidate:
        drifts.append(f"{where}: {candidate!r} != {reference!r}")
    return drifts
