"""Parallel experiment fleet: process fan-out with a content-addressed cache.

The paper's evaluation (§4) is a large grid — workloads × policies ×
jittered repeats × ablation axes — of *independent, deterministic*
simulations.  This module schedules that grid the way the consolidation
schedulers the paper cites schedule jobs: fan the runs out across worker
processes, and never recompute a run whose inputs are already known.

Three pieces:

* :func:`run_key` — a content hash over everything that determines a run's
  result: the workload spec, policy parameters, machine configuration,
  arrival offsets/seed, event budget and sanitize flag.  Two runs with the
  same key produce identical :class:`~repro.perf.stat.PerfReport` values.
* :class:`ResultCache` — a directory (``.repro-cache/`` by default) of one
  JSON document per key.  Re-sweeps and interrupted sweeps resume from it
  instantly; results are written atomically as each run completes.
* :func:`run_grid` — executes a sequence of :class:`RunRequest` across
  worker processes (one process per run, at most ``jobs`` concurrent), with
  a per-run timeout and crashed-worker isolation: a pathological simulation
  surfaces as a structured :class:`RunFailure` record while the rest of the
  grid completes.  ``jobs=1`` executes serially in-process and is
  numerically identical to calling the runner directly.
"""

from __future__ import annotations

import enum
import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Sequence, Union

from ..config import MachineConfig
from ..core.policy import SchedulingPolicy
from ..errors import ReproError
from ..perf.stat import PerfReport
from ..workloads.base import Workload
from .store import report_from_dict, report_to_full_dict

__all__ = [
    "DEFAULT_CACHE_DIR",
    "RunRequest",
    "RunSuccess",
    "RunFailure",
    "RunOutcome",
    "ResultCache",
    "TaskOutcome",
    "fan_out",
    "run_key",
    "run_grid",
    "print_progress",
]

#: default on-disk cache location, relative to the working directory
DEFAULT_CACHE_DIR = ".repro-cache"

#: bump to invalidate every cached result (e.g. after a model change that
#: alters what a given spec simulates to)
CACHE_VERSION = 1


# ----------------------------------------------------------------------
# Run specification + content hash
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunRequest:
    """One cell of an experiment grid.

    Carries everything :func:`~repro.experiments.runner.run_workload_full`
    needs, fully materialized (no factories) so it can be hashed and shipped
    to a worker process.  ``seed`` is provenance for the arrival jitter that
    produced ``arrival_offsets``; both participate in the run key.  ``tag``
    is a caller-side label (e.g. the factor levels of a sweep row) — it does
    *not* affect the key.
    """

    workload: Workload
    policy: Optional[SchedulingPolicy] = None
    config: Optional[MachineConfig] = None
    arrival_offsets: Optional[tuple[float, ...]] = None
    max_events: Optional[int] = 5_000_000
    sanitize: bool = False
    seed: Optional[int] = None
    tag: str = ""

    @property
    def policy_name(self) -> str:
        return self.policy.name if self.policy else "Linux Default"


def _canonical(obj: Any) -> Any:
    """Reduce a spec object to plain JSON-stable data, recursively.

    Dataclasses carry their class name so that two policy types with equal
    parameters hash differently; dict keys are stringified and sorted by
    ``json.dumps(sort_keys=True)`` at encoding time.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        out: Dict[str, Any] = {"__class__": type(obj).__qualname__}
        for f in fields(obj):
            out[f.name] = _canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__qualname__}.{obj.name}"
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise ReproError(
        f"cannot canonicalize {type(obj).__qualname__!r} for run hashing"
    )


def run_key(request: RunRequest) -> str:
    """Content hash identifying a run's result (sha256 hex digest).

    Everything that can change the simulated outcome is hashed: workload
    spec, policy parameters, machine config (``None`` means the committed
    default — hashed as such so changing the default via an explicit config
    still distinguishes), arrival offsets, seed, event budget and sanitize
    flag.  The ``tag`` is excluded: it is presentation, not physics.
    """
    spec = {
        "cache_version": CACHE_VERSION,
        "workload": _canonical(request.workload),
        "policy": _canonical(request.policy),
        "config": _canonical(request.config),
        "arrival_offsets": _canonical(
            list(request.arrival_offsets)
            if request.arrival_offsets is not None
            else None
        ),
        "max_events": request.max_events,
        "sanitize": request.sanitize,
        "seed": request.seed,
    }
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSuccess:
    """A completed run: the perf report, plus where it came from."""

    request: RunRequest
    key: str
    report: PerfReport
    cached: bool = False
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return True


@dataclass(frozen=True)
class RunFailure:
    """A run that did not produce a report.

    ``kind`` is one of ``"error"`` (the simulation raised), ``"crash"``
    (the worker process died — segfault, OOM kill, ...) or ``"timeout"``
    (the per-run wall-clock budget elapsed and the worker was terminated).
    Failures are never cached: a re-sweep retries them.
    """

    request: RunRequest
    key: str
    kind: str
    message: str
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return False

    def describe(self) -> str:
        return (
            f"{self.request.workload.name} under {self.request.policy_name}: "
            f"{self.kind} — {self.message}"
        )


RunOutcome = Union[RunSuccess, RunFailure]


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed store of perf reports: one JSON file per run key.

    Layout: ``<root>/<key[:2]>/<key>.json`` (fan-out subdirectories keep any
    single directory small).  Documents hold the full-precision report from
    :func:`~repro.experiments.store.report_to_full_dict` plus human-oriented
    provenance.  Writes are atomic (tmp file + rename), so an interrupted
    sweep never leaves a torn entry; invalidation is by key construction —
    any change to the spec, machine config or :data:`CACHE_VERSION` yields a
    different key, and stale entries are simply never read again.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[PerfReport]:
        """The cached report for ``key``, or ``None`` (unreadable = miss)."""
        path = self.path(key)
        try:
            doc = json.loads(path.read_text())
            return report_from_dict(doc["report"])
        except (OSError, ValueError, KeyError, ReproError):
            return None

    def put(self, key: str, report: PerfReport, request: RunRequest) -> Path:
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "key": key,
            "cache_version": CACHE_VERSION,
            "workload": request.workload.name,
            "policy": request.policy_name,
            "seed": request.seed,
            "report": report_to_full_dict(report),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True))
        tmp.replace(path)
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))


def _as_cache(cache: Union[ResultCache, str, Path, None]) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _execute(request: RunRequest) -> PerfReport:
    """Run one request to completion in the current process."""
    from .runner import run_workload_full  # deferred: runner imports us

    result = run_workload_full(
        request.workload,
        request.policy,
        config=request.config,
        max_events=request.max_events,
        arrival_offsets=request.arrival_offsets,
        sanitize=request.sanitize,
    )
    return result.report


def _grid_worker(request: RunRequest) -> Dict[str, Any]:
    """Fan-out payload function for one grid cell (runs in a worker).

    Looks ``_execute`` up through the module so test monkeypatches carried
    across a fork are honoured.
    """
    import repro.experiments.parallel as _self

    return report_to_full_dict(_self._execute(request))


# ----------------------------------------------------------------------
# Generic process fan-out (shared by the grid and the fuzz campaign)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskOutcome:
    """How one fanned-out task settled.

    ``status`` is ``"ok"`` (``result`` holds the worker's picklable return
    value), ``"error"`` (the function raised), ``"crash"`` (the worker
    process died), ``"timeout"`` (the per-task budget elapsed and the
    worker was terminated) or ``"skipped"`` (the campaign's stop condition
    fired before the task was launched).
    """

    index: int
    status: str
    result: Any = None
    message: str = ""
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _task_main(conn, worker, payload) -> None:
    """Child-process entry: run one task, ship the result back, exit."""
    try:
        conn.send(("ok", worker(payload)))
    except BaseException as exc:  # noqa: BLE001 — everything becomes a record
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):  # parent gave up on us
            pass
    finally:
        conn.close()


def fan_out(
    worker: Callable[[Any], Any],
    payloads: Sequence[Any],
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
    poll_interval_s: float = 0.01,
    on_settle: Optional[Callable[[TaskOutcome, int], None]] = None,
    stop: Optional[Callable[[], bool]] = None,
) -> list[TaskOutcome]:
    """Run ``worker(payload)`` for each payload across worker processes.

    The execution model the experiment grid pioneered, factored out for any
    independent-task campaign (``run_grid``, the parallel fuzz campaign):
    one process per task — never a reusable pool — so a segfaulting or
    OOM-killed worker takes down only its own task, and a per-task timeout
    is a plain ``terminate()``.  At most ``jobs`` processes are alive at a
    time; results return in payload order.

    Args:
        worker: a module-level callable (it crosses the process boundary);
            its return value must be picklable.
        jobs: concurrent worker processes (``None`` → ``os.cpu_count()``).
        timeout_s: per-task wall-clock budget.
        on_settle: callback ``(outcome, in_flight)`` fired as each task
            settles (out of order), for progress reporting.
        stop: checked before each launch; once it returns True, remaining
            unlaunched tasks settle as ``"skipped"`` (already-running tasks
            finish normally) — how a campaign honours a wall-clock budget.
    """
    payloads = list(payloads)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    ctx = multiprocessing.get_context()
    queue = list(range(len(payloads)))  # indices not yet launched
    running: dict[int, tuple] = {}  # index -> (proc, conn, started_at)
    outcomes: list[Optional[TaskOutcome]] = [None] * len(payloads)

    def launch(index: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_task_main, args=(child_conn, worker, payloads[index]),
            daemon=True,
        )
        proc.start()
        child_conn.close()  # child's end lives in the child now
        running[index] = (proc, parent_conn, time.monotonic())

    def settle(index: int, outcome: TaskOutcome) -> None:
        proc, conn, _ = running.pop(index)
        conn.close()
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover — stuck after sending
            proc.terminate()
            proc.join()
        outcomes[index] = outcome
        if on_settle is not None:
            on_settle(outcome, min(jobs, len(running) + len(queue) + 1))

    try:
        while queue or running:
            while queue and len(running) < jobs:
                index = queue.pop(0)
                if stop is not None and stop():
                    outcomes[index] = TaskOutcome(
                        index, "skipped",
                        message="stop condition reached before launch",
                    )
                    if on_settle is not None:
                        on_settle(outcomes[index], len(running))
                    continue
                launch(index)
            settled_any = False
            for index in list(running):
                proc, conn, started = running[index]
                elapsed = time.monotonic() - started
                if conn.poll():
                    try:
                        status, payload = conn.recv()
                    except (EOFError, OSError):
                        # the child closed its end without a result — it died
                        proc.join(timeout=5.0)
                        status, payload = "crash", (
                            f"worker exited with code {proc.exitcode} "
                            "before reporting a result"
                        )
                    if status == "ok":
                        outcome = TaskOutcome(
                            index, "ok", result=payload, duration_s=elapsed
                        )
                    else:
                        outcome = TaskOutcome(
                            index,
                            "error" if status == "error" else "crash",
                            message=str(payload), duration_s=elapsed,
                        )
                    settle(index, outcome)
                    settled_any = True
                elif not proc.is_alive():
                    settle(index, TaskOutcome(
                        index, "crash",
                        message=f"worker exited with code {proc.exitcode} "
                                "before reporting a result",
                        duration_s=elapsed,
                    ))
                    settled_any = True
                elif timeout_s is not None and elapsed > timeout_s:
                    proc.terminate()
                    settle(index, TaskOutcome(
                        index, "timeout",
                        message=f"exceeded per-task timeout of {timeout_s} s",
                        duration_s=elapsed,
                    ))
                    settled_any = True
            if not settled_any and running:
                time.sleep(poll_interval_s)
    finally:
        for proc, conn, _ in running.values():  # interrupt: leave no orphans
            proc.terminate()
            conn.close()
        for proc, _, _ in running.values():
            proc.join()

    assert all(o is not None for o in outcomes)
    return outcomes  # type: ignore[return-value]


@dataclass(frozen=True)
class ProgressEvent:
    """Snapshot handed to the progress callback after every settled run."""

    done: int
    total: int
    executed: int
    cached: int
    failed: int
    eta_s: Optional[float]
    outcome: RunOutcome


def print_progress(event: ProgressEvent) -> None:
    """Default CLI progress line: counts, the run that settled, and ETA."""
    o = event.outcome
    if isinstance(o, RunSuccess):
        status = "cached " if o.cached else "ran    "
    else:
        status = f"FAILED({o.kind}) "
    eta = f"  eta {event.eta_s:.0f}s" if event.eta_s is not None else ""
    print(
        f"[{event.done}/{event.total}] {status}"
        f"{o.request.workload.name} / {o.request.policy_name}{eta}",
        flush=True,
    )


class _Grid:
    """Mutable bookkeeping for one :func:`run_grid` invocation."""

    def __init__(self, total: int, progress) -> None:
        self.total = total
        self.progress = progress
        self.outcomes: list[Optional[RunOutcome]] = [None] * total
        self.executed = 0
        self.cached = 0
        self.failed = 0
        self.exec_seconds = 0.0

    @property
    def done(self) -> int:
        return self.executed + self.cached + self.failed

    def settle(self, index: int, outcome: RunOutcome, in_flight: int = 0) -> None:
        self.outcomes[index] = outcome
        if not outcome.ok:
            self.failed += 1
        elif outcome.cached:
            self.cached += 1
        else:
            self.executed += 1
            self.exec_seconds += outcome.duration_s
        if self.progress is not None:
            executed_or_failed = self.executed + self.failed
            eta = None
            remaining = self.total - self.done
            if executed_or_failed and remaining:
                per_run = self.exec_seconds / max(self.executed, 1)
                eta = per_run * remaining / max(in_flight, 1)
            self.progress(
                ProgressEvent(
                    done=self.done,
                    total=self.total,
                    executed=self.executed,
                    cached=self.cached,
                    failed=self.failed,
                    eta_s=eta,
                    outcome=outcome,
                )
            )


def run_grid(
    requests: Sequence[RunRequest],
    jobs: Optional[int] = None,
    cache: Union[ResultCache, str, Path, None] = None,
    timeout_s: Optional[float] = None,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    poll_interval_s: float = 0.01,
) -> list[RunOutcome]:
    """Execute a grid of runs; returns one outcome per request, in order.

    Args:
        jobs: worker processes (``None`` → ``os.cpu_count()``).  ``jobs=1``
            runs everything serially in-process — numerically identical to
            the plain runner, and the path the golden traces pin.
        cache: a :class:`ResultCache` or directory path; ``None`` disables
            caching.  Hits skip the simulation entirely; every fresh result
            is persisted the moment it completes, so an interrupted grid
            resumes where it stopped.
        timeout_s: per-run wall-clock budget (parallel mode only — a serial
            run cannot be preempted from within its own process).
        progress: callback fired after every settled run (see
            :class:`ProgressEvent`; :func:`print_progress` is a ready-made
            console reporter).
    """
    requests = list(requests)
    cache = _as_cache(cache)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")

    grid = _Grid(len(requests), progress)
    keys = [run_key(r) for r in requests]

    # Resolve cache hits up front — they cost one file read each and never
    # occupy a worker slot.
    pending: list[int] = []
    for i, (request, key) in enumerate(zip(requests, keys)):
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            grid.settle(i, RunSuccess(request, key, hit, cached=True))
        else:
            pending.append(i)

    if jobs == 1:
        for i in pending:
            _run_serial(grid, requests[i], keys[i], i, cache)
    else:
        _run_fleet(grid, requests, keys, pending, jobs, cache, timeout_s,
                   poll_interval_s)

    assert all(o is not None for o in grid.outcomes)
    return grid.outcomes  # type: ignore[return-value]


def _run_serial(grid: _Grid, request: RunRequest, key: str, index: int,
                cache: Optional[ResultCache]) -> None:
    t0 = time.monotonic()
    try:
        report = _execute(request)
    except Exception as exc:  # noqa: BLE001
        grid.settle(index, RunFailure(
            request, key, kind="error",
            message=f"{type(exc).__name__}: {exc}",
            duration_s=time.monotonic() - t0,
        ))
        return
    if cache is not None:
        cache.put(key, report, request)
    grid.settle(index, RunSuccess(
        request, key, report, cached=False,
        duration_s=time.monotonic() - t0,
    ))


def _run_fleet(grid: _Grid, requests, keys, pending: list[int], jobs: int,
               cache: Optional[ResultCache], timeout_s: Optional[float],
               poll_interval_s: float) -> None:
    """Fan the cache-missed grid cells out over :func:`fan_out` workers."""

    def on_settle(task: TaskOutcome, in_flight: int) -> None:
        index = pending[task.index]
        request, key = requests[index], keys[index]
        if task.ok:
            report = report_from_dict(task.result)
            if cache is not None:
                cache.put(key, report, request)
            outcome: RunOutcome = RunSuccess(
                request, key, report, cached=False, duration_s=task.duration_s
            )
        else:
            outcome = RunFailure(
                request, key, kind=task.status,
                message=task.message, duration_s=task.duration_s,
            )
        grid.settle(index, outcome, in_flight=in_flight)

    fan_out(
        _grid_worker,
        [requests[i] for i in pending],
        jobs=jobs,
        timeout_s=timeout_s,
        poll_interval_s=poll_interval_s,
        on_settle=on_settle,
    )
