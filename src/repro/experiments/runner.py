"""Run a workload under a scheduling policy and measure it with PerfStat.

Mirrors the paper's experimental design (§4.1): each workload is launched,
run to completion on the simulated machine, and measured via the perf/RAPL
analogues.  ``policy=None`` is the "Linux Default" baseline — no extension
is attached and the applications' progress-period annotations are ignored,
exactly as an uninstrumented run on a stock kernel.

The paper repeats each measurement four times and reports averages (2 %
average standard deviation).  The simulation is deterministic, so
:func:`run_repeated` reintroduces the real-world variation source — process
arrival timing — with seeded jitter, and reports mean ± std.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..config import MachineConfig, default_machine_config
from ..core.policy import CompromisePolicy, SchedulingPolicy, StrictPolicy
from ..core.rda import RdaScheduler
from ..errors import ReproError
from ..perf.stat import PerfReport, PerfStat
from ..sim.kernel import Kernel
from ..workloads.base import Workload

__all__ = [
    "POLICIES",
    "RunResult",
    "RepeatedResult",
    "run_workload",
    "run_policies",
    "run_repeated",
]

#: the paper's three scheduling configurations (figure legends)
POLICIES: Dict[str, Optional[SchedulingPolicy]] = {
    "Linux Default": None,
    "RDA: Strict": StrictPolicy(),
    "RDA: Compromise": CompromisePolicy(oversubscription=2.0),
}


@dataclass
class RunResult:
    """Everything measured for one (workload, policy) combination."""

    workload: str
    policy: str
    report: PerfReport
    kernel: Kernel
    scheduler: Optional[RdaScheduler]

    @property
    def sanitizer(self):
        """The kernel's sanitizer, when the run was sanitized (else None)."""
        return self.kernel.sanitizer

    @property
    def wall_s(self) -> float:
        return self.report.wall_s

    @property
    def system_j(self) -> float:
        return self.report.system_j


def run_workload(
    workload: Workload,
    policy: Optional[SchedulingPolicy] = None,
    config: Optional[MachineConfig] = None,
    max_events: Optional[int] = 5_000_000,
    sanitize: bool = False,
) -> PerfReport:
    """Run one workload to completion; returns the perf report."""
    return run_workload_full(
        workload, policy, config, max_events, sanitize=sanitize
    ).report


def run_workload_full(
    workload: Workload,
    policy: Optional[SchedulingPolicy] = None,
    config: Optional[MachineConfig] = None,
    max_events: Optional[int] = 5_000_000,
    arrival_offsets: Optional[Sequence[float]] = None,
    sanitize: bool = False,
) -> RunResult:
    """Like :func:`run_workload` but keeps the kernel for inspection.

    Args:
        arrival_offsets: optional per-process spawn times (seconds); default
            launches everything at t=0.
        sanitize: attach the runtime invariant checker
            (:mod:`repro.sanitizer`); the run raises
            :class:`~repro.errors.SanitizerError` on any violation.
    """
    config = config or default_machine_config()
    scheduler = RdaScheduler(policy=policy, config=config) if policy else None
    kernel = Kernel(config=config, extension=scheduler, sanitize=sanitize)
    stat = PerfStat(kernel)
    if arrival_offsets is None:
        kernel.launch(workload)
    else:
        if len(arrival_offsets) != workload.n_processes:
            raise ValueError("one arrival offset per process required")
        for spec, offset in zip(workload.processes, arrival_offsets):
            kernel.spawn(spec, at=float(offset))
    stat.start()
    kernel.run(max_events=max_events)
    report = stat.stop()
    return RunResult(
        workload=workload.name,
        policy=policy.name if policy else "Linux Default",
        report=report,
        kernel=kernel,
        scheduler=scheduler,
    )


@dataclass(frozen=True)
class RepeatedResult:
    """Mean ± std across repeated, arrival-jittered runs (§4.1 methodology)."""

    workload: str
    policy: str
    reports: tuple[PerfReport, ...]

    def _values(self, metric: str) -> list[float]:
        return [getattr(r, metric) for r in self.reports]

    def mean(self, metric: str) -> float:
        return statistics.fmean(self._values(metric))

    def std(self, metric: str) -> float:
        vals = self._values(metric)
        return statistics.stdev(vals) if len(vals) > 1 else 0.0

    def cv(self, metric: str) -> float:
        """Coefficient of variation (the paper reports ~2 % average)."""
        m = self.mean(metric)
        return self.std(metric) / m if m else 0.0


def _settle_grid(requests, jobs, cache, timeout_s, progress):
    """Run a request grid and return the outcomes, raising if any run failed."""
    from .parallel import run_grid  # deferred: parallel imports this module

    outcomes = run_grid(
        requests, jobs=jobs, cache=cache, timeout_s=timeout_s, progress=progress
    )
    failures = [o for o in outcomes if not o.ok]
    if failures:
        detail = "; ".join(f.describe() for f in failures)
        raise ReproError(f"{len(failures)} run(s) failed: {detail}")
    return outcomes


def run_repeated(
    workload_factory,
    policy: Optional[SchedulingPolicy] = None,
    n_runs: int = 4,
    arrival_jitter_s: float = 2e-3,
    seed: int = 0,
    config: Optional[MachineConfig] = None,
    max_events: Optional[int] = 5_000_000,
    sanitize: bool = False,
    jobs: int = 1,
    cache=None,
    timeout_s: Optional[float] = None,
) -> RepeatedResult:
    """Repeat a measurement with seeded arrival jitter, as the paper's
    methodology repeats each measurement four times.

    Args:
        workload_factory: zero-argument callable building a fresh workload.
        arrival_jitter_s: each process spawns uniformly within this window.
        jobs: worker processes for the repeats (1 = serial in-process).
        cache: optional result cache (see :mod:`repro.experiments.parallel`).
    """
    from .parallel import RunRequest

    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")
    name = policy.name if policy else "Linux Default"
    wl_name = ""
    requests = []
    for run in range(n_runs):
        workload = workload_factory() if callable(workload_factory) else workload_factory
        wl_name = workload.name
        rng = np.random.default_rng(seed + run)
        offsets = rng.uniform(0.0, arrival_jitter_s, workload.n_processes)
        requests.append(
            RunRequest(
                workload=workload,
                policy=policy,
                config=config,
                arrival_offsets=tuple(float(x) for x in offsets),
                max_events=max_events,
                sanitize=sanitize,
                seed=seed + run,
            )
        )
    outcomes = _settle_grid(requests, jobs, cache, timeout_s, progress=None)
    reports = tuple(o.report for o in outcomes)
    return RepeatedResult(workload=wl_name, policy=name, reports=reports)


def run_policies(
    workload_factory,
    config: Optional[MachineConfig] = None,
    policies: Optional[Dict[str, Optional[SchedulingPolicy]]] = None,
    max_events: Optional[int] = 5_000_000,
    sanitize: bool = False,
    jobs: int = 1,
    cache=None,
    timeout_s: Optional[float] = None,
) -> Dict[str, PerfReport]:
    """Run a workload under every policy (fresh workload instance per run).

    Args:
        workload_factory: zero-argument callable building the workload, or a
            :class:`Workload` (reused across runs — safe because workloads
            are immutable blueprints).
        jobs: worker processes for the policy runs (1 = serial in-process).
        cache: optional result cache (see :mod:`repro.experiments.parallel`).
    """
    from .parallel import RunRequest

    policies = POLICIES if policies is None else policies
    requests = []
    for policy in policies.values():
        workload = workload_factory() if callable(workload_factory) else workload_factory
        requests.append(
            RunRequest(
                workload=workload,
                policy=policy,
                config=config,
                max_events=max_events,
                sanitize=sanitize,
            )
        )
    outcomes = _settle_grid(requests, jobs, cache, timeout_s, progress=None)
    return {name: o.report for name, o in zip(policies, outcomes)}
