"""Text chart rendering for the paper's figures.

The environment has no plotting stack, so figures render as Unicode
bar/line charts good enough to eyeball the shapes the paper prints:
grouped bars for figures 7-10 (one group per workload, one bar per
policy), simple bars for figure 11, and multi-series line charts for
figures 12 and 13.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["bar_chart", "grouped_bar_chart", "line_chart"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, vmax: float, width: int) -> str:
    """A horizontal bar of ``width`` cells with eighth-block resolution."""
    if vmax <= 0:
        return ""
    frac = max(0.0, min(1.0, value / vmax))
    cells = frac * width
    full = int(cells)
    rem = int((cells - full) * 8)
    bar = "█" * full
    if rem and full < width:
        bar += _BLOCKS[rem]
    return bar


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
    unit: str = "",
) -> str:
    """One bar per labelled value."""
    if not values:
        return "(no data)"
    vmax = max(values.values())
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for label, v in values.items():
        lines.append(
            f"{label:<{label_w}} |{_bar(v, vmax, width):<{width}}| "
            f"{v:,.2f}{(' ' + unit) if unit else ''}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    width: int = 40,
    unit: str = "",
) -> str:
    """Figure 7-10 style: one group per workload, one bar per policy."""
    if not groups:
        return "(no data)"
    vmax = max(v for g in groups.values() for v in g.values())
    series = list(next(iter(groups.values())).keys())
    label_w = max(len(s) for s in series) + 2
    lines = [title] if title else []
    for group, bars in groups.items():
        lines.append(f"{group}")
        for name in series:
            v = bars[name]
            lines.append(
                f"  {name:<{label_w}} |{_bar(v, vmax, width):<{width}}| "
                f"{v:,.2f}{(' ' + unit) if unit else ''}"
            )
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
    logx: bool = False,
) -> str:
    """Multi-series scatter/line chart on a character grid.

    Each series is a sequence of (x, y) points; series are drawn with
    distinct glyphs and a legend is appended.  ``logx`` spaces the x axis
    logarithmically (figure 12's input scales, figure 13's inputs).
    """
    import math

    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]

    def fx(x: float) -> float:
        return math.log(x) if logx else x

    x_lo, x_hi = min(map(fx, xs)), max(map(fx, xs))
    y_lo, y_hi = 0.0, max(ys) * 1.05 or 1.0
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    glyphs = "ox+*#@%&"
    for glyph, (name, pts) in zip(glyphs, series.items()):
        for x, y in pts:
            col = int((fx(x) - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[max(0, min(height - 1, row))][max(0, min(width - 1, col))] = glyph

    lines = [title] if title else []
    if y_label:
        lines.append(y_label)
    for r, row in enumerate(grid):
        y_val = y_hi - r / (height - 1) * y_span
        prefix = f"{y_val:8.2f} |" if r % 4 == 0 else "         |"
        lines.append(prefix + "".join(row))
    lines.append("         +" + "-" * width)
    if x_label:
        lines.append(f"{'':9} {x_label}{' (log scale)' if logx else ''}")
    legend = "  ".join(
        f"{g}={name}" for g, name in zip(glyphs, series.keys())
    )
    lines.append(f"{'':9} {legend}")
    return "\n".join(lines)
