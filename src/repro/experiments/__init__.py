"""Experiment harness: run (workload × policy) combinations and regenerate
every table and figure of the paper's evaluation section.
"""

from .runner import (
    run_workload,
    run_workload_full,
    run_policies,
    run_repeated,
    RunResult,
    RepeatedResult,
    POLICIES,
)
from .metrics import PolicyComparison, compare, compare_all
from .parallel import (
    ResultCache,
    RunFailure,
    RunRequest,
    RunSuccess,
    run_grid,
    run_key,
)
from .store import (
    ResultStore,
    diff_results,
    report_from_dict,
    report_to_dict,
    report_to_full_dict,
)
from .sweep import sweep, resolve_policy
from .validation import ValidationPoint, validate_hit_rates
from . import charts
from .figures import (
    table1_machine,
    table2_rows,
    figure1_timeline,
    figures7to10,
    figure11_overhead,
    figure12_wss_prediction,
    figure13_interference,
)
from . import report

__all__ = [
    "run_workload",
    "run_workload_full",
    "run_policies",
    "run_repeated",
    "RunResult",
    "RepeatedResult",
    "POLICIES",
    "ResultStore",
    "ResultCache",
    "RunRequest",
    "RunSuccess",
    "RunFailure",
    "run_grid",
    "run_key",
    "diff_results",
    "report_to_dict",
    "report_to_full_dict",
    "report_from_dict",
    "sweep",
    "resolve_policy",
    "ValidationPoint",
    "validate_hit_rates",
    "charts",
    "PolicyComparison",
    "compare",
    "compare_all",
    "table1_machine",
    "table2_rows",
    "figure1_timeline",
    "figures7to10",
    "figure11_overhead",
    "figure12_wss_prediction",
    "figure13_interference",
    "report",
]
