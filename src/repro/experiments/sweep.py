"""Generic parameter-sweep harness.

Runs a cartesian product of factor levels through the simulator and
returns tidy rows — the structure a downstream user needs for their own
design-space studies (the kind the paper's §4 performs by hand).

Example::

    from repro.experiments.sweep import sweep
    from repro.workloads.splash2 import water_nsquared_workload

    rows = sweep(
        workload=lambda input_scale: water_nsquared_workload(
            input_scale=input_scale
        ),
        factors={
            "policy": ["default", "strict", "compromise"],
            "input_scale": [1.0, 2.0],
        },
    )
    for r in rows:
        print(r["policy"], r["input_scale"], r["gflops"], r["system_j"])
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Mapping, Optional, Sequence

from ..config import MachineConfig
from ..core.policy import CompromisePolicy, SchedulingPolicy, StrictPolicy
from ..errors import ReproError
from ..workloads.base import Workload
from .runner import run_workload
from .store import report_to_dict

__all__ = ["sweep", "resolve_policy"]

_POLICY_SHORTHAND = {
    "default": None,
    "strict": StrictPolicy(),
    "compromise": CompromisePolicy(),
}


def resolve_policy(value) -> Optional[SchedulingPolicy]:
    """Accept policy objects, None, or the shorthand strings."""
    if value is None or isinstance(value, SchedulingPolicy):
        return value
    if isinstance(value, str) and value in _POLICY_SHORTHAND:
        return _POLICY_SHORTHAND[value]
    raise ReproError(
        f"unknown policy {value!r}; expected a SchedulingPolicy, None, or "
        f"one of {sorted(_POLICY_SHORTHAND)}"
    )


def sweep(
    workload: Callable[..., Workload],
    factors: Mapping[str, Sequence[Any]],
    config: Optional[MachineConfig] = None,
    extra_metrics: Optional[
        Mapping[str, Callable[..., float]]
    ] = None,
) -> list[Dict[str, Any]]:
    """Run every combination of factor levels; return one row per run.

    Args:
        workload: called with every factor except ``policy`` as keyword
            arguments; must return a fresh :class:`Workload`.
        factors: factor name → levels.  The special factor ``policy``
            selects the scheduler (shorthand strings accepted) and is not
            passed to the workload builder.
        extra_metrics: name → ``f(report)`` computed per row.

    Returns rows containing the factor levels plus every
    :func:`~repro.experiments.store.report_to_dict` metric.
    """
    if not factors:
        raise ReproError("at least one factor required")
    names = list(factors.keys())
    rows: list[Dict[str, Any]] = []
    for combo in itertools.product(*(factors[n] for n in names)):
        level = dict(zip(names, combo))
        policy = resolve_policy(level.get("policy"))
        kwargs = {k: v for k, v in level.items() if k != "policy"}
        wl = workload(**kwargs)
        report = run_workload(wl, policy, config=config)
        row: Dict[str, Any] = dict(level)
        row["workload"] = wl.name
        row.update(report_to_dict(report))
        for metric, fn in (extra_metrics or {}).items():
            row[metric] = fn(report)
        rows.append(row)
    return rows
