"""Generic parameter-sweep harness.

Runs a cartesian product of factor levels through the simulator and
returns tidy rows — the structure a downstream user needs for their own
design-space studies (the kind the paper's §4 performs by hand).

Example::

    from repro.experiments.sweep import sweep
    from repro.workloads.splash2 import water_nsquared_workload

    rows = sweep(
        workload=lambda input_scale: water_nsquared_workload(
            input_scale=input_scale
        ),
        factors={
            "policy": ["default", "strict", "compromise"],
            "input_scale": [1.0, 2.0],
        },
    )
    for r in rows:
        print(r["policy"], r["input_scale"], r["gflops"], r["system_j"])
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Mapping, Optional, Sequence

from ..config import MachineConfig
from ..core.policy import CompromisePolicy, SchedulingPolicy, StrictPolicy
from ..errors import ReproError
from ..workloads.base import Workload
from .store import report_to_dict

__all__ = ["sweep", "resolve_policy"]

_POLICY_SHORTHAND = {
    "default": None,
    "strict": StrictPolicy(),
    "compromise": CompromisePolicy(),
}


def resolve_policy(value) -> Optional[SchedulingPolicy]:
    """Accept policy objects, None, or the shorthand strings."""
    if value is None or isinstance(value, SchedulingPolicy):
        return value
    if isinstance(value, str) and value in _POLICY_SHORTHAND:
        return _POLICY_SHORTHAND[value]
    raise ReproError(
        f"unknown policy {value!r}; expected a SchedulingPolicy, None, or "
        f"one of {sorted(_POLICY_SHORTHAND)}"
    )


def sweep(
    workload: Callable[..., Workload],
    factors: Mapping[str, Sequence[Any]],
    config: Optional[MachineConfig] = None,
    extra_metrics: Optional[
        Mapping[str, Callable[..., float]]
    ] = None,
    jobs: int = 1,
    cache=None,
    timeout_s: Optional[float] = None,
    progress=None,
) -> list[Dict[str, Any]]:
    """Run every combination of factor levels; return one row per run.

    Args:
        workload: called with every factor except ``policy`` as keyword
            arguments; must return a fresh :class:`Workload`.
        factors: factor name → levels.  The special factor ``policy``
            selects the scheduler (shorthand strings accepted) and is not
            passed to the workload builder.
        extra_metrics: name → ``f(report)`` computed per row.
        jobs: worker processes executing the grid (1 = serial in-process,
            identical results to any other job count — runs are independent
            and deterministic).
        cache: optional result cache directory or
            :class:`~repro.experiments.parallel.ResultCache`.
        timeout_s: per-run wall-clock budget (parallel mode).
        progress: per-settled-run callback
            (:class:`~repro.experiments.parallel.ProgressEvent`).

    Returns rows containing the factor levels plus every
    :func:`~repro.experiments.store.report_to_dict` metric.
    """
    from .parallel import RunRequest
    from .runner import _settle_grid

    if not factors:
        raise ReproError("at least one factor required")
    names = list(factors.keys())
    levels: list[Dict[str, Any]] = []
    requests: list[RunRequest] = []
    for combo in itertools.product(*(factors[n] for n in names)):
        level = dict(zip(names, combo))
        policy = resolve_policy(level.get("policy"))
        kwargs = {k: v for k, v in level.items() if k != "policy"}
        wl = workload(**kwargs)
        levels.append(level)
        requests.append(
            RunRequest(workload=wl, policy=policy, config=config, tag=repr(level))
        )
    outcomes = _settle_grid(requests, jobs, cache, timeout_s, progress)
    rows: list[Dict[str, Any]] = []
    for level, request, outcome in zip(levels, requests, outcomes):
        row: Dict[str, Any] = dict(level)
        row["workload"] = request.workload.name
        row.update(report_to_dict(outcome.report))
        for metric, fn in (extra_metrics or {}).items():
            row[metric] = fn(outcome.report)
        rows.append(row)
    return rows
