"""Cross-validation of the analytical LLC model against trace simulation.

The analytical contention model (DESIGN.md §5) drives every timing and
energy number; the trace-driven set-associative simulator is ground truth
for what LRU hardware does.  This module sweeps the oversubscription ratio
``W/C`` and measures, for each point,

* the trace simulator's hit rate for co-running loops of equal working
  sets, and
* the analytical hot fraction ``(share/wss) ** γ``,

so their agreement (and the γ=1 model's disagreement) can be seen and
asserted.  Used by ``benchmarks/bench_model_validation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import CacheConfig
from ..mem.cache import Cache
from ..mem.contention import LlcDemand, SharedLlcModel

__all__ = ["ValidationPoint", "validate_hit_rates"]


@dataclass(frozen=True)
class ValidationPoint:
    """One oversubscription ratio's measured vs predicted hit rates."""

    oversubscription: float  # total demand / capacity
    n_streams: int
    measured_hit_rate: float
    predicted_gamma: float  # committed model (gamma as configured)
    predicted_linear: float  # gamma = 1 (proportional)


def _loop_trace(wss_bytes: int, sweeps: int, base: int, line: int = 64) -> np.ndarray:
    lines = max(1, wss_bytes // line)
    one = np.arange(lines, dtype=np.int64) * line + base
    return np.tile(one, sweeps)


def _interleave(traces: Sequence[np.ndarray]) -> np.ndarray:
    n = min(len(t) for t in traces)
    return np.stack([t[:n] for t in traces], axis=1).reshape(-1)


def validate_hit_rates(
    ratios: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 3.0),
    n_streams: int = 2,
    capacity_bytes: int = 64 * 1024,
    gamma: float = 2.0,
    sweeps: int = 24,
) -> list[ValidationPoint]:
    """Measure and predict per-stream hit rates across W/C ratios.

    Each point co-runs ``n_streams`` identical cyclic loops whose combined
    working set is ``ratio × capacity``; the subject stream's steady-state
    hit rate is measured after a warm-up quarter of the merged trace.
    """
    points = []
    for ratio in ratios:
        wss = int(capacity_bytes * ratio / n_streams)
        cache = Cache(
            CacheConfig("val", capacity_bytes, associativity=16, shared=True)
        )
        traces = [
            _loop_trace(wss, sweeps, base=(k << 34)) for k in range(n_streams)
        ]
        merged = _interleave(traces)
        split = len(merged) // 4
        cache.access_trace(merged[:split])
        hits = misses = 0
        for i, addr in enumerate(merged[split:]):
            hit = cache.access(int(addr))
            if i % n_streams == 0:
                if hit:
                    hits += 1
                else:
                    misses += 1
        measured = hits / max(1, hits + misses)
        demand = LlcDemand(wss_bytes=wss, reuse=1.0)
        others = [demand] * (n_streams - 1)
        h_gamma = SharedLlcModel(capacity_bytes, gamma=gamma).hot_fraction(
            demand, others
        )
        h_linear = SharedLlcModel(capacity_bytes, gamma=1.0).hot_fraction(
            demand, others
        )
        points.append(
            ValidationPoint(
                oversubscription=ratio,
                n_streams=n_streams,
                measured_hit_rate=measured,
                predicted_gamma=h_gamma,
                predicted_linear=h_linear,
            )
        )
    return points
