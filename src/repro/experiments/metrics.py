"""Derived comparisons between scheduling policies.

The paper reports each RDA configuration *relative to the Linux default*:
speedup (GFLOPS ratio), system-energy decrease, DRAM-energy decrease and
energy-efficiency (GFLOPS/W) increase.  :func:`compare` computes those from
two :class:`~repro.perf.stat.PerfReport` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..perf.stat import PerfReport

__all__ = ["PolicyComparison", "compare", "compare_all"]


@dataclass(frozen=True)
class PolicyComparison:
    """One RDA configuration measured against the default baseline."""

    workload: str
    policy: str
    speedup: float  # GFLOPS ratio (also makespan ratio for fixed work)
    system_energy_ratio: float  # policy / default (0.52 = 48 % decrease)
    dram_energy_ratio: float
    efficiency_gain: float  # GFLOPS/W ratio

    @property
    def system_energy_decrease(self) -> float:
        """Fractional decrease in system energy (positive = saved energy)."""
        return 1.0 - self.system_energy_ratio

    @property
    def dram_energy_decrease(self) -> float:
        return 1.0 - self.dram_energy_ratio

    def describe(self) -> str:
        return (
            f"{self.workload:<10} {self.policy:<16} "
            f"speedup={self.speedup:5.2f}x  "
            f"energy={self.system_energy_decrease:+6.1%}  "
            f"dram={self.dram_energy_decrease:+6.1%}  "
            f"gflops/W={self.efficiency_gain:5.2f}x"
        )


def compare(
    workload: str, policy: str, baseline: PerfReport, candidate: PerfReport
) -> PolicyComparison:
    """Compare one policy's report against the default baseline."""
    return PolicyComparison(
        workload=workload,
        policy=policy,
        speedup=_ratio(candidate.gflops, baseline.gflops, candidate, baseline),
        system_energy_ratio=candidate.system_j / baseline.system_j,
        dram_energy_ratio=candidate.dram_j / baseline.dram_j,
        efficiency_gain=candidate.gflops_per_watt / baseline.gflops_per_watt
        if baseline.gflops_per_watt > 0
        else float("nan"),
    )


def _ratio(
    c_gflops: float, b_gflops: float, candidate: PerfReport, baseline: PerfReport
) -> float:
    """GFLOPS ratio; falls back to inverse-runtime for FLOP-free workloads."""
    if b_gflops > 0 and c_gflops > 0:
        return c_gflops / b_gflops
    return baseline.wall_s / candidate.wall_s


def compare_all(
    workload: str, reports: Mapping[str, PerfReport], baseline_name: str = "Linux Default"
) -> Dict[str, PolicyComparison]:
    """Compare every non-baseline policy in ``reports`` to the baseline."""
    baseline = reports[baseline_name]
    return {
        name: compare(workload, name, baseline, report)
        for name, report in reports.items()
        if name != baseline_name
    }
