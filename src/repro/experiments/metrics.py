"""Derived comparisons between scheduling policies, and shared statistics.

The paper reports each RDA configuration *relative to the Linux default*:
speedup (GFLOPS ratio), system-energy decrease, DRAM-energy decrease and
energy-efficiency (GFLOPS/W) increase.  :func:`compare` computes those from
two :class:`~repro.perf.stat.PerfReport` objects.

The percentile helpers at the bottom are shared by every latency-shaped
report in the repository: the online admission service's histograms
(:mod:`repro.serve.metrics`) and the load generator's client-side latency
summaries (:mod:`repro.serve.loadgen`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from ..perf.stat import PerfReport

__all__ = [
    "PolicyComparison",
    "compare",
    "compare_all",
    "percentile",
    "LatencySummary",
    "summarize_samples",
]


@dataclass(frozen=True)
class PolicyComparison:
    """One RDA configuration measured against the default baseline."""

    workload: str
    policy: str
    speedup: float  # GFLOPS ratio (also makespan ratio for fixed work)
    system_energy_ratio: float  # policy / default (0.52 = 48 % decrease)
    dram_energy_ratio: float
    efficiency_gain: float  # GFLOPS/W ratio

    @property
    def system_energy_decrease(self) -> float:
        """Fractional decrease in system energy (positive = saved energy)."""
        return 1.0 - self.system_energy_ratio

    @property
    def dram_energy_decrease(self) -> float:
        return 1.0 - self.dram_energy_ratio

    def describe(self) -> str:
        return (
            f"{self.workload:<10} {self.policy:<16} "
            f"speedup={self.speedup:5.2f}x  "
            f"energy={self.system_energy_decrease:+6.1%}  "
            f"dram={self.dram_energy_decrease:+6.1%}  "
            f"gflops/W={self.efficiency_gain:5.2f}x"
        )


def compare(
    workload: str, policy: str, baseline: PerfReport, candidate: PerfReport
) -> PolicyComparison:
    """Compare one policy's report against the default baseline."""
    return PolicyComparison(
        workload=workload,
        policy=policy,
        speedup=_ratio(candidate.gflops, baseline.gflops, candidate, baseline),
        system_energy_ratio=candidate.system_j / baseline.system_j,
        dram_energy_ratio=candidate.dram_j / baseline.dram_j,
        efficiency_gain=candidate.gflops_per_watt / baseline.gflops_per_watt
        if baseline.gflops_per_watt > 0
        else float("nan"),
    )


def _ratio(
    c_gflops: float, b_gflops: float, candidate: PerfReport, baseline: PerfReport
) -> float:
    """GFLOPS ratio; falls back to inverse-runtime for FLOP-free workloads."""
    if b_gflops > 0 and c_gflops > 0:
        return c_gflops / b_gflops
    return baseline.wall_s / candidate.wall_s


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100) with linear interpolation.

    Matches numpy's default ("linear") definition without requiring the
    input to be a numpy array; an empty sample set yields ``nan``.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not samples:
        return math.nan
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


@dataclass(frozen=True)
class LatencySummary:
    """Count / mean / tail percentiles of one latency-like sample set."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    def describe(self, unit: str = "s", scale: float = 1.0) -> str:
        if self.count == 0:
            return "no samples"
        return (
            f"n={self.count}  mean={self.mean * scale:.3f}{unit}  "
            f"p50={self.p50 * scale:.3f}{unit}  p90={self.p90 * scale:.3f}{unit}  "
            f"p99={self.p99 * scale:.3f}{unit}  max={self.max * scale:.3f}{unit}"
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.max,
        }


def summarize_samples(samples: Sequence[float]) -> LatencySummary:
    """Build a :class:`LatencySummary` (all-``nan`` stats when empty)."""
    if not samples:
        return LatencySummary(0, math.nan, math.nan, math.nan, math.nan, math.nan)
    ordered = sorted(samples)
    return LatencySummary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        p50=percentile(ordered, 50.0),
        p90=percentile(ordered, 90.0),
        p99=percentile(ordered, 99.0),
        max=float(ordered[-1]),
    )


def compare_all(
    workload: str, reports: Mapping[str, PerfReport], baseline_name: str = "Linux Default"
) -> Dict[str, PolicyComparison]:
    """Compare every non-baseline policy in ``reports`` to the baseline."""
    baseline = reports[baseline_name]
    return {
        name: compare(workload, name, baseline, report)
        for name, report in reports.items()
        if name != baseline_name
    }
