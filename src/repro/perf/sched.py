"""``perf sched``-style analysis of a kernel trace.

Builds per-thread scheduling statistics from a
:class:`repro.sim.tracing.KernelTracer` the way ``perf sched latency``
summarizes a recorded trace: runtime, number of switches, and for
demand-aware runs the time spent parked on the resource waitlist — the
quantity the paper's scheduling predicate trades against cache efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sim.tracing import KernelTracer, TraceKind

__all__ = ["ThreadSchedStats", "SchedReport", "analyze_trace"]


@dataclass
class ThreadSchedStats:
    """Scheduling behaviour of one thread over a traced run."""

    tid: int
    dispatches: int = 0
    preemptions: int = 0
    pp_denials: int = 0
    pp_wait_s: float = 0.0
    barrier_waits: int = 0
    barrier_wait_s: float = 0.0
    first_dispatch_s: Optional[float] = None
    exit_s: Optional[float] = None


@dataclass
class SchedReport:
    """Whole-trace summary."""

    threads: Dict[int, ThreadSchedStats]

    @property
    def total_dispatches(self) -> int:
        return sum(t.dispatches for t in self.threads.values())

    @property
    def total_pp_wait_s(self) -> float:
        return sum(t.pp_wait_s for t in self.threads.values())

    @property
    def max_pp_wait_s(self) -> float:
        return max((t.pp_wait_s for t in self.threads.values()), default=0.0)

    def describe(self, top: int = 10) -> str:
        """perf-sched-latency-style table, longest PP waiters first."""
        rows = sorted(
            self.threads.values(), key=lambda t: t.pp_wait_s, reverse=True
        )[:top]
        lines = [
            f"{'tid':>6} {'dispatches':>10} {'preempts':>8} "
            f"{'pp-denials':>10} {'pp-wait(ms)':>12} {'barrier(ms)':>12}"
        ]
        for t in rows:
            lines.append(
                f"{t.tid:>6} {t.dispatches:>10} {t.preemptions:>8} "
                f"{t.pp_denials:>10} {t.pp_wait_s * 1e3:>12.2f} "
                f"{t.barrier_wait_s * 1e3:>12.2f}"
            )
        lines.append(
            f"total: {self.total_dispatches} dispatches, "
            f"{self.total_pp_wait_s * 1e3:.2f} ms aggregate pp-wait"
        )
        return "\n".join(lines)


def analyze_trace(tracer: KernelTracer) -> SchedReport:
    """Fold a kernel trace into per-thread scheduling statistics."""
    threads: Dict[int, ThreadSchedStats] = {}
    pending_deny: Dict[int, float] = {}
    pending_barrier: Dict[int, float] = {}

    def stats(tid: int) -> ThreadSchedStats:
        if tid not in threads:
            threads[tid] = ThreadSchedStats(tid=tid)
        return threads[tid]

    for e in tracer.events:
        s = stats(e.tid)
        if e.kind is TraceKind.DISPATCH:
            s.dispatches += 1
            if s.first_dispatch_s is None:
                s.first_dispatch_s = e.time_s
        elif e.kind is TraceKind.PREEMPT:
            s.preemptions += 1
        elif e.kind is TraceKind.PP_DENY:
            s.pp_denials += 1
            pending_deny[e.tid] = e.time_s
        elif e.kind is TraceKind.PP_WAKE:
            start = pending_deny.pop(e.tid, None)
            if start is not None:
                s.pp_wait_s += e.time_s - start
        elif e.kind is TraceKind.BARRIER_WAIT:
            s.barrier_waits += 1
            pending_barrier[e.tid] = e.time_s
        elif e.kind is TraceKind.BARRIER_RELEASE:
            start = pending_barrier.pop(e.tid, None)
            if start is not None:
                s.barrier_wait_s += e.time_s - start
        elif e.kind is TraceKind.EXIT:
            s.exit_s = e.time_s
    return SchedReport(threads=threads)
