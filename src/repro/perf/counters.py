"""Hardware-counter emulation.

A :class:`CounterSet` is the machine-wide bank of counters the execution
model increments; experiment code snapshots it before and after a region of
interest, like programming PMU events around a workload.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from ..errors import SimulationError

__all__ = ["HwCounter", "CounterSet"]


class HwCounter(enum.Enum):
    """Counter identifiers, named after their perf event analogues."""

    INSTRUCTIONS = "instructions"
    CYCLES = "cycles"
    FP_OPS = "fp_arith_inst_retired"  # FLOPs retired
    LLC_REFERENCES = "LLC-loads"  # accesses reaching the shared LLC
    LLC_MISSES = "LLC-load-misses"  # accesses serviced by DRAM
    CONTEXT_SWITCHES = "context-switches"
    MIGRATIONS = "cpu-migrations"
    PP_BEGIN_CALLS = "pp:begin"  # software events of the RDA extension
    PP_END_CALLS = "pp:end"
    PP_DENIALS = "pp:denied"


@dataclass
class CounterSnapshot:
    """Immutable copy of all counters at one instant."""

    values: Dict[HwCounter, float]

    def __getitem__(self, counter: HwCounter) -> float:
        return self.values.get(counter, 0.0)

    def __sub__(self, earlier: "CounterSnapshot") -> "CounterSnapshot":
        return CounterSnapshot(
            {c: self[c] - earlier[c] for c in HwCounter}
        )


class CounterSet:
    """Monotonic machine-wide counters."""

    def __init__(self) -> None:
        self._values: Dict[HwCounter, float] = {c: 0.0 for c in HwCounter}

    def add(self, counter: HwCounter, amount: float) -> None:
        if amount < 0:
            raise SimulationError(f"counter {counter} decremented by {amount}")
        self._values[counter] += amount

    def read(self, counter: HwCounter) -> float:
        return self._values[counter]

    def snapshot(self) -> CounterSnapshot:
        return CounterSnapshot(dict(self._values))
