"""``perf stat``-style measurement sessions over the simulated machine.

The paper measures each workload by wrapping its execution in ``perf`` and
reading FLOP counters plus the RAPL package and DRAM energy domains.
:class:`PerfStat` does the same against a :class:`repro.sim.kernel.Kernel`:
snapshot at start, snapshot at stop, report the difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..energy.rapl import RaplSample
from ..errors import SimulationError
from .counters import CounterSnapshot, HwCounter

__all__ = ["PerfReport", "PerfStat"]


@dataclass(frozen=True)
class PerfReport:
    """Everything the paper reports for one (workload, policy) run."""

    wall_s: float
    instructions: float
    cycles: float
    flops: float
    llc_refs: float
    llc_misses: float
    context_switches: float
    pp_begin_calls: float
    pp_denials: float
    package_j: float
    dram_j: float

    # ----- derived metrics (the paper's figures 7-10) -----------------
    @property
    def system_j(self) -> float:
        """Figure 7: energy of CPU + cache + DRAM."""
        return self.package_j + self.dram_j

    @property
    def gflops(self) -> float:
        """Figure 9: attained GFLOPS over the run."""
        return self.flops / self.wall_s / 1e9 if self.wall_s > 0 else 0.0

    @property
    def gflops_per_watt(self) -> float:
        """Figure 10: total FLOPs divided by total system energy."""
        return self.flops / self.system_j / 1e9 if self.system_j > 0 else 0.0

    @property
    def avg_system_power_w(self) -> float:
        return self.system_j / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    @property
    def llc_miss_ratio(self) -> float:
        return self.llc_misses / self.llc_refs if self.llc_refs > 0 else 0.0

    def describe(self) -> str:
        """perf-stat-like text block."""
        return "\n".join(
            [
                f"{self.wall_s:>18.6f}  seconds time elapsed",
                f"{self.instructions:>18.3e}  instructions",
                f"{self.flops:>18.3e}  fp_arith_inst_retired",
                f"{self.llc_misses:>18.3e}  LLC-load-misses",
                f"{int(self.context_switches):>18d}  context-switches",
                f"{self.package_j:>18.2f}  Joules power/energy-pkg/",
                f"{self.dram_j:>18.2f}  Joules power/energy-ram/",
                f"{self.gflops:>18.3f}  GFLOPS",
                f"{self.gflops_per_watt:>18.3f}  GFLOPS/Watt",
            ]
        )


class PerfStat:
    """Bracketing measurement session: ``start()`` ... ``stop()``."""

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self._t0: Optional[float] = None
        self._counters0: Optional[CounterSnapshot] = None
        self._rapl0: Optional[RaplSample] = None

    def start(self) -> None:
        self.kernel.sync()
        self._t0 = self.kernel.now
        self._counters0 = self.kernel.machine.counters.snapshot()
        self._rapl0 = self.kernel.machine.rapl.sample()

    def stop(self) -> PerfReport:
        if self._t0 is None or self._counters0 is None or self._rapl0 is None:
            raise SimulationError("PerfStat.stop() before start()")
        self.kernel.sync()
        counters = self.kernel.machine.counters.snapshot() - self._counters0
        rapl = self.kernel.machine.rapl.sample() - self._rapl0
        return PerfReport(
            wall_s=self.kernel.now - self._t0,
            instructions=counters[HwCounter.INSTRUCTIONS],
            cycles=counters[HwCounter.CYCLES],
            flops=counters[HwCounter.FP_OPS],
            llc_refs=counters[HwCounter.LLC_REFERENCES],
            llc_misses=counters[HwCounter.LLC_MISSES],
            context_switches=counters[HwCounter.CONTEXT_SWITCHES],
            pp_begin_calls=counters[HwCounter.PP_BEGIN_CALLS],
            pp_denials=counters[HwCounter.PP_DENIALS],
            package_j=rapl.package_j,
            dram_j=rapl.dram_j,
        )
