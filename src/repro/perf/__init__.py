"""perf-like measurement layer.

The paper measures everything with Linux ``perf``: FLOPs via hardware
counters and energy via the RAPL events.  This package provides the same
observables for the simulated machine: :class:`~repro.perf.counters.CounterSet`
emulates the hardware counters the execution model increments, and
:class:`~repro.perf.stat.PerfStat` wraps a measurement session the way
``perf stat`` wraps a command.
"""

from .counters import CounterSet, HwCounter
from .stat import PerfStat, PerfReport
from .sched import SchedReport, ThreadSchedStats, analyze_trace

__all__ = [
    "CounterSet",
    "HwCounter",
    "PerfStat",
    "PerfReport",
    "SchedReport",
    "ThreadSchedStats",
    "analyze_trace",
]
