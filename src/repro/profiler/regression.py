"""Working-set prediction across input scales (§4.4, figure 12).

"It can be seen that the working set size does not grow linearly with
respect to the input size, but rather in the shape of a logarithmic curve.
Therefore, to predict the change in working set size, we run a logarithmic
regression over the first three inputs from each progress period to
generate prediction functions."

The model is ``wss = a + b·ln(input)``, least-squares fitted; accuracy on a
held-out input is ``1 − |predicted − actual| / actual`` (this is how the
paper's 92 %/80 %/95 %/94 % figures are computed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ProfilerError

__all__ = ["LogRegression", "fit_log_regression", "prediction_accuracy"]


@dataclass(frozen=True)
class LogRegression:
    """A fitted ``wss = a + b·ln(input)`` prediction function."""

    a: float
    b: float

    def predict(self, input_size) -> np.ndarray | float:
        x = np.asarray(input_size, dtype=np.float64)
        if np.any(x <= 0):
            raise ProfilerError("input sizes must be positive")
        result = self.a + self.b * np.log(x)
        return float(result) if result.ndim == 0 else result

    def __call__(self, input_size):
        return self.predict(input_size)


def fit_log_regression(
    input_sizes: Sequence[float], wss_values: Sequence[float]
) -> LogRegression:
    """Least-squares fit of ``wss = a + b·ln(input)``.

    The paper fits the first three input scales and validates on the
    fourth; any >= 2 points are accepted here.
    """
    x = np.asarray(input_sizes, dtype=np.float64)
    y = np.asarray(wss_values, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ProfilerError("input_sizes and wss_values must be 1-D and equal length")
    if x.size < 2:
        raise ProfilerError("need at least two points to fit")
    if np.any(x <= 0):
        raise ProfilerError("input sizes must be positive")
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
        raise ProfilerError("input sizes and wss values must be finite")
    logx = np.log(x)
    # A constant-x series (zero variance in ln x) makes the Vandermonde
    # system rank-deficient: polyfit emits a RankWarning and returns
    # garbage coefficients.  The least-squares-optimal degenerate fit is
    # the flat line through the mean.
    if np.ptp(logx) <= 1e-12 * max(1.0, abs(float(logx[0]))):
        return LogRegression(a=float(np.mean(y)), b=0.0)
    b, a = np.polyfit(logx, y, deg=1)
    return LogRegression(a=float(a), b=float(b))


def prediction_accuracy(predicted: float, actual: float) -> float:
    """The paper's accuracy metric: ``1 − |pred − actual| / actual``."""
    if actual == 0:
        raise ProfilerError("actual value must be nonzero")
    return 1.0 - abs(predicted - actual) / abs(actual)
