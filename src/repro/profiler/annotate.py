"""Closing the loop: profiles → progress-period annotations (§4.4).

"The main component that needed developer intervention is actually
inserting the API calls into the application."  In this reproduction the
"application" is a workload phase model, so annotation means attaching a
:class:`~repro.workloads.base.PpSpec` built from the profiler's measured
demand — which is exactly what a source-level compiler or binary
translator would automate.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..errors import ProfilerError
from ..workloads.base import Phase, PpSpec
from .detect import DetectedPeriod
from .regression import LogRegression

__all__ = ["period_annotation", "annotate_workload_phase"]


def period_annotation(
    period: DetectedPeriod,
    input_size: Optional[float] = None,
    wss_predictor: Optional[LogRegression] = None,
) -> PpSpec:
    """Build the ``pp_begin`` declaration for a detected period.

    When a fitted input-scaling predictor is available, the declared demand
    is parameterized by the (possibly unseen) input size — the §4.4
    automation study; otherwise the profiled average is used directly.
    """
    if wss_predictor is not None:
        if input_size is None:
            raise ProfilerError("input_size required when using a predictor")
        demand = int(max(0.0, wss_predictor.predict(input_size)))
    else:
        demand = int(period.wss_bytes)
    return PpSpec(demand_bytes=demand, reuse=period.reuse_level)


def annotate_workload_phase(
    phase: Phase,
    period: DetectedPeriod,
    input_size: Optional[float] = None,
    wss_predictor: Optional[LogRegression] = None,
) -> Phase:
    """Return a copy of ``phase`` carrying the profiled PP declaration.

    Mirrors "manually modifying the application to communicate the relevant
    information to the operating system" — but automatically.
    """
    spec = period_annotation(period, input_size, wss_predictor)
    return replace(phase, pp=spec)
