"""The complete §2.4 profiling pipeline as one reusable object.

Wraps the four stages (window sampling → period detection → loop mapping →
annotation) the way the paper's preliminary profiler chains them, so a
workload author can go from an address trace to ``pp_begin`` declarations
in one call::

    pipeline = ProfilerPipeline(window_instructions=1_000_000)
    profile = pipeline.profile(trace)
    for pp in profile.periods:
        print(pp.wss_bytes, pp.reuse_level, profile.loop_of(pp))

Multi-input studies (figure 12) use :meth:`ProfilerPipeline.scaling_study`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..errors import ProfilerError
from ..mem.trace import MemoryTrace
from .annotate import period_annotation
from .detect import DetectedPeriod, DetectorConfig, detect_periods
from .loopmap import Loop, SyntheticBinary, map_period_to_loop
from .regression import LogRegression, fit_log_regression, prediction_accuracy
from .sampling import WindowProfile, sample_windows

__all__ = ["ApplicationProfile", "ScalingStudy", "ProfilerPipeline"]


@dataclass
class ApplicationProfile:
    """Everything the profiler extracted from one trace."""

    trace: MemoryTrace
    windows: WindowProfile
    periods: list[DetectedPeriod]
    binary: Optional[SyntheticBinary] = None
    _loops: dict[int, Optional[Loop]] = field(default_factory=dict, repr=False)

    def loop_of(self, period: DetectedPeriod) -> Optional[Loop]:
        """The outermost loop containing a period (None without a binary)."""
        key = id(period)
        if key not in self._loops:
            if self.binary is None:
                self._loops[key] = None
            else:
                jmps = self.trace.jmps_in_window(
                    period.first_window, period.window_instructions
                )
                self._loops[key] = map_period_to_loop(self.binary, jmps)
        return self._loops[key]

    def annotations(self):
        """One :class:`~repro.workloads.base.PpSpec` per detected period."""
        return [period_annotation(p) for p in self.periods]


@dataclass(frozen=True)
class ScalingStudy:
    """A figure-12-style multi-input working-set study."""

    input_sizes: tuple[float, ...]
    wss_bytes: tuple[float, ...]
    predictor: LogRegression
    holdout_accuracy: Optional[float]

    def predict(self, input_size: float) -> float:
        return float(self.predictor.predict(input_size))


class ProfilerPipeline:
    """Configured instance of the paper's preliminary profiler."""

    def __init__(
        self,
        window_instructions: int = 1_000_000,
        detector: Optional[DetectorConfig] = None,
        granularity_bytes: int = 64,
        min_accesses: int = 2,
    ) -> None:
        if window_instructions <= 0:
            raise ProfilerError("window size must be positive")
        self.window_instructions = window_instructions
        self.detector = detector or DetectorConfig()
        self.granularity_bytes = granularity_bytes
        self.min_accesses = min_accesses

    # ------------------------------------------------------------------
    def profile(
        self, trace: MemoryTrace, binary: Optional[SyntheticBinary] = None
    ) -> ApplicationProfile:
        """Run sampling + detection (+ optional loop mapping) on one trace."""
        windows = sample_windows(
            trace,
            self.window_instructions,
            granularity_bytes=self.granularity_bytes,
            min_accesses=self.min_accesses,
        )
        periods = detect_periods(windows, self.detector)
        return ApplicationProfile(
            trace=trace, windows=windows, periods=periods, binary=binary
        )

    # ------------------------------------------------------------------
    def scaling_study(
        self,
        trace_factory: Callable[[float], MemoryTrace],
        input_sizes: Sequence[float],
        fit_on: int = 3,
    ) -> ScalingStudy:
        """Profile one code region across input scales and fit the log model.

        Args:
            trace_factory: maps an input size to that input's trace.
            input_sizes: the scales to profile (the paper uses 1x/2x/4x/8x).
            fit_on: how many leading scales the regression is fitted on;
                remaining scales are held out and the *first* held-out
                point's accuracy is reported (None when nothing is held
                out).
        """
        if len(input_sizes) < 2:
            raise ProfilerError("need at least two input sizes")
        if not 2 <= fit_on <= len(input_sizes):
            raise ProfilerError("fit_on must cover >= 2 and <= all inputs")
        wss = []
        for n in input_sizes:
            windows = sample_windows(
                trace_factory(n),
                self.window_instructions,
                granularity_bytes=self.granularity_bytes,
                min_accesses=self.min_accesses,
            )
            wss.append(windows.mean_wss_bytes)
        predictor = fit_log_regression(input_sizes[:fit_on], wss[:fit_on])
        accuracy = None
        if fit_on < len(input_sizes):
            accuracy = prediction_accuracy(
                float(predictor.predict(input_sizes[fit_on])), wss[fit_on]
            )
        return ScalingStudy(
            input_sizes=tuple(float(x) for x in input_sizes),
            wss_bytes=tuple(wss),
            predictor=predictor,
            holdout_accuracy=accuracy,
        )
