"""Fixed-window sampling of memory traces (§2.4, first stage).

"Our preliminary profiler ... collect[s] the runtime virtual memory
addresses from each load/store instruction within each fixed-size sampling
window of instructions.  An array is used to keep track of the number of
times each unique address is accessed ... its new size at the end of the
window is then calculated as the memory footprint of the window.  The
working set size of the window is calculated as the number of entries in
the array that are accessed at least a pre-configured number of times, and
the average number of times each entry is accessed is calculated as its
reuse ratio."
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..errors import ProfilerError
from ..mem.trace import MemoryTrace
from ..mem.working_set import WindowStats, window_stats

__all__ = ["WindowProfile", "sample_windows"]


@dataclass(frozen=True)
class WindowProfile:
    """Per-window statistics for one trace."""

    window_instructions: int
    windows: tuple[WindowStats, ...]
    label: str = ""

    def __len__(self) -> int:
        return len(self.windows)

    @property
    def mean_wss_bytes(self) -> float:
        if not self.windows:
            return 0.0
        return float(np.mean([w.wss_bytes for w in self.windows]))

    @property
    def mean_reuse_ratio(self) -> float:
        if not self.windows:
            return 0.0
        return float(np.mean([w.reuse_ratio for w in self.windows]))

    @property
    def mean_footprint_bytes(self) -> float:
        if not self.windows:
            return 0.0
        return float(np.mean([w.footprint_bytes for w in self.windows]))


def sample_windows(
    trace: MemoryTrace,
    window_instructions: int = 1_000_000,
    granularity_bytes: int = 64,
    min_accesses: int = 2,
) -> WindowProfile:
    """Profile a trace with fixed-size instruction windows.

    Args:
        window_instructions: the paper's window size ``x`` (instructions);
            converted to an access count via the trace's instruction mix.
        granularity_bytes: address-coalescing granularity (cache line).
        min_accesses: the "pre-configured number of times" an address must
            be touched to count toward the working set.
    """
    if window_instructions <= 0:
        raise ProfilerError("window size must be positive")
    stats = tuple(
        window_stats(w, granularity_bytes=granularity_bytes, min_accesses=min_accesses)
        for w in trace.windows(window_instructions)
    )
    if not stats:
        raise ProfilerError(
            f"trace {trace.label!r} shorter than one window "
            f"({window_instructions} instructions)"
        )
    return WindowProfile(
        window_instructions=window_instructions,
        windows=stats,
        label=trace.label,
    )
