"""Mapping detected periods to source structure (§2.4, third stage).

"To correlate the detected runtime information with the source code of an
application, we sample the linear memory addresses of the JMP instructions
retired within each window, and use Dyninst ParseAPI to locate these JMPs
within the loop nest structure of the binary.  The outermost loop that
contains the identified progress period is then used as the beginning and
ending of the period."

We cannot parse a real ELF binary here, so :class:`SyntheticBinary` models
what ParseAPI would return: functions containing loop nests, each loop an
address interval with a backedge JMP.  The mapping algorithm on top is the
paper's: majority-vote the sampled JMPs into their innermost loop, then
walk up to the outermost enclosing loop of the same function.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..errors import ProfilerError

__all__ = ["Loop", "Function", "LoopNest", "SyntheticBinary", "map_period_to_loop"]


@dataclass
class Loop:
    """One natural loop: an address interval plus its backedge JMP."""

    name: str
    start: int
    end: int  # exclusive
    backedge: int
    parent: Optional["Loop"] = None
    children: list["Loop"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.start <= self.backedge < self.end:
            raise ProfilerError(
                f"loop {self.name!r}: backedge outside loop body"
            )

    def contains_addr(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def contains(self, other: "Loop") -> bool:
        return self.start <= other.start and other.end <= self.end

    def outermost(self) -> "Loop":
        """Walk up to the outermost enclosing loop."""
        loop = self
        while loop.parent is not None:
            loop = loop.parent
        return loop

    def depth(self) -> int:
        d, loop = 0, self
        while loop.parent is not None:
            d, loop = d + 1, loop.parent
        return d

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Loop {self.name} [{self.start:#x},{self.end:#x})>"


@dataclass
class Function:
    """A function: an address interval holding a forest of loops."""

    name: str
    start: int
    end: int
    loops: list[Loop] = field(default_factory=list)

    def contains_addr(self, addr: int) -> bool:
        return self.start <= addr < self.end


class LoopNest:
    """The loop forest of one function, with innermost-lookup by address."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self._all: list[Loop] = []
        stack = list(function.loops)
        while stack:
            loop = stack.pop()
            self._all.append(loop)
            stack.extend(loop.children)

    def innermost_containing(self, addr: int) -> Optional[Loop]:
        """Deepest loop whose body contains the address."""
        best: Optional[Loop] = None
        for loop in self._all:
            if loop.contains_addr(addr):
                if best is None or loop.depth() > best.depth():
                    best = loop
        return best


class SyntheticBinary:
    """What ParseAPI would give us: functions with loop nests.

    >>> b = SyntheticBinary()
    >>> f = b.add_function("interf", 0x1000, 0x9000)
    >>> outer = b.add_loop(f, "rows", 0x1100, 0x8f00, backedge=0x8e00)
    >>> inner = b.add_loop(f, "partners", 0x1200, 0x8d00,
    ...                    backedge=0x8c00, parent=outer)
    """

    def __init__(self) -> None:
        self.functions: list[Function] = []

    def add_function(self, name: str, start: int, end: int) -> Function:
        if start >= end:
            raise ProfilerError(f"function {name!r}: empty address range")
        for f in self.functions:
            if start < f.end and f.start < end:
                raise ProfilerError(f"function {name!r} overlaps {f.name!r}")
        fn = Function(name=name, start=start, end=end)
        self.functions.append(fn)
        return fn

    def add_loop(
        self,
        function: Function,
        name: str,
        start: int,
        end: int,
        backedge: int,
        parent: Optional[Loop] = None,
    ) -> Loop:
        if not (function.start <= start and end <= function.end):
            raise ProfilerError(f"loop {name!r} outside function {function.name!r}")
        loop = Loop(name=name, start=start, end=end, backedge=backedge, parent=parent)
        if parent is None:
            function.loops.append(loop)
        else:
            if not parent.contains(loop):
                raise ProfilerError(f"loop {name!r} not nested in {parent.name!r}")
            parent.children.append(loop)
        return loop

    def function_of(self, addr: int) -> Optional[Function]:
        for f in self.functions:
            if f.contains_addr(addr):
                return f
        return None


def map_period_to_loop(
    binary: SyntheticBinary,
    jmp_samples: Sequence[int] | np.ndarray,
) -> Optional[Loop]:
    """Locate a detected period in the binary's loop structure.

    Majority-votes the sampled JMP addresses into loops and returns the
    *outermost* loop containing the winner — the paper uses the outermost
    containing loop as the period's beginning and ending (and §4.3 shows
    why: outer placement minimizes tracking overhead).
    """
    samples = np.asarray(jmp_samples, dtype=np.int64)
    if samples.size == 0:
        return None
    loop_by_id: dict[int, Loop] = {}
    counts: Counter = Counter()
    for addr in samples:
        fn = binary.function_of(int(addr))
        if fn is None:
            continue
        loop = LoopNest(fn).innermost_containing(int(addr))
        if loop is not None:
            loop_by_id[id(loop)] = loop
            counts[id(loop)] += 1
    if not counts:
        return None
    winner_id, _ = counts.most_common(1)[0]
    return loop_by_id[winner_id].outermost()
